//! Cross-tool integration: PASTIS vs the MMseqs2-like and LAST-like
//! baselines on a labeled family dataset, through to Markov clustering and
//! the weighted precision/recall metrics — the full Fig. 17 / Table II
//! measurement path at test scale.

use baselines::{last_like, mmseqs_like, LastParams, MmseqsParams};
use datagen::{scope_like, ScopeConfig};
use mcl::{connected_components, markov_cluster, weighted_precision_recall, MclParams};
use pastis::{run_pipeline, PastisParams};
use pcomm::World;
use seqstore::write_fasta;

fn dataset() -> datagen::LabeledDataset {
    scope_like(&ScopeConfig {
        seed: 77,
        families: 6,
        members_range: (3, 5),
        len_range: (80, 140),
        divergence: (0.03, 0.15),
        ..Default::default()
    })
}

fn pastis_edges(data: &datagen::LabeledDataset, substitutes: usize) -> Vec<(u64, u64, f64)> {
    let fasta = write_fasta(&data.records);
    let params = PastisParams {
        k: 4,
        substitutes,
        ..Default::default()
    };
    let runs = World::run(4, |comm| run_pipeline(&comm, &fasta, &params));
    runs.into_iter().flat_map(|r| r.edges).collect()
}

fn cluster_quality(n: usize, edges: &[(u64, u64, f64)], labels: &[usize]) -> (f64, f64) {
    let e: Vec<(usize, usize, f64)> = edges
        .iter()
        .map(|&(a, b, w)| (a as usize, b as usize, w))
        .collect();
    let clusters = markov_cluster(n, &e, &MclParams::default());
    weighted_precision_recall(&clusters, labels)
}

#[test]
fn all_three_tools_recover_families_via_mcl() {
    let data = dataset();
    let n = data.len();

    let pastis = pastis_edges(&data, 0);
    let mmseqs = mmseqs_like(&data.records, &MmseqsParams::default());
    let last = last_like(
        &data.records,
        &LastParams {
            max_initial_matches: 300,
            ..Default::default()
        },
    );

    for (name, edges) in [("pastis", &pastis), ("mmseqs", &mmseqs), ("last", &last)] {
        let (p, r) = cluster_quality(n, edges, &data.labels);
        assert!(p > 0.7, "{name}: precision {p}");
        assert!(r > 0.5, "{name}: recall {r}");
    }
}

#[test]
fn substitute_kmers_do_not_reduce_recall() {
    // Fig. 17: more substitute k-mers buys recall (at some precision cost).
    let data = dataset();
    let n = data.len();
    let (_, r0) = cluster_quality(n, &pastis_edges(&data, 0), &data.labels);
    let (_, r25) = cluster_quality(n, &pastis_edges(&data, 10), &data.labels);
    assert!(r25 >= r0 - 1e-9, "substitutes lowered recall: {r25} < {r0}");
}

#[test]
fn connected_components_match_table2_shape() {
    // Table II: with exact k-mers, plain connected components are a viable
    // (high-precision) clustering; substitute k-mers without clustering
    // collapse precision because components merge.
    let data = dataset();
    let n = data.len();
    let cc_of = |edges: &[(u64, u64, f64)]| {
        connected_components(n, edges.iter().map(|&(a, b, _)| (a as usize, b as usize)))
    };
    let exact = cc_of(&pastis_edges(&data, 0));
    let subs = cc_of(&pastis_edges(&data, 10));
    let (p_exact, _) = weighted_precision_recall(&exact, &data.labels);
    let (p_subs, r_subs) = weighted_precision_recall(&subs, &data.labels);
    let (_, r_exact) = weighted_precision_recall(&exact, &data.labels);
    assert!(
        p_exact >= p_subs - 1e-9,
        "exact precision {p_exact} < substitute {p_subs}"
    );
    assert!(
        r_subs >= r_exact - 1e-9,
        "substitute recall {r_subs} < exact {r_exact}"
    );
}

#[test]
fn mcl_beats_or_matches_connected_components_on_precision() {
    // §VI-B: "clustering is indispensable when substitute k-mers are used".
    let data = dataset();
    let n = data.len();
    let edges = pastis_edges(&data, 10);
    let e: Vec<(usize, usize, f64)> = edges
        .iter()
        .map(|&(a, b, w)| (a as usize, b as usize, w))
        .collect();
    let mcl_labels = markov_cluster(n, &e, &MclParams::default());
    let cc_labels = connected_components(n, e.iter().map(|&(a, b, _)| (a, b)));
    let (p_mcl, _) = weighted_precision_recall(&mcl_labels, &data.labels);
    let (p_cc, _) = weighted_precision_recall(&cc_labels, &data.labels);
    assert!(
        p_mcl >= p_cc - 1e-9,
        "MCL precision {p_mcl} below CC {p_cc}"
    );
}

#[test]
fn tools_agree_on_strong_pairs() {
    // High-identity pairs should be found by every tool.
    let data = scope_like(&ScopeConfig {
        seed: 78,
        families: 3,
        members_range: (3, 3),
        len_range: (90, 130),
        divergence: (0.01, 0.05),
        ..Default::default()
    });
    let pastis: std::collections::HashSet<(u64, u64)> = pastis_edges(&data, 0)
        .iter()
        .map(|&(a, b, _)| (a, b))
        .collect();
    let mmseqs: std::collections::HashSet<(u64, u64)> =
        mmseqs_like(&data.records, &MmseqsParams::default())
            .iter()
            .map(|&(a, b, _)| (a, b))
            .collect();
    assert!(!pastis.is_empty());
    let overlap = pastis.intersection(&mmseqs).count();
    assert!(
        overlap * 10 >= pastis.len() * 7,
        "mmseqs-like found {overlap} of {} pastis pairs",
        pastis.len()
    );
}
