//! End-to-end pipeline tests spanning pcomm, sparse, seqstore, align,
//! subkmer and pastis: the PASTIS §V guarantees (process-count
//! obliviousness, ownership partition), the §IV-B recall claim for
//! substitute k-mers, and the CK-threshold behaviour of §VI.

use datagen::{metaclust_like, scope_like, MetaclustConfig, ScopeConfig};
use pastis::{run_pipeline, AlignMode, PastisParams};
use pcomm::World;
use seqstore::write_fasta;

fn small_dataset(n: usize, seed: u64) -> Vec<u8> {
    write_fasta(&metaclust_like(
        n,
        &MetaclustConfig {
            seed,
            len_range: (60, 120),
            related_fraction: 0.5,
            mutation_rate: 0.08,
        },
    ))
}

fn collect_edges(fasta: &[u8], p: usize, params: &PastisParams) -> Vec<(u64, u64, f64)> {
    let runs = World::run(p, |comm| run_pipeline(&comm, fasta, params));
    let mut edges: Vec<(u64, u64, f64)> = runs.into_iter().flat_map(|r| r.edges).collect();
    edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
    edges
}

#[test]
fn edges_independent_of_process_count() {
    let fasta = small_dataset(30, 1);
    let params = PastisParams {
        k: 4,
        substitutes: 0,
        ..Default::default()
    };
    let reference = collect_edges(&fasta, 1, &params);
    assert!(!reference.is_empty(), "dataset produced no edges");
    for p in [4usize, 9] {
        let got = collect_edges(&fasta, p, &params);
        assert_eq!(got, reference, "p={p}");
    }
}

#[test]
fn edges_independent_of_process_count_with_substitutes() {
    let fasta = small_dataset(20, 2);
    let params = PastisParams {
        k: 4,
        substitutes: 5,
        ..Default::default()
    };
    let reference = collect_edges(&fasta, 1, &params);
    assert!(!reference.is_empty());
    for p in [4usize, 9] {
        let got = collect_edges(&fasta, p, &params);
        assert_eq!(got, reference, "p={p}");
    }
}

#[test]
fn each_pair_reported_exactly_once() {
    let fasta = small_dataset(25, 3);
    let params = PastisParams {
        k: 4,
        mode: AlignMode::None,
        ..Default::default()
    };
    for p in [1usize, 4] {
        let edges = collect_edges(&fasta, p, &params);
        let mut keys: Vec<(u64, u64)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate pair reported at p={p}");
        for &(a, b) in &keys {
            assert!(a < b, "unordered edge ({a},{b})");
        }
    }
}

#[test]
fn substitutes_expand_the_candidate_set() {
    // §IV-B/§VI-A: substitute k-mers strictly widen the overlap landscape —
    // more candidate pairs, superset of the exact pairs.
    let fasta = small_dataset(25, 4);
    let exact = PastisParams {
        k: 4,
        substitutes: 0,
        mode: AlignMode::None,
        ..Default::default()
    };
    let subs = PastisParams {
        k: 4,
        substitutes: 10,
        mode: AlignMode::None,
        ..Default::default()
    };
    let e_exact = collect_edges(&fasta, 1, &exact);
    let e_subs = collect_edges(&fasta, 1, &subs);
    assert!(e_subs.len() >= e_exact.len());
    let sub_keys: std::collections::HashSet<(u64, u64)> =
        e_subs.iter().map(|&(a, b, _)| (a, b)).collect();
    for &(a, b, _) in &e_exact {
        assert!(
            sub_keys.contains(&(a, b)),
            "exact pair ({a},{b}) lost with substitutes"
        );
    }
}

#[test]
fn substitute_counts_dominate_exact_counts() {
    // With the identity kept in S, every exact shared k-mer is also a
    // shared substitute k-mer: per-pair counts can only grow.
    let fasta = small_dataset(15, 5);
    let exact = PastisParams {
        k: 4,
        substitutes: 0,
        mode: AlignMode::None,
        ..Default::default()
    };
    let subs = PastisParams {
        k: 4,
        substitutes: 8,
        mode: AlignMode::None,
        ..Default::default()
    };
    let e_exact = collect_edges(&fasta, 1, &exact);
    let e_subs: std::collections::HashMap<(u64, u64), f64> = collect_edges(&fasta, 1, &subs)
        .into_iter()
        .map(|(a, b, w)| ((a, b), w))
        .collect();
    for (a, b, w) in e_exact {
        let ws = e_subs.get(&(a, b)).copied().unwrap_or(0.0);
        assert!(
            ws >= w,
            "pair ({a},{b}): substitute count {ws} < exact count {w}"
        );
    }
}

#[test]
fn ck_threshold_prunes_alignments() {
    let fasta = small_dataset(30, 6);
    let base = PastisParams {
        k: 4,
        substitutes: 5,
        ..Default::default()
    };
    let ck = PastisParams {
        common_kmer_threshold: 3,
        ..base.clone()
    };
    let runs_base = World::run(1, |comm| run_pipeline(&comm, &fasta, &base));
    let runs_ck = World::run(1, |comm| run_pipeline(&comm, &fasta, &ck));
    let a0 = runs_base[0].counters.alignments_global;
    let a1 = runs_ck[0].counters.alignments_global;
    assert!(a1 < a0, "CK did not prune: {a1} vs {a0}");
    assert!(a1 > 0, "CK pruned everything");
    // The surviving edges are a subset of the unpruned ones.
    let keys = |runs: &[pastis::PastisRun]| {
        runs.iter()
            .flat_map(|r| r.edges.iter().map(|&(a, b, _)| (a, b)))
            .collect::<std::collections::HashSet<_>>()
    };
    assert!(keys(&runs_ck).is_subset(&keys(&runs_base)));
}

#[test]
fn sw_and_xd_find_the_same_strong_pairs() {
    // §VI-B: XD is much faster "without any significant change in
    // accuracy". On clearly homologous pairs both must agree.
    let data = scope_like(&ScopeConfig {
        seed: 7,
        families: 4,
        members_range: (3, 4),
        len_range: (70, 120),
        divergence: (0.02, 0.08),
        ..Default::default()
    });
    let fasta = write_fasta(&data.records);
    let sw = PastisParams {
        k: 4,
        mode: AlignMode::SmithWaterman,
        ..Default::default()
    };
    let xd = PastisParams {
        k: 4,
        mode: AlignMode::XDrop,
        ..Default::default()
    };
    let e_sw = collect_edges(&fasta, 1, &sw);
    let e_xd = collect_edges(&fasta, 1, &xd);
    let k_sw: std::collections::HashSet<(u64, u64)> =
        e_sw.iter().map(|&(a, b, _)| (a, b)).collect();
    let k_xd: std::collections::HashSet<(u64, u64)> =
        e_xd.iter().map(|&(a, b, _)| (a, b)).collect();
    let overlap = k_sw.intersection(&k_xd).count();
    assert!(!k_sw.is_empty());
    assert!(
        overlap as f64 >= 0.8 * k_sw.len() as f64,
        "XD missed too many SW pairs: {overlap}/{}",
        k_sw.len()
    );
}

#[test]
fn family_members_are_connected() {
    // Close family members must end up adjacent in the PSG.
    let data = scope_like(&ScopeConfig {
        seed: 8,
        families: 5,
        members_range: (3, 3),
        len_range: (80, 120),
        divergence: (0.02, 0.06),
        ..Default::default()
    });
    let fasta = write_fasta(&data.records);
    let params = PastisParams {
        k: 4,
        ..Default::default()
    };
    let edges = collect_edges(&fasta, 4, &params);
    // Count intra- vs inter-family edges.
    let (mut intra, mut inter) = (0usize, 0usize);
    for &(a, b, _) in &edges {
        if data.labels[a as usize] == data.labels[b as usize] {
            intra += 1;
        } else {
            inter += 1;
        }
    }
    assert!(intra > 0, "no intra-family edges at all");
    assert!(intra > 5 * inter.max(1) / 2, "intra={intra} inter={inter}");
}

#[test]
fn ns_measure_keeps_positive_scores_without_filter() {
    let fasta = small_dataset(20, 9);
    let ani = PastisParams {
        k: 4,
        ..Default::default()
    };
    let ns = PastisParams {
        measure: align::SimilarityMeasure::NormalizedScore,
        ..ani.clone()
    };
    let e_ani = collect_edges(&fasta, 1, &ani);
    let e_ns = collect_edges(&fasta, 1, &ns);
    // NS applies no identity/coverage cut-off, so it keeps at least as many.
    assert!(e_ns.len() >= e_ani.len());
    for &(_, _, w) in &e_ns {
        assert!(w > 0.0);
    }
}

#[test]
fn counters_are_populated() {
    let fasta = small_dataset(20, 10);
    let params = PastisParams {
        k: 4,
        substitutes: 5,
        ..Default::default()
    };
    let runs = World::run(4, |comm| run_pipeline(&comm, &fasta, &params));
    let c = runs[0].counters;
    assert_eq!(c.n_seqs, 20);
    assert!(c.nnz_a > 0);
    assert!(c.nnz_s > 0);
    assert!(c.nnz_b > 0);
    assert!(c.alignments_global > 0);
    // Collective counters agree across ranks.
    for r in &runs {
        assert_eq!(r.counters.nnz_b, c.nnz_b);
        assert_eq!(r.counters.alignments_global, c.alignments_global);
    }
    // Timings recorded.
    assert!(runs[0].timings.total > 0.0);
    assert!(runs[0].timings.spgemm_b.secs > 0.0);
}

#[test]
fn empty_and_tiny_inputs() {
    let params = PastisParams {
        k: 4,
        ..Default::default()
    };
    let runs = World::run(1, |comm| run_pipeline(&comm, b"", &params));
    assert!(runs[0].edges.is_empty());
    let one = write_fasta(&metaclust_like(
        1,
        &MetaclustConfig {
            len_range: (50, 60),
            ..Default::default()
        },
    ));
    let runs = World::run(4, |comm| run_pipeline(&comm, &one, &params));
    assert!(
        runs.iter().all(|r| r.edges.is_empty()),
        "single sequence cannot pair"
    );
}

#[test]
fn parallel_psg_shards_cover_edges_once() {
    let fasta = small_dataset(25, 11);
    let params = PastisParams {
        k: 4,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("pastis_psg_shards_test");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("psg");
    let p = 4;
    World::run(p, |comm| {
        let run = run_pipeline(&comm, &fasta, &params);
        pastis::write_psg_shard(&comm, &stem, &run.edges).expect("shard write");
    });
    let merged = pastis::read_psg_shards(&stem, p).expect("shard read");
    let want: Vec<(u64, u64, f64)> = collect_edges(&fasta, 1, &params)
        .into_iter()
        .map(|(a, b, w)| (a, b, (w * 1e6).round() / 1e6)) // writer precision
        .collect();
    assert_eq!(merged, want);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kmer_frequency_filter_drops_repeat_driven_pairs() {
    // Give every sequence the same low-complexity repeat; without the
    // filter the repeat makes everything a candidate pair.
    let mut records = metaclust_like(
        16,
        &MetaclustConfig {
            seed: 12,
            len_range: (60, 90),
            related_fraction: 0.0,
            ..Default::default()
        },
    );
    for r in &mut records {
        r.residues.extend_from_slice(b"WWWWWWWWWW");
    }
    let fasta = write_fasta(&records);
    let base = PastisParams {
        k: 4,
        mode: AlignMode::None,
        ..Default::default()
    };
    let filtered = PastisParams {
        max_kmer_frequency: Some(8),
        ..base.clone()
    };
    for p in [1usize, 4] {
        let all = collect_edges(&fasta, p, &base);
        let kept = collect_edges(&fasta, p, &filtered);
        // The repeat pairs everything: all = n(n-1)/2 candidates.
        assert_eq!(all.len(), 16 * 15 / 2, "p={p}");
        assert!(
            kept.len() < all.len() / 4,
            "filter ineffective: {} of {}",
            kept.len(),
            all.len()
        );
    }
}

#[test]
fn kmer_frequency_filter_is_grid_oblivious() {
    let fasta = small_dataset(25, 13);
    let params = PastisParams {
        k: 4,
        max_kmer_frequency: Some(5),
        mode: AlignMode::None,
        ..Default::default()
    };
    let reference = collect_edges(&fasta, 1, &params);
    for p in [4usize, 9] {
        assert_eq!(collect_edges(&fasta, p, &params), reference, "p={p}");
    }
}

#[test]
fn reduced_alphabet_seeding_is_more_sensitive() {
    // Diverged families: Murphy-10 seeding must surface at least as many
    // candidate pairs as exact 24-letter seeding (DIAMOND's trick, §III).
    let data = scope_like(&ScopeConfig {
        seed: 21,
        families: 5,
        members_range: (3, 4),
        len_range: (70, 120),
        divergence: (0.15, 0.40),
        ..Default::default()
    });
    let fasta = write_fasta(&data.records);
    let exact = PastisParams {
        k: 5,
        mode: AlignMode::None,
        ..Default::default()
    };
    let reduced = PastisParams {
        reduced_alphabet: true,
        ..exact.clone()
    };
    let e_exact = collect_edges(&fasta, 1, &exact);
    let e_reduced = collect_edges(&fasta, 1, &reduced);
    assert!(
        e_reduced.len() > e_exact.len(),
        "reduced {} <= exact {}",
        e_reduced.len(),
        e_exact.len()
    );
    // And it stays grid-oblivious.
    assert_eq!(collect_edges(&fasta, 4, &reduced), e_reduced);
}

#[test]
fn identical_duplicate_sequences_pair_perfectly() {
    let rec = seqstore::FastaRecord {
        name: "dup".into(),
        residues: b"MKVLAWHERTYCCDDEEFFGGHHIIKKLLMMNNPPQQRRSSTTVVWWYY".to_vec(),
    };
    let fasta = write_fasta(&[
        rec.clone(),
        seqstore::FastaRecord {
            name: "dup2".into(),
            ..rec
        },
    ]);
    let params = PastisParams {
        k: 4,
        ..Default::default()
    };
    let edges = collect_edges(&fasta, 1, &params);
    assert_eq!(edges.len(), 1);
    let (a, b, w) = edges[0];
    assert_eq!((a, b), (0, 1));
    assert!(
        (w - 1.0).abs() < 1e-12,
        "identical pair must have ANI 1.0, got {w}"
    );
}
