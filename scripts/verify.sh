#!/usr/bin/env bash
# Tier-1 verification plus lint gates. Run from the repo root.
#
# Opt-in sanitizer lanes (each skips with a note when the toolchain
# component is missing):
#   MIRI=1 scripts/verify.sh   — run the pcheck unit tests under Miri
#   TSAN=1 scripts/verify.sh   — run the pcomm tests under ThreadSanitizer
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
# Trace-export schema gate: the Perfetto JSON must stay parseable and keep
# its per-rank track structure.
cargo test -q -p obs --test perfetto_schema
# Streamed-pipeline determinism under checked mode: the overlap SpGEMM
# path must stay bit-identical to the staged oracle with the conformance
# ledger and finalize audit enforced (release builds default PCHECK off,
# so force it on here).
PCHECK=1 cargo test -q --release -p pastis --test stream_equivalence
# Forced-dispatch matrix: the striped kernels and the prefilter cascade
# must be bit-identical to the scalar oracle under every SIMD lane the
# dispatcher can pick (ALIGN_FORCE pins the lane; avx2 silently degrades
# to slp on hosts without it, so the lane is exercised wherever possible).
for lane in scalar slp avx2; do
    ALIGN_FORCE="$lane" cargo test -q --release -p align --test proptest_align
done
# Memory-observatory lane: release builds default allocation tracking OFF,
# so force it on and rerun the obs suite — the allocator ledgers, window
# peaks, and per-stage tables must hold under the release optimizer too.
ALLOC_TRACK=1 cargo test -q --release -p obs
# Monitor lane: heartbeat-snapshot structure must stay deterministic under
# the conformance checker in release too (debug runs it via `cargo test -q`),
# and a real `pastis --monitor` run must pass its own status.json self-check
# (schema, monotone epochs, done-sum == global alignment counter).
PCHECK=1 cargo test -q --release -p pastis --test monitor_live
monitor_tmp="$(mktemp -d)"
cargo run --release -q -p pastis-bench --bin mkfasta -- "$monitor_tmp/monitor.fasta" 0.06 7
PASTIS_MONITOR_MS=20 cargo run --release -q -p pastis --bin pastis -- \
    --input "$monitor_tmp/monitor.fasta" --output "$monitor_tmp/out.tsv" \
    --ranks 4 --k 5 --monitor --quiet
test -s "$monitor_tmp/status.json" || { echo "verify: pastis --monitor left no status.json"; exit 1; }
rm -rf "$monitor_tmp"
# Out-of-core lane (DESIGN.md §15). In-process: the batched driver must be
# bit-identical to the monolithic stream under the conformance checker, and
# the allocator-measured per-batch peak must respect the budget bound with
# tracking forced on in release. End-to-end: a tiny-budget checkpointed run
# is killed mid-flight, resumed, and the resumed output must match a
# single-shot run byte for byte.
PCHECK=1 cargo test -q --release -p pastis --test ooc_equivalence
ALLOC_TRACK=1 cargo test -q --release -p pastis --test ooc_budget
ooc_tmp="$(mktemp -d)"
cargo run --release -q -p pastis-bench --bin mkfasta -- "$ooc_tmp/ooc.fasta" 0.05 9
cargo run --release -q -p pastis --bin pastis -- \
    --input "$ooc_tmp/ooc.fasta" --output "$ooc_tmp/mono.tsv" --ranks 4 --k 5 --quiet
PASTIS_KILL_AFTER_BATCH=1 cargo run --release -q -p pastis --bin pastis -- \
    --input "$ooc_tmp/ooc.fasta" --output "$ooc_tmp/ooc.tsv" --ranks 4 --k 5 --quiet \
    --mem-budget 96k --ckpt-dir "$ooc_tmp/ckpt" && \
    { echo "verify: PASTIS_KILL_AFTER_BATCH run did not die"; exit 1; } || true
test -s "$ooc_tmp/ckpt/manifest.json" || { echo "verify: killed run left no checkpoint manifest"; exit 1; }
test ! -e "$ooc_tmp/ooc.tsv" || { echo "verify: killed run left a premature output"; exit 1; }
cargo run --release -q -p pastis --bin pastis -- \
    --input "$ooc_tmp/ooc.fasta" --output "$ooc_tmp/ooc.tsv" --ranks 4 --k 5 --quiet \
    --mem-budget 96k --ckpt-dir "$ooc_tmp/ckpt"
cmp "$ooc_tmp/mono.tsv" "$ooc_tmp/ooc.tsv" || { echo "verify: resumed out-of-core output diverged"; exit 1; }
rm -rf "$ooc_tmp"
cargo clippy --all-targets -- -D warnings
# Workspace lint gates: SAFETY comments on unsafe, thread-spawn confinement,
# Instant::now confinement, cost-literal confinement, allocator confinement.
# See crates/xlint.
cargo run -q -p xlint -- .
# Bench document schemas (machine profile + committed baselines) and the
# regression gate: BENCH_scale is regenerated deterministically from the
# committed profile and diffed against results/baseline/; the wall-clock
# benches are gated only when fresh BENCH_align/BENCH_obs runs are present.
# Skips with a note when no baseline is committed. See crates/bench/src/gate.rs.
cargo run --release -q -p pastis-bench --bin bench_gate -- schema
cargo run --release -q -p pastis-bench --bin bench_gate -- gate

if [[ "${MIRI:-0}" == "1" ]]; then
    if rustup component list 2>/dev/null | grep -q '^miri.*(installed)'; then
        # Interpret the single-threaded pcheck unit tests (ledger, shared-state
        # bookkeeping, perturbation RNG) under Miri. The thread-per-rank pcomm
        # integration tests are too slow under interpretation to gate on.
        cargo miri test -p pcheck --lib
    else
        echo "verify: MIRI=1 requested but the miri component is not installed; skipping"
    fi
fi

if [[ "${TSAN:-0}" == "1" ]]; then
    host="$(rustc -vV | sed -n 's/^host: //p')"
    if rustc +nightly -V >/dev/null 2>&1 \
        && rustup component list --toolchain nightly 2>/dev/null | grep -q '^rust-src.*(installed)'; then
        # ThreadSanitizer over the rank-thread runtime: exercises the mailbox
        # channels, stash bookkeeping, and pcheck shared state under real
        # parallelism.
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std -q -p pcomm --target "$host"
    else
        echo "verify: TSAN=1 requested but nightly + rust-src are not installed; skipping"
    fi
fi

echo "verify: OK"
