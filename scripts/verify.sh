#!/usr/bin/env bash
# Tier-1 verification plus lint gate. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
# Trace-export schema gate: the Perfetto JSON must stay parseable and keep
# its per-rank track structure.
cargo test -q -p obs --test perfetto_schema
cargo clippy --all-targets -- -D warnings
echo "verify: OK"
