#!/usr/bin/env python3
"""Splice harness outputs from results/ into EXPERIMENTS.md placeholders."""
import os, re, sys
root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
md = open(os.path.join(root, 'EXPERIMENTS.md')).read()
mapping = {
    'FIG12_OUTPUT': 'fig12.txt', 'FIG13_OUTPUT': 'fig13.txt',
    'TABLE1_OUTPUT': 'table1.txt', 'FIG14_OUTPUT': 'fig14.txt',
    'FIG15_OUTPUT': 'fig15.txt', 'FIG16_OUTPUT': 'fig16.txt',
    'FIG17_OUTPUT': 'fig17.txt', 'TABLE2_OUTPUT': 'table2.txt',
    'TEXTSTATS_OUTPUT': 'textstats.txt', 'ABLATION_OUTPUT': 'ablation.txt',
}
for tag, fname in mapping.items():
    path = os.path.join(root, 'results', fname)
    if not os.path.exists(path):
        print(f'skip {tag}: {fname} missing'); continue
    body = open(path).read().strip()
    # strip cargo noise lines
    body = '\n'.join(l for l in body.splitlines()
                     if not l.startswith(('   Compiling', '    Finished', '     Running')))
    block = f'```text\n{body}\n```'
    placeholder = f'<!-- {tag} -->'
    if placeholder in md:
        md = md.replace(placeholder, block)
        print(f'spliced {tag}')
    else:
        print(f'placeholder {tag} already filled')
open(os.path.join(root, 'EXPERIMENTS.md'), 'w').write(md)
