//! `mcl` — downstream protein-family discovery on the similarity graph.
//!
//! The paper clusters PASTIS's protein similarity graph with HipMCL (a
//! distributed Markov Clustering implementation) and evaluates clusters
//! against SCOPe ground-truth families with weighted precision/recall
//! (paper §VI-B). This crate provides the shared-memory equivalents:
//!
//! - [`markov_cluster`]: MCL — expansion (matrix square), inflation
//!   (Hadamard power + column renormalization), pruning, convergence by
//!   column chaos; clusters read off the limit matrix.
//! - [`connected_components`]: the cheap alternative of Table II.
//! - [`weighted_precision_recall`]: the clustering quality metrics.

mod cc;
mod dist;
mod eval;
mod markov;

pub use cc::{connected_components, UnionFind};
pub use dist::markov_cluster_dist;
pub use eval::weighted_precision_recall;
pub use markov::{markov_cluster, MclParams};
