//! Markov Clustering (van Dongen 2000) — the algorithm behind HipMCL,
//! which the paper uses to turn similarity graphs into protein families.
//!
//! Alternates *expansion* (squaring the column-stochastic matrix — flow
//! spreads along paths) and *inflation* (entry-wise power + column
//! renormalization — strong flow is rewarded), pruning tiny entries for
//! sparsity, until the matrix converges; clusters are the connected
//! components of the limit matrix.

use sparse::Csc;

use crate::cc::connected_components;

/// MCL hyper-parameters. Defaults match common MCL/HipMCL usage.
#[derive(Debug, Clone, Copy)]
pub struct MclParams {
    /// Inflation exponent (r > 1; higher → finer clusters). MCL's default 2.
    pub inflation: f64,
    /// Entries below this are pruned after each iteration (HipMCL's
    /// "cutoff"; keeps the iterates sparse).
    pub prune_threshold: f64,
    /// Keep at most this many entries per column after pruning (0 = all).
    pub max_per_column: usize,
    /// Iteration cap.
    pub max_iter: usize,
    /// Convergence threshold on the chaos measure.
    pub chaos_eps: f64,
}

impl Default for MclParams {
    fn default() -> Self {
        MclParams {
            inflation: 2.0,
            prune_threshold: 1e-4,
            max_per_column: 64,
            max_iter: 100,
            chaos_eps: 1e-6,
        }
    }
}

/// Cluster `n` vertices from weighted undirected edges `(i, j, w)` with
/// `w > 0`. Returns dense cluster labels. Self-loops are added (standard
/// MCL practice) so singletons and attractors behave.
pub fn markov_cluster(n: usize, edges: &[(usize, usize, f64)], params: &MclParams) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    // Build the symmetric adjacency with unit self-loops.
    let mut triples: Vec<(usize, usize, f64)> = Vec::with_capacity(edges.len() * 2 + n);
    for &(i, j, w) in edges {
        assert!(w >= 0.0, "negative edge weight");
        if i == j {
            continue;
        }
        triples.push((i, j, w));
        triples.push((j, i, w));
    }
    for v in 0..n {
        triples.push((v, v, 1.0));
    }
    let mut m = Csc::from_triples(n, n, triples, |a, b| *a += b);
    normalize_columns(&mut m);

    for iter in 0..params.max_iter {
        let _span = obs::span!("mcl.iter", iter = iter);
        // Expansion.
        let mut next = {
            let _s = obs::span!("mcl.expand");
            m.matmul(&m)
        };
        // Inflation.
        {
            let _s = obs::span!("mcl.inflate");
            for c in 0..n {
                for v in next.col_vals_mut(c) {
                    *v = v.powf(params.inflation);
                }
            }
        }
        // Prune tiny entries (keep top `max_per_column` when configured).
        {
            let _s = obs::span!("mcl.prune");
            next.retain(|_, _, &v| v >= params.prune_threshold);
            if params.max_per_column > 0 {
                prune_topk(&mut next, params.max_per_column);
            }
        }
        {
            let _s = obs::span!("mcl.normalize");
            normalize_columns(&mut next);
        }
        let chaos = {
            let _s = obs::span!("mcl.chaos");
            chaos(&next)
        };
        m = next;
        if chaos < params.chaos_eps {
            break;
        }
    }

    // Clusters = connected components over the limit matrix support.
    let mut edges_out = Vec::new();
    for (r, c, &v) in m.iter() {
        if v > 0.0 && r != c {
            edges_out.push((r, c));
        }
    }
    connected_components(n, edges_out)
}

fn normalize_columns(m: &mut Csc<f64>) {
    for c in 0..m.ncols() {
        let sum: f64 = m.col(c).1.iter().sum();
        if sum > 0.0 {
            for v in m.col_vals_mut(c) {
                *v /= sum;
            }
        }
    }
}

/// Keep the `k` largest entries of each column.
fn prune_topk(m: &mut Csc<f64>, k: usize) {
    let mut thresholds = vec![0.0f64; m.ncols()];
    #[allow(clippy::needless_range_loop)] // c is a column id used for access too
    for c in 0..m.ncols() {
        let vals = m.col(c).1;
        if vals.len() > k {
            let mut sorted: Vec<f64> = vals.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            thresholds[c] = sorted[k - 1];
        }
    }
    m.retain(|_, c, &v| v >= thresholds[c]);
}

/// Chaos: max over columns of (max entry − sum of squared entries). Zero
/// exactly when every column is an indicator vector (doubly idempotent).
fn chaos(m: &Csc<f64>) -> f64 {
    let mut worst: f64 = 0.0;
    for c in 0..m.ncols() {
        let vals = m.col(c).1;
        if vals.is_empty() {
            continue;
        }
        let mx = vals.iter().cloned().fold(f64::MIN, f64::max);
        let ss: f64 = vals.iter().map(|v| v * v).sum();
        worst = worst.max(mx - ss);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_same_cluster(labels: &[usize], group: &[usize]) {
        for w in group.windows(2) {
            assert_eq!(labels[w[0]], labels[w[1]], "{w:?} split in {labels:?}");
        }
    }

    #[test]
    fn empty_graph() {
        assert!(markov_cluster(0, &[], &MclParams::default()).is_empty());
        let l = markov_cluster(3, &[], &MclParams::default());
        assert_eq!(l, vec![0, 1, 2]);
    }

    #[test]
    fn two_cliques_with_weak_bridge() {
        // 0-1-2 clique, 3-4-5 clique, weak 2-3 bridge: MCL cuts the bridge.
        let strong = 1.0;
        let weak = 0.05;
        let edges = vec![
            (0, 1, strong),
            (1, 2, strong),
            (0, 2, strong),
            (3, 4, strong),
            (4, 5, strong),
            (3, 5, strong),
            (2, 3, weak),
        ];
        let l = markov_cluster(6, &edges, &MclParams::default());
        assert_same_cluster(&l, &[0, 1, 2]);
        assert_same_cluster(&l, &[3, 4, 5]);
        assert_ne!(l[0], l[3], "bridge not cut: {l:?}");
    }

    #[test]
    fn single_clique_stays_together() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in i + 1..5 {
                edges.push((i, j, 1.0));
            }
        }
        let l = markov_cluster(5, &edges, &MclParams::default());
        assert_same_cluster(&l, &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn disconnected_components_never_merge() {
        let edges = vec![(0, 1, 1.0), (2, 3, 1.0)];
        let l = markov_cluster(4, &edges, &MclParams::default());
        assert_eq!(l[0], l[1]);
        assert_eq!(l[2], l[3]);
        assert_ne!(l[0], l[2]);
    }

    #[test]
    fn higher_inflation_gives_finer_or_equal_clustering() {
        // A 4-cycle: low inflation may keep it whole, high splits it.
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (0, 2, 0.3),
            (1, 3, 0.3),
        ];
        let coarse = markov_cluster(
            4,
            &edges,
            &MclParams {
                inflation: 1.3,
                ..Default::default()
            },
        );
        let fine = markov_cluster(
            4,
            &edges,
            &MclParams {
                inflation: 6.0,
                ..Default::default()
            },
        );
        let count = |l: &[usize]| l.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(
            count(&fine) >= count(&coarse),
            "fine={fine:?} coarse={coarse:?}"
        );
    }

    #[test]
    fn deterministic() {
        let edges = vec![(0, 1, 0.9), (1, 2, 0.8), (3, 4, 0.7), (2, 3, 0.1)];
        let a = markov_cluster(5, &edges, &MclParams::default());
        let b = markov_cluster(5, &edges, &MclParams::default());
        assert_eq!(a, b);
    }
}
