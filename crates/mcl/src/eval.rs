//! Weighted precision and recall for protein clustering (Bernardes et al.
//! 2015, the metric the paper reports in Fig. 17 and Table II).
//!
//! With contingency counts `n(c, f) = |cluster c ∩ family f|` over `N`
//! sequences:
//!
//! - weighted precision `P = Σ_c max_f n(c, f) / N` — a cluster mixing
//!   several families only credits its dominant one (penalizing merges);
//! - weighted recall `R = Σ_f max_c n(c, f) / N` — a family split across
//!   clusters only credits its largest piece (penalizing splits).

use std::collections::HashMap;

/// Compute `(precision, recall)` of `clusters` against ground-truth
/// `families`. Both are dense per-sequence labels of equal length.
pub fn weighted_precision_recall(clusters: &[usize], families: &[usize]) -> (f64, f64) {
    assert_eq!(clusters.len(), families.len(), "label vectors must align");
    let n = clusters.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut contingency: HashMap<(usize, usize), usize> = HashMap::new();
    for (&c, &f) in clusters.iter().zip(families) {
        *contingency.entry((c, f)).or_insert(0) += 1;
    }
    let mut best_in_cluster: HashMap<usize, usize> = HashMap::new();
    let mut best_in_family: HashMap<usize, usize> = HashMap::new();
    for (&(c, f), &cnt) in &contingency {
        let bc = best_in_cluster.entry(c).or_insert(0);
        *bc = (*bc).max(cnt);
        let bf = best_in_family.entry(f).or_insert(0);
        *bf = (*bf).max(cnt);
    }
    let p = best_in_cluster.values().sum::<usize>() as f64 / n as f64;
    let r = best_in_family.values().sum::<usize>() as f64 / n as f64;
    (p, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering() {
        let fam = vec![0, 0, 1, 1, 2];
        let (p, r) = weighted_precision_recall(&fam, &fam);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn everything_in_one_cluster() {
        // Full recall (no family split), poor precision (families merged).
        let clusters = vec![0; 6];
        let families = vec![0, 0, 1, 1, 2, 2];
        let (p, r) = weighted_precision_recall(&clusters, &families);
        assert!((r - 1.0).abs() < 1e-12);
        assert!((p - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons() {
        // Full precision (pure clusters), poor recall (families shattered).
        let clusters = vec![0, 1, 2, 3, 4, 5];
        let families = vec![0, 0, 0, 1, 1, 1];
        let (p, r) = weighted_precision_recall(&clusters, &families);
        assert!((p - 1.0).abs() < 1e-12);
        assert!((r - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_cluster_credits_majority() {
        // Cluster 0 = {f0, f0, f1}: contributes 2. Cluster 1 = {f1}: 1.
        let clusters = vec![0, 0, 0, 1];
        let families = vec![0, 0, 1, 1];
        let (p, r) = weighted_precision_recall(&clusters, &families);
        assert!((p - 3.0 / 4.0).abs() < 1e-12);
        // f0's best piece 2, f1's best piece 1 → R = 3/4.
        assert!((r - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(weighted_precision_recall(&[], &[]), (0.0, 0.0));
    }

    #[test]
    fn label_ids_need_not_be_dense() {
        let clusters = vec![100, 100, 7];
        let families = vec![9, 9, 9];
        let (p, r) = weighted_precision_recall(&clusters, &families);
        assert!((p - 1.0).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }
}
