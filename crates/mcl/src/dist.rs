//! Distributed Markov clustering over 2D-distributed sparse matrices —
//! the HipMCL (Azad et al. 2018) analogue the paper feeds its similarity
//! graphs to, built on the same Sparse-SUMMA SpGEMM as PASTIS itself.
//!
//! Expansion is a distributed matrix square; inflation and threshold
//! pruning are local; column normalization and the chaos convergence test
//! reduce along grid-column subcommunicators (every rank of a grid column
//! holds a block of the same global columns). Unlike the shared-memory
//! [`crate::markov_cluster`], pruning here is threshold-only: a per-column
//! top-k selection would need an extra distributed selection pass, which
//! HipMCL implements but this reproduction leaves out (the threshold
//! controls fill adequately at reproduction scale).

use std::rc::Rc;

use pcomm::Grid;
use sparse::{ArithmeticSemiring, DistMat, SpGemmStrategy};

use crate::cc::connected_components;
use crate::markov::MclParams;

/// Distributed MCL. Collective over `grid`.
///
/// `edges_local` is this rank's share of the weighted undirected edges
/// (global vertex ids, each unordered edge supplied by exactly one rank —
/// e.g. straight from PASTIS-style per-rank PSG output). Returns the
/// dense cluster labels of all `n` vertices, identical on every rank and
/// identical for every grid size.
pub fn markov_cluster_dist(
    grid: Rc<Grid>,
    n: u64,
    edges_local: Vec<(u64, u64, f64)>,
    params: &MclParams,
) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    // Symmetrize and add self-loops (rank 0 contributes the diagonal; the
    // construction shuffle routes everything to its owner block).
    let mut triples: Vec<(u64, u64, f64)> = Vec::with_capacity(edges_local.len() * 2 + 1);
    for (i, j, w) in edges_local {
        assert!(w >= 0.0, "negative edge weight");
        if i == j {
            continue;
        }
        triples.push((i, j, w));
        triples.push((j, i, w));
    }
    if grid.world().rank() == 0 {
        triples.extend((0..n).map(|v| (v, v, 1.0)));
    }
    let mut m = DistMat::from_triples(Rc::clone(&grid), n, n, triples, |a, b| *a += b);
    normalize_columns(&grid, &mut m);

    for iter in 0..params.max_iter {
        let _span = obs::span!("mcl.iter", iter = iter);
        // Expansion.
        let mut next = {
            let _s = obs::span!("mcl.expand");
            m.spgemm(&m, &ArithmeticSemiring, SpGemmStrategy::Hybrid)
        };
        // Inflation (local).
        {
            let _s = obs::span!("mcl.inflate");
            next = next.map(|_, _, v| v.powf(params.inflation));
        }
        // Threshold pruning (local).
        {
            let _s = obs::span!("mcl.prune");
            next.retain(|_, _, &v| v >= params.prune_threshold);
        }
        {
            let _s = obs::span!("mcl.normalize");
            normalize_columns(&grid, &mut next);
        }
        let chaos = {
            let _s = obs::span!("mcl.chaos");
            chaos(&grid, &next)
        };
        m = next;
        if chaos < params.chaos_eps {
            break;
        }
    }

    // Clusters = connected components of the limit support; small enough
    // to resolve centrally, then identical everywhere by construction.
    let mine: Vec<(u64, u64)> = m
        .iter_local()
        .filter(|&(r, c, &v)| v > 0.0 && r != c)
        .map(|(r, c, _)| (r, c))
        .collect();
    let gathered = grid.world().gather(0, mine);
    let labels = gathered.map(|parts| {
        let edges = parts
            .into_iter()
            .flatten()
            .map(|(a, b)| (a as usize, b as usize));
        connected_components(n as usize, edges)
    });
    grid.world().bcast(0, labels)
}

/// Make every global column sum to one. Column sums are reduced along the
/// grid-column subcommunicator (whose ranks all hold blocks of the same
/// global column range).
fn normalize_columns(grid: &Grid, m: &mut DistMat<f64>) {
    let (c0, c1) = m.col_range();
    let mut sums = vec![0.0f64; (c1 - c0) as usize];
    for (_, c, &v) in m.iter_local() {
        sums[(c - c0) as usize] += v;
    }
    let sums = grid.col_comm().allreduce(sums, |a, b| {
        a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
    });
    let placeholder = DistMat::empty(Rc::clone(m.grid()), 0, 0);
    let src = std::mem::replace(m, placeholder);
    *m = src.map(|_, c, v| {
        let s = sums[(c - c0) as usize];
        if s > 0.0 {
            v / s
        } else {
            v
        }
    });
}

/// Global chaos: max over columns of (column max − column sum of squares),
/// zero exactly when every column is an indicator vector.
fn chaos(grid: &Grid, m: &DistMat<f64>) -> f64 {
    let (c0, c1) = m.col_range();
    let width = (c1 - c0) as usize;
    let mut maxv = vec![0.0f64; width];
    let mut sumsq = vec![0.0f64; width];
    for (_, c, &v) in m.iter_local() {
        let i = (c - c0) as usize;
        maxv[i] = maxv[i].max(v);
        sumsq[i] += v * v;
    }
    let maxv = grid.col_comm().allreduce(maxv, |a, b| {
        a.iter().zip(b.iter()).map(|(x, y)| x.max(*y)).collect()
    });
    let sumsq = grid.col_comm().allreduce(sumsq, |a, b| {
        a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
    });
    let local: f64 = maxv
        .iter()
        .zip(&sumsq)
        .map(|(mx, ss)| mx - ss)
        .fold(0.0, f64::max);
    grid.world().allreduce(local, f64::max)
}
