//! Union-find and connected components of an undirected edge list.

/// Disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

/// Component labels (0-based, dense, ordered by smallest member) for `n`
/// vertices under the given undirected edges. This is Table II's
/// "connected components as protein families".
pub fn connected_components(
    n: usize,
    edges: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    for (a, b) in edges {
        uf.union(a, b);
    }
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for v in 0..n {
        let r = uf.find(v);
        if label[r] == usize::MAX {
            label[r] = next;
            next += 1;
        }
        label[v] = label[r];
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_without_edges() {
        let l = connected_components(4, Vec::new());
        assert_eq!(l, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chain_merges() {
        let l = connected_components(5, vec![(0, 1), (1, 2), (3, 4)]);
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[3], l[4]);
        assert_ne!(l[0], l[3]);
    }

    #[test]
    fn labels_are_dense_and_start_at_zero() {
        let l = connected_components(6, vec![(4, 5)]);
        let mut sorted = l.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_and_self_edges() {
        let l = connected_components(3, vec![(0, 0), (0, 1), (1, 0), (0, 1)]);
        assert_eq!(l[0], l[1]);
        assert_ne!(l[0], l[2]);
    }

    #[test]
    fn union_returns_whether_merged() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.find(0), uf.find(2));
    }
}
