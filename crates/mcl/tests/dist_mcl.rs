//! Distributed Markov clustering: agreement with the shared-memory
//! implementation's partitions, grid-size obliviousness, and edge cases.

use std::rc::Rc;

use mcl::{markov_cluster, markov_cluster_dist, MclParams};
use pcomm::{Grid, World};

/// Two labelings describe the same partition?
fn same_partition(a: &[usize], b: &[usize]) -> bool {
    assert_eq!(a.len(), b.len());
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

fn params() -> MclParams {
    // Threshold-only pruning so shared and distributed agree exactly.
    MclParams {
        max_per_column: 0,
        ..Default::default()
    }
}

fn two_cliques() -> (usize, Vec<(u64, u64, f64)>) {
    let edges = vec![
        (0, 1, 1.0),
        (1, 2, 1.0),
        (0, 2, 1.0),
        (3, 4, 1.0),
        (4, 5, 1.0),
        (3, 5, 1.0),
        (2, 3, 0.05),
    ];
    (6, edges)
}

#[test]
fn matches_shared_memory_partition() {
    let (n, edges) = two_cliques();
    let shared_edges: Vec<(usize, usize, f64)> = edges
        .iter()
        .map(|&(a, b, w)| (a as usize, b as usize, w))
        .collect();
    let want = markov_cluster(n, &shared_edges, &params());
    for p in [1usize, 4, 9] {
        let got = World::run(p, |comm| {
            let grid = Rc::new(Grid::new(&comm));
            // Scatter edges round-robin across ranks.
            let mine: Vec<(u64, u64, f64)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % p == comm.rank())
                .map(|(_, &e)| e)
                .collect();
            markov_cluster_dist(grid, n as u64, mine, &params())
        })
        .remove(0);
        assert!(same_partition(&got, &want), "p={p}: {got:?} vs {want:?}");
    }
}

#[test]
fn identical_labels_on_every_rank_and_grid() {
    let (n, edges) = two_cliques();
    let reference = World::run(1, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        markov_cluster_dist(grid, n as u64, edges.clone(), &params())
    })
    .remove(0);
    for p in [4usize, 9] {
        let runs = World::run(p, |comm| {
            let grid = Rc::new(Grid::new(&comm));
            let mine: Vec<(u64, u64, f64)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % p == comm.rank())
                .map(|(_, &e)| e)
                .collect();
            markov_cluster_dist(grid, n as u64, mine, &params())
        });
        for labels in &runs {
            assert!(same_partition(labels, &reference), "p={p}");
            assert_eq!(labels, &runs[0], "ranks disagree at p={p}");
        }
    }
}

#[test]
fn cuts_the_weak_bridge() {
    let (n, edges) = two_cliques();
    let labels = World::run(4, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let mine = if comm.rank() == 0 {
            edges.clone()
        } else {
            Vec::new()
        };
        markov_cluster_dist(grid, n as u64, mine, &params())
    })
    .remove(0);
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[1], labels[2]);
    assert_eq!(labels[3], labels[4]);
    assert_ne!(labels[0], labels[3], "weak bridge not cut: {labels:?}");
}

#[test]
fn empty_and_singleton_graphs() {
    let labels = World::run(4, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        markov_cluster_dist(grid, 0, Vec::new(), &params())
    })
    .remove(0);
    assert!(labels.is_empty());

    let labels = World::run(4, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        markov_cluster_dist(grid, 5, Vec::new(), &params())
    })
    .remove(0);
    assert_eq!(labels, vec![0, 1, 2, 3, 4]);
}

#[test]
fn larger_random_graph_consistent_across_grids() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(23);
    let n = 40u64;
    // A few dense clusters plus noise edges.
    let mut edges = Vec::new();
    for c in 0..4u64 {
        let base = c * 10;
        for i in 0..10u64 {
            for j in i + 1..10 {
                if rng.random::<f64>() < 0.6 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        }
    }
    for _ in 0..6 {
        edges.push((rng.random_range(0..n), rng.random_range(0..n), 0.02));
    }
    let reference = World::run(1, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        markov_cluster_dist(grid, n, edges.clone(), &params())
    })
    .remove(0);
    let got = World::run(9, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let mine: Vec<(u64, u64, f64)> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 9 == comm.rank())
            .map(|(_, &e)| e)
            .collect();
        markov_cluster_dist(grid, n, mine, &params())
    })
    .remove(0);
    assert!(same_partition(&got, &reference));
}
