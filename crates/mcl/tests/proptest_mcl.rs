//! Property-based tests: clustering metrics stay in range, connected
//! components are a true equivalence relation, and MCL never merges
//! disconnected vertices.

use mcl::{connected_components, markov_cluster, weighted_precision_recall, MclParams};
use proptest::prelude::*;

fn edges_strategy(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cc_is_equivalence_with_edges_respected(edges in edges_strategy(30, 60)) {
        let labels = connected_components(30, edges.clone());
        prop_assert_eq!(labels.len(), 30);
        for (a, b) in edges {
            prop_assert_eq!(labels[a], labels[b]);
        }
        // Labels dense from 0.
        let mut distinct: Vec<usize> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let want: Vec<usize> = (0..distinct.len()).collect();
        prop_assert_eq!(distinct, want);
    }

    #[test]
    fn precision_recall_in_unit_interval(
        clusters in proptest::collection::vec(0usize..8, 1..60),
        seed in 0u64..1000,
    ) {
        // Families: deterministic scramble of the cluster labels.
        let families: Vec<usize> =
            clusters.iter().enumerate().map(|(i, &c)| (c * 7 + i * seed as usize) % 5).collect();
        let (p, r) = weighted_precision_recall(&clusters, &families);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
        // Perfect self-comparison.
        let (ps, rs) = weighted_precision_recall(&clusters, &clusters);
        prop_assert_eq!((ps, rs), (1.0, 1.0));
    }

    #[test]
    fn refining_clusters_trades_recall_for_precision(
        families in proptest::collection::vec(0usize..4, 2..40),
    ) {
        // Singleton clustering has precision 1; one-big-cluster has recall 1.
        let n = families.len();
        let singletons: Vec<usize> = (0..n).collect();
        let lumped = vec![0usize; n];
        let (p1, _r1) = weighted_precision_recall(&singletons, &families);
        let (_p2, r2) = weighted_precision_recall(&lumped, &families);
        prop_assert_eq!(p1, 1.0);
        prop_assert_eq!(r2, 1.0);
    }

    #[test]
    fn mcl_respects_connectivity(edges in edges_strategy(20, 30)) {
        let weighted: Vec<(usize, usize, f64)> =
            edges.iter().map(|&(a, b)| (a, b, 1.0)).collect();
        let labels = markov_cluster(20, &weighted, &MclParams::default());
        let cc = connected_components(20, edges);
        // MCL clusters are a refinement of connected components: same MCL
        // cluster ⇒ same component.
        for i in 0..20 {
            for j in 0..20 {
                if labels[i] == labels[j] {
                    prop_assert_eq!(cc[i], cc[j], "MCL merged across components: {} {}", i, j);
                }
            }
        }
    }
}
