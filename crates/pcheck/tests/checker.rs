//! End-to-end checker tests: drive real `pcomm` worlds into the failure
//! modes pcheck exists to diagnose and assert the diagnostics, and confirm
//! that legal-but-unusual patterns stay accepted.
//!
//! Every failing world here would previously either hang (unmatched recv,
//! misordered collectives) or die with an anonymous `Any` downcast panic.

use std::panic::AssertUnwindSafe;
use std::time::Duration;

use pcomm::{Comm, World, WorldBuilder};

/// Run a world expected to fail and return the panic message that
/// `World::run` re-raises (the checker's primary report, when one exists).
fn run_expect_panic<R, F>(builder: WorldBuilder, p: usize, f: F) -> String
where
    R: Send,
    F: Fn(Comm) -> R + Sync,
{
    let err = std::panic::catch_unwind(AssertUnwindSafe(|| builder.run(p, f)))
        .err()
        .expect("world was expected to fail");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&'static str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

fn checked(watchdog_ms: u64) -> WorldBuilder {
    WorldBuilder::new().checked(true).watchdog_ms(watchdog_ms)
}

#[test]
fn misordered_collective_fails_with_ledger_diff() {
    // Rank 1 swaps the order of a barrier and an allreduce — the classic
    // divergent-branch bug. The conformance ledger must catch it at entry
    // and print a side-by-side per-rank history instead of hanging.
    let msg = run_expect_panic(checked(400), 2, |comm| {
        if comm.rank() == 0 {
            comm.barrier();
            comm.allreduce(1u64, |a, b| a + b);
        } else {
            comm.allreduce(1u64, |a, b| a + b);
            comm.barrier();
        }
    });
    assert!(
        msg.starts_with("pcheck: "),
        "primary report expected: {msg}"
    );
    assert!(msg.contains("conformance violation"), "{msg}");
    assert!(msg.contains("barrier"), "{msg}");
    assert!(msg.contains("allreduce"), "{msg}");
    assert!(msg.contains("first divergence"), "{msg}");
    assert!(msg.contains("rank 0"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
}

#[test]
fn recv_with_no_sender_reports_deadlock_not_hang() {
    // Rank 0 waits for a message nobody will ever send. The watchdog must
    // turn the would-be infinite hang into a report naming the pending
    // receive (src, tag, type) and every rank's state.
    let msg = run_expect_panic(checked(150), 2, |comm| {
        if comm.rank() == 0 {
            let _ = comm.recv::<u64>(1, 7);
        }
    });
    assert!(msg.starts_with("pcheck: "), "{msg}");
    assert!(msg.contains("deadlock detected"), "{msg}");
    assert!(msg.contains("rank 0: blocked"), "{msg}");
    assert!(msg.contains("src=1"), "{msg}");
    assert!(msg.contains("tag=7"), "{msg}");
    assert!(msg.contains("u64"), "{msg}");
    assert!(msg.contains("rank 1: finalized"), "{msg}");
}

#[test]
fn mutual_recv_cycle_detected_while_other_rank_runs() {
    // Ranks 0 and 1 wait on each other (a true wait-for cycle) while rank 2
    // keeps itself busy. Cycle detection must fire even though the world as
    // a whole still shows activity.
    let msg = run_expect_panic(checked(120), 3, |comm| match comm.rank() {
        0 => {
            let _ = comm.recv::<u64>(1, 3);
        }
        1 => {
            let _ = comm.recv::<u64>(0, 4);
        }
        _ => std::thread::sleep(Duration::from_millis(600)),
    });
    assert!(msg.contains("deadlock detected"), "{msg}");
    assert!(msg.contains("wait-for cycle"), "{msg}");
    assert!(msg.contains("rank 0"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
}

#[test]
fn deadlock_report_lists_stashed_messages() {
    // Rank 1 sends on tag 9 but rank 0 listens on tag 8: the message lands
    // in the stash and the deadlock report must surface it — that mismatch
    // IS the bug, and seeing the near-miss is what makes it debuggable.
    let msg = run_expect_panic(checked(150), 2, |comm| {
        if comm.rank() == 0 {
            let _ = comm.recv::<u64>(1, 8);
        } else {
            comm.send(0, 9, 42u64);
        }
    });
    assert!(msg.contains("deadlock detected"), "{msg}");
    assert!(msg.contains("undelivered messages"), "{msg}");
    assert!(msg.contains("tag 9"), "{msg}");
    assert!(msg.contains("rank 0 <- rank 1"), "{msg}");
}

#[test]
fn finalize_audits_unreceived_messages() {
    // Every send must be matched by a receive; three forgotten messages
    // must show up in the finalize verdict with full addressing and sizes.
    let msg = run_expect_panic(checked(400), 2, |comm| {
        if comm.rank() == 0 {
            for _ in 0..3 {
                comm.send(1, 9, vec![1u64, 2, 3]);
            }
        }
    });
    assert!(msg.starts_with("pcheck: "), "{msg}");
    assert!(msg.contains("3 unreceived message(s)"), "{msg}");
    assert!(msg.contains("rank 0 -> rank 1"), "{msg}");
    assert!(msg.contains("tag 9"), "{msg}");
    assert!(msg.contains("u64"), "{msg}");
    assert!(msg.contains("96 bytes"), "{msg}");
}

#[test]
fn type_mismatch_names_source_tag_and_types() {
    let msg = run_expect_panic(checked(400), 2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, String::from("hello"));
        } else {
            let _ = comm.recv::<u64>(0, 5);
        }
    });
    assert!(msg.contains("payload type mismatch"), "{msg}");
    assert!(msg.contains("world rank 0"), "{msg}");
    assert!(msg.contains("tag 5"), "{msg}");
    assert!(msg.contains("expected u64"), "{msg}");
    assert!(msg.contains("String"), "{msg}");
}

#[test]
fn alltoallv_rejects_wrong_part_count() {
    let msg = run_expect_panic(checked(150), 2, |comm| {
        if comm.rank() == 0 {
            // One part on a two-rank communicator: shape bug, not a hang.
            comm.alltoallv(vec![vec![1u32]])
        } else {
            comm.alltoallv(vec![vec![2u32], vec![3u32]])
        }
    });
    assert!(
        msg.contains("one part per destination rank"),
        "expected the alltoallv shape panic, got: {msg}"
    );
    assert!(msg.contains("got 1 part(s)"), "{msg}");
    assert!(msg.contains("size 2"), "{msg}");
}

#[test]
fn count_mismatch_at_finalize_is_reported() {
    // Rank 0 runs one extra allreduce right before exiting. No rank blocks
    // (the tree send is buffered), so only the finalize audit can see it.
    let msg = run_expect_panic(checked(400), 4, |comm| {
        comm.barrier();
        if comm.rank() == 3 {
            // Rank 3 is a leaf of the reduce tree: its lone stray `reduce`
            // only performs a buffered send, so nothing blocks and only the
            // finalize audit can see the divergence.
            comm.reduce(0, 1u64, |a, b| a + b);
        }
    });
    assert!(msg.starts_with("pcheck: "), "{msg}");
    assert!(
        msg.contains("count mismatch") || msg.contains("unreceived"),
        "{msg}"
    );
}

#[test]
fn per_rank_subcomm_groups_are_legal() {
    // Singleton subcomms with per-rank member lists are an accepted pattern
    // (documented on `Comm::subcomm`); the ledger must not flag them.
    let results = checked(400).run(4, |comm| {
        let solo = comm.subcomm(&[comm.rank()]).expect("member of own group");
        solo.allreduce(comm.rank() as u64, |a, b| a + b)
    });
    assert_eq!(results, vec![0, 1, 2, 3]);
}

#[test]
fn asymmetric_alltoallv_counts_are_legal() {
    // Per-destination part sizes legitimately differ across ranks.
    let results = checked(400).run(2, |comm| {
        let parts = if comm.rank() == 0 {
            vec![vec![], vec![1u64, 2, 3]]
        } else {
            vec![vec![9u64], vec![]]
        };
        let got = comm.alltoallv(parts);
        got.into_iter().flatten().sum::<u64>()
    });
    assert_eq!(results, vec![9, 6]);
}

#[test]
fn clean_world_passes_checked_and_perturbed() {
    // A correct mixed p2p + collective program must be accepted and produce
    // identical results under different perturbation seeds.
    let gold = run_mixed(&WorldBuilder::new().checked(true));
    for seed in [1u64, 7, 1234] {
        let got = run_mixed(&WorldBuilder::new().perturb(seed));
        assert_eq!(got, gold, "seed {seed} diverged");
    }
}

fn run_mixed(builder: &WorldBuilder) -> Vec<u64> {
    builder.clone().watchdog_ms(1500).run(4, |comm| {
        let me = comm.rank();
        let p = comm.size();
        comm.send((me + 1) % p, 1, me as u64);
        let from_left = comm.recv::<u64>((me + p - 1) % p, 1);
        let sum = comm.allreduce(from_left, |a, b| a + b);
        let parts: Vec<Vec<u64>> = (0..p).map(|d| vec![(me * p + d) as u64]).collect();
        let shuffled = comm.alltoallv(parts);
        comm.barrier();
        let gathered = comm.allgather(shuffled.into_iter().flatten().sum::<u64>());
        sum + gathered.iter().sum::<u64>() + comm.exscan(1u64, |a, b| a + b).unwrap_or(0)
    })
}

#[test]
fn unchecked_mode_still_panics_on_type_mismatch() {
    // The named mismatch panic is part of the runtime, not the checker.
    // One-directional on purpose: in unchecked mode there is no watchdog, so
    // no rank may end up waiting on the panicking one.
    let msg = run_expect_panic(WorldBuilder::new().checked(false), 2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, 1.5f64);
        } else {
            let _ = comm.recv::<u32>(0, 5);
        }
    });
    assert!(msg.contains("payload type mismatch"), "{msg}");
    assert!(msg.contains("expected u32"), "{msg}");
    assert!(msg.contains("f64"), "{msg}");
}

#[test]
fn world_run_defaults_are_sane() {
    // `World::run` must stay a drop-in front door (checked under debug
    // assertions, plain otherwise) — the whole existing test suite runs
    // through it, so a smoke check here suffices.
    let sums = World::run(3, |comm| comm.allreduce(1u32, |a, b| a + b));
    assert_eq!(sums, vec![3, 3, 3]);
}
