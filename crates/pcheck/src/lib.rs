//! `pcheck` — runtime verification for the `pcomm` message-passing runtime.
//!
//! MPI programs that violate the collectives contract or leave a receive
//! unmatched typically *hang*, and a hang at p ranks is the least debuggable
//! failure mode a distributed pipeline has. This crate gives the in-process
//! runtime the checks an MPI developer would reach to MUST or `mpirun
//! --timeout` for, but built into the runtime itself:
//!
//! - **Collective-conformance ledger** ([`CheckShared::record_collective`]):
//!   every rank records each top-level collective (kind, root, payload type,
//!   per-kind detail) at entry; the first rank to reach a sequence number
//!   sets the canonical record and later ranks must conform, else the world
//!   aborts with a side-by-side per-rank ledger diff ([`ledger_diff`]).
//! - **Deadlock watchdog** ([`CheckShared::deadlock_scan`]): blocked
//!   receives register in a wait-for graph; a double-snapshot scan detects
//!   all-blocked worlds and wait-for cycles and aborts with each rank's
//!   pending operation plus every undelivered message sitting in stashes.
//! - **Finalize audit** ([`CheckShared::try_verdict`]): at `World` exit,
//!   per-communicator collective counts must agree and no sent message may
//!   remain unreceived; leaks are reported as (src, dst, tag, type, bytes).
//! - **Schedule perturbation** ([`Perturb`]): a seeded mode injecting yields
//!   and drain-first mailbox polling, used by a property test to assert the
//!   pipeline's output is bit-identical across seeds and rank counts.
//!
//! The crate is `std`-only and dependency-free; `pcomm` calls into it from
//! its send/recv/collective paths when checked mode is on (default under
//! `cfg(debug_assertions)`, overridable via `PCHECK=0|1` or
//! `WorldBuilder::checked`). Disabled mode is a handful of `Option::None`
//! branches on the hot path — within noise in release benchmarks.

mod ledger;
mod perturb;
mod shared;

pub use ledger::{history_push, ledger_diff, CollKind, CollRecord, History, HISTORY_CAP};
pub use perturb::{Perturb, SplitMix64};
pub use shared::{CheckShared, LeakRecord, RankState, WaitInfo, PRIMARY_PREFIX, SECONDARY_PREFIX};

/// Parse a boolean-ish environment variable: `0`, `false`, `off`, and the
/// empty string are false; anything else set is true; unset is `None`.
pub fn env_flag(name: &str) -> Option<bool> {
    match std::env::var(name) {
        Err(_) => None,
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            Some(!(v.is_empty() || v == "0" || v == "false" || v == "off"))
        }
    }
}

/// Parse an unsigned integer environment variable; unset or malformed is
/// `None` (malformed values are ignored rather than fatal — the checker
/// must never turn a working run into a failing one by itself).
pub fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_flag_parses() {
        // Env mutation is process-global: keep all cases in one test and
        // restore. Safe here because these names are test-only.
        let name = "PCHECK_TEST_FLAG_XYZ";
        assert_eq!(env_flag(name), None);
        for (v, want) in [
            ("1", true),
            ("true", true),
            ("on", true),
            ("0", false),
            ("false", false),
            ("off", false),
            ("", false),
        ] {
            std::env::set_var(name, v);
            assert_eq!(env_flag(name), Some(want), "value {v:?}");
        }
        std::env::remove_var(name);
    }

    #[test]
    fn env_u64_parses() {
        let name = "PCHECK_TEST_U64_XYZ";
        assert_eq!(env_u64(name), None);
        std::env::set_var(name, "1500");
        assert_eq!(env_u64(name), Some(1500));
        std::env::set_var(name, "nope");
        assert_eq!(env_u64(name), None);
        std::env::remove_var(name);
    }
}
