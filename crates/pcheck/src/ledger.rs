//! Collective-conformance ledger records.
//!
//! The MPI contract the runtime documents ("all ranks of a communicator
//! call collectives in the same order") is enforced eagerly: each rank
//! records every top-level collective *at entry*, before any message of its
//! implementation is sent. The first rank to reach sequence number `s` on a
//! communicator sets the canonical record; every later rank compares its
//! own record against it and fails with a side-by-side ledger diff on
//! mismatch — instead of the tag collision or type confusion the divergence
//! would otherwise decay into, usually as an unexplained hang.

use std::any::TypeId;
use std::collections::VecDeque;

/// Which collective a ledger entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    Barrier,
    Bcast,
    Ibcast,
    Reduce,
    Allreduce,
    Gather,
    Allgather,
    Alltoallv,
    Exscan,
    Subcomm,
    Split,
}

impl CollKind {
    /// Lower-case operation name as printed in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CollKind::Barrier => "barrier",
            CollKind::Bcast => "bcast",
            CollKind::Ibcast => "ibcast",
            CollKind::Reduce => "reduce",
            CollKind::Allreduce => "allreduce",
            CollKind::Gather => "gather",
            CollKind::Allgather => "allgather",
            CollKind::Alltoallv => "alltoallv",
            CollKind::Exscan => "exscan",
            CollKind::Subcomm => "subcomm",
            CollKind::Split => "split",
        }
    }
}

/// What one rank recorded for one top-level collective call.
#[derive(Debug, Clone, PartialEq)]
pub struct CollRecord {
    pub kind: CollKind,
    /// Root rank (communicator-relative) for rooted collectives.
    pub root: Option<usize>,
    /// Payload type, when the collective carries one.
    pub type_id: Option<TypeId>,
    /// Human-readable payload type name for diagnostics.
    pub type_name: Option<&'static str>,
    /// Kind-specific detail, shown in diagnostics but exempt from the
    /// conformance comparison: per-destination element counts for
    /// `alltoallv` (they legitimately differ across ranks) and the member
    /// list for `subcomm` (per-rank singleton groups are an accepted
    /// pattern — traffic separation comes from the derived comm ids).
    pub detail: Vec<usize>,
}

impl CollRecord {
    /// Cross-rank conformance: ranks must agree on the operation kind, the
    /// root, and the payload type. `detail` is diagnostic only.
    pub fn conforms(&self, other: &CollRecord) -> bool {
        self.kind == other.kind && self.root == other.root && self.type_id == other.type_id
    }

    /// One-line rendering for ledger tails and diffs.
    pub fn summary(&self) -> String {
        let mut s = String::from(self.kind.name());
        let mut args: Vec<String> = Vec::new();
        if let Some(r) = self.root {
            args.push(format!("root={r}"));
        }
        if let Some(t) = self.type_name {
            args.push(t.to_string());
        }
        if !self.detail.is_empty() {
            let shown: Vec<String> = self.detail.iter().take(8).map(|d| d.to_string()).collect();
            let ell = if self.detail.len() > 8 { ", …" } else { "" };
            args.push(format!("detail=[{}{}]", shown.join(", "), ell));
        }
        if !args.is_empty() {
            s.push('(');
            s.push_str(&args.join(", "));
            s.push(')');
        }
        s
    }
}

/// How many recent ledger entries each rank keeps for diff rendering.
pub const HISTORY_CAP: usize = 64;

/// Bounded per-rank history of `(comm, seq, summary)` ledger lines.
pub type History = VecDeque<(u64, u64, String)>;

/// Push an entry into a bounded history.
pub fn history_push(h: &mut History, comm: u64, seq: u64, summary: String) {
    if h.len() == HISTORY_CAP {
        h.pop_front();
    }
    h.push_back((comm, seq, summary));
}

/// Render the tails of two ranks' ledgers for one communicator side by
/// side, marking the diverging sequence number.
pub fn ledger_diff(
    comm: u64,
    diverged_at: u64,
    (rank_a, hist_a): (usize, &History),
    (rank_b, hist_b): (usize, &History),
) -> String {
    let column = |h: &History| -> Vec<(u64, String)> {
        h.iter()
            .filter(|&&(c, _, _)| c == comm)
            .map(|(_, s, line)| (*s, line.clone()))
            .collect()
    };
    let (col_a, col_b) = (column(hist_a), column(hist_b));
    let mut seqs: Vec<u64> = col_a.iter().chain(&col_b).map(|&(s, _)| s).collect();
    seqs.sort_unstable();
    seqs.dedup();
    let lookup = |col: &[(u64, String)], s: u64| -> String {
        col.iter()
            .find(|&&(q, _)| q == s)
            .map(|(_, l)| l.clone())
            .unwrap_or_else(|| "·".to_string())
    };
    let head_a = format!("rank {rank_a}");
    let width = seqs
        .iter()
        .map(|&s| lookup(&col_a, s).len())
        .chain([head_a.len()])
        .max()
        .unwrap_or(8)
        .max(8);
    let mut out = format!(
        "  per-rank ledger tail (comm {comm:#x}):\n    {:>4}  {:<width$}  rank {rank_b}\n",
        "seq", head_a
    );
    for s in seqs {
        let (a, b) = (lookup(&col_a, s), lookup(&col_b, s));
        let mark = if s == diverged_at {
            "   <-- first divergence"
        } else {
            ""
        };
        out.push_str(&format!("    {s:>4}  {a:<width$}  {b}{mark}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: CollKind, root: Option<usize>) -> CollRecord {
        CollRecord {
            kind,
            root,
            type_id: Some(TypeId::of::<u64>()),
            type_name: Some("u64"),
            detail: vec![],
        }
    }

    #[test]
    fn conformance_ignores_detail() {
        let mut a = rec(CollKind::Alltoallv, None);
        let mut b = rec(CollKind::Alltoallv, None);
        a.detail = vec![1, 2, 3];
        b.detail = vec![9, 0, 0];
        assert!(a.conforms(&b));
    }

    #[test]
    fn conformance_compares_kind_root_type() {
        let a = rec(CollKind::Bcast, Some(0));
        assert!(!a.conforms(&rec(CollKind::Bcast, Some(1))));
        assert!(!a.conforms(&rec(CollKind::Reduce, Some(0))));
        let mut c = rec(CollKind::Bcast, Some(0));
        c.type_id = Some(TypeId::of::<u32>());
        assert!(!a.conforms(&c));
        assert!(a.conforms(&rec(CollKind::Bcast, Some(0))));
    }

    #[test]
    fn summary_renders_args() {
        let mut r = rec(CollKind::Gather, Some(2));
        r.detail = vec![4, 5];
        assert_eq!(r.summary(), "gather(root=2, u64, detail=[4, 5])");
        let b = CollRecord {
            kind: CollKind::Barrier,
            root: None,
            type_id: None,
            type_name: None,
            detail: vec![],
        };
        assert_eq!(b.summary(), "barrier");
    }

    #[test]
    fn history_is_bounded() {
        let mut h = History::new();
        for i in 0..(HISTORY_CAP as u64 + 10) {
            history_push(&mut h, 0, i, format!("op{i}"));
        }
        assert_eq!(h.len(), HISTORY_CAP);
        assert_eq!(h.front().unwrap().1, 10);
    }

    #[test]
    fn diff_marks_divergence() {
        let mut a = History::new();
        let mut b = History::new();
        history_push(&mut a, 0, 0, "barrier".into());
        history_push(&mut b, 0, 0, "barrier".into());
        history_push(&mut a, 0, 1, "bcast(root=0, u64)".into());
        history_push(&mut b, 0, 1, "allreduce(u64)".into());
        let d = ledger_diff(0, 1, (0, &a), (3, &b));
        assert!(d.contains("first divergence"), "{d}");
        assert!(d.contains("bcast(root=0, u64)"), "{d}");
        assert!(d.contains("allreduce(u64)"), "{d}");
    }
}
