//! Cross-rank checker state: canonical collective records, rank wait
//! states, progress epochs, stash mirrors, and the finalize audit.
//!
//! One `CheckShared` is created per checked world and shared by every rank
//! thread through an `Arc`. All mutation goes through per-rank `Mutex`
//! slots (written by the owning rank, read by whichever blocked rank runs
//! the watchdog scan), so the checker adds no lock contention to the hot
//! path beyond one canonical-map lock per *collective* — point-to-point
//! sends and stash-hit receives touch only this rank's own slots.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use crate::ledger::{history_push, ledger_diff, CollRecord, History};

/// Marker prefix of the one diagnostic that explains a failure. `World`
/// re-raises the panic carrying it in preference to secondary aborts.
pub const PRIMARY_PREFIX: &str = "pcheck: ";
/// Marker prefix of follow-on panics on ranks that merely observed the
/// abort flag; never the root cause.
pub const SECONDARY_PREFIX: &str = "pcheck-abort: ";

/// What a rank thread is doing, as seen by the watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankState {
    /// Executing user code (or between checker hook points).
    Running,
    /// Blocked in a mailbox wait.
    Blocked(WaitInfo),
    /// Returned from the rank closure; will never send again.
    Finalized,
    /// Panicked; will never send again.
    Dead,
}

/// The receive a blocked rank is parked on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitInfo {
    /// World rank whose message would release the wait.
    pub src: usize,
    pub comm: u64,
    pub tag: u64,
    /// Expected payload type.
    pub type_name: &'static str,
    /// `(collective name, comm, collective seq)` when the wait happens
    /// inside a collective's implementation.
    pub op: Option<(&'static str, u64, u64)>,
}

/// One unreceived message found at finalize, aggregated per
/// `(src, dst, comm, tag, type)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakRecord {
    pub src: usize,
    pub dst: usize,
    pub comm: u64,
    pub tag: u64,
    pub type_name: &'static str,
    pub bytes: u64,
    pub count: u64,
}

/// Per-rank stash mirror: `(comm, src, tag, type)` → `(count, bytes)`.
type StashMirror = HashMap<(u64, usize, u64, &'static str), (u64, u64)>;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A rank that panicked while holding a slot poisons it; the watchdog
    // must still be able to read the state to explain the failure.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Shared checker state for one world of `p` ranks.
pub struct CheckShared {
    p: usize,
    /// Tags at or above this bound belong to collectives (display only).
    coll_tag_base: u64,
    watchdog_ms: u64,
    tick_ms: u64,
    /// `(comm, seq)` → first recorder and its record.
    canon: Mutex<HashMap<(u64, u64), (usize, CollRecord)>>,
    /// Comm id → member world ranks (first recorder wins).
    members: Mutex<HashMap<u64, Vec<usize>>>,
    /// Comm id → human scope name ("world", "row1", "split", …), registered
    /// by the runtime at communicator creation (first registrar wins).
    comm_names: Mutex<HashMap<u64, String>>,
    /// Per-rank bounded ledger history for diff rendering.
    histories: Vec<Mutex<History>>,
    /// Per-rank `comm → collectives recorded` counts.
    counts: Vec<Mutex<HashMap<u64, u64>>>,
    states: Vec<Mutex<RankState>>,
    /// Bumped whenever a rank receives, stashes, or unblocks; the watchdog
    /// declares deadlock only over two identical snapshots one tick apart.
    progress: Vec<AtomicU64>,
    /// Mirror of each rank's out-of-order stash:
    /// `(comm, src, tag, type)` → `(count, bytes)`.
    stash: Vec<Mutex<StashMirror>>,
    leaks: Mutex<Vec<LeakRecord>>,
    aborted: AtomicBool,
    abort_reason: Mutex<Option<String>>,
    verdict: Mutex<Option<Result<(), String>>>,
}

impl CheckShared {
    pub fn new(p: usize, coll_tag_base: u64, watchdog_ms: u64) -> CheckShared {
        let watchdog_ms = watchdog_ms.max(20);
        CheckShared {
            p,
            coll_tag_base,
            watchdog_ms,
            tick_ms: (watchdog_ms / 4).clamp(5, 100),
            canon: Mutex::new(HashMap::new()),
            members: Mutex::new(HashMap::new()),
            comm_names: Mutex::new(HashMap::new()),
            histories: (0..p).map(|_| Mutex::new(History::new())).collect(),
            counts: (0..p).map(|_| Mutex::new(HashMap::new())).collect(),
            states: (0..p).map(|_| Mutex::new(RankState::Running)).collect(),
            progress: (0..p).map(|_| AtomicU64::new(0)).collect(),
            stash: (0..p).map(|_| Mutex::new(HashMap::new())).collect(),
            leaks: Mutex::new(Vec::new()),
            aborted: AtomicBool::new(false),
            abort_reason: Mutex::new(None),
            verdict: Mutex::new(None),
        }
    }

    /// Mailbox poll / watchdog granularity.
    pub fn tick_ms(&self) -> u64 {
        self.tick_ms
    }

    /// How long a rank must be blocked without global progress before the
    /// watchdog scans for deadlock.
    pub fn watchdog_ms(&self) -> u64 {
        self.watchdog_ms
    }

    fn tag_str(&self, tag: u64) -> String {
        if tag >= self.coll_tag_base {
            format!("coll+{}", tag - self.coll_tag_base)
        } else {
            tag.to_string()
        }
    }

    /// Register a human-readable scope name for a communicator id (the
    /// runtime calls this from `Comm::world` / `subcomm_named`). First
    /// registrar wins, so every member rank may call it redundantly.
    pub fn name_comm(&self, comm: u64, name: &str) {
        lock(&self.comm_names)
            .entry(comm)
            .or_insert_with(|| name.to_string());
    }

    /// Render a communicator for diagnostics: `comm 0x1234 (row1)` when a
    /// scope name was registered, bare `comm 0x1234` otherwise.
    fn comm_str(&self, comm: u64) -> String {
        match lock(&self.comm_names).get(&comm) {
            Some(name) => format!("comm {comm:#x} ({name})"),
            None => format!("comm {comm:#x}"),
        }
    }

    // ----- collective-conformance ledger -------------------------------

    /// Record rank `rank`'s `seq`-th top-level collective on `comm` and
    /// validate it against the canonical record. `Err` carries the full
    /// conformance report (already `PRIMARY_PREFIX`-marked).
    pub fn record_collective(
        &self,
        rank: usize,
        comm: u64,
        seq: u64,
        group: &[usize],
        rec: CollRecord,
    ) -> Result<(), String> {
        lock(&self.members)
            .entry(comm)
            .or_insert_with(|| group.to_vec());
        history_push(&mut lock(&self.histories[rank]), comm, seq, rec.summary());
        *lock(&self.counts[rank]).entry(comm).or_insert(0) += 1;
        let mut canon = lock(&self.canon);
        match canon.get(&(comm, seq)) {
            None => {
                canon.insert((comm, seq), (rank, rec));
                Ok(())
            }
            Some((first_rank, first)) if rec.conforms(first) => {
                let _ = first_rank;
                Ok(())
            }
            Some((first_rank, first)) => {
                let (first_rank, first) = (*first_rank, first.clone());
                drop(canon);
                let ha = lock(&self.histories[first_rank]).clone();
                let hb = lock(&self.histories[rank]).clone();
                Err(format!(
                    "{PRIMARY_PREFIX}collective conformance violation on comm {comm:#x} at \
                     collective seq {seq}:\n  rank {first_rank} recorded: {}\n  rank {rank} \
                     recorded: {}\n{}  every rank of a communicator must issue the same \
                     collectives in the same order (kind, root, payload type)",
                    first.summary(),
                    rec.summary(),
                    ledger_diff(comm, seq, (first_rank, &ha), (rank, &hb)),
                )) // caller aborts the world and panics with this report
            }
        }
    }

    /// Barrier-exit consistency: every member of `comm` entered (and so
    /// recorded) collective `seq` before any rank can leave the barrier, so
    /// a member whose count is still below `seq + 1` skipped a collective.
    pub fn barrier_check(
        &self,
        rank: usize,
        comm: u64,
        seq: u64,
        group: &[usize],
    ) -> Result<(), String> {
        for &m in group {
            let n = lock(&self.counts[m]).get(&comm).copied().unwrap_or(0);
            if n < seq + 1 {
                let ha = lock(&self.histories[rank]).clone();
                let hb = lock(&self.histories[m]).clone();
                return Err(format!(
                    "{PRIMARY_PREFIX}barrier ledger check failed on comm {comm:#x}: rank {m} \
                     has recorded only {n} collective(s) while rank {rank} exits the barrier \
                     at seq {seq} — rank {m} skipped a collective\n{}",
                    ledger_diff(comm, seq, (rank, &ha), (m, &hb)),
                ));
            }
        }
        Ok(())
    }

    // ----- wait-for graph ----------------------------------------------

    pub fn block_on(&self, rank: usize, w: WaitInfo) {
        *lock(&self.states[rank]) = RankState::Blocked(w);
    }

    pub fn unblock(&self, rank: usize) {
        *lock(&self.states[rank]) = RankState::Running;
        self.bump(rank);
    }

    /// Note forward progress (message received or stashed) on `rank`.
    pub fn bump(&self, rank: usize) {
        self.progress[rank].fetch_add(1, Ordering::Relaxed);
    }

    pub fn mark_dead(&self, rank: usize) {
        *lock(&self.states[rank]) = RankState::Dead;
        self.bump(rank);
    }

    pub fn finalize_rank(&self, rank: usize) {
        *lock(&self.states[rank]) = RankState::Finalized;
        self.bump(rank);
    }

    fn snapshot(&self) -> Vec<(RankState, u64)> {
        (0..self.p)
            .map(|r| {
                (
                    lock(&self.states[r]).clone(),
                    self.progress[r].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Wait-for cycle among blocked ranks, if any: each blocked rank has
    /// exactly one outgoing edge (to the rank whose message it awaits), so
    /// cycles fall out of a successor walk.
    fn find_cycle(snap: &[(RankState, u64)]) -> Option<Vec<usize>> {
        let succ = |r: usize| -> Option<usize> {
            match &snap[r].0 {
                RankState::Blocked(w) => Some(w.src),
                _ => None,
            }
        };
        for start in 0..snap.len() {
            if succ(start).is_none() {
                continue;
            }
            let mut path = vec![start];
            let mut cur = start;
            loop {
                match succ(cur) {
                    None => break,
                    Some(next) => {
                        if let Some(pos) = path.iter().position(|&r| r == next) {
                            return Some(path[pos..].to_vec());
                        }
                        path.push(next);
                        cur = next;
                    }
                }
            }
        }
        None
    }

    /// True when no rank can ever make progress again: nobody is running
    /// and at least one rank is parked on a receive.
    fn all_blocked(snap: &[(RankState, u64)]) -> bool {
        snap.iter().all(|(s, _)| !matches!(s, RankState::Running))
            && snap.iter().any(|(s, _)| matches!(s, RankState::Blocked(_)))
    }

    /// Double-snapshot deadlock scan, run by a blocked rank once it has
    /// been parked past the watchdog threshold. Returns the report to abort
    /// with, or `None` when the world can still make progress.
    ///
    /// A blocked rank can only be released by a message from the rank it
    /// waits on (matching is by source), so a wait-for cycle among blocked
    /// ranks is a true deadlock even while unrelated ranks keep computing;
    /// the no-progress recheck one tick later closes the window where the
    /// releasing message is still in flight.
    pub fn deadlock_scan(&self) -> Option<String> {
        let s1 = self.snapshot();
        let all1 = Self::all_blocked(&s1);
        let cyc1 = Self::find_cycle(&s1);
        if !all1 && cyc1.is_none() {
            return None;
        }
        std::thread::sleep(Duration::from_millis(self.tick_ms));
        let s2 = self.snapshot();
        if all1 && Self::all_blocked(&s2) && s1 == s2 {
            return Some(self.deadlock_report(&s2, None));
        }
        if let Some(cycle) = cyc1 {
            let stable = cycle.iter().all(|&r| s1[r] == s2[r]);
            if stable && Self::find_cycle(&s2).is_some() {
                return Some(self.deadlock_report(&s2, Some(cycle)));
            }
        }
        None
    }

    fn deadlock_report(&self, snap: &[(RankState, u64)], cycle: Option<Vec<usize>>) -> String {
        let dead = snap.iter().any(|(s, _)| matches!(s, RankState::Dead));
        // A world wedged behind a panicked rank is reported as secondary so
        // the original panic stays the headline error.
        let prefix = if dead {
            SECONDARY_PREFIX
        } else {
            PRIMARY_PREFIX
        };
        let mut out = format!(
            "{prefix}deadlock detected: no progress across two watchdog scans \
             ({} ms apart)\n  rank states:\n",
            self.tick_ms
        );
        for (r, (s, _)) in snap.iter().enumerate() {
            let line = match s {
                RankState::Running => "running".to_string(),
                RankState::Finalized => "finalized".to_string(),
                RankState::Dead => "dead (panicked)".to_string(),
                RankState::Blocked(w) => {
                    let ctx = match w.op {
                        Some((name, comm, seq)) => {
                            format!("in {name} ({}, seq {seq}) ", self.comm_str(comm))
                        }
                        None => String::new(),
                    };
                    format!(
                        "blocked {ctx}waiting on recv(src={}, tag={}, type={}) on {}",
                        w.src,
                        self.tag_str(w.tag),
                        w.type_name,
                        self.comm_str(w.comm)
                    )
                }
            };
            out.push_str(&format!("    rank {r}: {line}\n"));
        }
        if let Some(c) = cycle {
            let chain: Vec<String> = c.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!(
                "  wait-for cycle: {} -> {}\n",
                chain.join(" -> "),
                c[0]
            ));
        }
        out.push_str(&self.stash_dump());
        out
    }

    fn stash_dump(&self) -> String {
        let mut lines = Vec::new();
        for dst in 0..self.p {
            let m = lock(&self.stash[dst]);
            for (&(comm, src, tag, ty), &(count, bytes)) in m.iter() {
                lines.push(format!(
                    "    rank {dst} <- rank {src}  {} tag {} type {ty}: \
                     {count} msg(s), {bytes} bytes",
                    self.comm_str(comm),
                    self.tag_str(tag)
                ));
            }
        }
        if lines.is_empty() {
            "  no undelivered messages stashed\n".to_string()
        } else {
            lines.sort();
            format!("  undelivered messages in stashes:\n{}\n", lines.join("\n"))
        }
    }

    // ----- abort flag ---------------------------------------------------

    /// Install `report` as the world's abort reason (first writer wins) and
    /// return the message the calling rank should panic with.
    pub fn abort_with(&self, report: String) -> String {
        let mut reason = lock(&self.abort_reason);
        if reason.is_none() {
            *reason = Some(report.clone());
            self.aborted.store(true, Ordering::SeqCst);
            report
        } else {
            format!("{SECONDARY_PREFIX}world aborted by another rank (see primary report)")
        }
    }

    /// Secondary panic message when another rank has aborted the world.
    pub fn abort_message(&self) -> Option<String> {
        if self.aborted.load(Ordering::SeqCst) {
            Some(format!(
                "{SECONDARY_PREFIX}world aborted by another rank (see primary report)"
            ))
        } else {
            None
        }
    }

    // ----- stash mirror and finalize audit ------------------------------

    pub fn stash_push(
        &self,
        dst: usize,
        comm: u64,
        src: usize,
        tag: u64,
        ty: &'static str,
        bytes: u64,
    ) {
        let mut m = lock(&self.stash[dst]);
        let e = m.entry((comm, src, tag, ty)).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    }

    pub fn stash_pop(
        &self,
        dst: usize,
        comm: u64,
        src: usize,
        tag: u64,
        ty: &'static str,
        bytes: u64,
    ) {
        let mut m = lock(&self.stash[dst]);
        if let Some(e) = m.get_mut(&(comm, src, tag, ty)) {
            e.0 = e.0.saturating_sub(1);
            e.1 = e.1.saturating_sub(bytes);
            if e.0 == 0 {
                m.remove(&(comm, src, tag, ty));
            }
        }
    }

    /// Report one unreceived message found while finalizing `dst`'s stash.
    pub fn report_leak(&self, rec: LeakRecord) {
        let mut leaks = lock(&self.leaks);
        if let Some(e) = leaks.iter_mut().find(|l| {
            (l.src, l.dst, l.comm, l.tag, l.type_name)
                == (rec.src, rec.dst, rec.comm, rec.tag, rec.type_name)
        }) {
            e.count += rec.count;
            e.bytes += rec.bytes;
        } else {
            leaks.push(rec);
        }
    }

    /// Compute (once) and return the finalize verdict, or `None` while some
    /// rank is still running or blocked. Every finalized rank polls this;
    /// whichever arrives after the last rank finishes performs the audit.
    pub fn try_verdict(&self) -> Option<Result<(), String>> {
        let mut v = lock(&self.verdict);
        if let Some(r) = &*v {
            return Some(r.clone());
        }
        let snap = self.snapshot();
        if !snap
            .iter()
            .all(|(s, _)| matches!(s, RankState::Finalized | RankState::Dead))
        {
            return None;
        }
        let r = self.compute_verdict(&snap);
        *v = Some(r.clone());
        if r.is_err() {
            self.aborted.store(true, Ordering::SeqCst);
        }
        Some(r)
    }

    fn compute_verdict(&self, snap: &[(RankState, u64)]) -> Result<(), String> {
        if let Some(dead) = snap.iter().position(|(s, _)| matches!(s, RankState::Dead)) {
            // The dead rank's own panic is the primary error.
            return Err(format!(
                "{SECONDARY_PREFIX}world finalized after rank {dead} panicked"
            ));
        }
        // Collective-count conformance: all members of a communicator must
        // have recorded the same number of collectives on it.
        let members = lock(&self.members).clone();
        for (comm, group) in members {
            let counts: Vec<(usize, u64)> = group
                .iter()
                .map(|&m| (m, lock(&self.counts[m]).get(&comm).copied().unwrap_or(0)))
                .collect();
            let max = counts.iter().map(|&(_, n)| n).max().unwrap_or(0);
            if let Some(&(lo_rank, lo)) = counts.iter().find(|&&(_, n)| n != max) {
                let hi_rank = counts.iter().find(|&&(_, n)| n == max).unwrap().0;
                let ha = lock(&self.histories[hi_rank]).clone();
                let hb = lock(&self.histories[lo_rank]).clone();
                return Err(format!(
                    "{PRIMARY_PREFIX}collective count mismatch at finalize on {}: \
                     rank {hi_rank} recorded {max} collective(s), rank {lo_rank} recorded {lo}\n{}",
                    self.comm_str(comm),
                    ledger_diff(comm, lo, (hi_rank, &ha), (lo_rank, &hb)),
                ));
            }
        }
        // Stash-leak audit: every sent message must have been received.
        let leaks = lock(&self.leaks);
        if !leaks.is_empty() {
            let mut lines: Vec<String> = leaks
                .iter()
                .map(|l| {
                    format!(
                        "    rank {} -> rank {}  {} tag {} type {}: {} msg(s), {} bytes",
                        l.src,
                        l.dst,
                        self.comm_str(l.comm),
                        self.tag_str(l.tag),
                        l.type_name,
                        l.count,
                        l.bytes
                    )
                })
                .collect();
            lines.sort();
            return Err(format!(
                "{PRIMARY_PREFIX}{} unreceived message(s) left in rank stashes at finalize \
                 (every send must be matched by a receive):\n{}",
                leaks.iter().map(|l| l.count).sum::<u64>(),
                lines.join("\n")
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::CollKind;
    use std::any::TypeId;

    fn rec(kind: CollKind) -> CollRecord {
        CollRecord {
            kind,
            root: None,
            type_id: Some(TypeId::of::<u64>()),
            type_name: Some("u64"),
            detail: vec![],
        }
    }

    fn wait(src: usize, tag: u64) -> WaitInfo {
        WaitInfo {
            src,
            comm: 0,
            tag,
            type_name: "u64",
            op: None,
        }
    }

    #[test]
    fn canonical_record_accepts_conforming_ranks() {
        let s = CheckShared::new(2, 1 << 30, 100);
        s.record_collective(0, 0, 0, &[0, 1], rec(CollKind::Allreduce))
            .unwrap();
        s.record_collective(1, 0, 0, &[0, 1], rec(CollKind::Allreduce))
            .unwrap();
    }

    #[test]
    fn mismatched_record_produces_diff() {
        let s = CheckShared::new(2, 1 << 30, 100);
        s.record_collective(0, 0, 0, &[0, 1], rec(CollKind::Barrier))
            .unwrap();
        let err = s
            .record_collective(1, 0, 0, &[0, 1], rec(CollKind::Allreduce))
            .unwrap_err();
        assert!(err.starts_with(PRIMARY_PREFIX), "{err}");
        assert!(err.contains("barrier"), "{err}");
        assert!(err.contains("allreduce"), "{err}");
        assert!(err.contains("first divergence"), "{err}");
    }

    #[test]
    fn barrier_check_flags_lagging_member() {
        let s = CheckShared::new(2, 1 << 30, 100);
        s.record_collective(0, 0, 0, &[0, 1], rec(CollKind::Barrier))
            .unwrap();
        let err = s.barrier_check(0, 0, 0, &[0, 1]).unwrap_err();
        assert!(err.contains("skipped a collective"), "{err}");
        s.record_collective(1, 0, 0, &[0, 1], rec(CollKind::Barrier))
            .unwrap();
        s.barrier_check(0, 0, 0, &[0, 1]).unwrap();
    }

    #[test]
    fn all_blocked_world_is_deadlock() {
        let s = CheckShared::new(2, 1 << 30, 40);
        s.finalize_rank(0);
        s.block_on(1, wait(0, 5));
        let report = s.deadlock_scan().expect("deadlock must be detected");
        assert!(report.starts_with(PRIMARY_PREFIX), "{report}");
        assert!(report.contains("rank 1: blocked"), "{report}");
        assert!(report.contains("tag=5"), "{report}");
        assert!(report.contains("rank 0: finalized"), "{report}");
    }

    #[test]
    fn cycle_among_blocked_ranks_detected_despite_running_rank() {
        let s = CheckShared::new(3, 1 << 30, 40);
        s.block_on(0, wait(1, 7));
        s.block_on(1, wait(0, 8));
        // rank 2 stays Running: the cycle alone must be sufficient.
        let report = s.deadlock_scan().expect("cycle must be detected");
        assert!(report.contains("wait-for cycle"), "{report}");
        assert!(report.contains("rank 2: running"), "{report}");
    }

    #[test]
    fn progress_suppresses_deadlock() {
        let s = CheckShared::new(2, 1 << 30, 40);
        s.block_on(0, wait(1, 7));
        s.block_on(1, wait(0, 8));
        // Simulate a message landing between the two snapshots.
        let s2 = std::sync::Arc::new(s);
        let s3 = std::sync::Arc::clone(&s2);
        // Unit-test helper thread, not runtime machinery: xlint: allow(thread-spawn)
        let h = std::thread::Builder::new()
            .name("bumper".into())
            .spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                s3.bump(0);
            })
            .unwrap();
        let scan = s2.deadlock_scan();
        h.join().unwrap();
        assert!(scan.is_none(), "in-flight progress must veto the scan");
    }

    #[test]
    fn verdict_reports_leaks() {
        let s = CheckShared::new(1, 1 << 30, 100);
        s.report_leak(LeakRecord {
            src: 0,
            dst: 0,
            comm: 0,
            tag: 3,
            type_name: "u64",
            bytes: 8,
            count: 1,
        });
        s.report_leak(LeakRecord {
            src: 0,
            dst: 0,
            comm: 0,
            tag: 3,
            type_name: "u64",
            bytes: 8,
            count: 1,
        });
        s.finalize_rank(0);
        let v = s.try_verdict().unwrap().unwrap_err();
        assert!(v.contains("2 unreceived"), "{v}");
        assert!(v.contains("tag 3"), "{v}");
        assert!(v.contains("16 bytes"), "{v}");
    }

    #[test]
    fn verdict_reports_count_mismatch() {
        let s = CheckShared::new(2, 1 << 30, 100);
        s.record_collective(0, 0, 0, &[0, 1], rec(CollKind::Allreduce))
            .unwrap();
        s.record_collective(1, 0, 0, &[0, 1], rec(CollKind::Allreduce))
            .unwrap();
        s.record_collective(0, 0, 1, &[0, 1], rec(CollKind::Allreduce))
            .unwrap();
        s.finalize_rank(0);
        assert!(s.try_verdict().is_none(), "rank 1 still running");
        s.finalize_rank(1);
        let v = s.try_verdict().unwrap().unwrap_err();
        assert!(v.contains("count mismatch"), "{v}");
        assert!(v.contains("rank 0 recorded 2"), "{v}");
    }

    #[test]
    fn clean_world_verdict_is_ok() {
        let s = CheckShared::new(2, 1 << 30, 100);
        s.record_collective(0, 0, 0, &[0, 1], rec(CollKind::Barrier))
            .unwrap();
        s.record_collective(1, 0, 0, &[0, 1], rec(CollKind::Barrier))
            .unwrap();
        s.stash_push(0, 0, 1, 4, "u64", 8);
        s.stash_pop(0, 0, 1, 4, "u64", 8);
        s.finalize_rank(0);
        s.finalize_rank(1);
        assert_eq!(s.try_verdict(), Some(Ok(())));
    }

    #[test]
    fn comm_scope_names_render_in_reports() {
        let s = CheckShared::new(2, 1 << 30, 40);
        s.name_comm(0, "world");
        s.name_comm(0x5a5a, "row1");
        s.name_comm(0x5a5a, "col0"); // first registrar wins
        s.finalize_rank(0);
        let mut w = wait(0, 5);
        w.comm = 0x5a5a;
        s.block_on(1, w);
        let report = s.deadlock_scan().expect("deadlock must be detected");
        assert!(report.contains("comm 0x5a5a (row1)"), "{report}");
        s.report_leak(LeakRecord {
            src: 0,
            dst: 1,
            comm: 0,
            tag: 3,
            type_name: "u64",
            bytes: 8,
            count: 1,
        });
        s.finalize_rank(1);
        let v = s.try_verdict().unwrap().unwrap_err();
        assert!(v.contains("comm 0x0 (world)"), "{v}");
    }

    #[test]
    fn abort_is_first_writer_wins() {
        let s = CheckShared::new(1, 1 << 30, 100);
        assert!(s.abort_message().is_none());
        let first = s.abort_with(format!("{PRIMARY_PREFIX}boom"));
        assert!(first.starts_with(PRIMARY_PREFIX));
        let second = s.abort_with(format!("{PRIMARY_PREFIX}other"));
        assert!(second.starts_with(SECONDARY_PREFIX));
        assert!(s.abort_message().unwrap().starts_with(SECONDARY_PREFIX));
    }
}
