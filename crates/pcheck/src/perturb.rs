//! Seeded schedule perturbation.
//!
//! A deterministic per-rank RNG drives two perturbations of the runtime's
//! scheduling: extra yields / short sleeps at send, receive, and collective
//! entry points, and occasional drain-first mailbox polling (pull everything
//! out of the channel into the stash before matching). Both only reorder
//! *when* messages are observed, never *which* message matches a receive —
//! matching stays (src, tag)-keyed FIFO — so a correct program must produce
//! bit-identical results under every seed. The determinism proptest in the
//! pastis crate asserts exactly that.

/// SplitMix64: tiny, statistically solid, and dependency-free. Good enough
/// for schedule jitter; not a cryptographic RNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Per-rank perturbation state. Construct with the world seed and the
/// rank's world rank so every rank jitters differently but reproducibly.
#[derive(Debug)]
pub struct Perturb {
    rng: SplitMix64,
}

impl Perturb {
    pub fn new(seed: u64, rank: usize) -> Perturb {
        // Decorrelate ranks by folding the rank into the stream seed.
        let mut boot = SplitMix64::new(seed ^ 0xa076_1d64_78bd_642f);
        let mut s = boot.next_u64();
        for _ in 0..=rank {
            s = SplitMix64::new(s ^ (rank as u64)).next_u64();
        }
        Perturb {
            rng: SplitMix64::new(s),
        }
    }

    /// Called at send / recv / collective entry: sometimes yield, rarely
    /// sleep for a few hundred microseconds, usually do nothing.
    pub fn before_op(&mut self) {
        match self.rng.next_u64() % 16 {
            0..=3 => std::thread::yield_now(),
            4 => std::thread::sleep(std::time::Duration::from_micros(
                200 + self.rng.next_u64() % 400,
            )),
            _ => {}
        }
    }

    /// Biased coin for drain-first mailbox polling (~1 in 4).
    pub fn coin(&mut self) -> bool {
        self.rng.next_u64().is_multiple_of(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranks_get_distinct_streams() {
        let mut r0 = Perturb::new(7, 0);
        let mut r1 = Perturb::new(7, 1);
        let s0: Vec<u64> = (0..8).map(|_| r0.rng.next_u64()).collect();
        let s1: Vec<u64> = (0..8).map(|_| r1.rng.next_u64()).collect();
        assert_ne!(s0, s1);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Perturb::new(9, 3);
        let mut b = Perturb::new(9, 3);
        for _ in 0..32 {
            assert_eq!(a.coin(), b.coin());
            assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        }
    }
}
