//! Schema sanity for the Perfetto `traceEvents` export: the JSON must
//! round-trip through the crate's own parser, and the events must satisfy
//! the invariants the Perfetto UI relies on (metadata per track, complete
//! events with numeric ts/dur, pid = rank).

use obs::{perfetto_json, JsonValue, Recorder};

fn sample_traces() -> Vec<obs::RankTrace> {
    (0..4u32)
        .map(|rank| {
            std::thread::spawn(move || {
                let rec = Recorder::install(rank as usize);
                {
                    let _root = obs::span!("pastis.run");
                    for t in 0..3 {
                        let _s = obs::span!("summa.stage", stage = t);
                        obs::hist!("pcomm.msg_bytes", 1024 * (t + 1));
                    }
                    obs::counter!("align.batch.tasks", 7);
                }
                // A worker-track span, as align_batch emits.
                obs::emit_span(
                    "align.worker",
                    1,
                    10,
                    500,
                    obs::CounterSet {
                        work_ns: 400,
                        ..Default::default()
                    },
                    Some(("tasks", 7)),
                );
                rec.finish()
            })
            .join()
            .unwrap()
        })
        .collect()
}

#[test]
fn perfetto_json_round_trips_and_has_required_fields() {
    let traces = sample_traces();
    let json = perfetto_json(&traces);
    let doc = JsonValue::parse(&json).expect("export must be valid JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut ranks_with_process_name = std::collections::BTreeSet::new();
    let mut complete_events = 0usize;
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has ph");
        let pid = e
            .get("pid")
            .and_then(|v| v.as_u64())
            .expect("every event has numeric pid");
        assert!(
            e.get("tid").and_then(|v| v.as_u64()).is_some(),
            "numeric tid"
        );
        match ph {
            "M" => {
                if e.get("name").and_then(|v| v.as_str()) == Some("process_name") {
                    ranks_with_process_name.insert(pid);
                    let label = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|v| v.as_str())
                        .expect("process_name label");
                    assert_eq!(label, format!("rank {pid}"));
                }
            }
            "X" => {
                complete_events += 1;
                assert!(
                    e.get("ts").and_then(|v| v.as_f64()).is_some(),
                    "X event has ts"
                );
                let dur = e
                    .get("dur")
                    .and_then(|v| v.as_f64())
                    .expect("X event has dur");
                assert!(dur >= 0.0);
                assert!(e.get("name").and_then(|v| v.as_str()).is_some());
                // seq arg present: the deterministic ordering key.
                assert!(
                    e.get("args")
                        .and_then(|a| a.get("seq"))
                        .and_then(|v| v.as_u64())
                        .is_some(),
                    "X event carries its seq"
                );
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // One process-name metadata record per rank, pid = rank.
    assert_eq!(ranks_with_process_name, (0..4u64).collect());
    // 4 ranks × (1 root + 3 SUMMA stages + 1 worker) complete events.
    assert_eq!(complete_events, 4 * 5);

    // Round-trip: re-serializing the parsed document must parse again and
    // preserve the event count (writer and parser agree).
    let again = JsonValue::parse(&doc.to_string()).expect("round-trip parse");
    assert_eq!(
        again
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .map(|a| a.len()),
        Some(events.len())
    );
}

#[test]
fn worker_tracks_get_thread_names() {
    let traces = sample_traces();
    let json = perfetto_json(&traces);
    let doc = JsonValue::parse(&json).unwrap();
    let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    let thread_names: Vec<String> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("M")
                && e.get("name").and_then(|v| v.as_str()) == Some("thread_name")
                && e.get("pid").and_then(|v| v.as_u64()) == Some(0)
        })
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
        .collect();
    assert!(
        thread_names.contains(&"main".to_string()),
        "{thread_names:?}"
    );
    assert!(
        thread_names.contains(&"worker-1".to_string()),
        "{thread_names:?}"
    );
}
