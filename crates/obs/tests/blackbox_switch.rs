//! The process-wide flight-recorder switch: rings stay installed while
//! recording is off, and events resume when it comes back on. Lives in its
//! own integration binary because the switch is global — flipping it inside
//! the unit-test binary would race other blackbox tests.

use obs::blackbox;
use obs::BbKind;

#[test]
fn recording_switch_gates_events() {
    let guard = blackbox::install(0);
    blackbox::set_recording(false);
    blackbox::record(BbKind::Mark, "while_off", 1, 0);
    blackbox::set_recording(true);
    blackbox::record(BbKind::Mark, "while_on", 2, 0);
    let events = guard.finish();
    assert!(
        events.iter().all(|e| e.name != "while_off"),
        "event recorded while the switch was off"
    );
    assert!(
        events.iter().any(|e| e.name == "while_on"),
        "recording did not resume when switched back on"
    );
}
