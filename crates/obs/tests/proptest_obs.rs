//! Property tests for the metrics layer: histogram and snapshot merging
//! must be associative and commutative (ranks merge in arbitrary order —
//! e.g. along a reduction tree — and the result must not depend on it).

use obs::{Histogram, MetricsSnapshot};
use proptest::prelude::*;

fn hist_from(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Values spanning every bucket magnitude: `(b, x)` maps to 0 when `b == 0`
/// and otherwise to a value inside log₂ bucket `b` (from 1 up to ≥ 2⁶³).
fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u32..65, 0u64..u64::MAX).prop_map(|(b, x)| {
            if b == 0 {
                0
            } else {
                let lo = 1u64 << (b - 1);
                lo | (x & (lo - 1))
            }
        }),
        0..40,
    )
}

/// Snapshots over a 3-key space so merges collide on some keys and miss
/// others.
fn snapshots() -> impl Strategy<Value = MetricsSnapshot> {
    const KEYS: [&str; 3] = ["a", "b", "c"];
    let key = |k: u32| KEYS[k as usize].to_string();
    (
        proptest::collection::vec((0u32..3, 0u64..1 << 40), 0..4),
        proptest::collection::vec((0u32..3, -100i64..100), 0..4),
        proptest::collection::vec((0u32..3, values()), 0..3),
    )
        .prop_map(move |(c, g, h)| {
            let mut s = MetricsSnapshot::default();
            for (k, v) in c {
                *s.counters.entry(key(k)).or_insert(0) += v;
            }
            for (k, v) in g {
                s.gauges.insert(key(k), v);
            }
            for (k, v) in h {
                s.hists.entry(key(k)).or_default().merge(&hist_from(&v));
            }
            s
        })
}

fn merged_snap(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn histogram_merge_commutes(a in values(), b in values()) {
        let (ha, hb) = (hist_from(&a), hist_from(&b));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
    }

    #[test]
    fn histogram_merge_associates(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (hist_from(&a), hist_from(&b), hist_from(&c));
        prop_assert_eq!(
            merged(&merged(&ha, &hb), &hc),
            merged(&ha, &merged(&hb, &hc))
        );
    }

    #[test]
    fn histogram_merge_equals_concat(a in values(), b in values()) {
        // Merging two histograms is the same as one histogram over the
        // concatenated samples.
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged(&hist_from(&a), &hist_from(&b)), hist_from(&all));
    }

    #[test]
    fn snapshot_merge_commutes(a in snapshots(), b in snapshots()) {
        // Gauges merge by max, counters by sum, histograms bucketwise —
        // all symmetric.
        prop_assert_eq!(merged_snap(&a, &b), merged_snap(&b, &a));
    }

    #[test]
    fn snapshot_merge_associates(a in snapshots(), b in snapshots(), c in snapshots()) {
        prop_assert_eq!(
            merged_snap(&merged_snap(&a, &b), &c),
            merged_snap(&a, &merged_snap(&b, &c))
        );
    }

    #[test]
    fn quantiles_are_monotone(a in values()) {
        let h = hist_from(&a);
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        prop_assert!(q25 <= q50 && q50 <= q99, "{} {} {}", q25, q50, q99);
    }
}
