//! Allocation accounting: a tagging global allocator plus explicit
//! `HeapSize` watermark probes.
//!
//! The pipeline is memory-bound long before it is compute-bound (the
//! extreme-scale PASTIS successor exists because SpGEMM accumulators and
//! the PSG outgrow node RAM), so bytes get the same treatment as seconds:
//!
//! - **Tagging allocator** ([`TrackingAlloc`], installed as the workspace
//!   `#[global_allocator]`): every allocation is attributed to the
//!   *subsystem* of the innermost active span on the allocating thread
//!   (the span machinery maintains a per-thread current tag; see
//!   [`subsystem_id`]). Per-subsystem live bytes, peaks, and allocation
//!   counts live in global atomics sampled by [`stats`] and dumped into
//!   black-box files. Tracking is **default-on in debug, opt-in in
//!   release** via the `ALLOC_TRACK` env switch ([`init_from_env`]); while
//!   off, every path is a single relaxed load + branch over the system
//!   allocator.
//! - **Watermark probes** ([`HeapSize`], [`probe`]): big structures
//!   (sequence stores, SpGEMM accumulators, PSG triples, alignment
//!   scratch) report their heap footprint explicitly into max-merged
//!   gauges (`mem.watermark.*`), so release runs get deterministic
//!   watermarks for the scaling projector even with the allocator hook
//!   off.
//!
//! The allocator **never changes layouts or adds headers** — it forwards
//! every call to [`System`] unchanged and only bumps counters — so
//! toggling tracking at any point of the process lifetime is sound:
//! memory allocated while tracking was off is freed correctly while it is
//! on, and vice versa (such frees merely smear the per-subsystem live
//! counts, which is why peaks, not exact lives, are the reported
//! quantity).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering::Relaxed};

/// Subsystem tags allocations are attributed to, in tag order. The last
/// entry (`other`) absorbs untagged threads and unknown span prefixes.
pub const SUBSYSTEMS: [&str; 8] = [
    "pastis", "pcomm", "sparse", "align", "seqstore", "mcl", "bench", "other",
];

/// Number of subsystem tags.
pub const N_SUBSYSTEMS: usize = SUBSYSTEMS.len();

const OTHER: u8 = (N_SUBSYSTEMS - 1) as u8;

/// Map a span name to its subsystem tag by the prefix before the first
/// `.` — `summa.stage` and `spgemm` count as `sparse`, `fasta` as
/// `seqstore`, `obsperf` as `bench`; anything unknown lands in `other`.
pub fn subsystem_id(span_name: &str) -> u8 {
    let prefix = &span_name[..span_name.find('.').unwrap_or(span_name.len())];
    let idx = match prefix {
        "pastis" => 0,
        "pcomm" => 1,
        "sparse" | "summa" | "spgemm" => 2,
        "align" => 3,
        "seqstore" | "fasta" => 4,
        "mcl" => 5,
        "bench" | "obsperf" | "alnperf" => 6,
        _ => N_SUBSYSTEMS - 1,
    };
    idx as u8
}

// --- tracking switch -------------------------------------------------------

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Resolve the tracking switch from the environment if it has not been
/// set yet: `ALLOC_TRACK=1` forces on, `ALLOC_TRACK=0` forces off,
/// otherwise tracking defaults on under `debug_assertions` and off in
/// release. Called by `Recorder::install` (reading the environment
/// allocates, so the allocator itself can never do this — before the
/// first call every allocation simply forwards untracked).
pub fn init_from_env() {
    if STATE.load(Relaxed) != UNINIT {
        return;
    }
    let on = match std::env::var("ALLOC_TRACK") {
        Ok(v) if v == "0" => false,
        Ok(v) if v == "1" => true,
        _ => cfg!(debug_assertions),
    };
    STATE.store(if on { ON } else { OFF }, Relaxed);
}

/// Force the tracking switch (tests and benchmark harnesses; overrides
/// any earlier [`init_from_env`] resolution).
pub fn set_tracking(on: bool) {
    STATE.store(if on { ON } else { OFF }, Relaxed);
}

/// True when allocation tracking is currently on.
pub fn tracking() -> bool {
    STATE.load(Relaxed) == ON
}

// --- per-thread tag --------------------------------------------------------

thread_local! {
    /// The subsystem of the innermost active span on this thread; spans
    /// save and restore it RAII-style. A plain `Cell` — the allocator
    /// reads it on every tracked allocation and must never risk a
    /// re-entrant `RefCell` borrow.
    static CUR_TAG: Cell<u8> = const { Cell::new(OTHER) };
}

/// Set the thread's subsystem tag, returning the previous one (span
/// entry). Crate-internal: the span guards are the only writers.
pub(crate) fn swap_tag(tag: u8) -> u8 {
    CUR_TAG.try_with(|c| c.replace(tag)).unwrap_or(OTHER)
}

/// Restore a previously swapped-out tag (span exit).
pub(crate) fn set_tag(tag: u8) {
    let _ = CUR_TAG.try_with(|c| c.set(tag));
}

fn cur_tag() -> usize {
    let t = CUR_TAG.try_with(|c| c.get()).unwrap_or(OTHER) as usize;
    t.min(N_SUBSYSTEMS - 1)
}

// --- global accounting -----------------------------------------------------

struct SubsysCounters {
    live: AtomicI64,
    peak: AtomicI64,
    win_peak: AtomicI64,
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
}

static PER: [SubsysCounters; N_SUBSYSTEMS] = [const {
    SubsysCounters {
        live: AtomicI64::new(0),
        peak: AtomicI64::new(0),
        win_peak: AtomicI64::new(0),
        allocs: AtomicU64::new(0),
        alloc_bytes: AtomicU64::new(0),
    }
}; N_SUBSYSTEMS];

static LIVE_TOTAL: AtomicI64 = AtomicI64::new(0);
static PEAK_TOTAL: AtomicI64 = AtomicI64::new(0);
static WIN_PEAK_TOTAL: AtomicI64 = AtomicI64::new(0);

fn note_alloc(size: usize) {
    let size = size as i64;
    let s = &PER[cur_tag()];
    let live = s.live.fetch_add(size, Relaxed) + size;
    s.peak.fetch_max(live, Relaxed);
    s.win_peak.fetch_max(live, Relaxed);
    s.allocs.fetch_add(1, Relaxed);
    s.alloc_bytes.fetch_add(size as u64, Relaxed);
    let total = LIVE_TOTAL.fetch_add(size, Relaxed) + size;
    PEAK_TOTAL.fetch_max(total, Relaxed);
    WIN_PEAK_TOTAL.fetch_max(total, Relaxed);
}

fn note_dealloc(size: usize) {
    let size = size as i64;
    // Frees are attributed to the *current* tag, which may differ from the
    // allocating one (a structure built under `pastis` freed under
    // `sparse`). Per-subsystem lives therefore smear across tags — peaks
    // are the reported quantity — while the process-wide total is exact.
    PER[cur_tag()].live.fetch_sub(size, Relaxed);
    LIVE_TOTAL.fetch_sub(size, Relaxed);
}

/// One subsystem's allocation counters at a sampling instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubsystemUsage {
    /// Live bytes currently attributed to the subsystem (clamped at zero:
    /// cross-subsystem frees can drive the raw counter negative).
    pub live_bytes: i64,
    /// High-water mark of the subsystem's live bytes.
    pub peak_bytes: i64,
    /// Allocation calls attributed to the subsystem.
    pub allocs: u64,
    /// Total bytes ever allocated under the subsystem's tag.
    pub alloc_bytes: u64,
}

/// A full sample of the allocator's accounting state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Whether tracking was on when the sample was taken (all counters
    /// read zero if it never was).
    pub tracking: bool,
    /// Per-subsystem counters, indexed like [`SUBSYSTEMS`].
    pub per: [SubsystemUsage; N_SUBSYSTEMS],
    /// Exact process-wide live bytes.
    pub live_total: i64,
    /// Exact process-wide high-water mark.
    pub peak_total: i64,
}

/// Sample the allocator's accounting state (racy across threads by
/// nature; each counter is individually consistent).
pub fn stats() -> AllocStats {
    let mut out = AllocStats {
        tracking: tracking(),
        live_total: LIVE_TOTAL.load(Relaxed),
        peak_total: PEAK_TOTAL.load(Relaxed),
        ..Default::default()
    };
    for (i, s) in PER.iter().enumerate() {
        out.per[i] = SubsystemUsage {
            live_bytes: s.live.load(Relaxed).max(0),
            peak_bytes: s.peak.load(Relaxed).max(0),
            allocs: s.allocs.load(Relaxed),
            alloc_bytes: s.alloc_bytes.load(Relaxed),
        };
    }
    out
}

/// Total allocation calls across all subsystems (the steady-state
/// zero-allocation tests' observable).
pub fn total_allocs() -> u64 {
    PER.iter().map(|s| s.allocs.load(Relaxed)).sum()
}

/// Per-subsystem peak live bytes observed since the last
/// [`begin_window`], plus the process-wide window peak.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowPeaks {
    /// Peak live bytes per subsystem within the window, indexed like
    /// [`SUBSYSTEMS`].
    pub per: [i64; N_SUBSYSTEMS],
    /// Process-wide peak live bytes within the window.
    pub total: i64,
}

/// Open a peak-sampling window: window peaks restart from the current
/// live values. The pipeline brackets each stage with a window so the
/// trace report can show per-stage peak live bytes by subsystem. Windows
/// are process-global — with several ranks allocating concurrently the
/// attribution is a cross-rank aggregate, which is exactly the per-node
/// quantity an out-of-core batch sizer budgets for.
pub fn begin_window() {
    for s in &PER {
        s.win_peak.store(s.live.load(Relaxed), Relaxed);
    }
    WIN_PEAK_TOTAL.store(LIVE_TOTAL.load(Relaxed), Relaxed);
}

/// Read the current window's peaks (see [`begin_window`]).
pub fn window_peaks() -> WindowPeaks {
    let mut out = WindowPeaks {
        total: WIN_PEAK_TOTAL.load(Relaxed).max(0),
        ..Default::default()
    };
    for (i, s) in PER.iter().enumerate() {
        out.per[i] = s.win_peak.load(Relaxed).max(0);
    }
    out
}

// --- the allocator ---------------------------------------------------------

/// The tagging global allocator: a layout-preserving pass-through to
/// [`System`] that, while tracking is on, attributes every allocation to
/// the current thread's subsystem tag. Installed once, in this module,
/// as the workspace's `#[global_allocator]` (the `alloc-confinement`
/// xlint rule keeps it that way).
pub struct TrackingAlloc;

// SAFETY: every method forwards the caller's pointer/layout to `System`
// unchanged and returns its result unchanged; the only additional work is
// relaxed atomic counter bumps, which allocate nothing and cannot
// observe or alter the allocation itself.
unsafe impl GlobalAlloc for TrackingAlloc {
    // SAFETY: pass-through; see the impl-level comment.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarding the caller's layout to the system allocator.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && STATE.load(Relaxed) == ON {
            note_alloc(layout.size());
        }
        p
    }

    // SAFETY: pass-through; see the impl-level comment.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarding the caller's layout to the system allocator.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && STATE.load(Relaxed) == ON {
            note_alloc(layout.size());
        }
        p
    }

    // SAFETY: pass-through; see the impl-level comment.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if STATE.load(Relaxed) == ON {
            note_dealloc(layout.size());
        }
        // SAFETY: `ptr`/`layout` come from a matching `alloc` per the
        // GlobalAlloc contract and are forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: pass-through; see the impl-level comment.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: contract forwarding, as in `dealloc`.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && STATE.load(Relaxed) == ON {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

/// The workspace's global allocator. Every crate that links `obs`
/// (everything above the runtime) allocates through the tracker; with
/// tracking off the overhead is one relaxed load per call.
#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

// --- watermark probes ------------------------------------------------------

/// Heap footprint of a structure, in bytes, **excluding** the structure's
/// own inline size. Implementations are estimates good to the capacity of
/// the backing buffers — the consumers (watermark gauges, growth-law
/// projection) want magnitudes, not audits.
pub trait HeapSize {
    /// Estimated heap bytes owned by `self`.
    fn heap_bytes(&self) -> usize;
}

impl<T> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

/// Approximate per-entry overhead of a `BTreeMap` beyond the key/value
/// payload (node headers, unused slots in non-full nodes).
pub const BTREE_ENTRY_OVERHEAD: usize = 16;

impl<K, V> HeapSize for std::collections::BTreeMap<K, V> {
    fn heap_bytes(&self) -> usize {
        self.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + BTREE_ENTRY_OVERHEAD)
    }
}

/// Record `bytes` into the max-merged watermark gauge `name` (convention:
/// `mem.watermark.<structure>`). Gauges merge by max across probes,
/// workers, and ranks, so the merged snapshot holds each structure's
/// high-water mark. No-op without a recorder.
pub fn watermark(name: &'static str, bytes: u64) {
    crate::span::gauge_max(name, i64::try_from(bytes).unwrap_or(i64::MAX));
}

/// [`watermark`] of a structure's [`HeapSize`].
pub fn probe<T: HeapSize + ?Sized>(name: &'static str, value: &T) {
    watermark(name, value.heap_bytes() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_prefixes_map() {
        assert_eq!(SUBSYSTEMS[subsystem_id("pastis.fasta") as usize], "pastis");
        assert_eq!(SUBSYSTEMS[subsystem_id("summa.stage") as usize], "sparse");
        assert_eq!(SUBSYSTEMS[subsystem_id("align.overlap") as usize], "align");
        assert_eq!(SUBSYSTEMS[subsystem_id("pcomm.bcast") as usize], "pcomm");
        assert_eq!(SUBSYSTEMS[subsystem_id("mystery") as usize], "other");
        assert_eq!(SUBSYSTEMS[subsystem_id("fasta") as usize], "seqstore");
    }

    #[test]
    fn tracked_allocations_hit_the_tagged_subsystem() {
        set_tracking(true);
        let tag = subsystem_id("align.test");
        let before = stats().per[tag as usize];
        let prev = swap_tag(tag);
        // A Vec big enough to dodge any size-class noise.
        let v: Vec<u64> = Vec::with_capacity(1 << 12);
        let mid = stats().per[tag as usize];
        drop(v);
        set_tag(prev);
        assert!(
            mid.alloc_bytes >= before.alloc_bytes + (1 << 15),
            "allocation not attributed: before={before:?} mid={mid:?}"
        );
        assert!(mid.allocs > before.allocs);
        assert!(stats().peak_total > 0);
    }

    #[test]
    fn window_peaks_restart_at_begin() {
        set_tracking(true);
        let prev = swap_tag(subsystem_id("sparse.win"));
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        begin_window();
        let base = window_peaks().total;
        let w: Vec<u8> = Vec::with_capacity(1 << 16);
        let grown = window_peaks().total;
        assert!(
            grown >= base + (1 << 16),
            "window did not capture growth: base={base} grown={grown}"
        );
        drop(w);
        drop(v);
        set_tag(prev);
    }

    #[test]
    fn heap_size_estimates() {
        let v: Vec<u32> = Vec::with_capacity(100);
        assert_eq!(v.heap_bytes(), 400);
        let s = String::with_capacity(32);
        assert_eq!(s.heap_bytes(), 32);
        let mut m = std::collections::BTreeMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.heap_bytes(), 16 + BTREE_ENTRY_OVERHEAD);
    }

    #[test]
    fn watermark_gauges_merge_by_max() {
        let rec = crate::Recorder::install(0);
        watermark("mem.watermark.test_probe", 100);
        watermark("mem.watermark.test_probe", 900);
        watermark("mem.watermark.test_probe", 300);
        let t = rec.finish();
        assert_eq!(t.metrics.gauges["mem.watermark.test_probe"], 900);
    }
}
