//! Per-rank span recording.
//!
//! Each simulated rank is an OS thread, so the recorder is thread-local:
//! a single-producer bounded buffer that span guards push completed events
//! into (the lock-free "ring" degenerates to plain single-threaded pushes —
//! there is never a second producer on a rank's buffer). Sequence numbers
//! are logical (assigned at span *entry* in program order), so the tree
//! structure of a trace is deterministic even when wall-clock timings are
//! perturbed by oversubscription.

use std::cell::RefCell;
use std::time::Instant;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Counters sampled at span entry and exit; events store the delta.
///
/// `work_ns` is the deterministic estimated-nanosecond work counter
/// (`pcomm::work`); the rest mirror the per-rank communication counters.
/// `obs` has no dependency on the runtime, so the values come from a
/// thread-local provider registered with [`set_thread_counter_provider`];
/// with no provider every field reads as zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSet {
    /// Deterministic estimated work, nanoseconds.
    pub work_ns: u64,
    /// Bytes pushed to other ranks' mailboxes.
    pub bytes_sent: u64,
    /// Bytes consumed from this rank's mailbox.
    pub bytes_recv: u64,
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Nanoseconds blocked waiting for messages.
    pub wait_ns: u64,
}

impl CounterSet {
    /// Element-wise saturating difference (exit − entry snapshots).
    pub fn saturating_sub(self, rhs: CounterSet) -> CounterSet {
        CounterSet {
            work_ns: self.work_ns.saturating_sub(rhs.work_ns),
            bytes_sent: self.bytes_sent.saturating_sub(rhs.bytes_sent),
            bytes_recv: self.bytes_recv.saturating_sub(rhs.bytes_recv),
            msgs_sent: self.msgs_sent.saturating_sub(rhs.msgs_sent),
            msgs_recv: self.msgs_recv.saturating_sub(rhs.msgs_recv),
            wait_ns: self.wait_ns.saturating_sub(rhs.wait_ns),
        }
    }

    /// Element-wise sum, for aggregating repeated spans of one stage.
    pub fn merge(self, rhs: CounterSet) -> CounterSet {
        CounterSet {
            work_ns: self.work_ns + rhs.work_ns,
            bytes_sent: self.bytes_sent + rhs.bytes_sent,
            bytes_recv: self.bytes_recv + rhs.bytes_recv,
            msgs_sent: self.msgs_sent + rhs.msgs_sent,
            msgs_recv: self.msgs_recv + rhs.msgs_recv,
            wait_ns: self.wait_ns + rhs.wait_ns,
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (dot-separated convention, e.g. `summa.stage`).
    pub name: &'static str,
    /// Display track: 0 is the rank's main thread, ≥ 1 are batch workers.
    pub track: u16,
    /// Nesting depth at entry (0 = root).
    pub depth: u16,
    /// Logical sequence number assigned at span entry; deterministic for a
    /// deterministic program, unlike wall-clock timestamps.
    pub seq: u32,
    /// Optional single key/value attribute (e.g. `stage = 3`).
    pub arg: Option<(&'static str, i64)>,
    /// Wall-clock nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Counter deltas over the span.
    pub counters: CounterSet,
}

/// Finished recording of one rank: events plus the rank's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    /// The rank whose thread recorded this trace.
    pub rank: usize,
    /// Completed spans in completion order; sort by `seq` for entry order.
    pub events: Vec<SpanEvent>,
    /// The rank's metrics registry at finish time.
    pub metrics: MetricsSnapshot,
    /// Events discarded because the buffer reached capacity.
    pub dropped: u64,
}

struct State {
    rank: usize,
    epoch: Instant,
    next_seq: u32,
    depth: u16,
    cap: usize,
    dropped: u64,
    events: Vec<SpanEvent>,
    metrics: MetricsRegistry,
}

impl State {
    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    fn into_trace(self) -> RankTrace {
        RankTrace {
            rank: self.rank,
            events: self.events,
            metrics: self.metrics.snapshot(),
            dropped: self.dropped,
        }
    }
}

thread_local! {
    /// Stack of recorders: the innermost installed recorder receives all
    /// spans and metrics of this thread.
    static REC: RefCell<Vec<State>> = const { RefCell::new(Vec::new()) };
    /// Thread-local counter provider (the runtime's per-rank counters).
    static PROVIDER: RefCell<Option<fn() -> CounterSet>> = const { RefCell::new(None) };
}

/// Register the function spans use to sample [`CounterSet`] on this thread.
/// The runtime calls this once per rank thread; without it counters read
/// zero and spans still record wall-clock durations.
pub fn set_thread_counter_provider(f: fn() -> CounterSet) {
    PROVIDER.with(|p| *p.borrow_mut() = Some(f));
}

fn read_counters() -> CounterSet {
    PROVIDER.with(|p| p.borrow().map(|f| f()).unwrap_or_default())
}

/// True when a recorder is installed on this thread.
pub fn enabled() -> bool {
    REC.with(|r| !r.borrow().is_empty())
}

/// The epoch of this thread's innermost recorder, if one is installed.
/// Batch drivers capture it before spawning workers so worker span offsets
/// share the rank's timebase.
pub fn epoch() -> Option<Instant> {
    REC.with(|r| r.borrow().last().map(|s| s.epoch))
}

/// The rank of this thread's innermost recorder, if one is installed.
pub fn rank() -> Option<usize> {
    REC.with(|r| r.borrow().last().map(|s| s.rank))
}

/// A started wall-clock timer: the workspace's sanctioned facade over
/// `std::time::Instant` for ad-hoc durations. The `xlint` `instant-now`
/// rule confines raw `Instant::now()` calls to the observability and
/// runtime layers, so application code measures time through one type that
/// could later be virtualized (simulated clocks, deterministic replay)
/// without touching call sites.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed seconds as a float.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Default event-buffer capacity (per rank). Pipelines at reproduction
/// scale stay far below this; overflow drops events and counts them.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Handle that owns a recorder installation; see [`Recorder::install`].
pub struct Recorder;

impl Recorder {
    /// Install a fresh recorder on this thread (stacking over any existing
    /// one) with [`DEFAULT_CAPACITY`]. The returned guard uninstalls on
    /// drop; call [`RecorderGuard::finish`] to keep the recording.
    pub fn install(rank: usize) -> RecorderGuard {
        Self::with_capacity(rank, DEFAULT_CAPACITY)
    }

    /// [`Recorder::install`] with an explicit event-buffer capacity.
    pub fn with_capacity(rank: usize, cap: usize) -> RecorderGuard {
        // First recorder of the process resolves the allocation-tracking
        // switch (reading the environment allocates, so the allocator
        // itself never can).
        crate::alloc::init_from_env();
        REC.with(|r| {
            r.borrow_mut().push(State {
                rank,
                epoch: Instant::now(),
                next_seq: 0,
                depth: 0,
                cap,
                dropped: 0,
                events: Vec::with_capacity(cap.min(1024)),
                metrics: MetricsRegistry::default(),
            })
        });
        RecorderGuard { installed: true }
    }
}

/// RAII handle for an installed recorder.
pub struct RecorderGuard {
    installed: bool,
}

impl RecorderGuard {
    /// Uninstall the recorder and return everything it captured.
    pub fn finish(mut self) -> RankTrace {
        self.installed = false;
        REC.with(|r| r.borrow_mut().pop())
            .expect("recorder stack corrupted: finish without install")
            .into_trace()
    }
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        if self.installed {
            REC.with(|r| r.borrow_mut().pop());
        }
    }
}

/// Clone the current recorder's capture without uninstalling it. Used by
/// pipelines that run under a caller-installed recorder but still derive
/// their own timing summary.
pub fn snapshot() -> Option<RankTrace> {
    REC.with(|r| {
        r.borrow().last().map(|s| RankTrace {
            rank: s.rank,
            events: s.events.clone(),
            metrics: s.metrics.snapshot(),
            dropped: s.dropped,
        })
    })
}

/// RAII span guard; records a [`SpanEvent`] into the thread's recorder on
/// drop. Inactive (free to construct and drop) when no recorder was
/// installed at entry.
pub struct SpanGuard {
    active: bool,
    name: &'static str,
    arg: Option<(&'static str, i64)>,
    seq: u32,
    depth: u16,
    prev_tag: u8,
    start_ns: u64,
    at_enter: CounterSet,
}

/// Open a span. Prefer the [`crate::span!`] macro.
pub fn span_start(name: &'static str, arg: Option<(&'static str, i64)>) -> SpanGuard {
    REC.with(|r| {
        let mut stack = r.borrow_mut();
        match stack.last_mut() {
            None => SpanGuard {
                active: false,
                name,
                arg: None,
                seq: 0,
                depth: 0,
                prev_tag: 0,
                start_ns: 0,
                at_enter: CounterSet::default(),
            },
            Some(s) => {
                let seq = s.next_seq;
                s.next_seq += 1;
                let depth = s.depth;
                s.depth += 1;
                // Retag the thread's allocations to this span's subsystem
                // and note the entry in the flight recorder; the guard
                // restores/closes both on drop, keeping them balanced.
                let prev_tag = crate::alloc::swap_tag(crate::alloc::subsystem_id(name));
                crate::blackbox::record(crate::blackbox::BbKind::SpanOpen, name, depth as u64, 0);
                // Live telemetry plane: publish the stage and bump the
                // rank's progress epoch (a relaxed-load no-op when the
                // plane is disabled).
                crate::live::span_open(name);
                let start_ns = s.epoch.elapsed().as_nanos() as u64;
                SpanGuard {
                    active: true,
                    name,
                    arg,
                    seq,
                    depth,
                    prev_tag,
                    start_ns,
                    at_enter: read_counters(),
                }
            }
        }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        crate::alloc::set_tag(self.prev_tag);
        crate::blackbox::record(
            crate::blackbox::BbKind::SpanClose,
            self.name,
            self.depth as u64,
            0,
        );
        crate::live::span_close();
        let at_exit = read_counters();
        REC.with(|r| {
            let mut stack = r.borrow_mut();
            // The recorder may have been finished while this guard was
            // open; the span is then silently lost, by design.
            let Some(s) = stack.last_mut() else { return };
            let end_ns = s.epoch.elapsed().as_nanos() as u64;
            s.depth = self.depth;
            s.push(SpanEvent {
                name: self.name,
                track: 0,
                depth: self.depth,
                seq: self.seq,
                arg: self.arg,
                start_ns: self.start_ns,
                dur_ns: end_ns.saturating_sub(self.start_ns),
                counters: at_exit.saturating_sub(self.at_enter),
            });
        });
    }
}

/// Record an already-measured span (e.g. a joined worker thread's interval)
/// as a child of the currently open span, on display track `track`.
/// `start_ns` is relative to the recorder's [`epoch`]. No-op without a
/// recorder.
pub fn emit_span(
    name: &'static str,
    track: u16,
    start_ns: u64,
    dur_ns: u64,
    counters: CounterSet,
    arg: Option<(&'static str, i64)>,
) {
    REC.with(|r| {
        let mut stack = r.borrow_mut();
        let Some(s) = stack.last_mut() else { return };
        let seq = s.next_seq;
        s.next_seq += 1;
        let depth = s.depth;
        s.push(SpanEvent {
            name,
            track,
            depth,
            seq,
            arg,
            start_ns,
            dur_ns,
            counters,
        });
    });
}

/// Fold a detached registry (e.g. a worker thread's) into this thread's
/// recorder. Merging is associative and commutative, so the result is
/// independent of worker scheduling. No-op without a recorder.
pub fn absorb_metrics(other: &MetricsSnapshot) {
    REC.with(|r| {
        if let Some(s) = r.borrow_mut().last_mut() {
            s.metrics.absorb(other);
        }
    });
}

/// Add `n` to counter `name` in the current recorder. Prefer
/// [`crate::counter!`].
pub fn counter_add(name: &'static str, n: u64) {
    REC.with(|r| {
        if let Some(s) = r.borrow_mut().last_mut() {
            s.metrics.counter_add(name, n);
            crate::blackbox::record(crate::blackbox::BbKind::Counter, name, n, 0);
        }
    });
}

/// Set gauge `name` in the current recorder. Prefer [`crate::gauge!`].
pub fn gauge_set(name: &'static str, v: i64) {
    REC.with(|r| {
        if let Some(s) = r.borrow_mut().last_mut() {
            s.metrics.gauge_set(name, v);
        }
    });
}

/// Raise gauge `name` to at least `v` in the current recorder — the
/// watermark-probe primitive (locally max, like the cross-rank merge).
pub fn gauge_max(name: &'static str, v: i64) {
    REC.with(|r| {
        if let Some(s) = r.borrow_mut().last_mut() {
            s.metrics.gauge_max(name, v);
        }
    });
}

/// [`gauge_max`] for names built at runtime (interned on first sight,
/// bounded by the name-space size — stage × subsystem in practice).
pub fn gauge_max_owned(name: &str, v: i64) {
    REC.with(|r| {
        if let Some(s) = r.borrow_mut().last_mut() {
            s.metrics.gauge_max_owned(name, v);
        }
    });
}

/// Record `v` into histogram `name` in the current recorder. Prefer
/// [`crate::hist!`].
pub fn hist_record(name: &'static str, v: u64) {
    REC.with(|r| {
        if let Some(s) = r.borrow_mut().last_mut() {
            s.metrics.hist_record(name, v);
        }
    });
}

/// A span and its children, reconstructed from the flat event list.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span itself.
    pub event: SpanEvent,
    /// Child spans in entry order.
    pub children: Vec<SpanNode>,
}

/// Rebuild the span forest of one rank from its flat events. Events are
/// ordered by logical sequence number (entry order); a span's parent is
/// the nearest preceding span one level shallower, which is exact because
/// spans on a rank nest strictly.
pub fn span_forest(events: &[SpanEvent]) -> Vec<SpanNode> {
    let mut ordered: Vec<&SpanEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.seq);
    let mut roots: Vec<SpanNode> = Vec::new();
    // Stack of indices into the forest: path[d] addresses the open node at
    // depth d as a chain of child indices from the roots.
    let mut path: Vec<usize> = Vec::new();
    for ev in ordered {
        let depth = ev.depth as usize;
        path.truncate(depth);
        let node = SpanNode {
            event: *ev,
            children: Vec::new(),
        };
        if depth == 0 {
            roots.push(node);
            path.clear();
            path.push(roots.len() - 1);
        } else {
            // Walk down the current path to the parent and append.
            let mut cur: &mut SpanNode = &mut roots[path[0]];
            for &i in &path[1..depth.min(path.len())] {
                cur = &mut cur.children[i];
            }
            cur.children.push(node);
            let idx = cur.children.len() - 1;
            path.truncate(depth);
            path.push(idx);
        }
    }
    roots
}

/// A canonical signature of a trace's span *structure*: names and nesting
/// with runs of identical sibling subtrees collapsed to a single
/// occurrence. Collapsing makes the signature invariant to cardinality that
/// legitimately scales with the grid — q SUMMA stages, p-1 gather receives
/// — so the same pipeline produces the same signature on every rank of
/// every grid size (a run of one compares equal to a run of many).
pub fn structure_signature(events: &[SpanEvent]) -> String {
    fn sig(node: &SpanNode) -> String {
        let inner = collapse(&node.children);
        if inner.is_empty() {
            node.event.name.to_string()
        } else {
            format!("{}({})", node.event.name, inner)
        }
    }
    fn collapse(nodes: &[SpanNode]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for n in nodes {
            let s = sig(n);
            if parts.last() != Some(&s) {
                parts.push(s);
            }
        }
        parts.join(" ")
    }
    collapse(&span_forest(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_noops() {
        assert!(!enabled());
        let g = span_start("nothing", Some(("k", 1)));
        drop(g);
        counter_add("c", 1);
        hist_record("h", 7);
        assert!(snapshot().is_none());
    }

    #[test]
    fn nesting_depth_and_seq_are_deterministic() {
        let collect = || {
            let rec = Recorder::install(3);
            {
                let _a = span_start("a", None);
                {
                    let _b = span_start("b", Some(("i", 1)));
                }
                {
                    let _c = span_start("c", None);
                }
            }
            rec.finish()
        };
        let t1 = collect();
        let t2 = collect();
        assert_eq!(t1.rank, 3);
        // Completion order: b, c, a. Entry order (seq): a=0, b=1, c=2.
        let names: Vec<&str> = t1.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c", "a"]);
        let seqs: Vec<u32> = t1.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 0]);
        let depths: Vec<u16> = t1.events.iter().map(|e| e.depth).collect();
        assert_eq!(depths, vec![1, 1, 0]);
        // Structure is identical run to run even though timings differ.
        let strip = |t: &RankTrace| {
            t.events
                .iter()
                .map(|e| (e.name, e.seq, e.depth, e.arg))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&t1), strip(&t2));
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let rec = Recorder::with_capacity(0, 2);
        for _ in 0..5 {
            let _g = span_start("x", None);
        }
        let t = rec.finish();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn stacked_recorders_restore_outer() {
        let outer = Recorder::install(0);
        {
            let _o = span_start("outer_span", None);
        }
        let inner = Recorder::install(1);
        {
            let _i = span_start("inner_span", None);
        }
        let ti = inner.finish();
        assert_eq!(ti.events.len(), 1);
        assert_eq!(ti.events[0].name, "inner_span");
        {
            let _o2 = span_start("outer_again", None);
        }
        let to = outer.finish();
        let names: Vec<&str> = to.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["outer_span", "outer_again"]);
    }

    #[test]
    fn forest_reconstruction_and_signature() {
        let rec = Recorder::install(0);
        {
            let _r = span_start("root", None);
            for i in 0..3 {
                let _s = span_start("stage", Some(("i", i)));
                let _k = span_start("kernel", None);
            }
            let _t = span_start("tail", None);
        }
        let t = rec.finish();
        let forest = span_forest(&t.events);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].event.name, "root");
        assert_eq!(forest[0].children.len(), 4);
        assert_eq!(forest[0].children[0].children[0].event.name, "kernel");
        assert_eq!(structure_signature(&t.events), "root(stage(kernel) tail)");
    }

    #[test]
    fn emit_span_lands_under_open_parent() {
        let rec = Recorder::install(0);
        {
            let _b = span_start("batch", None);
            emit_span(
                "worker",
                1,
                10,
                20,
                CounterSet {
                    work_ns: 5,
                    ..Default::default()
                },
                Some(("tasks", 7)),
            );
            emit_span(
                "worker",
                2,
                12,
                18,
                CounterSet::default(),
                Some(("tasks", 3)),
            );
        }
        let t = rec.finish();
        let forest = span_forest(&t.events);
        assert_eq!(forest[0].event.name, "batch");
        assert_eq!(forest[0].children.len(), 2);
        assert_eq!(forest[0].children[0].event.track, 1);
        assert_eq!(structure_signature(&t.events), "batch(worker)");
    }

    #[test]
    fn provider_deltas_reach_events() {
        use std::cell::Cell;
        thread_local! { static FAKE: Cell<u64> = const { Cell::new(0) }; }
        fn provider() -> CounterSet {
            CounterSet {
                work_ns: FAKE.with(Cell::get),
                ..Default::default()
            }
        }
        set_thread_counter_provider(provider);
        let rec = Recorder::install(0);
        {
            let _g = span_start("work", None);
            FAKE.with(|f| f.set(f.get() + 42));
        }
        let t = rec.finish();
        assert_eq!(t.events[0].counters.work_ns, 42);
    }
}
