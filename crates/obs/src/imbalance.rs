//! `obs::imbalance` — per-stage per-rank skew dissection.
//!
//! PASTIS's scaling behaviour is dominated by how evenly alignment and
//! SpGEMM work spreads across ranks; the paper's per-stage dissections
//! (Fig. 11/15/16) report only critical-rank times, hiding rank-to-rank
//! skew. This module folds the per-rank stage slices collected by
//! [`crate::project::extract_stages`] into fig11-style skew tables:
//!
//! - **λ (max/mean)** per distribution — time, deterministic work, and
//!   wire bytes. λ=1 is perfectly balanced; λ=p means one rank did
//!   everything.
//! - **Critical-rank attribution** — which rank carries the max work.
//! - **Gini coefficient** and a **log₂ histogram** of per-rank work, the
//!   shape of the imbalance rather than just its extremes.
//!
//! The work-based λ (`lambda_work`) is computed from the deterministic
//! work-nanosecond ledgers, so it is bit-identical across perturbation
//! seeds and host speeds — `pcomm::cost::project` uses it to replace the
//! balanced-compute assumption, and the bench gate can diff it against a
//! committed baseline. Time- and byte-based λ are display diagnostics.

use crate::json::JsonValue;
use crate::metrics::Histogram;
use crate::project::StageExtract;
use crate::span::RankTrace;

/// One stage's skew dissection.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSkew {
    /// Stage span name (e.g. `pastis.spgemm_b`).
    pub span: String,
    /// Display label (paper component name).
    pub label: String,
    /// Ranks that recorded the stage.
    pub ranks: usize,
    /// max/mean of per-rank deterministic work ns (deterministic).
    pub lambda_work: f64,
    /// max/mean of per-rank wall-clock seconds.
    pub lambda_secs: f64,
    /// max/mean of per-rank bytes sent.
    pub lambda_bytes: f64,
    /// Rank holding the work maximum (first such rank on ties).
    pub critical_rank: usize,
    /// Gini coefficient of per-rank work (0 = balanced).
    pub gini: f64,
    /// Mean per-rank work ns.
    pub work_ns_mean: f64,
    /// Critical rank's work ns.
    pub work_ns_max: u64,
    /// Sparse log₂ histogram of per-rank work ns: `(bucket, ranks)` with
    /// bucket `b` covering [`Histogram::bucket_range`]`(b)`.
    pub work_hist: Vec<(usize, u64)>,
}

impl StageSkew {
    pub fn to_json(&self) -> JsonValue {
        let mut o = std::collections::BTreeMap::new();
        o.insert("span".into(), JsonValue::Str(self.span.clone()));
        o.insert("label".into(), JsonValue::Str(self.label.clone()));
        o.insert("ranks".into(), JsonValue::Num(self.ranks as f64));
        o.insert("lambda_work".into(), JsonValue::Num(self.lambda_work));
        o.insert("lambda_secs".into(), JsonValue::Num(self.lambda_secs));
        o.insert("lambda_bytes".into(), JsonValue::Num(self.lambda_bytes));
        o.insert(
            "critical_rank".into(),
            JsonValue::Num(self.critical_rank as f64),
        );
        o.insert("gini".into(), JsonValue::Num(self.gini));
        o.insert("work_ns_mean".into(), JsonValue::Num(self.work_ns_mean));
        o.insert(
            "work_ns_max".into(),
            JsonValue::Num(self.work_ns_max as f64),
        );
        o.insert(
            "work_hist".into(),
            JsonValue::Arr(
                self.work_hist
                    .iter()
                    .map(|&(b, n)| {
                        JsonValue::Arr(vec![JsonValue::Num(b as f64), JsonValue::Num(n as f64)])
                    })
                    .collect(),
            ),
        );
        JsonValue::Obj(o)
    }

    pub fn from_json(v: &JsonValue) -> Result<StageSkew, String> {
        let s = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("stage_skew: missing `{k}`"))
        };
        let num = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("stage_skew: missing `{k}`"))
        };
        let work_hist = match v.get("work_hist") {
            Some(JsonValue::Arr(a)) => a
                .iter()
                .map(|pair| match pair {
                    JsonValue::Arr(bn) if bn.len() == 2 => match (bn[0].as_u64(), bn[1].as_u64()) {
                        (Some(b), Some(n)) => Ok((b as usize, n)),
                        _ => Err("stage_skew: non-numeric work_hist pair".to_string()),
                    },
                    _ => Err("stage_skew: work_hist entry not a [bucket, ranks] pair".to_string()),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("stage_skew: missing `work_hist` array".into()),
        };
        Ok(StageSkew {
            span: s("span")?,
            label: s("label")?,
            ranks: num("ranks")? as usize,
            lambda_work: num("lambda_work")?,
            lambda_secs: num("lambda_secs")?,
            lambda_bytes: num("lambda_bytes")?,
            critical_rank: num("critical_rank")? as usize,
            gini: num("gini")?,
            work_ns_mean: num("work_ns_mean")?,
            work_ns_max: num("work_ns_max")? as u64,
            work_hist,
        })
    }
}

/// max/mean of a sample, 1.0 when the sample is empty or sums to zero
/// (a balanced default keeps the projector's math neutral).
pub fn lambda(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    if sum <= 0.0 {
        return 1.0;
    }
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    max * xs.len() as f64 / sum
}

/// Gini coefficient of a non-negative sample: mean absolute difference
/// over twice the mean. 0 for empty, singleton, or all-zero samples.
pub fn gini(xs: &[f64]) -> f64 {
    let n = xs.len();
    let sum: f64 = xs.iter().sum();
    if n < 2 || sum <= 0.0 {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Σ (2i − n − 1) · x_(i) / (n · Σx) over 1-based ranks of the sorted
    // sample — the standard O(n log n) form of the mean-difference Gini.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * x)
        .sum();
    weighted / (n as f64 * sum)
}

/// Sparse log₂ histogram of a sample: `(bucket, count)` pairs in bucket
/// order, empty buckets omitted. Buckets follow [`Histogram::bucket_of`].
pub fn log2_hist(xs: &[u64]) -> Vec<(usize, u64)> {
    let mut h = Histogram::default();
    for &x in xs {
        h.record(x);
    }
    h.buckets
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(b, &c)| (b, c))
        .collect()
}

/// Dissect every extracted stage that recorded at least one rank.
pub fn skew_from_extracts(extracts: &[StageExtract]) -> Vec<StageSkew> {
    extracts
        .iter()
        .filter(|ex| ex.ranks > 0)
        .map(|ex| {
            let work: Vec<u64> = ex.per_rank.iter().map(|r| r.work_ns).collect();
            let work_f: Vec<f64> = work.iter().map(|&w| w as f64).collect();
            let secs: Vec<f64> = ex.per_rank.iter().map(|r| r.secs).collect();
            let bytes: Vec<f64> = ex.per_rank.iter().map(|r| r.bytes_sent as f64).collect();
            let critical = ex
                .per_rank
                .iter()
                .max_by_key(|r| r.work_ns)
                .map(|r| r.rank)
                .unwrap_or(0);
            StageSkew {
                span: ex.span.clone(),
                label: ex.label.clone(),
                ranks: ex.ranks,
                lambda_work: lambda(&work_f),
                lambda_secs: lambda(&secs),
                lambda_bytes: lambda(&bytes),
                critical_rank: critical,
                gini: gini(&work_f),
                work_ns_mean: if work.is_empty() {
                    0.0
                } else {
                    work_f.iter().sum::<f64>() / work.len() as f64
                },
                work_ns_max: work.iter().copied().max().unwrap_or(0),
                work_hist: log2_hist(&work),
            }
        })
        .collect()
}

/// Stage labels ordered most-skewed-first by the deterministic work λ
/// (ties by label). The cross-p agreement test compares these rankings
/// between recordings at different world sizes.
pub fn skew_ranking(skews: &[StageSkew]) -> Vec<String> {
    let mut order: Vec<&StageSkew> = skews.iter().filter(|s| s.work_ns_mean > 0.0).collect();
    order.sort_by(|a, b| {
        b.lambda_work
            .partial_cmp(&a.lambda_work)
            .unwrap()
            .then_with(|| a.label.cmp(&b.label))
    });
    order.iter().map(|s| s.label.clone()).collect()
}

/// One per-rank metric distribution (DP cells, nnz, task counts)
/// dissected for skew.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSkew {
    /// Metric name (counter, histogram sum, or gauge).
    pub key: String,
    /// Ranks contributing a value.
    pub ranks: usize,
    /// max/mean of the per-rank values.
    pub lambda: f64,
    /// Gini coefficient of the per-rank values.
    pub gini: f64,
    /// Critical rank (max value; first on ties).
    pub critical_rank: usize,
    /// Critical rank's value.
    pub max: f64,
    /// Mean per-rank value.
    pub mean: f64,
}

/// Dissect per-rank metric distributions across traces: for each key, the
/// per-rank value is the rank's counter, histogram *sum*, or gauge under
/// that name (first found, in that order). Keys no rank recorded, or that
/// sum to zero, are omitted.
pub fn metric_skew(traces: &[RankTrace], keys: &[&str]) -> Vec<MetricSkew> {
    keys.iter()
        .filter_map(|&key| {
            let per_rank: Vec<(usize, f64)> = traces
                .iter()
                .filter_map(|t| {
                    let m = &t.metrics;
                    let v = m
                        .counters
                        .get(key)
                        .map(|&c| c as f64)
                        .or_else(|| m.hists.get(key).map(|h| h.sum as f64))
                        .or_else(|| m.gauges.get(key).map(|&g| g.max(0) as f64))?;
                    Some((t.rank, v))
                })
                .collect();
            let values: Vec<f64> = per_rank.iter().map(|&(_, v)| v).collect();
            let sum: f64 = values.iter().sum();
            if per_rank.is_empty() || sum <= 0.0 {
                return None;
            }
            let (critical_rank, max) = per_rank.iter().fold(
                (0usize, f64::MIN),
                |(cr, cm), &(r, v)| {
                    if v > cm {
                        (r, v)
                    } else {
                        (cr, cm)
                    }
                },
            );
            Some(MetricSkew {
                key: key.to_string(),
                ranks: per_rank.len(),
                lambda: lambda(&values),
                gini: gini(&values),
                critical_rank,
                max,
                mean: sum / values.len() as f64,
            })
        })
        .collect()
}

/// Render the per-rank metric skew table (companion of
/// [`render_skew_table`] for counter/histogram distributions).
pub fn render_metric_skew(rows: &[MetricSkew]) -> String {
    let mut out = String::new();
    out.push_str("== per-rank metric skew (λ = max/mean) ==\n");
    out.push_str(&format!(
        "{:<22} {:>5} {:>8} {:>6} {:>6} {:>14} {:>14}\n",
        "metric", "ranks", "λ", "gini", "crit", "max", "mean"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>5} {:>8.3} {:>6.3} {:>6} {:>14.0} {:>14.1}\n",
            r.key,
            r.ranks,
            r.lambda,
            r.gini,
            format!("r{}", r.critical_rank),
            r.max,
            r.mean
        ));
    }
    out
}

/// Render the fig11-style skew table: one row per stage, λ per
/// distribution, critical rank, Gini, and the compact log₂ histogram of
/// per-rank work (`2^b:count`).
pub fn render_skew_table(skews: &[StageSkew]) -> String {
    let mut out = String::new();
    out.push_str("== per-stage rank skew (λ = max/mean) ==\n");
    out.push_str(&format!(
        "{:<10} {:>5} {:>8} {:>8} {:>8} {:>6} {:>6}  {}\n",
        "component",
        "ranks",
        "λ(work)",
        "λ(time)",
        "λ(bytes)",
        "gini",
        "crit",
        "log₂-hist(work ns)"
    ));
    for s in skews {
        let hist: Vec<String> = s
            .work_hist
            .iter()
            .map(|&(b, c)| format!("2^{b}:{c}"))
            .collect();
        out.push_str(&format!(
            "{:<10} {:>5} {:>8.3} {:>8.3} {:>8.3} {:>6.3} {:>6}  {}\n",
            s.label,
            s.ranks,
            s.lambda_work,
            s.lambda_secs,
            s.lambda_bytes,
            s.gini,
            format!("r{}", s.critical_rank),
            hist.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::RankSlice;

    fn extract(label: &str, slices: Vec<RankSlice>) -> StageExtract {
        StageExtract {
            span: format!("test.{label}"),
            label: label.to_string(),
            ranks: slices.len(),
            secs_max: slices.iter().map(|s| s.secs).fold(0.0, f64::max),
            work_ns_total: slices.iter().map(|s| s.work_ns).sum(),
            work_ns_max: slices.iter().map(|s| s.work_ns).max().unwrap_or(0),
            counters_total: Default::default(),
            kinds: Vec::new(),
            per_rank: slices,
        }
    }

    fn slice(rank: usize, work_ns: u64) -> RankSlice {
        RankSlice {
            rank,
            secs: work_ns as f64 * 1e-9,
            work_ns,
            bytes_sent: work_ns / 2,
        }
    }

    #[test]
    fn lambda_bounds() {
        assert_eq!(lambda(&[]), 1.0);
        assert_eq!(lambda(&[0.0, 0.0]), 1.0);
        assert!((lambda(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One of four ranks does all the work: λ = p.
        assert!((lambda(&[8.0, 0.0, 0.0, 0.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[7.0]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12);
        // Perfect concentration on one of n ranks: G = (n-1)/n.
        assert!((gini(&[0.0, 0.0, 0.0, 12.0]) - 0.75).abs() < 1e-12);
        // Order must not matter.
        assert!((gini(&[1.0, 3.0]) - gini(&[3.0, 1.0])).abs() < 1e-12);
        assert!((gini(&[1.0, 3.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn skew_dissection_and_ranking() {
        let balanced = extract("even", vec![slice(0, 100), slice(1, 100)]);
        let skewed = extract("hot", vec![slice(0, 10), slice(1, 300), slice(2, 20)]);
        let skews = skew_from_extracts(&[balanced, skewed]);
        assert_eq!(skews.len(), 2);
        assert!((skews[0].lambda_work - 1.0).abs() < 1e-12);
        assert_eq!(skews[1].critical_rank, 1);
        assert!(skews[1].lambda_work > 2.0);
        assert!(skews[1].gini > skews[0].gini);
        assert_eq!(skews[1].work_ns_max, 300);
        assert_eq!(skew_ranking(&skews), vec!["hot", "even"]);
        let table = render_skew_table(&skews);
        assert!(table.contains("hot"));
        assert!(table.contains("r1"));
    }

    #[test]
    fn stage_skew_json_round_trip() {
        let skews = skew_from_extracts(&[extract(
            "hot",
            vec![slice(0, 10), slice(1, 300), slice(2, 20)],
        )]);
        let doc = skews[0].to_json();
        let back = StageSkew::from_json(&doc).expect("round trip parses");
        assert_eq!(back, skews[0]);
        assert!(StageSkew::from_json(&JsonValue::Obj(Default::default())).is_err());
    }

    #[test]
    fn empty_stages_are_skipped() {
        let empty = extract("none", Vec::new());
        assert!(skew_from_extracts(&[empty]).is_empty());
    }

    #[test]
    fn metric_skew_reads_counters_hists_and_gauges() {
        let mut t0 = RankTrace {
            rank: 0,
            events: Vec::new(),
            metrics: Default::default(),
            dropped: 0,
        };
        let mut t1 = t0.clone();
        t1.rank = 1;
        t0.metrics.counters.insert("align.batch.tasks".into(), 30);
        t1.metrics.counters.insert("align.batch.tasks".into(), 10);
        let mut h = Histogram::default();
        h.record(100);
        h.record(200);
        t0.metrics.hists.insert("align.dp_cells".into(), h);
        t1.metrics
            .hists
            .insert("align.dp_cells".into(), Histogram::default());
        t0.metrics.gauges.insert("pastis.nnz_b".into(), 50);
        t1.metrics.gauges.insert("pastis.nnz_b".into(), 50);
        let rows = metric_skew(
            &[t0, t1],
            &[
                "align.batch.tasks",
                "align.dp_cells",
                "pastis.nnz_b",
                "absent",
            ],
        );
        assert_eq!(rows.len(), 3, "absent/zero keys are dropped");
        assert_eq!(rows[0].key, "align.batch.tasks");
        assert!((rows[0].lambda - 1.5).abs() < 1e-12);
        assert_eq!(rows[0].critical_rank, 0);
        assert_eq!(rows[1].key, "align.dp_cells");
        assert!((rows[1].max - 300.0).abs() < 1e-12, "hist folds by sum");
        assert!((rows[2].lambda - 1.0).abs() < 1e-12, "balanced gauge");
        let table = render_metric_skew(&rows);
        assert!(table.contains("align.dp_cells"));
    }
}
