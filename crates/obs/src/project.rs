//! Per-stage trace extraction for the scaling projector.
//!
//! The cost model (in `pcomm::cost`) replays a recorded run at
//! hypothetical node counts; this module reduces raw [`RankTrace`]s to the
//! per-stage aggregates it consumes: total/max work, total counter
//! traffic, and a per-collective-kind breakdown (calls and counters of
//! every `pcomm.*` span family inside the stage).
//!
//! A stage span's counter delta covers everything that happened inside it
//! — including nested collective spans — so stage totals come straight
//! from the stage spans. Kind aggregation takes only the **outermost**
//! span of each kind: `allreduce`, `allgather`, and `barrier` are built
//! from an inner broadcast whose span nests inside them, and descending
//! into a matched kind span would count that traffic twice (once as
//! `allreduce`, once as `bcast`).
//!
//! Stages may overlap: the streamed pipeline runs its alignment chunks
//! *inside* the SUMMA stage span. Attribution is therefore **exclusive**
//! — when one stage span nests inside another, its duration, work, and
//! counters are subtracted from the enclosing stage and counted only for
//! the inner one, so the dissection still sums to the run total.

use std::collections::BTreeMap;

use crate::span::{span_forest, CounterSet, RankTrace, SpanNode};

/// Aggregate over every outermost span of one collective kind within a
/// stage, across all ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KindAgg {
    /// Largest per-rank span count (the critical rank's call count).
    pub calls_max: u64,
    /// Span count summed over ranks. For symmetric collectives every
    /// member records one span, so `calls_total / comm_size` is the
    /// number of distinct collectives.
    pub calls_total: u64,
    /// Counter deltas summed over all the kind's spans and ranks.
    pub counters_total: CounterSet,
}

/// One rank's exclusive slice of a stage — the unit of the imbalance
/// observatory (`crate::imbalance`): per-rank distributions of time, work,
/// and wire bytes feed λ / Gini / log₂-histogram skew dissection and the
/// imbalance-adjusted critical paths in `pcomm::cost::project`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankSlice {
    /// World rank the slice belongs to (from the trace, not fold order).
    pub rank: usize,
    /// Stage-exclusive wall-clock seconds on this rank.
    pub secs: f64,
    /// Stage-exclusive deterministic work nanoseconds on this rank.
    pub work_ns: u64,
    /// Stage-exclusive bytes sent by this rank (wire-volume skew).
    pub bytes_sent: u64,
}

/// One pipeline stage reduced to projector inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct StageExtract {
    /// Stage span name (e.g. `pastis.summa`).
    pub span: String,
    /// Display label (paper component name, e.g. `(AS)AT`).
    pub label: String,
    /// Ranks that recorded at least one span of this stage.
    pub ranks: usize,
    /// Largest per-rank wall-clock seconds in the stage.
    pub secs_max: f64,
    /// Deterministic work nanoseconds summed over all ranks.
    pub work_ns_total: u64,
    /// Largest per-rank work nanoseconds (imbalance numerator).
    pub work_ns_max: u64,
    /// Counter deltas summed over all ranks' stage spans.
    pub counters_total: CounterSet,
    /// Per-kind aggregates, in the order of the `kinds` argument
    /// (kinds with no spans in the stage are omitted).
    pub kinds: Vec<(String, KindAgg)>,
    /// One slice per rank that recorded the stage, in trace order.
    pub per_rank: Vec<RankSlice>,
}

/// Per-rank scratch for one stage.
#[derive(Default)]
struct StageAcc {
    ranks: usize,
    secs_max: f64,
    work_total: u64,
    work_max: u64,
    counters: CounterSet,
    kinds: BTreeMap<String, KindAgg>,
    per_rank: Vec<RankSlice>,
    /// calls per kind for the rank currently being folded.
    rank_calls: BTreeMap<String, u64>,
}

/// Reduce `traces` (one per rank) to per-stage extracts. `stages` are
/// `(span_name, label)` pairs in display order; `kinds` are the collective
/// span names to break out (e.g. `pcomm::kind_names()`). Stage spans are
/// found anywhere in each rank's span forest; within a stage subtree only
/// the outermost span of each kind is counted.
pub fn extract_stages(
    traces: &[RankTrace],
    stages: &[(&str, &str)],
    kinds: &[&str],
) -> Vec<StageExtract> {
    let stage_names: Vec<&str> = stages.iter().map(|&(s, _)| s).collect();
    let mut accs: Vec<StageAcc> = stages.iter().map(|_| StageAcc::default()).collect();
    for trace in traces {
        let forest = span_forest(&trace.events);
        for (si, &(span, _)) in stages.iter().enumerate() {
            let acc = &mut accs[si];
            let mut rank_secs = 0.0f64;
            let mut rank_counters = CounterSet::default();
            let mut found = false;
            acc.rank_calls.clear();
            for root in &forest {
                visit(
                    root,
                    span,
                    &stage_names,
                    kinds,
                    acc,
                    &mut rank_secs,
                    &mut rank_counters,
                    &mut found,
                );
            }
            if found {
                let rank_work = rank_counters.work_ns;
                acc.ranks += 1;
                acc.secs_max = acc.secs_max.max(rank_secs);
                acc.work_total += rank_work;
                acc.work_max = acc.work_max.max(rank_work);
                acc.counters = acc.counters.merge(rank_counters);
                acc.per_rank.push(RankSlice {
                    rank: trace.rank,
                    secs: rank_secs,
                    work_ns: rank_work,
                    bytes_sent: rank_counters.bytes_sent,
                });
                for (kind, calls) in std::mem::take(&mut acc.rank_calls) {
                    let agg = acc.kinds.entry(kind).or_default();
                    agg.calls_max = agg.calls_max.max(calls);
                }
            }
        }
    }
    stages
        .iter()
        .zip(accs)
        .map(|(&(span, label), acc)| StageExtract {
            span: span.to_string(),
            label: label.to_string(),
            ranks: acc.ranks,
            secs_max: acc.secs_max,
            work_ns_total: acc.work_total,
            work_ns_max: acc.work_max,
            counters_total: acc.counters,
            kinds: kinds
                .iter()
                .filter_map(|&k| acc.kinds.get(k).map(|&a| (k.to_string(), a)))
                .collect(),
            per_rank: acc.per_rank,
        })
        .collect()
}

/// Prefix of the gauges the watermark probes record
/// ([`crate::alloc::watermark`]).
pub const MEM_WATERMARK_PREFIX: &str = "mem.watermark.";

/// Reduce per-rank traces to per-structure memory watermarks: every gauge
/// named `mem.watermark.<structure>` maxed across ranks (the projector
/// wants the *critical* rank's footprint, and gauges already merge by
/// max). Keys are returned without the prefix, sorted.
pub fn extract_mem_watermarks(traces: &[RankTrace]) -> Vec<(String, u64)> {
    let mut out: BTreeMap<String, u64> = BTreeMap::new();
    for trace in traces {
        for (name, &v) in &trace.metrics.gauges {
            if let Some(key) = name.strip_prefix(MEM_WATERMARK_PREFIX) {
                let bytes = v.max(0) as u64;
                let e = out.entry(key.to_string()).or_insert(0);
                *e = (*e).max(bytes);
            }
        }
    }
    out.into_iter().collect()
}

/// Find stage spans anywhere below `node` and fold them into `acc`,
/// attributing exclusively: topmost *other*-stage spans nested inside a
/// match are subtracted from it (they are folded when their own stage is
/// visited).
#[allow(clippy::too_many_arguments)]
fn visit(
    node: &SpanNode,
    span: &str,
    stage_names: &[&str],
    kinds: &[&str],
    acc: &mut StageAcc,
    rank_secs: &mut f64,
    rank_counters: &mut CounterSet,
    found: &mut bool,
) {
    if node.event.name == span {
        *found = true;
        let mut dur_ns = node.event.dur_ns;
        let mut counters = node.event.counters;
        for child in &node.children {
            exclude_nested_stages(child, stage_names, &mut dur_ns, &mut counters);
        }
        *rank_secs += dur_ns as f64 * 1e-9;
        *rank_counters = rank_counters.merge(counters);
        for child in &node.children {
            collect_kinds(child, stage_names, kinds, acc);
        }
        return; // stage spans do not nest within themselves
    }
    for child in &node.children {
        visit(
            child,
            span,
            stage_names,
            kinds,
            acc,
            rank_secs,
            rank_counters,
            found,
        );
    }
}

/// Subtract the topmost nested stage spans below `node` from `dur_ns` /
/// `counters` (exclusive attribution; see the module docs).
fn exclude_nested_stages(
    node: &SpanNode,
    stage_names: &[&str],
    dur_ns: &mut u64,
    counters: &mut CounterSet,
) {
    if stage_names.contains(&node.event.name) {
        *dur_ns = dur_ns.saturating_sub(node.event.dur_ns);
        *counters = counters.saturating_sub(node.event.counters);
        return; // deeper stage spans are inside this one's delta already
    }
    for child in &node.children {
        exclude_nested_stages(child, stage_names, dur_ns, counters);
    }
}

/// Fold the outermost kind spans of a stage subtree into `acc`, not
/// descending into a matched kind span (its nested spans — an
/// allreduce's inner broadcast — belong to the outer collective) nor into
/// a nested stage span (its collectives belong to that stage).
fn collect_kinds(node: &SpanNode, stage_names: &[&str], kinds: &[&str], acc: &mut StageAcc) {
    if stage_names.contains(&node.event.name) {
        return;
    }
    if kinds.contains(&node.event.name) {
        let agg = acc.kinds.entry(node.event.name.to_string()).or_default();
        agg.calls_total += 1;
        agg.counters_total = agg.counters_total.merge(node.event.counters);
        *acc.rank_calls
            .entry(node.event.name.to_string())
            .or_default() += 1;
        return;
    }
    for child in &node.children {
        collect_kinds(child, stage_names, kinds, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;

    fn ev(name: &'static str, depth: u16, seq: u32, dur_ns: u64, c: CounterSet) -> SpanEvent {
        SpanEvent {
            name,
            track: 0,
            depth,
            seq,
            arg: None,
            start_ns: 0,
            dur_ns,
            counters: c,
        }
    }

    fn trace(rank: usize, events: Vec<SpanEvent>) -> RankTrace {
        RankTrace {
            rank,
            events,
            metrics: Default::default(),
            dropped: 0,
        }
    }

    fn sent(bytes: u64, msgs: u64) -> CounterSet {
        CounterSet {
            bytes_sent: bytes,
            msgs_sent: msgs,
            ..Default::default()
        }
    }

    #[test]
    fn stage_totals_and_kind_breakdown() {
        // rank 0: run(stage(bcast bcast))  rank 1: run(stage(bcast))
        let t0 = trace(
            0,
            vec![
                ev("run", 0, 0, 10_000, CounterSet::default()),
                ev(
                    "stage",
                    1,
                    1,
                    5_000_000_000,
                    CounterSet {
                        work_ns: 100,
                        ..sent(30, 3)
                    },
                ),
                ev("pcomm.bcast", 2, 2, 10, sent(20, 2)),
                ev("pcomm.bcast", 2, 3, 10, sent(10, 1)),
            ],
        );
        let t1 = trace(
            1,
            vec![
                ev("run", 0, 0, 10_000, CounterSet::default()),
                ev(
                    "stage",
                    1,
                    1,
                    2_000_000_000,
                    CounterSet {
                        work_ns: 300,
                        ..sent(5, 1)
                    },
                ),
                ev("pcomm.bcast", 2, 2, 10, sent(5, 1)),
            ],
        );
        let ex = extract_stages(&[t0, t1], &[("stage", "S")], &["pcomm.bcast"]);
        assert_eq!(ex.len(), 1);
        let s = &ex[0];
        assert_eq!(s.label, "S");
        assert_eq!(s.ranks, 2);
        assert!((s.secs_max - 5.0).abs() < 1e-12);
        assert_eq!(s.work_ns_total, 400);
        assert_eq!(s.work_ns_max, 300);
        assert_eq!(s.counters_total.bytes_sent, 35);
        let (kind, agg) = &s.kinds[0];
        assert_eq!(kind, "pcomm.bcast");
        assert_eq!(agg.calls_total, 3);
        assert_eq!(agg.calls_max, 2);
        assert_eq!(agg.counters_total.bytes_sent, 35);
        // Per-rank slices carry the skew inputs in trace order.
        assert_eq!(s.per_rank.len(), 2);
        assert_eq!(s.per_rank[0].rank, 0);
        assert_eq!(s.per_rank[0].work_ns, 100);
        assert_eq!(s.per_rank[0].bytes_sent, 30);
        assert!((s.per_rank[0].secs - 5.0).abs() < 1e-12);
        assert_eq!(s.per_rank[1].rank, 1);
        assert_eq!(s.per_rank[1].work_ns, 300);
        assert_eq!(s.per_rank[1].bytes_sent, 5);
    }

    #[test]
    fn outermost_kind_only_no_double_counting() {
        // An allreduce with a nested bcast: only the allreduce counts, and
        // a free-standing bcast after it still counts as a bcast.
        let t = trace(
            0,
            vec![
                ev("stage", 0, 0, 100, CounterSet::default()),
                ev("pcomm.allreduce", 1, 1, 10, sent(40, 4)),
                ev("pcomm.bcast", 2, 2, 5, sent(20, 2)),
                ev("pcomm.bcast", 1, 3, 5, sent(7, 1)),
            ],
        );
        let ex = extract_stages(&[t], &[("stage", "S")], &["pcomm.bcast", "pcomm.allreduce"]);
        let kinds: BTreeMap<_, _> = ex[0].kinds.iter().cloned().collect();
        assert_eq!(kinds["pcomm.allreduce"].calls_total, 1);
        assert_eq!(kinds["pcomm.allreduce"].counters_total.bytes_sent, 40);
        assert_eq!(kinds["pcomm.bcast"].calls_total, 1, "nested bcast leaked");
        assert_eq!(kinds["pcomm.bcast"].counters_total.bytes_sent, 7);
    }

    #[test]
    fn nested_stage_spans_attribute_exclusively() {
        // summa(align align) with a bcast belonging to summa and work split
        // between the two stages: align's duration/work/counters must be
        // subtracted from summa and counted once under align.
        let t = trace(
            0,
            vec![
                ev(
                    "summa",
                    0,
                    0,
                    10_000_000_000,
                    CounterSet {
                        work_ns: 100,
                        ..sent(50, 5)
                    },
                ),
                ev("pcomm.bcast", 1, 1, 10, sent(50, 5)),
                ev(
                    "align",
                    1,
                    2,
                    3_000_000_000,
                    CounterSet {
                        work_ns: 60,
                        ..Default::default()
                    },
                ),
                ev(
                    "align",
                    1,
                    3,
                    1_000_000_000,
                    CounterSet {
                        work_ns: 10,
                        ..Default::default()
                    },
                ),
            ],
        );
        let ex = extract_stages(
            std::slice::from_ref(&t),
            &[("summa", "S"), ("align", "A")],
            &["pcomm.bcast"],
        );
        let (summa, align) = (&ex[0], &ex[1]);
        assert!((summa.secs_max - 6.0).abs() < 1e-12, "align not excluded");
        assert_eq!(summa.work_ns_total, 30);
        assert_eq!(summa.counters_total.bytes_sent, 50);
        assert_eq!(summa.kinds[0].1.calls_total, 1);
        assert!((align.secs_max - 4.0).abs() < 1e-12);
        assert_eq!(align.work_ns_total, 70);
        assert_eq!(align.counters_total.bytes_sent, 0);
    }

    #[test]
    fn missing_stage_yields_empty_extract() {
        let t = trace(0, vec![ev("other", 0, 0, 10, CounterSet::default())]);
        let ex = extract_stages(&[t], &[("stage", "S")], &[]);
        assert_eq!(ex[0].ranks, 0);
        assert_eq!(ex[0].work_ns_total, 0);
        assert!(ex[0].kinds.is_empty());
    }

    #[test]
    fn repeated_stage_spans_sum_per_rank() {
        let t = trace(
            0,
            vec![
                ev(
                    "stage",
                    0,
                    0,
                    1_000_000_000,
                    CounterSet {
                        work_ns: 10,
                        ..Default::default()
                    },
                ),
                ev(
                    "stage",
                    0,
                    1,
                    2_000_000_000,
                    CounterSet {
                        work_ns: 20,
                        ..Default::default()
                    },
                ),
            ],
        );
        let ex = extract_stages(&[t], &[("stage", "S")], &[]);
        assert_eq!(ex[0].ranks, 1);
        assert!((ex[0].secs_max - 3.0).abs() < 1e-12);
        assert_eq!(ex[0].work_ns_max, 30);
    }
}
