//! `obs::live` — lock-light per-rank progress cells for the live telemetry
//! plane.
//!
//! Each rank thread installs a [`ProgressCell`] (see [`install`]); the span
//! layer ([`crate::span_start`] / guard drop) and pipeline chunk boundaries
//! publish into it with plain atomic stores. An out-of-band monitor thread
//! (`pcomm::monitor`) samples every cell with [`sample`] and aggregates the
//! rows into `status.json` snapshots and the refreshing `pastis --monitor`
//! table.
//!
//! Design constraints, in order:
//!
//! 1. **Ledger-clean**: cells are shared-memory only. No mailboxes, no
//!    collectives, nothing the pcheck conformance ledger or the finalize
//!    leak audit can see. The "heartbeat channel" is the monitor thread
//!    reading these atomics — a nonblocking gather that never touches the
//!    critical path.
//! 2. **Lock-light**: the hot paths ([`span_open`], [`span_close`],
//!    [`touch`], [`add_items`]) are a relaxed flag load when the plane is
//!    disabled, and a handful of relaxed atomic stores when enabled. The
//!    only lock is the stage-name intern table, hit once per *distinct*
//!    span name per thread (a thread-local cache absorbs repeats).
//! 3. **Deterministic observables**: `epoch` counts span opens and
//!    `done`/`total` count pipeline items — logical program-order facts
//!    that are bit-identical across perturbation seeds, so monitor
//!    snapshots can be structure-checked in tests. Wall-clock fields
//!    (`hb_ns`) and allocator samples (`live_bytes`) are explicitly
//!    nondeterministic and excluded from those checks.
//!
//! `live_bytes` is sampled from the process-global allocator ledger
//! ([`crate::alloc::stats`]): ranks are threads in one process, so the
//! value is "process live bytes as of this rank's last heartbeat", not a
//! per-rank partition. The per-subsystem breakdown rides along in the
//! monitor snapshot instead.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use crate::Stopwatch;

/// Stage id published by an idle cell (no span currently open).
const IDLE: u64 = u64::MAX;

/// Master switch for the telemetry plane. Off (the default) every hook is a
/// single relaxed load — the obsperf paired off/on gate (<2%) rides on this.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable or disable the plane. `pcomm::monitor::configure` flips this on;
/// nothing in `obs` does.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Whether the plane is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Monotonic clock shared by all heartbeat stamps, started on first use so
/// `hb_ns` values from different ranks are comparable.
fn plane_clock() -> &'static Stopwatch {
    static CLOCK: OnceLock<Stopwatch> = OnceLock::new();
    CLOCK.get_or_init(Stopwatch::start)
}

/// One rank's live progress: every field a plain atomic so the monitor
/// thread can sample without synchronizing with the rank.
#[derive(Debug)]
pub struct ProgressCell {
    /// Interned id of the innermost open span (see [`stage_name`]), or
    /// [`IDLE`].
    stage: AtomicU64,
    /// Count of span opens on this rank — the progress epoch. Monotone,
    /// deterministic in program order.
    epoch: AtomicU64,
    /// Pipeline items completed (cumulative; alignment tasks).
    done: AtomicU64,
    /// Pipeline items announced (cumulative; `done <= total` once a chunk
    /// retires).
    total: AtomicU64,
    /// Process-global live bytes as of this rank's last heartbeat.
    live_bytes: AtomicU64,
    /// Last heartbeat stamp, ns on the shared [`plane_clock`].
    hb_ns: AtomicU64,
    /// Whether the owning rank thread is still between install and drop.
    active: AtomicBool,
}

impl ProgressCell {
    fn new() -> ProgressCell {
        ProgressCell {
            stage: AtomicU64::new(IDLE),
            epoch: AtomicU64::new(0),
            done: AtomicU64::new(0),
            total: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            hb_ns: AtomicU64::new(0),
            active: AtomicBool::new(true),
        }
    }

    fn beat(&self) {
        self.hb_ns.store(plane_clock().elapsed_ns(), Relaxed);
        let live = crate::alloc::stats().live_total.max(0) as u64;
        self.live_bytes.store(live, Relaxed);
    }
}

/// One sampled row of the plane: a racy-but-consistent copy of a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankSample {
    pub rank: usize,
    /// Innermost open span name, `"-"` when idle.
    pub stage: String,
    pub epoch: u64,
    pub done: u64,
    pub total: u64,
    pub live_bytes: u64,
    /// Heartbeat age is `sample_ns - hb_ns` on the same clock.
    pub hb_ns: u64,
    pub active: bool,
}

/// Cell registry, indexed by rank. Slots are replaced (fresh `Arc`) on
/// [`install`] so a stale thread from a previous world can never write into
/// a new run's cell.
static CELLS: Mutex<Vec<Option<Arc<ProgressCell>>>> = Mutex::new(Vec::new());

/// Stage-name intern table: id -> name. Append-only; ids are stable for the
/// process lifetime.
static STAGE_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    /// The owning rank thread's handle: its cell plus the open-span stage
    /// stack (so `span_close` can restore the enclosing stage).
    static TL: RefCell<Option<TlState>> = const { RefCell::new(None) };
    /// Per-thread intern cache keyed by the `&'static str` pointer, so the
    /// global table lock is hit once per distinct name per thread.
    static INTERN_CACHE: RefCell<HashMap<usize, u64>> = RefCell::new(HashMap::new());
}

struct TlState {
    cell: Arc<ProgressCell>,
    stack: Vec<u64>,
}

fn intern(name: &'static str) -> u64 {
    INTERN_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(&id) = cache.get(&(name.as_ptr() as usize)) {
            return id;
        }
        let mut table = STAGE_NAMES.lock().unwrap();
        let id = match table.iter().position(|&n| n == name) {
            Some(i) => i as u64,
            None => {
                table.push(name);
                (table.len() - 1) as u64
            }
        };
        cache.insert(name.as_ptr() as usize, id);
        id
    })
}

/// Resolve an interned stage id back to its name.
fn stage_name(id: u64) -> String {
    if id == IDLE {
        return "-".into();
    }
    let table = STAGE_NAMES.lock().unwrap();
    table
        .get(id as usize)
        .map(|s| (*s).to_string())
        .unwrap_or_else(|| format!("stage#{id}"))
}

/// RAII guard returned by [`install`]: marks the cell inactive (with a
/// final heartbeat) and detaches the thread-local handle on drop.
pub struct LiveGuard {
    cell: Arc<ProgressCell>,
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.cell.beat();
        self.cell.active.store(false, Relaxed);
        TL.with(|tl| *tl.borrow_mut() = None);
    }
}

/// Install a fresh progress cell for `rank` on the current thread. Cheap
/// whether or not the plane is enabled (cells update only when it is); the
/// runtime installs unconditionally next to the black-box ring.
/// Clear the cell registry. Called once per world launch (before its
/// ranks install and before the monitor thread spawns), so a monitor
/// never samples stale cells left by a previous world in the same
/// process — those would read as progress epochs jumping backwards.
pub fn reset() {
    CELLS.lock().unwrap().clear();
}

pub fn install(rank: usize) -> LiveGuard {
    let cell = Arc::new(ProgressCell::new());
    {
        let mut cells = CELLS.lock().unwrap();
        if cells.len() <= rank {
            cells.resize_with(rank + 1, || None);
        }
        cells[rank] = Some(Arc::clone(&cell));
    }
    cell.beat();
    TL.with(|tl| {
        *tl.borrow_mut() = Some(TlState {
            cell: Arc::clone(&cell),
            stack: Vec::with_capacity(16),
        })
    });
    LiveGuard { cell }
}

/// Span-open hook: publish `name` as the current stage and bump the
/// progress epoch. Called from the recorder's `span_start` next to the
/// black-box `SpanOpen` record.
pub fn span_open(name: &'static str) {
    if !ENABLED.load(Relaxed) {
        return;
    }
    TL.with(|tl| {
        if let Some(st) = tl.borrow_mut().as_mut() {
            let id = intern(name);
            st.stack.push(id);
            st.cell.stage.store(id, Relaxed);
            st.cell.epoch.fetch_add(1, Relaxed);
            st.cell.beat();
        }
    });
}

/// Span-close hook: restore the enclosing stage (or idle).
pub fn span_close() {
    if !ENABLED.load(Relaxed) {
        return;
    }
    TL.with(|tl| {
        if let Some(st) = tl.borrow_mut().as_mut() {
            st.stack.pop();
            let id = st.stack.last().copied().unwrap_or(IDLE);
            st.cell.stage.store(id, Relaxed);
            st.cell.beat();
        }
    });
}

/// Heartbeat-only hook: stamp the clock and refresh the live-bytes sample
/// without changing stage or epoch. Piggybacked on every collective entry
/// so a rank deep in a long exchange still reads as alive.
pub fn touch() {
    if !ENABLED.load(Relaxed) {
        return;
    }
    TL.with(|tl| {
        if let Some(st) = tl.borrow().as_ref() {
            st.cell.beat();
        }
    });
}

/// Pipeline chunk boundary: announce `total` more items and retire `done`
/// of them. Both counters are cumulative and monotone.
pub fn add_items(done: u64, total: u64) {
    if !ENABLED.load(Relaxed) {
        return;
    }
    TL.with(|tl| {
        if let Some(st) = tl.borrow().as_ref() {
            st.cell.total.fetch_add(total, Relaxed);
            st.cell.done.fetch_add(done, Relaxed);
            st.cell.beat();
        }
    });
}

/// Sample ranks `0..p` of the plane (rows for never-installed ranks are
/// absent). The monitor thread's gather: reads every cell's atomics without
/// synchronizing with the rank threads.
pub fn sample(p: usize) -> Vec<RankSample> {
    let cells = CELLS.lock().unwrap();
    cells
        .iter()
        .take(p)
        .enumerate()
        .filter_map(|(rank, slot)| {
            let c = slot.as_ref()?;
            Some(RankSample {
                rank,
                stage: stage_name(c.stage.load(Relaxed)),
                epoch: c.epoch.load(Relaxed),
                done: c.done.load(Relaxed),
                total: c.total.load(Relaxed),
                live_bytes: c.live_bytes.load(Relaxed),
                hb_ns: c.hb_ns.load(Relaxed),
                active: c.active.load(Relaxed),
            })
        })
        .collect()
}

/// Current ns on the shared plane clock — the reference point for
/// heartbeat-age computations.
pub fn now_ns() -> u64 {
    plane_clock().elapsed_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plane is process-global state; serialize the tests that toggle
    /// [`ENABLED`] so they cannot observe each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Hooks are inert until the plane is enabled, and cells then track
    /// stage/epoch/items through a span open/close cycle.
    #[test]
    fn cell_tracks_spans_and_items() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = install(0);
        set_enabled(false);
        span_open("quiet.span");
        assert_eq!(sample(1)[0].epoch, 0, "disabled plane must not record");

        set_enabled(true);
        span_open("live.outer");
        span_open("live.inner");
        add_items(3, 10);
        let s = &sample(1)[0];
        assert_eq!(s.stage, "live.inner");
        assert_eq!(s.epoch, 2);
        assert_eq!((s.done, s.total), (3, 10));
        assert!(s.active);

        span_close();
        assert_eq!(sample(1)[0].stage, "live.outer");
        span_close();
        assert_eq!(sample(1)[0].stage, "-");
        set_enabled(false);
    }

    /// Reinstalling a rank replaces the slot with a fresh cell, and the
    /// guard drop marks the cell inactive.
    #[test]
    fn reinstall_resets_and_drop_deactivates() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let g = install(5);
        span_open("run.one");
        assert_eq!(sample(6).last().unwrap().epoch, 1);
        drop(g);
        assert!(!sample(6).last().unwrap().active);

        let _g2 = install(5);
        let s = sample(6);
        let row = s.last().unwrap();
        assert_eq!(row.epoch, 0, "fresh install must reset the epoch");
        assert!(row.active);
        set_enabled(false);
    }
}
