//! Mergeable metrics: monotonic counters, gauges, and log₂-bucketed
//! histograms.
//!
//! Every metric type merges **associatively and commutatively** (counters
//! by sum, gauges by max, histograms bucket-wise), so a global view can be
//! folded from per-rank snapshots in any order — the same property the
//! runtime's reduction trees rely on.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket absorbs the tail up to
/// `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations (wrapping add is fine at these magnitudes).
    pub sum: u64,
    /// Smallest observation; `u64::MAX` when empty.
    pub min: u64,
    /// Largest observation; 0 when empty.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `⌊log₂ v⌋ + 1`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Inclusive-exclusive value range `[lo, hi)` covered by bucket `i`
    /// (`hi` saturates at `u64::MAX`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            _ => (1u64 << (i - 1), (1u64 << (i - 1)).saturating_mul(2)),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) as the upper edge of the
    /// bucket holding the q-th observation; exact for min/max via the
    /// tracked extrema.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_range(i)
                    .1
                    .saturating_sub(1)
                    .min(self.max)
                    .max(self.min);
            }
        }
        self.max
    }
}

/// An immutable copy of a registry: what a finished [`crate::RankTrace`]
/// carries. Keys are the static names passed to the metric macros; they
/// are stored as owned strings so snapshots from different ranks (and the
/// JSON round-trip) compare equal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters; merge by sum.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last-write-wins locally); merge by max.
    pub gauges: BTreeMap<String, i64>,
    /// Log₂ histograms; merge bucket-wise.
    pub hists: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Fold another snapshot into this one. Associative and commutative,
    /// with [`MetricsSnapshot::default`] as identity.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *e = (*e).max(*v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Merge all of `parts` into a single snapshot.
    pub fn merged(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for p in parts {
            out.merge(p);
        }
        out
    }
}

/// The live, mutable registry inside a recorder.
#[derive(Debug, Default)]
pub(crate) struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub(crate) fn counter_add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    pub(crate) fn gauge_set(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Raise gauge `name` to at least `v` (local max, matching the
    /// cross-rank merge rule) — the watermark-probe primitive.
    pub(crate) fn gauge_max(&mut self, name: &'static str, v: i64) {
        let e = self.gauges.entry(name).or_insert(i64::MIN);
        *e = (*e).max(v);
    }

    /// [`MetricsRegistry::gauge_max`] for dynamically built names (the
    /// per-stage memory table crosses stage × subsystem); interns on
    /// first sight, so the leak is bounded by the name-space size.
    pub(crate) fn gauge_max_owned(&mut self, name: &str, v: i64) {
        match self.gauges.get_mut(name) {
            Some(slot) => *slot = (*slot).max(v),
            None => {
                self.gauges.insert(intern(name), v);
            }
        }
    }

    pub(crate) fn hist_record(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// Fold a detached snapshot (e.g. from a joined worker thread) into the
    /// live registry. Gauges merge by max, like rank-level merging.
    pub(crate) fn absorb(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            match self.counters.get_mut(k.as_str()) {
                Some(slot) => *slot += v,
                None => {
                    self.counters.insert(intern(k), *v);
                }
            }
        }
        for (k, v) in &other.gauges {
            match self.gauges.get_mut(k.as_str()) {
                Some(slot) => *slot = (*slot).max(*v),
                None => {
                    self.gauges.insert(intern(k), *v);
                }
            }
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k.as_str()) {
                Some(slot) => slot.merge(h),
                None => {
                    self.hists.insert(intern(k), h.clone());
                }
            }
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| (k.to_string(), h.clone()))
                .collect(),
        }
    }
}

/// Intern a dynamic metric name. Only reached when a worker snapshot
/// carries a name its parent never recorded — a handful of distinct metric
/// names exist program-wide, so the leak is bounded and tiny.
fn intern(s: &str) -> &'static str {
    Box::leak(s.to_string().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let (lo, hi) = Histogram::bucket_range(Histogram::bucket_of(v));
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "v={v} lo={lo} hi={hi}"
            );
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1011);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 202.2).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_matches_sequential_record() {
        let vals_a = [3u64, 0, 17, 9999];
        let vals_b = [1u64, 1, 1 << 40];
        let mut ha = Histogram::default();
        let mut hb = Histogram::default();
        let mut hall = Histogram::default();
        for v in vals_a {
            ha.record(v);
            hall.record(v);
        }
        for v in vals_b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        assert_eq!(ha, hall);
    }

    #[test]
    fn snapshot_merge_sums_counters_maxes_gauges() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 2);
        a.gauges.insert("g".into(), 5);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 3);
        b.counters.insert("only_b".into(), 7);
        b.gauges.insert("g".into(), 4);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.counters["c"], 5);
        assert_eq!(ab.counters["only_b"], 7);
        assert_eq!(ab.gauges["g"], 5);
        // Commutative.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
