//! Chrome / Perfetto `trace_event` export.
//!
//! Emits the legacy JSON trace format (the "JSON Trace Event Format"
//! understood by `ui.perfetto.dev` and `chrome://tracing`): one *process*
//! per rank, one *thread* per display track (track 0 is the rank's main
//! thread, tracks ≥ 1 are its batch workers). Spans become `"X"`
//! (complete) events with microsecond `ts`/`dur`; process and thread names
//! are attached with `"M"` metadata events.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::JsonValue;
use crate::span::RankTrace;

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: f64) -> JsonValue {
    JsonValue::Num(n)
}

fn s(v: &str) -> JsonValue {
    JsonValue::Str(v.to_string())
}

/// Serialize rank traces to a Perfetto-compatible JSON document.
///
/// Event `args` carry the logical sequence number, the optional span
/// attribute, and every non-zero counter delta, so the deterministic
/// ordering survives into the trace viewer.
pub fn perfetto_json(traces: &[RankTrace]) -> String {
    let mut events: Vec<JsonValue> = Vec::new();
    for t in traces {
        let pid = t.rank as f64;
        events.push(obj(vec![
            ("ph", s("M")),
            ("pid", num(pid)),
            ("tid", num(0.0)),
            ("name", s("process_name")),
            ("args", obj(vec![("name", s(&format!("rank {}", t.rank)))])),
        ]));
        let tracks: BTreeSet<u16> = t.events.iter().map(|e| e.track).chain([0]).collect();
        for &track in &tracks {
            let tname = if track == 0 {
                "main".to_string()
            } else {
                format!("worker-{track}")
            };
            events.push(obj(vec![
                ("ph", s("M")),
                ("pid", num(pid)),
                ("tid", num(track as f64)),
                ("name", s("thread_name")),
                ("args", obj(vec![("name", s(&tname))])),
            ]));
        }
        for e in &t.events {
            let mut args: BTreeMap<String, JsonValue> = BTreeMap::new();
            args.insert("seq".into(), num(e.seq as f64));
            if let Some((k, v)) = e.arg {
                args.insert(k.to_string(), num(v as f64));
            }
            let c = e.counters;
            for (k, v) in [
                ("work_ns", c.work_ns),
                ("bytes_sent", c.bytes_sent),
                ("bytes_recv", c.bytes_recv),
                ("msgs_sent", c.msgs_sent),
                ("msgs_recv", c.msgs_recv),
                ("wait_ns", c.wait_ns),
            ] {
                if v != 0 {
                    args.insert(k.to_string(), num(v as f64));
                }
            }
            let cat = e.name.split('.').next().unwrap_or("span");
            events.push(obj(vec![
                ("ph", s("X")),
                ("pid", num(pid)),
                ("tid", num(e.track as f64)),
                ("name", s(e.name)),
                ("cat", s(cat)),
                ("ts", num(e.start_ns as f64 / 1000.0)),
                ("dur", num(e.dur_ns as f64 / 1000.0)),
                ("args", JsonValue::Obj(args)),
            ]));
        }
        if t.dropped > 0 {
            events.push(obj(vec![
                ("ph", s("i")),
                ("pid", num(pid)),
                ("tid", num(0.0)),
                ("name", s("obs.dropped_events")),
                ("ts", num(0.0)),
                ("s", s("p")),
                ("args", obj(vec![("count", num(t.dropped as f64))])),
            ]));
        }
    }
    let doc = obj(vec![
        ("traceEvents", JsonValue::Arr(events)),
        ("displayTimeUnit", s("ns")),
    ]);
    doc.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{CounterSet, SpanEvent};

    fn sample() -> RankTrace {
        RankTrace {
            rank: 2,
            events: vec![
                SpanEvent {
                    name: "pastis.align",
                    track: 0,
                    depth: 1,
                    seq: 4,
                    arg: None,
                    start_ns: 1_500,
                    dur_ns: 2_000_000,
                    counters: CounterSet {
                        work_ns: 99,
                        ..Default::default()
                    },
                },
                SpanEvent {
                    name: "align.worker",
                    track: 1,
                    depth: 2,
                    seq: 5,
                    arg: Some(("tasks", 12)),
                    start_ns: 2_000,
                    dur_ns: 1_000_000,
                    counters: CounterSet::default(),
                },
            ],
            metrics: Default::default(),
            dropped: 1,
        }
    }

    #[test]
    fn export_parses_and_has_expected_shape() {
        let json = perfetto_json(&[sample()]);
        let doc = JsonValue::parse(&json).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 2 spans + 1 dropped marker.
        assert_eq!(evs.len(), 6);
        let span = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("pastis.align"))
            .unwrap();
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("pid").unwrap().as_u64(), Some(2));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2000.0));
        assert_eq!(
            span.get("args").unwrap().get("work_ns").unwrap().as_u64(),
            Some(99)
        );
        let worker = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("align.worker"))
            .unwrap();
        assert_eq!(worker.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(
            worker.get("args").unwrap().get("tasks").unwrap().as_u64(),
            Some(12)
        );
    }
}
