//! A minimal JSON document model with a parser and writer.
//!
//! The container ships no serde, so the Perfetto exporter writes JSON by
//! hand and the schema/round-trip tests parse it back with this module.
//! Covers exactly the JSON subset the exporter emits: objects, arrays,
//! strings with `\uXXXX`/standard escapes, finite numbers, booleans, null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is normalized (sorted) by the map.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a JSON document. Returns `Err` with a byte offset and message
    /// on malformed input or trailing garbage.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array elements; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String content; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to `u64`; `None` for non-numbers.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }
}

impl fmt::Display for JsonValue {
    /// Serialize compactly; `parse(x.to_string()) == x` for values this
    /// crate produces (numbers are written with enough precision to
    /// round-trip `f64`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => write_num(f, *n),
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            JsonValue::Obj(m) => {
                write!(f, "{{")?;
                for (i, (k, x)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{x}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        // 17 significant digits round-trips any finite f64.
        write!(f, "{n:.17e}")
    }
}

/// Write a JSON string literal with the mandatory escapes.
pub(crate) fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            // Surrogate pairs are not emitted by this crate;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(out));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_document() {
        let v = JsonValue::parse(r#"{"a": [1, 2.5, -3e2], "b": "x\"y\n", "t": true, "n": null}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("07abc").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"z":[0,1,18446744073709551615,0.125],"s":"a\tb","e":{},"f":false}"#;
        let v = JsonValue::parse(src).unwrap();
        let again = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }
}
