//! Per-rank black-box flight recorder.
//!
//! A fixed-size ring buffer per rank thread, recording span open/close
//! events, counter deltas, and the runtime's send/recv/collective records
//! at always-on cost (one uncontended mutex lock plus a clock read —
//! tens of nanoseconds per event, measured in `obsperf`). When a run
//! aborts — deadlock watchdog, rank panic, finalize leak audit — the
//! runtime calls [`dump_once`] and every registered ring is written to
//! `blackbox-rank{r}.json`: the last N events, the allocator's current
//! live-bytes-by-subsystem, and the rank's last completed pipeline stage.
//! "Rank 3 hung" becomes a readable straggler/progress report.
//!
//! Rings are installed per thread ([`install`], RAII like the span
//! recorder) and double-registered in a process-global registry so a
//! *different* thread — the one that detected the abort — can dump all of
//! them. Recording locks only the thread's own ring; the lock is
//! uncontended except during a dump, which is the last thing a process
//! does.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::JsonValue;

/// Default ring capacity (events retained per rank). Sized to hold the
/// tail of a pipeline run — a few stages of spans plus their messages —
/// while keeping a ring under 200 KiB.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What a ring event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbKind {
    /// A span opened; `a` = nesting depth.
    SpanOpen,
    /// A span closed; `a` = nesting depth.
    SpanClose,
    /// A counter was bumped; `a` = the delta.
    Counter,
    /// A point-to-point send; `a` = payload bytes, `b` = destination rank.
    Send,
    /// A point-to-point receive; `a` = payload bytes, `b` = source rank.
    Recv,
    /// A collective entered; `a`/`b` are caller-defined (comm id, seq).
    Coll,
    /// A free-form marker from the runtime.
    Mark,
}

impl BbKind {
    /// Stable lowercase name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            BbKind::SpanOpen => "span_open",
            BbKind::SpanClose => "span_close",
            BbKind::Counter => "counter",
            BbKind::Send => "send",
            BbKind::Recv => "recv",
            BbKind::Coll => "coll",
            BbKind::Mark => "mark",
        }
    }
}

/// One recorded event. `seq` is a per-ring logical sequence number (total
/// events ever recorded, so `seq` of the oldest retained event tells how
/// many wrapped away); `t_ns` is wall-clock since ring installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbEvent {
    /// Logical sequence number (monotonic per ring, survives wrapping).
    pub seq: u64,
    /// Nanoseconds since the ring was installed.
    pub t_ns: u64,
    /// Event kind.
    pub kind: BbKind,
    /// Static name (span/counter name, payload type, comm scope).
    pub name: &'static str,
    /// Kind-specific value (see [`BbKind`]).
    pub a: u64,
    /// Kind-specific value (see [`BbKind`]).
    pub b: u64,
}

struct Ring {
    rank: usize,
    epoch: Instant,
    cap: usize,
    next_seq: u64,
    /// Ring storage; once `events.len() == cap`, `head` is the index of
    /// the oldest event and new events overwrite from there.
    events: Vec<BbEvent>,
    head: usize,
    /// Events overwritten by the wrap — lost to the postmortem. Reported
    /// as `events_dropped` in the dump instead of vanishing silently.
    dropped: u64,
}

impl Ring {
    fn push(&mut self, kind: BbKind, name: &'static str, a: u64, b: u64) {
        if self.cap == 0 {
            return;
        }
        let ev = BbEvent {
            seq: self.next_seq,
            t_ns: self.epoch.elapsed().as_nanos() as u64,
            kind,
            name,
            a,
            b,
        };
        self.next_seq += 1;
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events oldest → newest.
    fn snapshot(&self) -> Vec<BbEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

type Shared = Arc<Mutex<Ring>>;

/// All live rings, readable by whichever thread detects an abort.
static REGISTRY: Mutex<Vec<Shared>> = Mutex::new(Vec::new());

thread_local! {
    /// Stack of rings installed on this thread; events go to the
    /// innermost.
    static HANDLE: RefCell<Vec<Shared>> = const { RefCell::new(Vec::new()) };
}

/// RAII handle for an installed ring; uninstalls (and unregisters) on
/// drop. Call [`BlackboxGuard::finish`] to keep the recording.
pub struct BlackboxGuard {
    ring: Shared,
}

/// Install a flight-recorder ring on this thread with
/// [`DEFAULT_RING_CAPACITY`]. Stacks over any existing ring (the
/// innermost receives events), so a test can interpose its own ring under
/// a runtime-installed one.
pub fn install(rank: usize) -> BlackboxGuard {
    install_with_capacity(rank, DEFAULT_RING_CAPACITY)
}

/// [`install`] with an explicit ring capacity.
pub fn install_with_capacity(rank: usize, cap: usize) -> BlackboxGuard {
    let ring = Arc::new(Mutex::new(Ring {
        rank,
        epoch: Instant::now(),
        cap,
        next_seq: 0,
        events: Vec::with_capacity(cap.min(1024)),
        head: 0,
        dropped: 0,
    }));
    REGISTRY.lock().unwrap().push(ring.clone());
    HANDLE.with(|h| h.borrow_mut().push(ring.clone()));
    BlackboxGuard { ring }
}

impl BlackboxGuard {
    /// Events recorded so far, oldest → newest, without uninstalling.
    pub fn snapshot(&self) -> Vec<BbEvent> {
        self.ring.lock().unwrap().snapshot()
    }

    /// Events lost to ring wrap so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Uninstall and return the recording.
    pub fn finish(self) -> Vec<BbEvent> {
        self.snapshot()
    }
}

impl Drop for BlackboxGuard {
    fn drop(&mut self) {
        HANDLE.with(|h| {
            let mut stack = h.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|r| Arc::ptr_eq(r, &self.ring)) {
                stack.remove(pos);
            }
        });
        let mut reg = REGISTRY.lock().unwrap();
        if let Some(pos) = reg.iter().rposition(|r| Arc::ptr_eq(r, &self.ring)) {
            reg.remove(pos);
        }
    }
}

/// True when a ring is installed on this thread.
pub fn bb_enabled() -> bool {
    HANDLE.try_with(|h| !h.borrow().is_empty()).unwrap_or(false)
}

/// Global recording switch. Rings stay installed (dumps still work) but
/// [`record`] becomes a no-op while off. Exists for `obsperf`'s paired
/// overhead measurement — the runtime installs rings unconditionally, so
/// the bench needs a way to time the same run with and without the
/// per-event cost — and doubles as an escape hatch for latency-critical
/// runs.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Turn event recording on or off process-wide (default on). Installed
/// rings keep whatever they already hold.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Relaxed);
}

/// Record one event into this thread's innermost ring, if any. The no-ring
/// fast path is one atomic load plus one thread-local check.
#[inline]
pub fn record(kind: BbKind, name: &'static str, a: u64, b: u64) {
    if !RECORDING.load(Relaxed) {
        return;
    }
    let _ = HANDLE.try_with(|h| {
        if let Some(ring) = h.borrow().last() {
            ring.lock().unwrap().push(kind, name, a, b);
        }
    });
}

// --- dumps -----------------------------------------------------------------

static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static DUMPED: AtomicBool = AtomicBool::new(false);

/// Set the directory black-box dumps are written to (overrides the
/// `BLACKBOX_DIR` environment variable; default is
/// `$TMPDIR/pastis-blackbox` so deliberate aborts in test suites never
/// litter the working directory — the `pastis` binary redirects dumps
/// next to its other outputs).
pub fn set_dump_dir(dir: impl Into<PathBuf>) {
    *DUMP_DIR.lock().unwrap() = Some(dir.into());
}

fn dump_dir() -> PathBuf {
    if let Some(d) = DUMP_DIR.lock().unwrap().clone() {
        return d;
    }
    std::env::var_os("BLACKBOX_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("pastis-blackbox"))
}

/// Create the dump directory ahead of time. Called once at world launch
/// (and by [`set_dump_dir`]'s callers when they redirect dumps) so the
/// abort paths never create directories themselves — several rank threads
/// can race into [`dump_once`], and an abort-time mkdir is both a race
/// and a syscall a dying process may not get to finish.
pub fn ensure_dump_dir() {
    let _ = std::fs::create_dir_all(dump_dir());
}

/// Re-arm [`dump_once`] (tests that force several aborts in one process).
pub fn reset_dump_once() {
    DUMPED.store(false, Relaxed);
}

/// Dump every registered ring, once per process: the first abort path to
/// get here wins and later calls are no-ops (secondary panics cascade
/// behind a primary abort; one postmortem is the readable one). Returns
/// the paths written, empty when already dumped or nothing is installed.
pub fn dump_once(reason: &str) -> Vec<PathBuf> {
    if DUMPED.swap(true, Relaxed) {
        return Vec::new();
    }
    dump_all(reason)
}

/// The rank's most recently completed pipeline stage, read from the ring:
/// the newest `SpanClose` of a `pastis.*` stage span (the `pastis.run`
/// root doesn't count — it closes only when everything is done).
pub fn last_completed_stage(events: &[BbEvent]) -> Option<&'static str> {
    events
        .iter()
        .rev()
        .find(|e| {
            e.kind == BbKind::SpanClose && e.name.starts_with("pastis.") && e.name != "pastis.run"
        })
        .map(|e| e.name)
}

fn rank_doc(rank: usize, events: &[BbEvent], dropped: u64, reason: &str) -> JsonValue {
    let mut doc = BTreeMap::new();
    doc.insert("schema".into(), JsonValue::Str("blackbox".into()));
    doc.insert("version".into(), JsonValue::Num(1.1));
    doc.insert("rank".into(), JsonValue::Num(rank as f64));
    doc.insert("reason".into(), JsonValue::Str(reason.into()));
    let wrapped = events.first().map(|e| e.seq).unwrap_or(0);
    doc.insert("events_wrapped".into(), JsonValue::Num(wrapped as f64));
    // The ring's own overwrite count: how many events the postmortem lost.
    doc.insert("events_dropped".into(), JsonValue::Num(dropped as f64));
    doc.insert(
        "last_completed_stage".into(),
        match last_completed_stage(events) {
            Some(name) => JsonValue::Str(name.into()),
            None => JsonValue::Null,
        },
    );
    let alloc = crate::alloc::stats();
    doc.insert("alloc_tracking".into(), JsonValue::Bool(alloc.tracking));
    let mut live = BTreeMap::new();
    for (i, name) in crate::alloc::SUBSYSTEMS.iter().enumerate() {
        live.insert(
            (*name).into(),
            JsonValue::Num(alloc.per[i].live_bytes as f64),
        );
    }
    doc.insert("live_bytes_by_subsystem".into(), JsonValue::Obj(live));
    doc.insert(
        "live_bytes_total".into(),
        JsonValue::Num(alloc.live_total as f64),
    );
    doc.insert(
        "peak_bytes_total".into(),
        JsonValue::Num(alloc.peak_total as f64),
    );
    let evs = events
        .iter()
        .map(|e| {
            let mut o = BTreeMap::new();
            o.insert("seq".into(), JsonValue::Num(e.seq as f64));
            o.insert("t_ns".into(), JsonValue::Num(e.t_ns as f64));
            o.insert("kind".into(), JsonValue::Str(e.kind.name().into()));
            o.insert("name".into(), JsonValue::Str(e.name.into()));
            o.insert("a".into(), JsonValue::Num(e.a as f64));
            o.insert("b".into(), JsonValue::Num(e.b as f64));
            JsonValue::Obj(o)
        })
        .collect();
    doc.insert("events".into(), JsonValue::Arr(evs));
    JsonValue::Obj(doc)
}

/// Dump every registered ring unconditionally (prefer [`dump_once`] from
/// abort paths). One `blackbox-rank{r}.json` per ring; a write failure
/// skips that ring (the process is aborting — best effort).
pub fn dump_all(reason: &str) -> Vec<PathBuf> {
    let rings: Vec<Shared> = REGISTRY.lock().unwrap().clone();
    // The directory was created at world launch ([`ensure_dump_dir`]);
    // creating it here, per dump call, raced when several ranks aborted
    // at once.
    let dir = dump_dir();
    let mut written = Vec::new();
    for ring in rings {
        let (rank, events, dropped) = {
            let r = ring.lock().unwrap();
            (r.rank, r.snapshot(), r.dropped)
        };
        let path = dir.join(format!("blackbox-rank{rank}.json"));
        let doc = rank_doc(rank, &events, dropped, reason);
        if std::fs::write(&path, format!("{doc}\n")).is_ok() {
            written.push(path);
        }
    }
    written
}

/// Canonical signature of a ring's event *structure*: `kind:name` tokens
/// with timestamps, sequence numbers, and payload values stripped, and
/// runs of identical consecutive tokens collapsed (the same collapsing
/// rule as [`crate::structure_signature`]), so the signature is invariant
/// to wall-clock perturbation and to cardinality that scales with the
/// grid.
pub fn signature(events: &[BbEvent]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for e in events {
        let tok = format!("{}:{}", e.kind.name(), e.name);
        if parts.last() != Some(&tok) {
            parts.push(tok);
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let g = install_with_capacity(0, 4);
        for i in 0..10u64 {
            record(BbKind::Mark, "m", i, 0);
        }
        assert_eq!(g.dropped(), 6, "10 events into a 4-slot ring drop 6");
        let evs = g.finish();
        assert_eq!(evs.len(), 4);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(evs[3].a, 9);
    }

    #[test]
    fn no_ring_records_are_noops() {
        assert!(!bb_enabled());
        record(BbKind::Mark, "nowhere", 1, 2);
    }

    #[test]
    fn stacked_rings_innermost_wins() {
        let outer = install(0);
        let inner = install_with_capacity(0, 8);
        record(BbKind::Mark, "inner_only", 0, 0);
        let got = inner.finish();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "inner_only");
        record(BbKind::Mark, "outer_now", 0, 0);
        let got = outer.finish();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "outer_now");
    }

    #[test]
    fn last_stage_skips_run_root_and_opens() {
        let g = install(3);
        record(BbKind::SpanOpen, "pastis.run", 0, 0);
        record(BbKind::SpanOpen, "pastis.fasta", 1, 0);
        record(BbKind::SpanClose, "pastis.fasta", 1, 0);
        record(BbKind::SpanOpen, "pastis.form_a", 1, 0);
        let evs = g.finish();
        assert_eq!(last_completed_stage(&evs), Some("pastis.fasta"));
        assert_eq!(last_completed_stage(&[]), None);
    }

    #[test]
    fn signature_collapses_runs_and_strips_values() {
        let mk = |seq, kind, name: &'static str, a| BbEvent {
            seq,
            t_ns: seq * 1000,
            kind,
            name,
            a,
            b: 0,
        };
        let evs = [
            mk(0, BbKind::SpanOpen, "s", 0),
            mk(1, BbKind::Send, "u32", 40),
            mk(2, BbKind::Send, "u32", 80),
            mk(3, BbKind::SpanClose, "s", 0),
        ];
        assert_eq!(signature(&evs), "span_open:s send:u32 span_close:s");
        // Different timestamps/payloads, same structure.
        let evs2 = [
            mk(7, BbKind::SpanOpen, "s", 0),
            mk(9, BbKind::Send, "u32", 8),
            mk(11, BbKind::SpanClose, "s", 0),
        ];
        assert_eq!(signature(&evs), signature(&evs2));
    }

    #[test]
    fn dump_writes_rank_files() {
        let dir = std::env::temp_dir().join(format!("bbtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        set_dump_dir(&dir);
        let g = install(5);
        record(BbKind::SpanOpen, "pastis.run", 0, 0);
        record(BbKind::SpanOpen, "pastis.fasta", 1, 0);
        record(BbKind::SpanClose, "pastis.fasta", 1, 0);
        let paths = dump_all("test abort");
        drop(g);
        let mine = paths
            .iter()
            .find(|p| p.ends_with("blackbox-rank5.json"))
            .expect("rank 5 dump written");
        let text = std::fs::read_to_string(mine).unwrap();
        let doc = JsonValue::parse(&text).expect("dump parses");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("blackbox"));
        assert_eq!(
            doc.get("last_completed_stage").and_then(|v| v.as_str()),
            Some("pastis.fasta")
        );
        assert!(doc.get("live_bytes_by_subsystem").is_some());
        assert_eq!(
            doc.get("reason").and_then(|v| v.as_str()),
            Some("test abort")
        );
        assert_eq!(
            doc.get("events_dropped").and_then(|v| v.as_f64()),
            Some(0.0),
            "unwrapped ring reports zero drops"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
