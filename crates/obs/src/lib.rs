//! `obs` — rank-aware observability for the PASTIS reproduction.
//!
//! The paper's entire evaluation is a dissection study (Fig. 15/16 split
//! runtime into `fasta`, `form A`, …, `wait`; Table I attributes 51–98% of
//! runtime to alignment), so the instrumentation is a first-class subsystem
//! rather than hand-threaded timer fields:
//!
//! - **Spans** ([`span!`]): RAII-guarded, nested regions recorded into a
//!   per-rank bounded buffer. Every span carries a deterministic logical
//!   sequence number, wall-clock start/duration, and the delta of a
//!   [`CounterSet`] (deterministic work nanoseconds plus communication
//!   counters) so traces are comparable across oversubscribed runs.
//! - **Metrics** ([`counter!`], [`gauge!`], [`hist!`]): monotonic counters,
//!   gauges, and log₂-bucketed histograms that merge associatively across
//!   ranks ([`MetricsSnapshot::merge`]).
//! - **Exporters**: a Chrome/Perfetto `trace_event` JSON writer
//!   ([`perfetto_json`], one process per rank, one thread per track) and a
//!   plain-text dissection table ([`dissect`]) reproducing the paper's
//!   Fig. 15/16 layout with per-stage critical-rank compute/comm/wait
//!   splits.
//!
//! Everything is **zero-cost when no recorder is installed**: the guards
//! and metric macros check a thread-local and return without reading the
//! clock, the counter provider, or touching the heap. The crate has no
//! dependencies; the runtime (`pcomm`) registers a counter provider via
//! [`set_thread_counter_provider`] so `obs` stays below it in the crate
//! graph.
//!
//! # Example
//!
//! ```
//! let rec = obs::Recorder::install(0);
//! {
//!     let _outer = obs::span!("pipeline.stage", stage = 1);
//!     let _inner = obs::span!("kernel");
//!     obs::hist!("kernel.cells", 4096);
//! }
//! let trace = rec.finish();
//! assert_eq!(trace.events.len(), 2); // inner closes first
//! let json = obs::perfetto_json(&[trace]);
//! assert!(json.contains("\"traceEvents\""));
//! ```

pub mod alloc;
pub mod blackbox;
pub mod dissect;
pub mod imbalance;
mod json;
pub mod live;
mod metrics;
mod perfetto;
pub mod project;
mod span;

pub use alloc::{AllocStats, HeapSize, SubsystemUsage, TrackingAlloc, SUBSYSTEMS};
pub use blackbox::{BbEvent, BbKind, BlackboxGuard};
pub use json::JsonValue;
pub use metrics::{Histogram, MetricsSnapshot, HIST_BUCKETS};
pub use perfetto::perfetto_json;
pub use span::{
    absorb_metrics, counter_add, emit_span, enabled, epoch, gauge_max, gauge_max_owned, gauge_set,
    hist_record, rank, set_thread_counter_provider, snapshot, span_forest, span_start,
    structure_signature, CounterSet, RankTrace, Recorder, RecorderGuard, SpanEvent, SpanGuard,
    SpanNode, Stopwatch,
};

/// Open a span recording into the current thread's recorder; returns an
/// RAII guard that records the span when dropped. A no-op (no clock read,
/// no allocation) when no recorder is installed.
///
/// ```
/// let _g = obs::span!("summa.stage");
/// let _h = obs::span!("summa.stage", stage = 3usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_start($name, None)
    };
    ($name:expr, $key:ident = $val:expr) => {
        $crate::span_start($name, Some((stringify!($key), ($val) as i64)))
    };
}

/// Add to a monotonic counter in the current recorder's metrics registry.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        $crate::counter_add($name, ($n) as u64)
    };
}

/// Set a gauge (last-write-wins locally; ranks merge by max).
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        $crate::gauge_set($name, ($v) as i64)
    };
}

/// Record one observation into a log₂-bucketed histogram.
#[macro_export]
macro_rules! hist {
    ($name:expr, $v:expr) => {
        $crate::hist_record($name, ($v) as u64)
    };
}
