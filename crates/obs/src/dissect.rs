//! Critical-path dissection: per stage, the limiting rank and its
//! compute/comm/wait split, rendered as a plain-text table in the layout of
//! the paper's Fig. 15/16.
//!
//! The inputs are recorded span traces, not hand-threaded timer fields: a
//! "stage" is identified by its span name, a rank's stage time is the sum
//! of all its spans with that name, and the limiting rank is the one with
//! the largest wall-clock total. `obs` carries no α-β model of its own —
//! callers pass latency/bandwidth coefficients (e.g. from
//! `pcomm::CostModel`) when they want a modeled comm column.

use crate::metrics::MetricsSnapshot;
use crate::span::{span_forest, CounterSet, RankTrace, SpanNode};

/// One rank's aggregate over all spans of one name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageAgg {
    /// Number of spans summed.
    pub spans: usize,
    /// Total wall-clock seconds.
    pub secs: f64,
    /// Total counter deltas.
    pub counters: CounterSet,
}

/// Sum every span named `name` in `trace`, considering only events with
/// `seq >= from_seq` (pass 0 for the whole trace; pass the root span's seq
/// to restrict to the latest pipeline run in a longer recording).
pub fn stage_agg(trace: &RankTrace, name: &str, from_seq: u32) -> StageAgg {
    let mut agg = StageAgg::default();
    for e in trace
        .events
        .iter()
        .filter(|e| e.name == name && e.seq >= from_seq)
    {
        agg.spans += 1;
        agg.secs += e.dur_ns as f64 * 1e-9;
        agg.counters = agg.counters.merge(e.counters);
    }
    agg
}

/// [`stage_agg`] with exclusive attribution for overlapping stages: the
/// subtrees of topmost nested spans named in `exclude` are subtracted from
/// each matched span (the streamed pipeline runs its alignment chunks
/// inside the SUMMA stage; counting them in both rows would make the
/// dissection sum past the run total). Pass the full stage-span list as
/// `exclude` — a span never nests within itself, so self-exclusion is
/// inert.
pub fn stage_agg_exclusive(
    trace: &RankTrace,
    name: &str,
    exclude: &[&str],
    from_seq: u32,
) -> StageAgg {
    let events: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.seq >= from_seq)
        .cloned()
        .collect();
    let forest = span_forest(&events);
    let mut agg = StageAgg::default();
    fn subtract(node: &SpanNode, exclude: &[&str], dur_ns: &mut u64, counters: &mut CounterSet) {
        if exclude.contains(&node.event.name) {
            *dur_ns = dur_ns.saturating_sub(node.event.dur_ns);
            *counters = counters.saturating_sub(node.event.counters);
            return;
        }
        for child in &node.children {
            subtract(child, exclude, dur_ns, counters);
        }
    }
    fn walk(nodes: &[SpanNode], name: &str, exclude: &[&str], agg: &mut StageAgg) {
        for node in nodes {
            if node.event.name == name {
                let mut dur_ns = node.event.dur_ns;
                let mut counters = node.event.counters;
                for child in &node.children {
                    subtract(child, exclude, &mut dur_ns, &mut counters);
                }
                agg.spans += 1;
                agg.secs += dur_ns as f64 * 1e-9;
                agg.counters = agg.counters.merge(counters);
            } else {
                walk(&node.children, name, exclude, agg);
            }
        }
    }
    walk(&forest, name, exclude, &mut agg);
    agg
}

/// One row of the dissection table.
#[derive(Debug, Clone)]
pub struct DissectionRow {
    /// Display label (paper component name, e.g. `(AS)AT`).
    pub label: &'static str,
    /// Span name the row was built from.
    pub span: &'static str,
    /// Rank with the largest wall-clock total for this stage.
    pub crit_rank: usize,
    /// The limiting rank's wall-clock seconds.
    pub secs: f64,
    /// The limiting rank's deterministic compute seconds (`work_ns`).
    pub compute_secs: f64,
    /// Modeled communication seconds of the limiting rank
    /// (α·msgs + β·bytes with the caller's coefficients).
    pub comm_secs: f64,
    /// The limiting rank's measured blocked-wait seconds.
    pub wait_secs: f64,
    /// The limiting rank's full counter deltas.
    pub counters: CounterSet,
    /// Per-rank wall-clock seconds (index = position in the input slice).
    pub per_rank_secs: Vec<f64>,
}

/// Build dissection rows for `stages` (`(span_name, label)` pairs in
/// display order) from one trace per rank. `alpha`/`beta` are seconds per
/// message / per byte for the modeled comm column (pass 0.0 to disable).
/// Attribution is exclusive across the listed stages: a stage span nested
/// inside another (the streamed pipeline's alignment chunks inside SUMMA)
/// counts only toward its own row, so rows still sum to the run total.
pub fn dissect(
    traces: &[RankTrace],
    stages: &[(&'static str, &'static str)],
    alpha: f64,
    beta: f64,
) -> Vec<DissectionRow> {
    let stage_names: Vec<&str> = stages.iter().map(|&(s, _)| s).collect();
    stages
        .iter()
        .map(|&(span, label)| {
            let aggs: Vec<StageAgg> = traces
                .iter()
                .map(|t| stage_agg_exclusive(t, span, &stage_names, 0))
                .collect();
            let crit = aggs
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.secs.total_cmp(&b.secs))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let a = aggs.get(crit).copied().unwrap_or_default();
            let c = a.counters;
            let msgs = c.msgs_sent.max(c.msgs_recv) as f64;
            let bytes = c.bytes_sent.max(c.bytes_recv) as f64;
            DissectionRow {
                label,
                span,
                crit_rank: traces.get(crit).map(|t| t.rank).unwrap_or(0),
                secs: a.secs,
                compute_secs: c.work_ns as f64 * 1e-9,
                comm_secs: alpha * msgs + beta * bytes,
                wait_secs: c.wait_ns as f64 * 1e-9,
                counters: c,
                per_rank_secs: aggs.iter().map(|a| a.secs).collect(),
            }
        })
        .collect()
}

/// Render rows as a plain-text table: stage, share of total, limiting rank,
/// and that rank's wall/compute/comm/wait seconds plus bytes.
pub fn render_dissection(rows: &[DissectionRow]) -> String {
    use std::fmt::Write as _;
    let total: f64 = rows.iter().map(|r| r.secs).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>7}{:>6}{:>11}{:>11}{:>11}{:>11}{:>12}",
        "component", "%", "crit", "secs", "compute", "comm", "wait", "bytes"
    );
    for r in rows {
        // `r.secs` can be IEEE −0.0 when a caller derives it by exclusive-
        // time subtraction (overlap accounting); `+ 0.0` normalizes the
        // sign so an empty stage renders `0.0%`, not `-0.0%`.
        let pct = if total > 0.0 {
            100.0 * r.secs / total + 0.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<14}{:>6.1}%{:>6}{:>11.4}{:>11.4}{:>11.6}{:>11.4}{:>12}",
            r.label,
            pct,
            r.crit_rank,
            r.secs,
            r.compute_secs,
            r.comm_secs,
            r.wait_secs,
            r.counters.bytes_sent.max(r.counters.bytes_recv)
        );
    }
    let _ = writeln!(
        out,
        "{:<14}{:>6.1}%{:>6}{:>11.4}",
        "total", 100.0, "", total
    );
    out
}

/// Prefix of the per-stage memory gauges the pipeline's allocator windows
/// record (`mem.stage.<stage-span>.<subsystem|total>`).
pub const MEM_STAGE_PREFIX: &str = "mem.stage.";

/// Humanize a byte count in binary units, one decimal (`1.5 MiB`). The
/// single unit table shared by the dissection tables, the monitor
/// renderer (`pcomm::monitor`), and `pastis-top`.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    // Boundary rounding: a value like 1023.96 KiB renders as "1024.0 KiB"
    // under `{:.1}` — promote to the next unit instead when one exists.
    if u + 1 < UNITS.len() && format!("{v:.1}") == "1024.0" {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Render the per-stage peak-live-bytes table from merged metrics: one row
/// per stage that recorded a `mem.stage.<stage>.<subsystem>` gauge (rows
/// follow `stage_order`; stages not listed are appended alphabetically),
/// one column per subsystem that ever peaked above zero, plus `total`.
/// Returns `None` when no stage recorded a memory window — i.e. the run
/// had allocation tracking off.
pub fn render_stage_memory(metrics: &MetricsSnapshot, stage_order: &[&str]) -> Option<String> {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    // stage -> column -> bytes, where column is a subsystem name or "total".
    let mut rows: BTreeMap<&str, BTreeMap<&str, u64>> = BTreeMap::new();
    for (name, &v) in &metrics.gauges {
        let Some(rest) = name.strip_prefix(MEM_STAGE_PREFIX) else {
            continue;
        };
        let Some((stage, col)) = rest.rsplit_once('.') else {
            continue;
        };
        if col != "total" && !crate::alloc::SUBSYSTEMS.contains(&col) {
            continue;
        }
        let e = rows.entry(stage).or_default().entry(col).or_insert(0);
        *e = (*e).max(v.max(0) as u64);
    }
    if rows.is_empty() {
        return None;
    }
    let mut order: Vec<&str> = stage_order
        .iter()
        .copied()
        .filter(|s| rows.contains_key(s))
        .collect();
    for s in rows.keys() {
        if !order.contains(s) {
            order.push(s);
        }
    }
    let cols: Vec<&str> = crate::alloc::SUBSYSTEMS
        .iter()
        .copied()
        .filter(|sub| rows.values().any(|r| r.get(sub).is_some_and(|&v| v > 0)))
        .collect();
    let mut out = String::new();
    let _ = write!(out, "{:<22}", "stage");
    for c in cols.iter().chain(std::iter::once(&"total")) {
        let _ = write!(out, "{c:>11}");
    }
    out.push('\n');
    for stage in order {
        let r = &rows[stage];
        let _ = write!(out, "{stage:<22}");
        for c in cols.iter().chain(std::iter::once(&"total")) {
            let cell = r
                .get(c)
                .map(|&v| human_bytes(v))
                .unwrap_or_else(|| "-".into());
            let _ = write!(out, "{cell:>11}");
        }
        out.push('\n');
    }
    Some(out)
}

/// Render structure watermarks (`(structure, peak heap bytes)` pairs, as
/// produced by [`crate::project::extract_mem_watermarks`]) as a two-column
/// table.
pub fn render_watermarks(watermarks: &[(String, u64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<22}{:>12}", "structure", "peak");
    for (name, bytes) in watermarks {
        let _ = writeln!(out, "{name:<22}{:>12}", human_bytes(*bytes));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;

    fn ev(name: &'static str, seq: u32, dur_ns: u64, c: CounterSet) -> SpanEvent {
        SpanEvent {
            name,
            track: 0,
            depth: 0,
            seq,
            arg: None,
            start_ns: 0,
            dur_ns,
            counters: c,
        }
    }

    fn trace(rank: usize, events: Vec<SpanEvent>) -> RankTrace {
        RankTrace {
            rank,
            events,
            metrics: Default::default(),
            dropped: 0,
        }
    }

    #[test]
    fn aggregates_repeated_spans_and_respects_from_seq() {
        let t = trace(
            0,
            vec![
                ev(
                    "s.x",
                    0,
                    1_000_000_000,
                    CounterSet {
                        work_ns: 10,
                        ..Default::default()
                    },
                ),
                ev(
                    "s.x",
                    5,
                    500_000_000,
                    CounterSet {
                        work_ns: 4,
                        ..Default::default()
                    },
                ),
                ev("s.y", 6, 1, CounterSet::default()),
            ],
        );
        let all = stage_agg(&t, "s.x", 0);
        assert_eq!(all.spans, 2);
        assert!((all.secs - 1.5).abs() < 1e-12);
        assert_eq!(all.counters.work_ns, 14);
        let late = stage_agg(&t, "s.x", 5);
        assert_eq!(late.spans, 1);
        assert_eq!(late.counters.work_ns, 4);
    }

    #[test]
    fn critical_rank_and_split() {
        let t0 = trace(0, vec![ev("p.a", 0, 2_000_000_000, CounterSet::default())]);
        let t1 = trace(
            7,
            vec![ev(
                "p.a",
                0,
                3_000_000_000,
                CounterSet {
                    work_ns: 1_000_000_000,
                    wait_ns: 500_000_000,
                    msgs_sent: 10,
                    bytes_sent: 1_000_000,
                    ..Default::default()
                },
            )],
        );
        let rows = dissect(&[t0, t1], &[("p.a", "a")], 1e-6, 1e-9);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.crit_rank, 7);
        assert!((r.secs - 3.0).abs() < 1e-12);
        assert!((r.compute_secs - 1.0).abs() < 1e-12);
        assert!((r.wait_secs - 0.5).abs() < 1e-12);
        assert!((r.comm_secs - (10.0 * 1e-6 + 1e-3)).abs() < 1e-12);
        assert_eq!(r.per_rank_secs.len(), 2);
        let table = render_dissection(&rows);
        assert!(table.contains("component"));
        assert!(table.contains('a'));
    }

    #[test]
    fn negative_zero_share_renders_as_plain_zero() {
        // Overlap accounting derives some rows' seconds by f64 subtraction,
        // which can leave an empty stage at IEEE −0.0; the rendered share
        // column must read `0.0%`, never `-0.0%`.
        let mk = |label, secs| DissectionRow {
            label,
            span: "s",
            crit_rank: 0,
            secs,
            compute_secs: 0.0,
            comm_secs: 0.0,
            wait_secs: 0.0,
            counters: CounterSet::default(),
            per_rank_secs: vec![secs],
        };
        let rows = vec![mk("busy", 2.0), mk("empty", -0.0)];
        let table = render_dissection(&rows);
        assert!(!table.contains("-0.0%"), "table renders -0.0%:\n{table}");
        assert!(table.contains("0.0%"), "empty stage row missing:\n{table}");
    }

    #[test]
    fn nested_stage_spans_count_once() {
        // summa(align) overlap shape: align's time belongs to the align
        // row only, and summa's row shows its exclusive remainder.
        let deep = |name, depth, seq, dur_ns, work_ns| SpanEvent {
            name,
            track: 0,
            depth,
            seq,
            arg: None,
            start_ns: 0,
            dur_ns,
            counters: CounterSet {
                work_ns,
                ..Default::default()
            },
        };
        let t = trace(
            0,
            vec![
                deep("summa", 0, 0, 5_000_000_000, 50),
                deep("align", 1, 1, 2_000_000_000, 30),
            ],
        );
        let rows = dissect(&[t], &[("summa", "S"), ("align", "A")], 0.0, 0.0);
        assert!((rows[0].secs - 3.0).abs() < 1e-12, "align not excluded");
        assert!((rows[0].compute_secs - 20e-9).abs() < 1e-18);
        assert!((rows[1].secs - 2.0).abs() < 1e-12);
        assert!((rows[1].compute_secs - 30e-9).abs() < 1e-18);
        let total: f64 = rows.iter().map(|r| r.secs).sum();
        assert!((total - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stage_memory_table_renders_in_pipeline_order() {
        let mut m = MetricsSnapshot::default();
        m.gauges.insert("mem.stage.pastis.wait.sparse".into(), 2048);
        m.gauges.insert("mem.stage.pastis.wait.total".into(), 4096);
        m.gauges
            .insert("mem.stage.pastis.fasta.seqstore".into(), 1 << 20);
        m.gauges
            .insert("mem.stage.pastis.fasta.total".into(), 1 << 20);
        m.gauges.insert("unrelated.gauge".into(), 99);
        let order = ["pastis.fasta", "pastis.wait"];
        let t = render_stage_memory(&m, &order).expect("gauges present");
        let fasta = t.find("pastis.fasta").unwrap();
        let wait = t.find("pastis.wait").unwrap();
        assert!(fasta < wait, "rows must follow pipeline order:\n{t}");
        assert!(t.contains("1.0 MiB"), "{t}");
        assert!(t.contains("seqstore") && t.contains("total"), "{t}");
        assert!(!t.contains("unrelated"), "{t}");
        // Subsystems that never peaked are not shown as columns.
        assert!(!t.contains("mcl"), "{t}");
    }

    #[test]
    fn stage_memory_table_absent_without_windows() {
        let m = MetricsSnapshot::default();
        assert!(render_stage_memory(&m, &["pastis.fasta"]).is_none());
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1536), "1.5 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
    }

    /// Values that round to 1024.0 of their unit must promote to the next
    /// unit rather than render an impossible "1024.0 KiB".
    #[test]
    fn human_bytes_boundary_promotes() {
        assert_eq!(human_bytes((1 << 20) - 30), "1.0 MiB"); // 1023.97 KiB
        assert_eq!(human_bytes((1 << 30) - 1024), "1.0 GiB");
        assert_eq!(human_bytes(1023), "1023 B");
        // The top unit has nowhere to promote; keep the raw rendering.
        let top = human_bytes(u64::MAX);
        assert!(top.ends_with("TiB"), "{top}");
    }

    #[test]
    fn watermark_table_lists_structures() {
        let wm = vec![
            ("seqstore.store".to_string(), (2u64) << 20),
            ("sparse.accum".to_string(), 4096u64),
        ];
        let t = render_watermarks(&wm);
        assert!(t.contains("seqstore.store") && t.contains("2.0 MiB"), "{t}");
        assert!(t.contains("sparse.accum") && t.contains("4.0 KiB"), "{t}");
    }
}
