//! `datagen` — synthetic protein datasets standing in for the paper's
//! evaluation data.
//!
//! The paper evaluates on Metaclust50 subsets (runtime/scaling) and on the
//! curated SCOPe set with 4,899 known families (precision/recall). Neither
//! is redistributable at reproduction scale, so this crate generates:
//!
//! - [`metaclust_like`]: unlabeled protein sets with natural amino-acid
//!   frequencies, lengths in a configurable range (the paper notes protein
//!   lengths of 100–1000), and a configurable fraction of mutated family
//!   members — enough shared k-mer structure that the overlap matrix `B`
//!   grows quadratically in sequence count, as observed in §VI-A.
//! - [`scope_like`]: labeled family sets (ancestor + BLOSUM-biased point
//!   mutations and indels per member) for precision/recall experiments.
//!
//! All generation is seeded and deterministic.

mod families;
mod proteins;

pub use families::{scope_like, LabeledDataset, ScopeConfig};
pub use proteins::{metaclust_like, random_protein, MetaclustConfig};
