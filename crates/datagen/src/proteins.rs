//! Random protein generation with natural residue frequencies, and the
//! Metaclust-like unlabeled datasets used for runtime/scaling experiments.

use rand::prelude::*;
use seqstore::FastaRecord;

/// Background amino-acid frequencies (UniProt averages, per mille) in
/// `ARNDCQEGHILKMFPSTWYV` order; ambiguity codes are not generated.
const AA_FREQ: [u32; 20] = [
    83, 55, 40, 54, 14, 39, 68, 71, 23, 60, 97, 58, 24, 39, 47, 66, 53, 11, 29, 69,
];

/// Sample one residue (base index 0..20) from the background distribution.
pub(crate) fn sample_residue(rng: &mut impl Rng) -> u8 {
    let total: u32 = AA_FREQ.iter().sum();
    let mut t = rng.random_range(0..total);
    for (i, &f) in AA_FREQ.iter().enumerate() {
        if t < f {
            return i as u8;
        }
        t -= f;
    }
    unreachable!()
}

/// A random protein of the given length (base indices).
pub fn random_protein(rng: &mut impl Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| sample_residue(rng)).collect()
}

/// Configuration for [`metaclust_like`].
#[derive(Debug, Clone)]
pub struct MetaclustConfig {
    /// RNG seed; same seed + same `n` → identical dataset.
    pub seed: u64,
    /// Sequence length range `[min, max]` (paper: proteins are ~100–1000;
    /// scale down for single-machine experiments).
    pub len_range: (usize, usize),
    /// Fraction of sequences that are mutated copies of earlier sequences
    /// (drives the quadratic growth of shared-k-mer pairs the paper sees).
    pub related_fraction: f64,
    /// Per-residue substitution probability applied to related copies.
    pub mutation_rate: f64,
}

impl Default for MetaclustConfig {
    fn default() -> Self {
        MetaclustConfig {
            seed: 42,
            len_range: (100, 1000),
            related_fraction: 0.3,
            mutation_rate: 0.1,
        }
    }
}

/// Generate `n` unlabeled protein records. A `related_fraction` of them are
/// point-mutated copies of uniformly chosen predecessors, giving the set a
/// realistic mix of homologous pairs and singletons.
pub fn metaclust_like(n: usize, cfg: &MetaclustConfig) -> Vec<FastaRecord> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(n);
    for i in 0..n {
        let seq = if i > 0 && rng.random::<f64>() < cfg.related_fraction {
            let src = rng.random_range(0..i);
            crate::families::mutate(&encoded[src], cfg.mutation_rate, &mut rng)
        } else {
            let len = rng.random_range(cfg.len_range.0..=cfg.len_range.1);
            random_protein(&mut rng, len)
        };
        encoded.push(seq);
    }
    encoded
        .into_iter()
        .enumerate()
        .map(|(i, data)| FastaRecord {
            name: format!("mc{i}"),
            residues: seqstore::decode_seq(&data),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = MetaclustConfig {
            seed: 7,
            len_range: (50, 100),
            ..Default::default()
        };
        let a = metaclust_like(20, &cfg);
        let b = metaclust_like(20, &cfg);
        assert_eq!(a, b);
        let cfg2 = MetaclustConfig { seed: 8, ..cfg };
        let c = metaclust_like(20, &cfg2);
        assert_ne!(a, c);
    }

    #[test]
    fn lengths_in_range() {
        let cfg = MetaclustConfig {
            seed: 1,
            len_range: (60, 80),
            related_fraction: 0.0,
            ..Default::default()
        };
        for r in metaclust_like(50, &cfg) {
            assert!(
                (60..=80).contains(&r.residues.len()),
                "{}",
                r.residues.len()
            );
        }
    }

    #[test]
    fn residues_are_standard() {
        let cfg = MetaclustConfig {
            seed: 2,
            len_range: (50, 60),
            ..Default::default()
        };
        for r in metaclust_like(30, &cfg) {
            for &b in &r.residues {
                let idx = seqstore::aa_index(b).unwrap();
                assert!(idx < 20, "non-standard residue {}", b as char);
            }
        }
    }

    #[test]
    fn frequency_shape_roughly_natural() {
        let mut rng = StdRng::seed_from_u64(3);
        let seq = random_protein(&mut rng, 200_000);
        let mut counts = [0usize; 20];
        for &b in &seq {
            counts[b as usize] += 1;
        }
        // L (index 10) is the most common residue; W (17) the rarest.
        let lmax = counts.iter().enumerate().max_by_key(|&(_, c)| c).unwrap().0;
        let lmin = counts.iter().enumerate().min_by_key(|&(_, c)| c).unwrap().0;
        assert_eq!(lmax, 10);
        assert_eq!(lmin, 17);
    }

    #[test]
    fn related_fraction_creates_similar_pairs() {
        let cfg = MetaclustConfig {
            seed: 4,
            len_range: (80, 120),
            related_fraction: 1.0,
            mutation_rate: 0.02,
        };
        let recs = metaclust_like(5, &cfg);
        // With relatedness 1.0 every sequence after the first is a mutated
        // copy; successive lengths stay similar (indels are bounded).
        for r in &recs[1..] {
            let d = r.residues.len().abs_diff(recs[0].residues.len());
            assert!(d < 40, "length drift {d}");
        }
    }
}
