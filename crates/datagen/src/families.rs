//! SCOPe-like labeled families: one random ancestor per family, members
//! derived by BLOSUM-biased point mutation plus occasional short indels.

use align::BLOSUM62;
use rand::prelude::*;
use seqstore::FastaRecord;

use crate::proteins::{random_protein, sample_residue};

/// Substitute `from` with a residue sampled ∝ 2^(BLOSUM62 score), i.e.
/// evolution-plausible replacements dominate — the same bias substitute
/// k-mers are designed to capture (paper §IV-B).
fn biased_substitution(from: u8, rng: &mut impl Rng) -> u8 {
    // Weights over the 20 standard residues excluding `from`.
    let mut weights = [0f64; 20];
    let mut total = 0f64;
    for (t, w) in weights.iter_mut().enumerate() {
        if t as u8 != from {
            *w = (BLOSUM62.score(from, t as u8) as f64 / 2.0).exp2();
            total += *w;
        }
    }
    let mut pick = rng.random::<f64>() * total;
    for (t, &w) in weights.iter().enumerate() {
        pick -= w;
        if pick <= 0.0 && t as u8 != from {
            return t as u8;
        }
    }
    // Floating-point tail: fall back to the last non-`from` residue.
    if from == 19 {
        18
    } else {
        19
    }
}

/// Mutate a sequence: per-residue substitution at `rate`, plus with
/// probability `rate` one short indel (1–5 residues inserted or deleted).
pub(crate) fn mutate(seq: &[u8], rate: f64, rng: &mut impl Rng) -> Vec<u8> {
    let mut out: Vec<u8> = seq
        .iter()
        .map(|&b| {
            if rng.random::<f64>() < rate {
                biased_substitution(b, rng)
            } else {
                b
            }
        })
        .collect();
    if rng.random::<f64>() < rate && out.len() > 10 {
        let ilen = rng.random_range(1..=5usize);
        let pos = rng.random_range(0..out.len() - ilen);
        if rng.random::<bool>() {
            let insert: Vec<u8> = (0..ilen).map(|_| sample_residue(rng)).collect();
            out.splice(pos..pos, insert);
        } else {
            out.drain(pos..pos + ilen);
        }
    }
    out
}

/// Configuration for [`scope_like`].
#[derive(Debug, Clone)]
pub struct ScopeConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of families (SCOPe has 4,899; scale down proportionally).
    pub families: usize,
    /// Members per family, inclusive range (family sizes vary widely).
    pub members_range: (usize, usize),
    /// Ancestor length range.
    pub len_range: (usize, usize),
    /// Per-member divergence range: each member mutates its ancestor at a
    /// rate drawn uniformly from this interval. Remote homologs (high end)
    /// are what substitute k-mers exist to recover.
    pub divergence: (f64, f64),
    /// Probability that a domain of a family ancestor is drawn from a pool
    /// shared across families (0 disables domain architecture entirely and
    /// ancestors are plain random proteins). Shared domains create partial
    /// cross-family similarity — the false-positive links that make real
    /// SCOPe precision < 1 and clustering non-trivial.
    pub shared_domain_fraction: f64,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            seed: 42,
            families: 50,
            members_range: (3, 16),
            len_range: (80, 250),
            divergence: (0.05, 0.35),
            shared_domain_fraction: 0.0,
        }
    }
}

/// A labeled dataset: records plus, per record, its ground-truth family.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// Sequence records in global id order.
    pub records: Vec<FastaRecord>,
    /// `labels[i]` is the family of `records[i]`.
    pub labels: Vec<usize>,
}

impl LabeledDataset {
    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no sequences were generated.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct families.
    pub fn family_count(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// Generate a SCOPe-like labeled family dataset. Members are shuffled so
/// family ids do not correlate with sequence ids (as in a real database).
pub fn scope_like(cfg: &ScopeConfig) -> LabeledDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Pool of domains families may share (only used when
    // shared_domain_fraction > 0).
    let pool: Vec<Vec<u8>> = (0..(cfg.families / 3).max(4))
        .map(|_| {
            let len = rng.random_range(30..=80);
            random_protein(&mut rng, len)
        })
        .collect();
    let mut entries: Vec<(usize, Vec<u8>)> = Vec::new();
    for fam in 0..cfg.families {
        let ancestor = if cfg.shared_domain_fraction > 0.0 {
            // Domain architecture: 2–4 domains, some from the shared pool.
            let ndom = rng.random_range(2..=4);
            let mut a = Vec::new();
            for _ in 0..ndom {
                if rng.random::<f64>() < cfg.shared_domain_fraction {
                    a.extend_from_slice(pool.choose(&mut rng).unwrap());
                } else {
                    let len = rng.random_range(30..=80);
                    a.extend(random_protein(&mut rng, len));
                }
            }
            a
        } else {
            let len = rng.random_range(cfg.len_range.0..=cfg.len_range.1);
            random_protein(&mut rng, len)
        };
        let members = rng.random_range(cfg.members_range.0..=cfg.members_range.1);
        for _ in 0..members {
            let rate =
                rng.random_range(cfg.divergence.0..cfg.divergence.1.max(cfg.divergence.0 + 1e-9));
            entries.push((fam, mutate(&ancestor, rate, &mut rng)));
        }
    }
    entries.shuffle(&mut rng);
    let mut records = Vec::with_capacity(entries.len());
    let mut labels = Vec::with_capacity(entries.len());
    for (i, (fam, data)) in entries.into_iter().enumerate() {
        records.push(FastaRecord {
            name: format!("fam{fam}_seq{i}"),
            residues: seqstore::decode_seq(&data),
        });
        labels.push(fam);
    }
    LabeledDataset { records, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::{smith_waterman, AlignParams};
    use seqstore::encode_seq;

    #[test]
    fn deterministic() {
        let cfg = ScopeConfig {
            families: 5,
            ..Default::default()
        };
        let a = scope_like(&cfg);
        let b = scope_like(&cfg);
        assert_eq!(a.records, b.records);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn family_count_and_sizes() {
        let cfg = ScopeConfig {
            families: 8,
            members_range: (2, 4),
            ..Default::default()
        };
        let d = scope_like(&cfg);
        assert_eq!(d.family_count(), 8);
        for fam in 0..8 {
            let size = d.labels.iter().filter(|&&l| l == fam).count();
            assert!((2..=4).contains(&size), "family {fam} has {size}");
        }
    }

    #[test]
    fn family_members_are_similar_nonmembers_are_not() {
        let cfg = ScopeConfig {
            seed: 5,
            families: 4,
            members_range: (3, 3),
            len_range: (100, 140),
            divergence: (0.02, 0.10),
            shared_domain_fraction: 0.0,
        };
        let d = scope_like(&cfg);
        let p = AlignParams::default();
        let enc: Vec<Vec<u8>> = d.records.iter().map(|r| encode_seq(&r.residues)).collect();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..enc.len() {
            for j in i + 1..enc.len() {
                let st = smith_waterman(&enc[i], &enc[j], &p);
                if d.labels[i] == d.labels[j] {
                    intra.push(st.ani());
                } else {
                    inter.push(st.ani());
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&intra) > 0.7,
            "intra-family identity too low: {}",
            avg(&intra)
        );
        assert!(
            avg(&inter) < 0.5,
            "inter-family identity too high: {}",
            avg(&inter)
        );
    }

    #[test]
    fn biased_substitution_prefers_conservative_changes() {
        use seqstore::aa_index;
        let mut rng = StdRng::seed_from_u64(6);
        let ile = aa_index(b'I').unwrap();
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[biased_substitution(ile, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[ile as usize], 0, "never substitutes with itself");
        // I's best partner is V (score 3, weight 2^1.5); W (−3, weight
        // 2^−1.5) is 8× less likely in expectation.
        let v = counts[aa_index(b'V').unwrap() as usize];
        let w = counts[aa_index(b'W').unwrap() as usize];
        assert!(v > 5 * w, "V={v} W={w}");
    }

    #[test]
    fn shared_domains_create_cross_family_similarity() {
        let cfg = ScopeConfig {
            seed: 9,
            families: 6,
            members_range: (2, 3),
            divergence: (0.02, 0.05),
            shared_domain_fraction: 0.9,
            ..Default::default()
        };
        let d = scope_like(&cfg);
        // With 90% shared domains, some cross-family pair must share a
        // long exact substring (a barely mutated domain).
        let enc: Vec<Vec<u8>> = d.records.iter().map(|r| encode_seq(&r.residues)).collect();
        let p = AlignParams::default();
        let mut best_cross = 0;
        for i in 0..enc.len() {
            for j in i + 1..enc.len() {
                if d.labels[i] != d.labels[j] {
                    let st = smith_waterman(&enc[i], &enc[j], &p);
                    best_cross = best_cross.max(st.matches);
                }
            }
        }
        assert!(
            best_cross >= 20,
            "no shared-domain signal: best {best_cross}"
        );
    }

    #[test]
    fn zero_shared_fraction_uses_len_range() {
        let cfg = ScopeConfig {
            seed: 10,
            families: 4,
            members_range: (2, 2),
            len_range: (100, 110),
            divergence: (0.0, 0.01),
            shared_domain_fraction: 0.0,
        };
        let d = scope_like(&cfg);
        for r in &d.records {
            assert!(
                (95..=120).contains(&r.residues.len()),
                "{}",
                r.residues.len()
            );
        }
    }

    #[test]
    fn mutate_rate_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = random_protein(&mut rng, 100);
        assert_eq!(mutate(&s, 0.0, &mut rng), s);
    }
}
