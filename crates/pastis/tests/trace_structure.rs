//! Deterministic span structure: the shape of the recorded trace — which
//! spans nest under which, in what order — must not depend on the process
//! count or the rank. [`obs::structure_signature`] collapses runs of
//! identical sibling subtrees, so the q SUMMA stages of a √p × √p grid
//! compare equal across grids (q spans of identical shape on every p).
//!
//! MCL is exercised separately (`mcl.iter` spans): its iteration count
//! depends on floating-point convergence whose reduction order varies with
//! p, so it is deliberately not part of the cross-p fixture.

use datagen::{metaclust_like, MetaclustConfig};
use pastis::{run_pipeline, PastisParams};
use pcomm::World;
use seqstore::write_fasta;

fn dataset() -> Vec<u8> {
    write_fasta(&metaclust_like(
        32,
        &MetaclustConfig {
            seed: 11,
            len_range: (60, 100),
            related_fraction: 0.5,
            mutation_rate: 0.08,
        },
    ))
}

fn signatures(fasta: &[u8], p: usize, params: &PastisParams) -> Vec<String> {
    let runs = World::run(p, |comm| run_pipeline(&comm, fasta, params));
    runs.iter()
        .map(|r| obs::structure_signature(&r.trace.events))
        .collect()
}

#[test]
fn span_structure_is_identical_across_process_counts() {
    let fasta = dataset();
    let params = PastisParams {
        k: 4,
        threads: 1,
        ..Default::default()
    };
    let reference = signatures(&fasta, 1, &params)[0].clone();
    assert!(
        reference.starts_with("pastis.run("),
        "unexpected root: {reference}"
    );
    assert!(
        reference.contains("summa.stage("),
        "no SUMMA stages: {reference}"
    );
    for p in [4usize, 16] {
        for (rank, sig) in signatures(&fasta, p, &params).iter().enumerate() {
            assert_eq!(*sig, reference, "p={p} rank={rank}");
        }
    }
}

#[test]
fn substitute_path_adds_its_stages_deterministically() {
    let fasta = dataset();
    let params = PastisParams {
        k: 4,
        substitutes: 4,
        threads: 1,
        ..Default::default()
    };
    let reference = signatures(&fasta, 1, &params)[0].clone();
    for needle in ["pastis.form_s", "pastis.a_s", "pastis.symmetricize"] {
        assert!(reference.contains(needle), "missing {needle}: {reference}");
    }
    for (rank, sig) in signatures(&fasta, 4, &params).iter().enumerate() {
        assert_eq!(*sig, reference, "rank={rank}");
    }
}

#[test]
fn every_paper_stage_has_a_span() {
    let fasta = dataset();
    let params = PastisParams {
        k: 4,
        substitutes: 4,
        threads: 1,
        ..Default::default()
    };
    let runs = World::run(4, |comm| run_pipeline(&comm, fasta.as_slice(), &params));
    for r in &runs {
        for (span, label) in pastis::Timings::STAGE_SPANS {
            assert!(
                r.trace.events.iter().any(|e| e.name == span),
                "rank {} missing {span} ({label})",
                r.trace.rank
            );
        }
    }
}

#[test]
fn timings_match_trace_stage_sums() {
    let fasta = dataset();
    let params = PastisParams {
        k: 4,
        threads: 1,
        ..Default::default()
    };
    let runs = World::run(4, |comm| run_pipeline(&comm, fasta.as_slice(), &params));
    for r in &runs {
        let rebuilt = pastis::Timings::from_trace(&r.trace, 4);
        assert_eq!(r.timings.align.work_ns, rebuilt.align.work_ns);
        assert_eq!(
            r.timings.spgemm_b.comm.bytes_sent,
            rebuilt.spgemm_b.comm.bytes_sent
        );
        assert!((r.timings.total - rebuilt.total).abs() < 1e-12);
        // Streaming runs alignment chunks inside the SUMMA stage, so the
        // streamed default must report nonzero align time even though the
        // `pastis.align` wrapper is empty.
        assert!(r.timings.align.work_ns > 0, "align attribution lost");
        // The stage spans cover the run: under exclusive attribution
        // (nested stage spans counted once) their wall-clock sum cannot
        // exceed the root span's duration.
        let names: Vec<&str> = pastis::Timings::STAGE_SPANS
            .iter()
            .map(|&(s, _)| s)
            .collect();
        let sum: f64 = names
            .iter()
            .map(|s| obs::dissect::stage_agg_exclusive(&r.trace, s, &names, 0).secs)
            .sum();
        assert!(sum <= r.timings.total + 1e-9, "{sum} > {}", r.timings.total);
    }
}
