//! Out-of-core acceptance: the allocator-measured per-batch peak stays
//! under the budgeted bound (DESIGN.md §15). Meaningful in release with
//! tracking on — the verify.sh out-of-core lane runs it as `ALLOC_TRACK=1
//! cargo test --release` — but self-arms tracking so a plain debug
//! invocation still exercises it.
//!
//! The budget policy mirrors the scaling observatory's `ooc` section:
//! batching can only shrink the *reducible* structures (the pending
//! seed-pair map, the SpGEMM triples and accumulator — the watermark
//! probes measure each), while the resident floor (sequence store, the
//! A/Aᵀ/S matrices, retained edges) is live no matter how narrow the
//! batch. The sizer is budgeted to halve the reducible footprint and the
//! tagging allocator must then observe every batch window's peak at or
//! below `monolithic peak − reducible/2` — window baselines include all
//! live bytes, so this is the real per-rank footprint, not a per-batch
//! delta.

use datagen::{metaclust_like, MetaclustConfig};
use pastis::{batch, run_pipeline, PastisParams};
use pcomm::WorldBuilder;
use seqstore::write_fasta;

/// Watermarked structures the batched driver shrinks (the in-process
/// mirror of `pcomm::OOC_BATCH_SCALED`).
const REDUCIBLE: [&str; 3] = [
    "mem.watermark.pastis.pending",
    "mem.watermark.sparse.accum",
    "mem.watermark.sparse.triples",
];

fn params(budget: Option<u64>) -> PastisParams {
    PastisParams {
        k: 5,
        threads: 1,
        mem_budget_bytes: budget,
        ..Default::default()
    }
}

fn merged_gauges(fasta: &[u8], budget: Option<u64>) -> std::collections::BTreeMap<String, i64> {
    let runs = WorldBuilder::new()
        .checked(false)
        .run(1, |comm| run_pipeline(&comm, fasta, &params(budget)));
    let metrics = obs::MetricsSnapshot::merged(
        &runs
            .iter()
            .map(|r| r.trace.metrics.clone())
            .collect::<Vec<_>>(),
    );
    metrics.gauges
}

#[test]
fn batched_peaks_stay_under_projected_budget() {
    obs::alloc::set_tracking(true);
    let fasta = write_fasta(&metaclust_like(
        600,
        &MetaclustConfig {
            seed: 21,
            len_range: (100, 300),
            related_fraction: 0.3,
            mutation_rate: 0.12,
        },
    ));
    // Monolithic run: the streaming stage's allocator-window peak and the
    // reducible structures' watermark probes.
    let mono = merged_gauges(&fasta, None);
    let mono_peak = *mono
        .get("mem.stage.pastis.spgemm_b.total")
        .expect("monolithic run records the streaming stage window") as u64;
    assert!(mono_peak > 0, "tracking must be armed");
    let reducible: u64 = REDUCIBLE
        .iter()
        .map(|k| {
            *mono
                .get(*k)
                .unwrap_or_else(|| panic!("monolithic run must probe {k}")) as u64
        })
        .sum();
    assert!(reducible > 0 && reducible < mono_peak);

    // Budget the sizer to halve the reducible footprint; the measured
    // bound the batched run must then respect is everything else plus
    // that halved share.
    let sizer_budget = batch::budget_from_projection(reducible, 0.5);
    let bound = mono_peak - reducible / 2;
    let batched = merged_gauges(&fasta, Some(sizer_budget));
    let batch_peaks: Vec<(&str, i64)> = batched
        .iter()
        .filter(|(k, _)| k.starts_with("mem.batch.") && k.ends_with(".total"))
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    assert!(
        batch_peaks.len() >= 2,
        "halving the reducible footprint must cut ≥2 batches (got {batch_peaks:?})"
    );
    for (name, peak) in &batch_peaks {
        assert!(
            (*peak as u64) <= bound,
            "{name}: measured peak {peak} exceeds bound {bound} \
             (monolithic peak {mono_peak}, reducible {reducible})"
        );
    }
    // The batched stage row is the max over batch windows, and batching
    // must actually have reduced the measured footprint.
    let batched_stage = *batched
        .get("mem.stage.pastis.spgemm_b.total")
        .expect("batched run re-emits the stage window") as u64;
    assert!(
        batched_stage <= bound,
        "batched stage peak {batched_stage} exceeds bound {bound}"
    );
    assert!(
        batched_stage < mono_peak,
        "batching did not reduce the measured peak ({batched_stage} vs {mono_peak})"
    );
}
