//! Streamed-vs-staged pipeline equivalence: the overlap pipeline (default,
//! `streaming: true`) folds B = (AS)Aᵀ per SUMMA stage and aligns candidate
//! pairs as soon as their entries are final, while the staged oracle
//! (`streaming: false`) materializes B first and aligns afterwards. The two
//! schedules must produce the *bit-identical* similarity graph: per-entry
//! contributions arrive in stage order in both paths, so every f64 weight
//! folds in the same order.
//!
//! Checked at every p ∈ {1, 4, 16} against a single staged reference, and
//! then under adversarial schedule perturbation (16 seeds) so that the
//! stage-finality drain cannot secretly depend on message arrival order.

use std::sync::OnceLock;

use datagen::{metaclust_like, MetaclustConfig};
use pastis::{run_pipeline, PastisParams};
use pcomm::WorldBuilder;
use proptest::prelude::*;
use seqstore::write_fasta;

const PS: [usize; 3] = [1, 4, 16];

fn dataset() -> &'static [u8] {
    static D: OnceLock<Vec<u8>> = OnceLock::new();
    D.get_or_init(|| {
        write_fasta(&metaclust_like(
            32,
            &MetaclustConfig {
                seed: 11,
                len_range: (60, 100),
                related_fraction: 0.5,
                mutation_rate: 0.08,
            },
        ))
    })
}

fn params(streaming: bool) -> PastisParams {
    PastisParams {
        k: 4,
        threads: 1,
        streaming,
        ..Default::default()
    }
}

/// Global edge set with bit-exact weights.
type EdgeSet = Vec<(u64, u64, u64)>;

fn run_edges(builder: WorldBuilder, p: usize, streaming: bool) -> EdgeSet {
    let params = params(streaming);
    let runs = builder
        .watchdog_ms(5000)
        .run(p, |comm| run_pipeline(&comm, dataset(), &params));
    let mut edges: EdgeSet = runs
        .iter()
        .flat_map(|r| r.edges.iter().map(|&(a, b, w)| (a, b, w.to_bits())))
        .collect();
    edges.sort_unstable();
    edges
}

/// Staged (monolithic-SpGEMM) oracle, recorded once at p = 1 under checked
/// mode.
fn staged_reference() -> &'static EdgeSet {
    static B: OnceLock<EdgeSet> = OnceLock::new();
    B.get_or_init(|| run_edges(WorldBuilder::new().checked(true), 1, false))
}

#[test]
fn streamed_edges_match_staged_at_every_p() {
    let reference = staged_reference();
    assert!(!reference.is_empty(), "staged oracle produced no edges");
    for &p in &PS {
        let staged = run_edges(WorldBuilder::new().checked(true), p, false);
        assert_eq!(&staged, reference, "p={p}: staged path diverged across p");
        let streamed = run_edges(WorldBuilder::new().checked(true), p, true);
        assert_eq!(
            &streamed, reference,
            "p={p}: streamed edge set diverged from staged oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn streamed_pipeline_matches_staged_under_perturbation(seed in 1u64..u64::MAX / 2) {
        for &p in &PS {
            let streamed = run_edges(WorldBuilder::new().perturb(seed), p, true);
            prop_assert_eq!(
                &streamed,
                staged_reference(),
                "seed {} p {}: perturbed streamed edges diverged",
                seed,
                p
            );
        }
    }
}
