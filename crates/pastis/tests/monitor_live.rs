//! Live-plane determinism: the *structure* of the heartbeat snapshots —
//! per-rank stage, progress epoch, done/total items — is a function of
//! the program, not the schedule. Epochs count span opens in logical
//! program order and done/total mirror the alignment counters exactly,
//! so the final snapshot must be bit-identical across perturbation seeds
//! at every world size, under full pcheck conformance checking (the
//! heartbeat channel itself must stay invisible to the ledger and the
//! finalize leak audit). Wall-clock fields (`t_ms`, `live_bytes`,
//! `hb_age_ms`) are explicitly nondeterministic and excluded.

use std::sync::OnceLock;

use datagen::{metaclust_like, MetaclustConfig};
use obs::JsonValue;
use pastis::{run_pipeline, PastisParams};
use pcomm::monitor::{self, MonitorConfig};
use pcomm::WorldBuilder;
use seqstore::write_fasta;

const PS: [usize; 3] = [1, 4, 16];
const SEEDS: [u64; 4] = [1, 2, 3, 4];

fn dataset() -> &'static [u8] {
    static D: OnceLock<Vec<u8>> = OnceLock::new();
    D.get_or_init(|| {
        write_fasta(&metaclust_like(
            32,
            &MetaclustConfig {
                seed: 11,
                len_range: (60, 100),
                related_fraction: 0.5,
                mutation_rate: 0.08,
            },
        ))
    })
}

/// The deterministic slice of one final-snapshot rank row.
type RankShape = (u64, String, u64, u64, u64, bool, bool);

fn shape(doc: &JsonValue) -> Vec<RankShape> {
    let finals = doc.get("final").expect("final snapshot");
    let rows = match finals.get("ranks") {
        Some(JsonValue::Arr(rows)) => rows,
        _ => panic!("final snapshot has no ranks"),
    };
    rows.iter()
        .map(|row| {
            let num = |k: &str| row.get(k).and_then(JsonValue::as_u64).expect(k);
            let flag = |k: &str| match row.get(k) {
                Some(JsonValue::Bool(b)) => *b,
                other => panic!("{k}: {other:?}"),
            };
            let stage = row
                .get("stage")
                .and_then(JsonValue::as_str)
                .expect("stage")
                .to_string();
            (
                num("rank"),
                stage,
                num("epoch"),
                num("done"),
                num("total"),
                flag("active"),
                flag("straggler"),
            )
        })
        .collect()
}

#[test]
fn final_snapshot_structure_is_schedule_independent() {
    let params = PastisParams {
        k: 4,
        threads: 1,
        ..Default::default()
    };
    for p in PS {
        let mut reference: Option<Vec<RankShape>> = None;
        for seed in SEEDS {
            let path = std::env::temp_dir().join(format!(
                "pastis-monitor-live-{}-{p}-{seed}.json",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&path);
            monitor::configure(MonitorConfig {
                path: Some(path.clone()),
                interval_ms: 5,
                ..Default::default()
            });
            // Checked world: the pcheck conformance ledger and the
            // finalize leak audit run with the heartbeat plane active.
            let runs = WorldBuilder::new()
                .checked(true)
                .perturb(seed)
                .watchdog_ms(30_000)
                .run(p, |comm| run_pipeline(&comm, dataset(), &params));
            monitor::deconfigure();

            let doc =
                JsonValue::parse(&std::fs::read_to_string(&path).expect("status.json written"))
                    .expect("status.json parses");
            monitor::validate_status(&doc, true).expect("complete document validates");
            let got = shape(&doc);
            assert_eq!(got.len(), p, "final snapshot covers every rank");
            // Progress accounting is exact: the ranks' done items sum to
            // the run's global alignment counter.
            let done_sum: u64 = got.iter().map(|r| r.3).sum();
            assert_eq!(done_sum, runs[0].counters.alignments_global);
            for r in &got {
                assert!(!r.5, "final snapshot rank {} still active", r.0);
                assert!(!r.6, "finished rank {} flagged straggler", r.0);
            }
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "final snapshot structure diverged at p={p} seed={seed}"
                ),
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}
