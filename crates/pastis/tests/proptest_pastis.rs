//! Property-based tests of the PASTIS value types and semirings: the
//! SeedPair fold is associative (so any SpGEMM accumulation order yields
//! the same pair summary), and the AS "closest k-mer" fold is a proper
//! commutative minimum.

use pastis::{AsSemiring, ExactSemiring, SeedPair, SubPos};
use proptest::prelude::*;
use sparse::Semiring;

fn seedpair_strategy() -> impl Strategy<Value = SeedPair> {
    proptest::collection::vec((0u32..50, 0u32..50), 1..5).prop_map(|seeds| {
        let mut p = SeedPair::single(seeds[0].0, seeds[0].1);
        for &(a, b) in &seeds[1..] {
            p.merge(SeedPair::single(a, b));
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn seedpair_merge_is_associative(
        a in seedpair_strategy(),
        b in seedpair_strategy(),
        c in seedpair_strategy(),
    ) {
        let mut left = a;
        left.merge(b);
        left.merge(c);
        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn seedpair_invariants(pairs in proptest::collection::vec((0u32..30, 0u32..30), 1..20)) {
        let sr = ExactSemiring;
        let mut acc = sr.multiply(&pairs[0].0, &pairs[0].1).unwrap();
        for &(a, b) in &pairs[1..] {
            sr.add(&mut acc, sr.multiply(&a, &b).unwrap());
        }
        prop_assert_eq!(acc.count as usize, pairs.len());
        prop_assert!(acc.seeds().len() <= 2);
        prop_assert!(!acc.seeds().is_empty());
        // Stored seeds are among the contributed ones.
        for s in acc.seeds() {
            prop_assert!(pairs.contains(s));
        }
        // First contribution's seed is always retained (first-come rule).
        prop_assert_eq!(acc.seeds()[0], pairs[0]);
    }

    #[test]
    fn subpos_fold_is_commutative_min(
        items in proptest::collection::vec((0u32..100, 0u32..40), 1..15),
    ) {
        let sr = AsSemiring;
        let fold = |order: &[(u32, u32)]| {
            let mut acc = SubPos { pos: order[0].0, dist: order[0].1 };
            for &(p, d) in &order[1..] {
                sr.add(&mut acc, SubPos { pos: p, dist: d });
            }
            acc
        };
        let forward = fold(&items);
        let mut rev = items.clone();
        rev.reverse();
        let backward = fold(&rev);
        prop_assert_eq!(forward, backward);
        // It is the (dist, pos)-minimum of the contributions.
        let want = items.iter().map(|&(p, d)| (d, p)).min().unwrap();
        prop_assert_eq!((forward.dist, forward.pos), want);
    }

    #[test]
    fn swapped_is_involution(a in seedpair_strategy()) {
        prop_assert_eq!(a.swapped().swapped(), a);
    }
}
