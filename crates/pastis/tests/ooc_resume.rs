//! Kill-safe checkpoint/resume (DESIGN.md §15): a batched run checkpoints
//! every completed batch (per-rank shards + rank-0 manifest, committed
//! tmp-then-rename), so a run killed mid-flight resumes after the last
//! complete batch and still produces the monolithic output byte for byte.
//!
//! Exercised against the real `pastis` binary: the `PASTIS_HANG_AFTER_BATCH`
//! hook parks every rank after batch k's manifest commit, the test SIGKILLs
//! the parked process (the hard-failure mode `kill -9` / OOM-killer
//! deliver), and the resumed invocation must converge to the reference.
//! The corruption case flips one byte in a durable shard and checks both
//! that the checksum rejects it and that the resumed run recomputes the
//! batch rather than trusting the manifest.

use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use datagen::{metaclust_like, MetaclustConfig};
use pastis::ckpt;
use proptest::prelude::*;
use seqstore::write_fasta;

const RANKS: &str = "4";
const BUDGET: &str = "96k";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pastis")
}

/// Scratch directory for this test process (removed best-effort on rerun).
fn scratch() -> &'static Path {
    static D: OnceLock<PathBuf> = OnceLock::new();
    D.get_or_init(|| {
        let d = std::env::temp_dir().join(format!("pastis-ooc-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create scratch dir");
        d
    })
}

fn fasta_path() -> &'static Path {
    static F: OnceLock<PathBuf> = OnceLock::new();
    F.get_or_init(|| {
        let fasta = write_fasta(&metaclust_like(
            50,
            &MetaclustConfig {
                seed: 9,
                len_range: (100, 300),
                related_fraction: 0.3,
                mutation_rate: 0.12,
            },
        ));
        let p = scratch().join("input.fasta");
        std::fs::write(&p, fasta).expect("write fasta");
        p
    })
}

/// Base invocation; every run is unchecked (`PCHECK=0`) — the resume
/// protocol is what is under test, and checked-mode collective conformance
/// of the batched driver is covered in-process by `ooc_equivalence.rs`.
fn cmd(out: &Path) -> Command {
    let mut c = Command::new(bin());
    c.arg("--input")
        .arg(fasta_path())
        .arg("--output")
        .arg(out)
        .args(["--ranks", RANKS, "--k", "5", "--quiet"])
        .env("PCHECK", "0");
    c
}

/// Monolithic reference output (no budget, no checkpointing).
fn reference() -> &'static Vec<u8> {
    static R: OnceLock<Vec<u8>> = OnceLock::new();
    R.get_or_init(|| {
        let out = scratch().join("mono.tsv");
        let st = cmd(&out).status().expect("run monolithic pastis");
        assert!(st.success(), "monolithic run failed: {st}");
        let bytes = std::fs::read(&out).expect("read monolithic output");
        assert!(!bytes.is_empty(), "monolithic run produced no edges");
        bytes
    })
}

/// Poll until the manifest lists batch `k` as complete (its commit
/// strictly precedes the hang hook, so this always terminates while the
/// hung process is still alive).
fn wait_for_batch(dir: &Path, k: usize) -> ckpt::Manifest {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(m) = ckpt::load_manifest(dir) {
            if m.completed.iter().any(|b| b.index == k) {
                return m;
            }
        }
        assert!(
            Instant::now() < deadline,
            "batch {k} never reached the manifest in {}",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn resume_and_compare(ckpt_dir: &Path, out: &Path) {
    let st = cmd(out)
        .args(["--mem-budget", BUDGET])
        .arg("--ckpt-dir")
        .arg(ckpt_dir)
        .status()
        .expect("run resumed pastis");
    assert!(st.success(), "resumed run failed: {st}");
    assert_eq!(
        std::fs::read(out).expect("read resumed output"),
        *reference(),
        "resumed output diverged from the monolithic reference"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn sigkill_after_any_batch_resumes_bit_identically(k in 0usize..4) {
        let dir = scratch().join(format!("kill-{k}"));
        let _ = std::fs::remove_dir_all(&dir);
        let out = scratch().join(format!("kill-{k}.tsv"));
        // Proptest may revisit the same k; drop the previous case's output.
        let _ = std::fs::remove_file(&out);
        // Launch a budgeted run that parks itself after batch k commits,
        // then deliver the SIGKILL a crash would.
        let mut child = cmd(&out)
            .args(["--mem-budget", BUDGET])
            .arg("--ckpt-dir")
            .arg(&dir)
            .env("PASTIS_HANG_AFTER_BATCH", k.to_string())
            .spawn()
            .expect("spawn hanging pastis");
        let manifest = wait_for_batch(&dir, k);
        prop_assert!(
            manifest.n_batches > k + 1,
            "recipe must leave work after batch {k} (plan has {})",
            manifest.n_batches
        );
        child.kill().expect("SIGKILL hung pastis");
        let _ = child.wait();
        // The killed run never wrote its output.
        prop_assert!(!out.exists(), "killed run must not have produced output");
        resume_and_compare(&dir, &out);
    }
}

#[test]
fn corrupted_shard_is_rejected_and_recomputed() {
    let dir = scratch().join("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let out = scratch().join("corrupt.tsv");
    // The abort flavor of the hook: the process dies by its own hand right
    // after batch 1 commits (covers the `std::process::abort` path).
    let st = cmd(&out)
        .args(["--mem-budget", BUDGET])
        .arg("--ckpt-dir")
        .arg(&dir)
        .env("PASTIS_KILL_AFTER_BATCH", "1")
        .status()
        .expect("run aborting pastis");
    assert!(!st.success(), "PASTIS_KILL_AFTER_BATCH run must die");
    let manifest = ckpt::load_manifest(&dir).expect("manifest survives the abort");
    let rec = manifest
        .completed
        .iter()
        .find(|b| b.index == 0)
        .expect("batch 0 committed")
        .clone();

    // Flip one byte mid-file in rank 2's batch-0 shard.
    let shard = ckpt::shard_path(&dir, 0, 2);
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&shard)
        .expect("open shard");
    let len = f.metadata().expect("stat shard").len();
    assert!(len > 0, "shard is empty");
    let mut byte = [0u8];
    f.seek(SeekFrom::Start(len / 2)).unwrap();
    f.read_exact(&mut byte).unwrap();
    f.seek(SeekFrom::Start(len / 2)).unwrap();
    f.write_all(&[byte[0] ^ 0x01]).unwrap();
    drop(f);

    // The checksum rejects the tampered shard outright…
    let sr = rec.shard(2).expect("rank 2 shard record");
    assert!(
        ckpt::read_shard(&dir, 0, sr).is_err(),
        "tampered shard must fail its checksum"
    );
    // …and the resumed run recomputes the batch instead of trusting the
    // manifest, converging to the reference anyway.
    resume_and_compare(&dir, &out);
}
