//! Batched ≡ monolithic bit-identity (DESIGN.md §15): the out-of-core
//! driver tiles B's columns into budget-sized batches and runs the SUMMA
//! stream once per batch against a column-restricted Aᵀ. Batches tile the
//! column space and per-entry fold order is unchanged, so the merged edge
//! set must match the monolithic run bit for bit — at every batch shape
//! (single-column, uneven, full-width), every grid size, and under
//! adversarial schedule perturbation.

use std::sync::OnceLock;

use datagen::{metaclust_like, MetaclustConfig};
use pastis::{run_pipeline, PastisParams};
use pcomm::WorldBuilder;
use proptest::prelude::*;
use seqstore::write_fasta;

const PS: [usize; 3] = [1, 4, 16];

/// Budgets forcing the three batch shapes: 0 → one column per batch,
/// a mid-size budget → several uneven batches, `None` → monolithic
/// reference (u64::MAX would be a single full-width batch; both are
/// covered below).
const UNEVEN_BUDGET: u64 = 64 * 1024;

fn dataset() -> &'static [u8] {
    static D: OnceLock<Vec<u8>> = OnceLock::new();
    D.get_or_init(|| {
        write_fasta(&metaclust_like(
            32,
            &MetaclustConfig {
                seed: 11,
                len_range: (60, 100),
                related_fraction: 0.5,
                mutation_rate: 0.08,
            },
        ))
    })
}

fn params(budget: Option<u64>) -> PastisParams {
    PastisParams {
        k: 4,
        threads: 1,
        mem_budget_bytes: budget,
        ..Default::default()
    }
}

/// Global edge set with bit-exact weights.
type EdgeSet = Vec<(u64, u64, u64)>;

fn run_edges(builder: WorldBuilder, p: usize, budget: Option<u64>) -> EdgeSet {
    let params = params(budget);
    let runs = builder
        .watchdog_ms(5000)
        .run(p, |comm| run_pipeline(&comm, dataset(), &params));
    let mut edges: EdgeSet = runs
        .iter()
        .flat_map(|r| r.edges.iter().map(|&(a, b, w)| (a, b, w.to_bits())))
        .collect();
    edges.sort_unstable();
    edges
}

/// Monolithic streaming reference at p = 1 under checked mode.
fn monolithic_reference() -> &'static EdgeSet {
    static B: OnceLock<EdgeSet> = OnceLock::new();
    B.get_or_init(|| run_edges(WorldBuilder::new().checked(true), 1, None))
}

#[test]
fn batched_edges_match_monolithic_at_every_p_and_batch_shape() {
    let reference = monolithic_reference();
    assert!(!reference.is_empty(), "monolithic run produced no edges");
    // Budget 0: the sizer floors at one column per batch. A huge budget:
    // the plan is a single full-width batch (the driver engages but must
    // match the fast path exactly).
    for &budget in &[0, UNEVEN_BUDGET, u64::MAX] {
        for &p in &PS {
            let batched = run_edges(WorldBuilder::new().checked(true), p, Some(budget));
            assert_eq!(
                &batched, reference,
                "p={p} budget={budget}: batched edge set diverged from monolithic"
            );
        }
    }
}

#[test]
fn counters_survive_batching() {
    let p = 4;
    let mono = WorldBuilder::new()
        .checked(true)
        .watchdog_ms(5000)
        .run(p, |comm| run_pipeline(&comm, dataset(), &params(None)));
    let batched = WorldBuilder::new()
        .checked(true)
        .watchdog_ms(5000)
        .run(p, |comm| {
            run_pipeline(&comm, dataset(), &params(Some(UNEVEN_BUDGET)))
        });
    let c0 = mono[0].counters;
    let c1 = batched[0].counters;
    assert_eq!(c0.nnz_b, c1.nnz_b, "drained B nonzeros must agree");
    assert_eq!(c0.alignments_global, c1.alignments_global);
    assert_eq!(c0.edges_global, c1.edges_global);
    assert_eq!(c0.prefilter_passed_global, c1.prefilter_passed_global);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn batched_pipeline_matches_monolithic_under_perturbation(seed in 1u64..u64::MAX / 2) {
        for &p in &PS {
            let batched = run_edges(WorldBuilder::new().perturb(seed), p, Some(UNEVEN_BUDGET));
            prop_assert_eq!(
                &batched,
                monolithic_reference(),
                "seed {} p {}: perturbed batched edges diverged",
                seed,
                p
            );
        }
    }
}
