//! Schedule-perturbation determinism: the pipeline's protein similarity
//! graph and its trace structure must be *bit-identical* under adversarial
//! scheduling. `WorldBuilder::perturb(seed)` injects yields, short sleeps,
//! and drain-first mailbox polling at every messaging point; if any stage
//! secretly depended on message arrival order (instead of the (src, tag)
//! FIFO matching the runtime guarantees), some seed here would expose it as
//! a diff.
//!
//! The property runs ≥16 seeds at every p ∈ {1, 4, 16} and compares f64
//! edge weights by their raw bit patterns — "approximately equal" would hide
//! exactly the reduction-order bugs this test exists to catch.

use std::sync::OnceLock;

use datagen::{metaclust_like, MetaclustConfig};
use pastis::{run_pipeline, PastisParams};
use pcomm::WorldBuilder;
use proptest::prelude::*;
use seqstore::write_fasta;

const PS: [usize; 3] = [1, 4, 16];

fn dataset() -> &'static [u8] {
    static D: OnceLock<Vec<u8>> = OnceLock::new();
    D.get_or_init(|| {
        write_fasta(&metaclust_like(
            32,
            &MetaclustConfig {
                seed: 11,
                len_range: (60, 100),
                related_fraction: 0.5,
                mutation_rate: 0.08,
            },
        ))
    })
}

fn params() -> PastisParams {
    PastisParams {
        k: 4,
        threads: 1,
        ..Default::default()
    }
}

/// Global edge set with bit-exact weights, plus each rank's span-structure
/// signature.
type RunShape = (Vec<(u64, u64, u64)>, Vec<String>);

/// Run the pipeline on `p` ranks and reduce it to comparable form.
fn run_world(builder: WorldBuilder, p: usize) -> RunShape {
    let params = params();
    let runs = builder
        .watchdog_ms(5000)
        .run(p, |comm| run_pipeline(&comm, dataset(), &params));
    let mut edges: Vec<(u64, u64, u64)> = runs
        .iter()
        .flat_map(|r| r.edges.iter().map(|&(a, b, w)| (a, b, w.to_bits())))
        .collect();
    edges.sort_unstable();
    let sigs = runs
        .iter()
        .map(|r| obs::structure_signature(&r.trace.events))
        .collect();
    (edges, sigs)
}

/// Unperturbed (but still checked) reference per process count.
fn baseline(pi: usize) -> &'static RunShape {
    static B: OnceLock<Vec<RunShape>> = OnceLock::new();
    &B.get_or_init(|| {
        PS.iter()
            .map(|&p| run_world(WorldBuilder::new().checked(true), p))
            .collect()
    })[pi]
}

#[test]
fn unperturbed_edge_set_is_independent_of_p() {
    let reference = &baseline(0).0;
    assert!(!reference.is_empty(), "pipeline produced no edges");
    for (pi, &p) in PS.iter().enumerate().skip(1) {
        assert_eq!(&baseline(pi).0, reference, "p={p} edge set diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn pipeline_is_bit_identical_under_perturbation(seed in 1u64..u64::MAX / 2) {
        for (pi, &p) in PS.iter().enumerate() {
            let (edges, sigs) = run_world(WorldBuilder::new().perturb(seed), p);
            let (ref_edges, ref_sigs) = baseline(pi);
            prop_assert_eq!(&edges, ref_edges, "seed {} p {}: edge set diverged", seed, p);
            prop_assert_eq!(&sigs, ref_sigs, "seed {} p {}: trace structure diverged", seed, p);
        }
    }
}
