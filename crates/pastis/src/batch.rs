//! Out-of-core batch sizer (DESIGN.md §15).
//!
//! The extreme-scale PASTIS successor (arXiv:2303.01845) bounds the memory
//! of any one overlap SpGEMM by splitting the target sequences into column
//! batches. This module is the sizer: it estimates, per global column `j`
//! of `B = A·Aᵀ`, how many multiply flops the column attracts — the flop
//! count upper-bounds the partial triples the SUMMA stream materializes
//! for that column — and greedily packs contiguous columns into batches
//! whose estimated per-rank footprint stays under the caller's byte
//! budget.
//!
//! The estimate is collective and deterministic: every rank derives the
//! identical full-length weight vector from three allgathers, so every
//! rank computes the identical plan with no further agreement round.

use std::collections::HashMap;

use pcomm::Grid;
use sparse::DistMat;

/// Bytes charged per estimated multiply flop when sizing a batch.
///
/// One flop can contribute a `(u32, u64, SeedPair)` stage triple (~40
/// bytes payload) that transiently coexists with its pending-map entry
/// (~40 bytes + B-tree overhead), and `Vec` growth doubling can briefly
/// hold both the old and new triple buffers. 128 bytes/flop covers the
/// sum with allocator slack; the release `ALLOC_TRACK=1` acceptance test
/// (`ooc_budget.rs`) checks the measured peak stays under budgets sized
/// with this constant.
pub const OOC_BYTES_PER_FLOP: u64 = 128;

/// A batched-run plan: contiguous global column ranges of `B`, ascending,
/// covering the full width. Identical on every rank of the grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// The per-rank byte budget the plan was sized for.
    pub budget_bytes: u64,
    /// Column ranges `[start, end)` of each batch.
    pub ranges: Vec<(u64, u64)>,
    /// Estimated per-rank peak bytes of each batch (same indexing as
    /// `ranges`). A batch of a single column may exceed the budget — one
    /// column is the partitioning floor.
    pub est_bytes: Vec<u64>,
}

/// Size the batches for `B = A·Aᵀ` from the distributed `Aᵀ` operand.
/// Collective over the grid; every rank returns the identical plan.
///
/// Column `j` of `B` accumulates one flop per (k-mer `k` in sequence `j`,
/// occurrence of `k` anywhere), i.e. `w[j] = Σ_{k: Aᵀ(k,j)≠0}
/// nnz(Aᵀ(k,·))`. The three allgathers assemble: global per-row counts of
/// `Aᵀ` within each grid row, then per-column weights summed down each
/// grid column, then the full-length weight vector along the grid row.
pub fn plan(grid: &Grid, a_t: &DistMat<u32>, budget_bytes: u64) -> BatchPlan {
    let _span = obs::span!("pastis.batch_plan");
    let weights = column_weights(grid, a_t);
    let (ranges, est_bytes) = partition(&weights, grid.q(), budget_bytes);
    BatchPlan {
        budget_bytes,
        ranges,
        est_bytes,
    }
}

/// Full-length flop-weight vector for `B`'s columns (see [`plan`]).
/// Collective; identical on every rank.
fn column_weights(grid: &Grid, a_t: &DistMat<u32>) -> Vec<u64> {
    // 1. Global nonzero count of each Aᵀ row present in my row block: the
    //    ranks of my grid row hold the other column slices of the same
    //    rows, so an allgather along the row communicator completes the
    //    counts. Hypersparse row space (24^k) → hashmap, exchanged as
    //    sorted pairs.
    let local_counts: Vec<(u32, u64)> = {
        let mut m: HashMap<u32, u64> = HashMap::new();
        for (r, _, _) in a_t.local().iter() {
            *m.entry(r).or_insert(0) += 1;
        }
        let mut v: Vec<(u32, u64)> = m.into_iter().collect();
        v.sort_unstable();
        v
    };
    let mut row_nnz: HashMap<u32, u64> = HashMap::new();
    for (r, c) in grid
        .row_comm()
        .allgather(local_counts)
        .into_iter()
        .flatten()
    {
        *row_nnz.entry(r).or_insert(0) += c;
    }
    // 2. Per-column weights of my column block, then summed down my grid
    //    column (those ranks hold the other row slices of the same
    //    columns).
    let (c0, c1) = a_t.col_range();
    let mut w = vec![0u64; (c1 - c0) as usize];
    for (r, c, _) in a_t.local().iter() {
        w[c as usize] += row_nnz[&r];
    }
    let mut col_block = vec![0u64; w.len()];
    for part in grid.col_comm().allgather(w) {
        for (acc, x) in col_block.iter_mut().zip(part) {
            *acc += x;
        }
    }
    // 3. Concatenate the column blocks along my grid row (subcommunicator
    //    ranks are ordered by grid column, and column blocks are
    //    contiguous ascending) into the full-length vector.
    grid.row_comm()
        .allgather(col_block)
        .into_iter()
        .flatten()
        .collect()
}

/// Greedily pack columns into contiguous batches whose estimated per-rank
/// bytes stay under `budget_bytes`, with a floor of one column per batch.
/// Returns `(ranges, est_bytes)`.
///
/// The per-rank share divides by `q` (not `p`): one column of `B` lives in
/// a single grid-column block, so a narrow batch concentrates its triples
/// on the `q` ranks of one grid column — `Σw·bytes/q` is the worst-case
/// per-rank footprint, not the mean `Σw·bytes/p`.
pub fn partition(weights: &[u64], q: usize, budget_bytes: u64) -> (Vec<(u64, u64)>, Vec<u64>) {
    if weights.is_empty() {
        return (vec![(0, 0)], vec![0]);
    }
    let col_bytes = |w: u64| (w * OOC_BYTES_PER_FLOP).div_ceil(q as u64);
    let mut ranges = Vec::new();
    let mut est = Vec::new();
    let mut start = 0u64;
    let mut acc = 0u64;
    for (j, &w) in weights.iter().enumerate() {
        let c = col_bytes(w);
        if j as u64 > start && acc.saturating_add(c) > budget_bytes {
            ranges.push((start, j as u64));
            est.push(acc);
            start = j as u64;
            acc = 0;
        }
        acc = acc.saturating_add(c);
    }
    ranges.push((start, weights.len() as u64));
    est.push(acc);
    (ranges, est)
}

/// Derive a budget from a recorded memory projection: the
/// `pcomm::project_mem` per-rank peak at the target grid, scaled by
/// `headroom` (e.g. `0.5` batches the product into half the projected
/// monolithic footprint). This is the default policy the scaling
/// observatory's `ooc` section uses at the paper's node counts.
pub fn budget_from_projection(projected_peak_bytes: u64, headroom: f64) -> u64 {
    ((projected_peak_bytes as f64) * headroom).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(ranges: &[(u64, u64)], n: u64) {
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges must tile contiguously");
        }
        for &(a, b) in ranges {
            assert!(a < b, "empty batch ({a},{b})");
        }
    }

    #[test]
    fn partition_tiles_and_respects_budget() {
        let w = [5u64, 1, 9, 2, 2, 2, 7, 0, 3];
        let q = 2;
        let budget = 4 * OOC_BYTES_PER_FLOP;
        let (ranges, est) = partition(&w, q, budget);
        flat(&ranges, w.len() as u64);
        for (&(a, b), &e) in ranges.iter().zip(&est) {
            let exact: u64 = w[a as usize..b as usize]
                .iter()
                .map(|&x| (x * OOC_BYTES_PER_FLOP).div_ceil(q as u64))
                .sum();
            assert_eq!(e, exact);
            // Multi-column batches stay under budget; a single column may
            // legitimately exceed it (the partitioning floor).
            if b - a > 1 {
                assert!(e <= budget, "batch ({a},{b}) est {e} > budget {budget}");
            }
        }
    }

    #[test]
    fn zero_budget_degenerates_to_single_columns() {
        let w = [3u64, 3, 3, 3];
        let (ranges, _) = partition(&w, 1, 0);
        flat(&ranges, 4);
        assert_eq!(ranges.len(), 4);
    }

    #[test]
    fn huge_budget_is_one_batch() {
        let w = [3u64, 3, 3, 3];
        let (ranges, est) = partition(&w, 1, u64::MAX);
        assert_eq!(ranges, vec![(0, 4)]);
        assert_eq!(est, vec![12 * OOC_BYTES_PER_FLOP]);
    }

    #[test]
    fn empty_width_yields_one_empty_range() {
        let (ranges, est) = partition(&[], 3, 0);
        assert_eq!(ranges, vec![(0, 0)]);
        assert_eq!(est, vec![0]);
    }

    #[test]
    fn budget_from_projection_scales_and_floors() {
        assert_eq!(budget_from_projection(1000, 0.5), 500);
        assert_eq!(budget_from_projection(0, 0.5), 1);
    }
}
