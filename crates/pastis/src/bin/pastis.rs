//! `pastis` — command-line entry point: build a protein similarity graph
//! from a FASTA file on a simulated process grid.
//!
//! ```text
//! pastis --input proteins.fasta [--output psg.tsv] [--ranks 4] [--k 6]
//!        [--subs 25] [--mode xd|sw] [--ck N] [--measure ani|ns]
//!        [--min-ani 0.3] [--min-cov 0.7] [--max-kmer-freq N] [--threads N] [--reduced]
//!        [--trace trace.json] [--cluster] [--monitor]
//!        [--mem-budget SIZE] [--ckpt-dir DIR]
//! ```
//!
//! Output: one `name_i <TAB> name_j <TAB> weight` line per similarity edge
//! (to stdout when `--output` is omitted). The edge set is independent of
//! `--ranks`.
//!
//! `--trace <path>` records every rank's spans and writes a Perfetto
//! `traceEvents` JSON (load it at <https://ui.perfetto.dev>), plus a
//! critical-path dissection table and per-stage rank-skew tables on
//! stderr. `--cluster` feeds the graph to distributed Markov clustering,
//! whose per-iteration spans land in the same trace.
//!
//! `--monitor` arms the live telemetry plane: a heartbeat thread appends
//! per-rank progress snapshots to `status.json` next to the output
//! (`PASTIS_MONITOR_MS` sets the period, default 200), renders a
//! refreshing per-rank table to stderr unless `--quiet`, and the document
//! is schema-validated and reconciled against the run totals on exit
//! (watch it live from another terminal with `pastis-top`).
//!
//! `--mem-budget SIZE` (bytes, `k`/`m`/`g` suffixes) arms the out-of-core
//! driver: B's columns are computed in budget-sized batches (DESIGN.md
//! §15) with a bit-identical edge set. `--ckpt-dir DIR` checkpoints each
//! completed batch there; rerunning the same command resumes after the
//! last complete batch.

use std::io::Write as _;
use std::process::exit;
use std::rc::Rc;

use align::SimilarityMeasure;
use pastis::{run_pipeline, AlignMode, PastisParams, Timings};
use pcomm::{Grid, World};

struct Cli {
    input: String,
    output: Option<String>,
    ranks: usize,
    params: PastisParams,
    quiet: bool,
    trace: Option<String>,
    cluster: bool,
    monitor: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pastis --input <fasta> [--output <tsv>] [--ranks N] [--k N] \
         [--subs N] [--mode xd|sw] [--ck N] [--measure ani|ns] [--min-ani F] \
         [--min-cov F] [--max-kmer-freq N] [--threads N] [--reduced] [--quiet] \
         [--trace <json>] [--cluster] [--monitor] [--mem-budget SIZE[k|m|g]] \
         [--ckpt-dir <dir>]"
    );
    exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut input = None;
    let mut output = None;
    let mut ranks = 1usize;
    let mut quiet = false;
    let mut trace = None;
    let mut cluster = false;
    let mut monitor = false;
    let mut params = PastisParams::default();
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--input" => input = Some(val()),
            "--output" => output = Some(val()),
            "--ranks" => ranks = val().parse().unwrap_or_else(|_| usage()),
            "--k" => params.k = val().parse().unwrap_or_else(|_| usage()),
            "--subs" => params.substitutes = val().parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                params.mode = match val().as_str() {
                    "xd" => AlignMode::XDrop,
                    "sw" => AlignMode::SmithWaterman,
                    "none" => AlignMode::None,
                    _ => usage(),
                }
            }
            "--ck" => params.common_kmer_threshold = val().parse().unwrap_or_else(|_| usage()),
            "--measure" => {
                params.measure = match val().as_str() {
                    "ani" => SimilarityMeasure::Ani,
                    "ns" => SimilarityMeasure::NormalizedScore,
                    _ => usage(),
                }
            }
            "--min-ani" => params.min_ani = val().parse().unwrap_or_else(|_| usage()),
            "--min-cov" => params.min_coverage = val().parse().unwrap_or_else(|_| usage()),
            "--max-kmer-freq" => {
                params.max_kmer_frequency = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--threads" => params.threads = val().parse().unwrap_or_else(|_| usage()),
            "--reduced" => params.reduced_alphabet = true,
            "--mem-budget" => {
                params.mem_budget_bytes = Some(parse_size(&val()).unwrap_or_else(|| usage()))
            }
            "--ckpt-dir" => params.ckpt_dir = Some(std::path::PathBuf::from(val())),
            "--quiet" => quiet = true,
            "--trace" => trace = Some(val()),
            "--cluster" => cluster = true,
            "--monitor" => monitor = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let input = input.unwrap_or_else(|| usage());
    let q = (ranks as f64).sqrt().round() as usize;
    if q * q != ranks {
        eprintln!("--ranks must be a perfect square (got {ranks})");
        exit(2);
    }
    Cli {
        input,
        output,
        ranks,
        params,
        quiet,
        trace,
        cluster,
        monitor,
    }
}

/// Parse a byte size with optional `k`/`m`/`g` (binary) suffix.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1u64 << 10),
        b'm' | b'M' => (&s[..s.len() - 1], 1 << 20),
        b'g' | b'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n.saturating_mul(mult))
}

/// Stage spans of the per-stage memory table, in pipeline order (the nine
/// `stage()` wrappers of `run_pipeline`; the streamed shape folds alignment
/// into `pastis.spgemm_b`, so its `pastis.align` row is empty).
const MEM_STAGE_ORDER: [&str; 9] = [
    "pastis.fasta",
    "pastis.form_a",
    "pastis.tr_a",
    "pastis.form_s",
    "pastis.a_s",
    "pastis.spgemm_b",
    "pastis.symmetricize",
    "pastis.wait",
    "pastis.align",
];

/// Monitor self-check: parse and schema-validate `status.json`, then
/// reconcile the final snapshot against the finished run — every rank
/// present and retired, and the per-rank `done` items summing to the
/// run's global alignment count (the trace-total consistency the verify
/// lane gates on).
fn check_status(
    path: &std::path::Path,
    p: usize,
    runs: &[pastis::PastisRun],
) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = obs::JsonValue::parse(&text).map_err(|e| format!("status.json: {e}"))?;
    pcomm::monitor::validate_status(&doc, true)?;
    let rows = match doc.get("final").and_then(|f| f.get("ranks")) {
        Some(obs::JsonValue::Arr(rows)) => rows,
        _ => return Err("final snapshot missing ranks".into()),
    };
    if rows.len() != p {
        return Err(format!(
            "final snapshot has {} ranks, expected {p}",
            rows.len()
        ));
    }
    let done: u64 = rows
        .iter()
        .filter_map(|r| r.get("done").and_then(|v| v.as_u64()))
        .sum();
    let expect = runs[0].counters.alignments_global;
    if done != expect {
        return Err(format!(
            "final snapshot retired {done} alignments, run counted {expect}"
        ));
    }
    Ok(())
}

fn main() {
    let cli = parse_cli();
    // Resolve the allocation-tracking switch before any rank starts
    // (default on in debug, `ALLOC_TRACK=1` opts release builds in).
    obs::alloc::init_from_env();
    // Abort postmortems land next to the output (cwd when writing stdout)
    // rather than the tmpdir default.
    let dump_dir = cli
        .output
        .as_ref()
        .and_then(|p| std::path::Path::new(p).parent())
        .filter(|d| !d.as_os_str().is_empty())
        .map(|d| d.to_path_buf())
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    obs::blackbox::set_dump_dir(&dump_dir);
    // Checkpoint directory, like the dump directory, exists before any
    // rank starts — per-rank shard writes never race on mkdir.
    if let Some(dir) = &cli.params.ckpt_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create checkpoint dir {}: {e}", dir.display());
            exit(1);
        }
    }
    // Live telemetry plane: heartbeat snapshots land next to the output,
    // like the black-box dumps.
    let status_path = dump_dir.join("status.json");
    if cli.monitor {
        let interval_ms = std::env::var("PASTIS_MONITOR_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        pcomm::monitor::configure(pcomm::monitor::MonitorConfig {
            path: Some(status_path.clone()),
            interval_ms,
            render: !cli.quiet,
            ..Default::default()
        });
    }
    // The pcomm runtime dumps on its own abort paths (watchdog,
    // conformance, rank panics); this hook covers everything else —
    // panics on the main thread, before or after the world runs.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        obs::blackbox::dump_once(&format!("panic: {info}"));
        default_hook(info);
    }));
    let fasta = match std::fs::read(&cli.input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {}: {e}", cli.input);
            exit(1);
        }
    };
    // Names for the report (records are numbered in file order, matching
    // the pipeline's global ids).
    let names: Vec<String> = seqstore::parse_fasta(&fasta)
        .into_iter()
        .map(|r| r.name)
        .collect();

    let params = cli.params.clone();
    let cluster = cli.cluster;
    let results = World::run(cli.ranks, |comm| {
        // One recorder per rank for the whole run, so pipeline and MCL
        // spans share a single trace.
        let rec = obs::Recorder::install(comm.rank());
        let run = run_pipeline(&comm, &fasta, &params);
        let labels = cluster.then(|| {
            let _span = obs::span!("mcl.cluster");
            mcl::markov_cluster_dist(
                Rc::new(Grid::new(&comm)),
                run.counters.n_seqs,
                run.edges.clone(),
                &mcl::MclParams::default(),
            )
        });
        (run, labels, rec.finish())
    });
    let (runs, rest): (Vec<_>, Vec<_>) = results.into_iter().map(|(r, l, t)| (r, (l, t))).unzip();
    let (labels, traces): (Vec<_>, Vec<_>) = rest.into_iter().unzip();

    if cli.monitor {
        pcomm::monitor::deconfigure();
        // The status document must parse, satisfy the schema, and its
        // final snapshot must reconcile with the run totals — the monitor
        // lane of verify.sh rides on this self-check.
        if let Err(e) = check_status(&status_path, cli.ranks, &runs) {
            eprintln!("pastis: monitor self-check FAILED: {e}");
            exit(1);
        }
        if !cli.quiet {
            eprintln!(
                "pastis: monitor snapshots validated ({})",
                status_path.display()
            );
        }
    }

    let mut edges: Vec<(u64, u64, f64)> = runs.iter().flat_map(|r| r.edges.clone()).collect();
    edges.sort_by(|a, b| a.partial_cmp(b).unwrap());

    if !cli.quiet {
        let c = &runs[0].counters;
        eprintln!(
            "pastis: {} ({} ranks): {} sequences, nnz(A)={}, nnz(B)={}, {} alignments, {} edges",
            cli.params.variant_name(),
            cli.ranks,
            c.n_seqs,
            c.nnz_a,
            c.nnz_b,
            c.alignments_global,
            edges.len()
        );
        if let Some(Some(l)) = labels.first() {
            let k = l.iter().collect::<std::collections::HashSet<_>>().len();
            eprintln!(
                "pastis: MCL grouped {} sequences into {k} clusters",
                l.len()
            );
        }
    }

    if let Some(path) = &cli.trace {
        if let Err(e) = std::fs::write(path, obs::perfetto_json(&traces)) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
        let model = pcomm::CostModel::default();
        let rows = obs::dissect::dissect(&traces, &Timings::STAGE_SPANS, model.alpha, model.beta);
        eprintln!("{}", obs::dissect::render_dissection(&rows));
        // Imbalance observatory: fig11-style per-stage rank skew (λ, Gini,
        // critical-rank attribution) plus per-rank metric distributions
        // (DP cells, nnz, task counts).
        let extracts =
            obs::project::extract_stages(&traces, &Timings::STAGE_SPANS, &pcomm::kind_names());
        let skews = obs::imbalance::skew_from_extracts(&extracts);
        if !skews.is_empty() {
            eprintln!("{}", obs::imbalance::render_skew_table(&skews));
        }
        let metric_rows = obs::imbalance::metric_skew(
            &traces,
            &[
                "align.dp_cells",
                "align.xdrop_cells",
                "align.batch.tasks",
                "pastis.nnz_b",
            ],
        );
        if !metric_rows.is_empty() {
            eprintln!("{}", obs::imbalance::render_metric_skew(&metric_rows));
        }
        // Prefilter cascade tier outcomes, merged across ranks: how many
        // pairs each tier absorbed (the bitpacked gate is ~20× cheaper per
        // cell than the striped score pass, so its cull share is the win).
        let metrics = obs::MetricsSnapshot::merged(
            &traces.iter().map(|t| t.metrics.clone()).collect::<Vec<_>>(),
        );
        let tier = |k: &str| metrics.counters.get(k).copied().unwrap_or(0);
        let (bp, sc, ok) = (
            tier("prefilter.bitpack_culled"),
            tier("prefilter.striped_culled"),
            tier("prefilter.passed"),
        );
        if bp + sc + ok > 0 {
            let total = (bp + sc + ok) as f64;
            eprintln!(
                "pastis: prefilter cascade: {bp} bitpack-culled ({:.1}%), \
                 {sc} score-culled ({:.1}%), {ok} passed ({:.1}%)",
                100.0 * bp as f64 / total,
                100.0 * sc as f64 / total,
                100.0 * ok as f64 / total,
            );
        }
        // Memory observatory: per-stage peak live bytes (allocator
        // windows) and per-structure watermarks (HeapSize probes).
        match obs::dissect::render_stage_memory(&metrics, &MEM_STAGE_ORDER) {
            Some(table) => {
                eprintln!("pastis: per-stage peak live bytes by subsystem:\n{table}")
            }
            None => eprintln!(
                "pastis: allocation tracking off — run with ALLOC_TRACK=1 \
                 for the per-stage memory table"
            ),
        }
        // Out-of-core runs: per-batch peak live bytes, one allocator
        // window per column batch (DESIGN.md §15) — the number the batch
        // sizer's budget bounds.
        let mut batch_rows: Vec<(usize, i64)> = metrics
            .gauges
            .iter()
            .filter_map(|(name, &v)| {
                let rest = name.strip_prefix("mem.batch.")?;
                let (k, field) = rest.split_once('.')?;
                if field != "total" {
                    return None;
                }
                Some((k.parse::<usize>().ok()?, v))
            })
            .collect();
        if !batch_rows.is_empty() {
            batch_rows.sort_unstable();
            eprintln!("pastis: per-batch peak live bytes (out-of-core windows):");
            for (k, v) in batch_rows {
                eprintln!("  batch {k:>4}  {v:>14} B");
            }
        }
        let watermarks = obs::project::extract_mem_watermarks(&traces);
        if !watermarks.is_empty() {
            eprintln!(
                "pastis: structure watermarks (peak heap bytes):\n{}",
                obs::dissect::render_watermarks(&watermarks)
            );
        }
        eprintln!("pastis: wrote Perfetto trace to {path} (open at https://ui.perfetto.dev)");
    }

    let mut out: Box<dyn std::io::Write> = match &cli.output {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                exit(1);
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    for (i, j, w) in edges {
        writeln!(out, "{}\t{}\t{w:.4}", names[i as usize], names[j as usize])
            .expect("write failed");
    }
    out.flush().expect("flush failed");
}
