//! `pastis` — command-line entry point: build a protein similarity graph
//! from a FASTA file on a simulated process grid.
//!
//! ```text
//! pastis --input proteins.fasta [--output psg.tsv] [--ranks 4] [--k 6]
//!        [--subs 25] [--mode xd|sw] [--ck N] [--measure ani|ns]
//!        [--min-ani 0.3] [--min-cov 0.7] [--max-kmer-freq N] [--threads N] [--reduced]
//! ```
//!
//! Output: one `name_i <TAB> name_j <TAB> weight` line per similarity edge
//! (to stdout when `--output` is omitted). The edge set is independent of
//! `--ranks`.

use std::io::Write as _;
use std::process::exit;

use align::SimilarityMeasure;
use pastis::{run_pipeline, AlignMode, PastisParams};
use pcomm::World;

struct Cli {
    input: String,
    output: Option<String>,
    ranks: usize,
    params: PastisParams,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pastis --input <fasta> [--output <tsv>] [--ranks N] [--k N] \
         [--subs N] [--mode xd|sw] [--ck N] [--measure ani|ns] [--min-ani F] \
         [--min-cov F] [--max-kmer-freq N] [--threads N] [--reduced] [--quiet]"
    );
    exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut input = None;
    let mut output = None;
    let mut ranks = 1usize;
    let mut quiet = false;
    let mut params = PastisParams::default();
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--input" => input = Some(val()),
            "--output" => output = Some(val()),
            "--ranks" => ranks = val().parse().unwrap_or_else(|_| usage()),
            "--k" => params.k = val().parse().unwrap_or_else(|_| usage()),
            "--subs" => params.substitutes = val().parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                params.mode = match val().as_str() {
                    "xd" => AlignMode::XDrop,
                    "sw" => AlignMode::SmithWaterman,
                    "none" => AlignMode::None,
                    _ => usage(),
                }
            }
            "--ck" => params.common_kmer_threshold = val().parse().unwrap_or_else(|_| usage()),
            "--measure" => {
                params.measure = match val().as_str() {
                    "ani" => SimilarityMeasure::Ani,
                    "ns" => SimilarityMeasure::NormalizedScore,
                    _ => usage(),
                }
            }
            "--min-ani" => params.min_ani = val().parse().unwrap_or_else(|_| usage()),
            "--min-cov" => params.min_coverage = val().parse().unwrap_or_else(|_| usage()),
            "--max-kmer-freq" => {
                params.max_kmer_frequency = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--threads" => params.threads = val().parse().unwrap_or_else(|_| usage()),
            "--reduced" => params.reduced_alphabet = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let input = input.unwrap_or_else(|| usage());
    let q = (ranks as f64).sqrt().round() as usize;
    if q * q != ranks {
        eprintln!("--ranks must be a perfect square (got {ranks})");
        exit(2);
    }
    Cli { input, output, ranks, params, quiet }
}

fn main() {
    let cli = parse_cli();
    let fasta = match std::fs::read(&cli.input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {}: {e}", cli.input);
            exit(1);
        }
    };
    // Names for the report (records are numbered in file order, matching
    // the pipeline's global ids).
    let names: Vec<String> = seqstore::parse_fasta(&fasta).into_iter().map(|r| r.name).collect();

    let params = cli.params.clone();
    let runs = World::run(cli.ranks, |comm| run_pipeline(&comm, &fasta, &params));

    let mut edges: Vec<(u64, u64, f64)> = runs.iter().flat_map(|r| r.edges.clone()).collect();
    edges.sort_by(|a, b| a.partial_cmp(b).unwrap());

    if !cli.quiet {
        let c = &runs[0].counters;
        eprintln!(
            "pastis: {} ({} ranks): {} sequences, nnz(A)={}, nnz(B)={}, {} alignments, {} edges",
            cli.params.variant_name(),
            cli.ranks,
            c.n_seqs,
            c.nnz_a,
            c.nnz_b,
            c.alignments_global,
            edges.len()
        );
    }

    let mut out: Box<dyn std::io::Write> = match &cli.output {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                exit(1);
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    for (i, j, w) in edges {
        writeln!(out, "{}\t{}\t{w:.4}", names[i as usize], names[j as usize]).expect("write failed");
    }
    out.flush().expect("flush failed");
}
