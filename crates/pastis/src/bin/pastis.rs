//! `pastis` — command-line entry point: build a protein similarity graph
//! from a FASTA file on a simulated process grid.
//!
//! ```text
//! pastis --input proteins.fasta [--output psg.tsv] [--ranks 4] [--k 6]
//!        [--subs 25] [--mode xd|sw] [--ck N] [--measure ani|ns]
//!        [--min-ani 0.3] [--min-cov 0.7] [--max-kmer-freq N] [--threads N] [--reduced]
//!        [--trace trace.json] [--cluster]
//! ```
//!
//! Output: one `name_i <TAB> name_j <TAB> weight` line per similarity edge
//! (to stdout when `--output` is omitted). The edge set is independent of
//! `--ranks`.
//!
//! `--trace <path>` records every rank's spans and writes a Perfetto
//! `traceEvents` JSON (load it at <https://ui.perfetto.dev>), plus a
//! critical-path dissection table on stderr. `--cluster` feeds the graph to
//! distributed Markov clustering, whose per-iteration spans land in the
//! same trace.

use std::io::Write as _;
use std::process::exit;
use std::rc::Rc;

use align::SimilarityMeasure;
use pastis::{run_pipeline, AlignMode, PastisParams, Timings};
use pcomm::{Grid, World};

struct Cli {
    input: String,
    output: Option<String>,
    ranks: usize,
    params: PastisParams,
    quiet: bool,
    trace: Option<String>,
    cluster: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pastis --input <fasta> [--output <tsv>] [--ranks N] [--k N] \
         [--subs N] [--mode xd|sw] [--ck N] [--measure ani|ns] [--min-ani F] \
         [--min-cov F] [--max-kmer-freq N] [--threads N] [--reduced] [--quiet] \
         [--trace <json>] [--cluster]"
    );
    exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut input = None;
    let mut output = None;
    let mut ranks = 1usize;
    let mut quiet = false;
    let mut trace = None;
    let mut cluster = false;
    let mut params = PastisParams::default();
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--input" => input = Some(val()),
            "--output" => output = Some(val()),
            "--ranks" => ranks = val().parse().unwrap_or_else(|_| usage()),
            "--k" => params.k = val().parse().unwrap_or_else(|_| usage()),
            "--subs" => params.substitutes = val().parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                params.mode = match val().as_str() {
                    "xd" => AlignMode::XDrop,
                    "sw" => AlignMode::SmithWaterman,
                    "none" => AlignMode::None,
                    _ => usage(),
                }
            }
            "--ck" => params.common_kmer_threshold = val().parse().unwrap_or_else(|_| usage()),
            "--measure" => {
                params.measure = match val().as_str() {
                    "ani" => SimilarityMeasure::Ani,
                    "ns" => SimilarityMeasure::NormalizedScore,
                    _ => usage(),
                }
            }
            "--min-ani" => params.min_ani = val().parse().unwrap_or_else(|_| usage()),
            "--min-cov" => params.min_coverage = val().parse().unwrap_or_else(|_| usage()),
            "--max-kmer-freq" => {
                params.max_kmer_frequency = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--threads" => params.threads = val().parse().unwrap_or_else(|_| usage()),
            "--reduced" => params.reduced_alphabet = true,
            "--quiet" => quiet = true,
            "--trace" => trace = Some(val()),
            "--cluster" => cluster = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let input = input.unwrap_or_else(|| usage());
    let q = (ranks as f64).sqrt().round() as usize;
    if q * q != ranks {
        eprintln!("--ranks must be a perfect square (got {ranks})");
        exit(2);
    }
    Cli {
        input,
        output,
        ranks,
        params,
        quiet,
        trace,
        cluster,
    }
}

/// Stage spans of the per-stage memory table, in pipeline order (the nine
/// `stage()` wrappers of `run_pipeline`; the streamed shape folds alignment
/// into `pastis.spgemm_b`, so its `pastis.align` row is empty).
const MEM_STAGE_ORDER: [&str; 9] = [
    "pastis.fasta",
    "pastis.form_a",
    "pastis.tr_a",
    "pastis.form_s",
    "pastis.a_s",
    "pastis.spgemm_b",
    "pastis.symmetricize",
    "pastis.wait",
    "pastis.align",
];

fn main() {
    let cli = parse_cli();
    // Resolve the allocation-tracking switch before any rank starts
    // (default on in debug, `ALLOC_TRACK=1` opts release builds in).
    obs::alloc::init_from_env();
    // Abort postmortems land next to the output (cwd when writing stdout)
    // rather than the tmpdir default.
    let dump_dir = cli
        .output
        .as_ref()
        .and_then(|p| std::path::Path::new(p).parent())
        .filter(|d| !d.as_os_str().is_empty())
        .map(|d| d.to_path_buf())
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    obs::blackbox::set_dump_dir(&dump_dir);
    // The pcomm runtime dumps on its own abort paths (watchdog,
    // conformance, rank panics); this hook covers everything else —
    // panics on the main thread, before or after the world runs.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        obs::blackbox::dump_once(&format!("panic: {info}"));
        default_hook(info);
    }));
    let fasta = match std::fs::read(&cli.input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {}: {e}", cli.input);
            exit(1);
        }
    };
    // Names for the report (records are numbered in file order, matching
    // the pipeline's global ids).
    let names: Vec<String> = seqstore::parse_fasta(&fasta)
        .into_iter()
        .map(|r| r.name)
        .collect();

    let params = cli.params.clone();
    let cluster = cli.cluster;
    let results = World::run(cli.ranks, |comm| {
        // One recorder per rank for the whole run, so pipeline and MCL
        // spans share a single trace.
        let rec = obs::Recorder::install(comm.rank());
        let run = run_pipeline(&comm, &fasta, &params);
        let labels = cluster.then(|| {
            let _span = obs::span!("mcl.cluster");
            mcl::markov_cluster_dist(
                Rc::new(Grid::new(&comm)),
                run.counters.n_seqs,
                run.edges.clone(),
                &mcl::MclParams::default(),
            )
        });
        (run, labels, rec.finish())
    });
    let (runs, rest): (Vec<_>, Vec<_>) = results.into_iter().map(|(r, l, t)| (r, (l, t))).unzip();
    let (labels, traces): (Vec<_>, Vec<_>) = rest.into_iter().unzip();

    let mut edges: Vec<(u64, u64, f64)> = runs.iter().flat_map(|r| r.edges.clone()).collect();
    edges.sort_by(|a, b| a.partial_cmp(b).unwrap());

    if !cli.quiet {
        let c = &runs[0].counters;
        eprintln!(
            "pastis: {} ({} ranks): {} sequences, nnz(A)={}, nnz(B)={}, {} alignments, {} edges",
            cli.params.variant_name(),
            cli.ranks,
            c.n_seqs,
            c.nnz_a,
            c.nnz_b,
            c.alignments_global,
            edges.len()
        );
        if let Some(Some(l)) = labels.first() {
            let k = l.iter().collect::<std::collections::HashSet<_>>().len();
            eprintln!(
                "pastis: MCL grouped {} sequences into {k} clusters",
                l.len()
            );
        }
    }

    if let Some(path) = &cli.trace {
        if let Err(e) = std::fs::write(path, obs::perfetto_json(&traces)) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
        let model = pcomm::CostModel::default();
        let rows = obs::dissect::dissect(&traces, &Timings::STAGE_SPANS, model.alpha, model.beta);
        eprintln!("{}", obs::dissect::render_dissection(&rows));
        // Prefilter cascade tier outcomes, merged across ranks: how many
        // pairs each tier absorbed (the bitpacked gate is ~20× cheaper per
        // cell than the striped score pass, so its cull share is the win).
        let metrics = obs::MetricsSnapshot::merged(
            &traces.iter().map(|t| t.metrics.clone()).collect::<Vec<_>>(),
        );
        let tier = |k: &str| metrics.counters.get(k).copied().unwrap_or(0);
        let (bp, sc, ok) = (
            tier("prefilter.bitpack_culled"),
            tier("prefilter.striped_culled"),
            tier("prefilter.passed"),
        );
        if bp + sc + ok > 0 {
            let total = (bp + sc + ok) as f64;
            eprintln!(
                "pastis: prefilter cascade: {bp} bitpack-culled ({:.1}%), \
                 {sc} score-culled ({:.1}%), {ok} passed ({:.1}%)",
                100.0 * bp as f64 / total,
                100.0 * sc as f64 / total,
                100.0 * ok as f64 / total,
            );
        }
        // Memory observatory: per-stage peak live bytes (allocator
        // windows) and per-structure watermarks (HeapSize probes).
        match obs::dissect::render_stage_memory(&metrics, &MEM_STAGE_ORDER) {
            Some(table) => {
                eprintln!("pastis: per-stage peak live bytes by subsystem:\n{table}")
            }
            None => eprintln!(
                "pastis: allocation tracking off — run with ALLOC_TRACK=1 \
                 for the per-stage memory table"
            ),
        }
        let watermarks = obs::project::extract_mem_watermarks(&traces);
        if !watermarks.is_empty() {
            eprintln!(
                "pastis: structure watermarks (peak heap bytes):\n{}",
                obs::dissect::render_watermarks(&watermarks)
            );
        }
        eprintln!("pastis: wrote Perfetto trace to {path} (open at https://ui.perfetto.dev)");
    }

    let mut out: Box<dyn std::io::Write> = match &cli.output {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                exit(1);
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    for (i, j, w) in edges {
        writeln!(out, "{}\t{}\t{w:.4}", names[i as usize], names[j as usize])
            .expect("write failed");
    }
    out.flush().expect("flush failed");
}
