//! `pastis-top` — watch a live `pastis --monitor` run from another
//! terminal.
//!
//! ```text
//! pastis-top [status.json] [--watch] [--interval-ms N]
//! ```
//!
//! Reads the `status.json` document the run's heartbeat thread keeps next
//! to its output and renders the latest per-rank snapshot (the same table
//! `--monitor` prints from inside the run: stage, progress bar, live
//! bytes, heartbeat age, straggler flags). `--watch` refreshes until the
//! document carries a final snapshot, tolerating partially-written
//! documents (the heartbeat writer is not atomic — a torn read that fails
//! to parse or validate just retries next tick); one-shot invocations
//! exit 1 when the document is missing or fails schema validation.

use std::process::exit;

use obs::JsonValue;

fn usage() -> ! {
    eprintln!("usage: pastis-top [status.json] [--watch] [--interval-ms N]");
    exit(2);
}

fn main() {
    let mut path = None;
    let mut watch = false;
    let mut interval_ms = 500u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--watch" => watch = true,
            "--interval-ms" => {
                interval_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            other => path = Some(other.to_string()),
        }
    }
    let path = path.unwrap_or_else(|| "status.json".into());
    loop {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if watch => {
                // The run may not have written its first snapshot yet.
                eprintln!("pastis-top: waiting for {path}: {e}");
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                continue;
            }
            Err(e) => {
                eprintln!("pastis-top: cannot read {path}: {e}");
                exit(1);
            }
        };
        let doc = match JsonValue::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                // A torn read can race the writer mid-rewrite; retry in
                // watch mode, fail one-shot.
                if watch {
                    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                    continue;
                }
                eprintln!("pastis-top: {path} does not parse: {e}");
                exit(1);
            }
        };
        if let Err(e) = pcomm::monitor::validate_status(&doc, false) {
            // Same torn-read race as the parse failure above: a rewrite
            // can be caught with, e.g., a truncated snapshots array that
            // parses but fails the schema. Retry next tick in watch mode.
            if watch {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                continue;
            }
            eprintln!("pastis-top: {path} failed validation: {e}");
            exit(1);
        }
        let p = doc.get("p").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
        let finished = !matches!(doc.get("final"), Some(JsonValue::Null) | None);
        let last = match doc.get("snapshots") {
            Some(JsonValue::Arr(snaps)) => snaps.last().cloned(),
            _ => None,
        };
        if let Some(snap) = last {
            println!("{}", pcomm::monitor::render_snapshot(&snap, p));
        }
        if finished {
            println!("pastis-top: run complete");
            return;
        }
        if !watch {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}
