//! The custom semirings PASTIS plugs into SpGEMM (paper Fig. 4, §IV-C).

use sparse::Semiring;

use crate::seedpair::{SeedPair, SubPos};

/// Semiring for exact k-mer matching, `B = A·Aᵀ` (paper Fig. 4): multiply
/// pairs the k-mer's positions on the two sequences; add collects up to two
/// seeds and counts the shared k-mers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSemiring;

impl Semiring for ExactSemiring {
    type A = u32; // position of k-mer in the row sequence
    type B = u32; // position of k-mer in the column sequence (via Aᵀ)
    type C = SeedPair;

    #[inline]
    fn multiply(&self, a: &u32, b: &u32) -> Option<SeedPair> {
        Some(SeedPair::single(*a, *b))
    }

    #[inline]
    fn add(&self, acc: &mut SeedPair, contrib: SeedPair) {
        acc.merge(contrib);
    }
}

/// Semiring for `A·S` (paper §IV-C): multiply attaches the substitution
/// distance to the k-mer position; add keeps the *closest* original k-mer
/// when several of a sequence's k-mers map to the same substitute.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsSemiring;

impl Semiring for AsSemiring {
    type A = u32; // k-mer position in the sequence
    type B = u32; // substitution distance from S
    type C = SubPos;

    #[inline]
    fn multiply(&self, a: &u32, b: &u32) -> Option<SubPos> {
        Some(SubPos { pos: *a, dist: *b })
    }

    #[inline]
    fn add(&self, acc: &mut SubPos, contrib: SubPos) {
        // Tie-break on position for determinism.
        if (contrib.dist, contrib.pos) < (acc.dist, acc.pos) {
            *acc = contrib;
        }
    }
}

/// Semiring for `(A·S)·Aᵀ`: like [`ExactSemiring`] but the left operand
/// carries the substitute-k-mer provenance.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubSemiring;

impl Semiring for SubSemiring {
    type A = SubPos;
    type B = u32;
    type C = SeedPair;

    #[inline]
    fn multiply(&self, a: &SubPos, b: &u32) -> Option<SeedPair> {
        Some(SeedPair::single(a.pos, *b))
    }

    #[inline]
    fn add(&self, acc: &mut SeedPair, contrib: SeedPair) {
        acc.merge(contrib);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_shared_kmers() {
        let s = ExactSemiring;
        let mut acc = s.multiply(&3, &8).unwrap();
        s.add(&mut acc, s.multiply(&10, &20).unwrap());
        s.add(&mut acc, s.multiply(&30, &40).unwrap());
        assert_eq!(acc.count, 3);
        assert_eq!(acc.seeds(), &[(3, 8), (10, 20)]);
    }

    #[test]
    fn as_keeps_closest_kmer() {
        let s = AsSemiring;
        let mut acc = s.multiply(&100, &5).unwrap();
        s.add(&mut acc, SubPos { pos: 50, dist: 2 });
        assert_eq!(acc, SubPos { pos: 50, dist: 2 });
        s.add(&mut acc, SubPos { pos: 10, dist: 9 });
        assert_eq!(acc, SubPos { pos: 50, dist: 2 });
        // Equal distance: smaller position wins (deterministic).
        s.add(&mut acc, SubPos { pos: 7, dist: 2 });
        assert_eq!(acc, SubPos { pos: 7, dist: 2 });
    }

    #[test]
    fn sub_semiring_uses_closest_position() {
        let s = SubSemiring;
        let got = s.multiply(&SubPos { pos: 42, dist: 3 }, &17).unwrap();
        assert_eq!(got.seeds(), &[(42, 17)]);
    }
}
