//! The distributed PASTIS pipeline (paper Fig. 1, §V), instrumented with
//! `obs` spans named after the paper's dissection components (Fig. 15–16:
//! `fasta`, `form A`, `tr. A`, `form S`, `AS`, `(AS)Aᵀ`, `symmetricize`,
//! `wait`) plus the alignment stage of Table I. The public [`Timings`]
//! summary is *derived* from the recorded spans ([`Timings::from_trace`])
//! rather than hand-threaded through the stages, and the full trace rides
//! along in [`PastisRun::trace`] for Perfetto export or deeper dissection.

use std::rc::Rc;

use align::{
    align_batch, bitpack_gate, prefiltered_align_outcome, striped_score, xdrop_align, AlignStats,
    GateVerdict, PrefilterOutcome, SimilarityMeasure,
};
use pcomm::{Comm, CommStats, Grid};
use seqstore::DistSeqStore;
use sparse::{DistMat, Semiring};
use subkmer::ExpenseTable;

use crate::batch::{self, BatchPlan};
use crate::ckpt;
use crate::matrices::{build_a_triples, build_s_dist, distinct_kmers, kmer_space};
use crate::params::{AlignMode, PastisParams};
use crate::seedpair::SeedPair;
use crate::semirings::{AsSemiring, ExactSemiring, SubSemiring};

/// Wall-clock seconds and communication delta of one pipeline stage on this
/// rank. Feed the per-rank maxima into [`pcomm::CostModel`] to model large
/// node counts.
#[derive(Debug, Clone, Default)]
pub struct StageMeasure {
    /// Wall-clock seconds spent in the stage (compute + any embedded
    /// communication). Contaminated by scheduling when ranks are
    /// oversubscribed on few cores — prefer `work_ns` for scaling studies.
    pub secs: f64,
    /// Deterministic estimated-nanosecond work executed by this rank during
    /// the stage (see [`pcomm::work`]); immune to oversubscription.
    pub work_ns: u64,
    /// Communication issued during the stage and *not* covered by `colls`
    /// (the residual point-to-point traffic).
    pub comm: CommStats,
    /// Shape-aware aggregates of the collectives issued during the stage
    /// (one entry per outermost `pcomm.*` span family). Payload is
    /// approximated from this rank's wire bytes per call.
    pub colls: Vec<pcomm::CollAgg>,
}

impl StageMeasure {
    /// Critical-path combination across ranks.
    pub fn max(self, rhs: StageMeasure) -> StageMeasure {
        StageMeasure {
            secs: self.secs.max(rhs.secs),
            work_ns: self.work_ns.max(rhs.work_ns),
            comm: self.comm.max(rhs.comm),
            // Mirrors `StageCost::max`: keep whichever side has a shaped
            // breakdown — the pipeline's collectives are symmetric, so the
            // per-rank breakdowns are interchangeable approximations.
            colls: if self.colls.is_empty() {
                rhs.colls
            } else {
                self.colls
            },
        }
    }

    /// Modeled stage seconds: deterministic work plus each collective
    /// priced by its shape ([`pcomm::CostModel::stage`]), with the residual
    /// point-to-point traffic priced flat (α·messages + β·bytes).
    pub fn modeled_secs(&self, model: &pcomm::CostModel) -> f64 {
        model.stage(&pcomm::StageCost {
            compute_secs: self.work_ns as f64 * 1e-9,
            comm: self.comm,
            colls: self.colls.clone(),
        })
    }
}

/// Per-component timings, named after the paper's dissection plots.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    /// Reading/parsing FASTA data and global numbering.
    pub fasta: StageMeasure,
    /// Forming the distributed `A` matrix.
    pub form_a: StageMeasure,
    /// Computing `Aᵀ`.
    pub tr_a: StageMeasure,
    /// Forming the substitution matrix `S` (zero when `substitutes == 0`).
    pub form_s: StageMeasure,
    /// The `A·S` SpGEMM (zero when `substitutes == 0`).
    pub a_s: StageMeasure,
    /// The overlap SpGEMM `A·Aᵀ` or `(AS)·Aᵀ`.
    pub spgemm_b: StageMeasure,
    /// Symmetrizing `B` (substitute path only).
    pub symmetricize: StageMeasure,
    /// Waiting on the background sequence exchange (§V-C).
    pub wait: StageMeasure,
    /// Pairwise alignment and filtering.
    pub align: StageMeasure,
    /// Whole pipeline.
    pub total: f64,
}

impl Timings {
    /// Sparse-stage seconds (everything except alignment), the quantity the
    /// paper's scaling studies report.
    pub fn sparse_secs(&self) -> f64 {
        self.fasta.secs
            + self.form_a.secs
            + self.tr_a.secs
            + self.form_s.secs
            + self.a_s.secs
            + self.spgemm_b.secs
            + self.symmetricize.secs
            + self.wait.secs
    }

    /// Alignment share of total time (Table I).
    pub fn align_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.align.secs / self.total
        }
    }

    /// `(label, seconds)` rows in the paper's component order.
    pub fn component_rows(&self) -> Vec<(&'static str, f64)> {
        self.components()
            .iter()
            .map(|(l, m)| (*l, m.secs))
            .collect()
    }

    /// The sparse components with full measurements, in the paper's order
    /// (Fig. 15–16 labels).
    pub fn components(&self) -> [(&'static str, StageMeasure); 8] {
        [
            ("fasta", self.fasta.clone()),
            ("form A", self.form_a.clone()),
            ("tr. A", self.tr_a.clone()),
            ("form S", self.form_s.clone()),
            ("AS", self.a_s.clone()),
            ("(AS)AT", self.spgemm_b.clone()),
            ("sym.", self.symmetricize.clone()),
            ("wait", self.wait.clone()),
        ]
    }

    /// Modeled seconds of the sparse stages under a postal cost model.
    pub fn sparse_modeled_secs(&self, model: &pcomm::CostModel) -> f64 {
        self.components()
            .iter()
            .map(|(_, m)| m.modeled_secs(model))
            .sum()
    }

    /// Modeled seconds of the whole pipeline (sparse + alignment).
    pub fn total_modeled_secs(&self, model: &pcomm::CostModel) -> f64 {
        self.sparse_modeled_secs(model) + self.align.modeled_secs(model)
    }

    /// Modeled alignment share of total time (Table I, oversubscription-
    /// immune).
    pub fn align_fraction_modeled(&self, model: &pcomm::CostModel) -> f64 {
        let total = self.total_modeled_secs(model);
        if total <= 0.0 {
            0.0
        } else {
            self.align.modeled_secs(model) / total
        }
    }

    /// `(span_name, paper_label)` of every pipeline stage, in the paper's
    /// component order (the eight sparse components plus `align`). These
    /// are the names [`run_pipeline`] records and the rows the trace-driven
    /// dissection tables print. The alignment row is built from the
    /// `align.overlap` chunk spans rather than the `pastis.align` wrapper:
    /// in the streamed pipeline the chunks run *inside* `pastis.spgemm_b`,
    /// and the trace reducers attribute nested stage spans exclusively, so
    /// `(AS)AT` reports SUMMA-only time and `align` the alignment time in
    /// both pipeline shapes.
    pub const STAGE_SPANS: [(&'static str, &'static str); 9] = [
        ("pastis.fasta", "fasta"),
        ("pastis.form_a", "form A"),
        ("pastis.tr_a", "tr. A"),
        ("pastis.form_s", "form S"),
        ("pastis.a_s", "AS"),
        ("pastis.spgemm_b", "(AS)AT"),
        ("pastis.symmetricize", "sym."),
        ("pastis.wait", "wait"),
        ("align.overlap", "align"),
    ];

    /// Rebuild the per-component summary from a recorded rank trace: each
    /// stage is the sum of its spans in the latest `pastis.run`, with
    /// wall-clock, deterministic work, and communication deltas read from
    /// the span counters and the collectives issued inside the stage
    /// broken out by shape (`p` is the run's rank count, needed to size
    /// each collective's communicator).
    pub fn from_trace(trace: &obs::RankTrace, p: usize) -> Timings {
        let root = trace
            .events
            .iter()
            .filter(|e| e.name == "pastis.run")
            .max_by_key(|e| e.seq);
        let (from_seq, total) = root
            .map(|e| (e.seq, e.dur_ns as f64 * 1e-9))
            .unwrap_or((0, 0.0));
        // Reduce the latest run's spans with the same extractor the
        // scaling projector uses, so stages carry the shaped collective
        // breakdown `CostModel::stage` prices.
        let run = obs::RankTrace {
            rank: trace.rank,
            events: trace
                .events
                .iter()
                .filter(|e| e.seq >= from_seq)
                .cloned()
                .collect(),
            metrics: Default::default(),
            dropped: 0,
        };
        let kinds = pcomm::kind_names();
        let extracts =
            obs::project::extract_stages(std::slice::from_ref(&run), &Self::STAGE_SPANS, &kinds);
        let mut stages = extracts.iter().map(|e| stage_measure(e, p));
        let mut next = || stages.next().expect("one extract per stage span");
        Timings {
            fasta: next(),
            form_a: next(),
            tr_a: next(),
            form_s: next(),
            a_s: next(),
            spgemm_b: next(),
            symmetricize: next(),
            wait: next(),
            align: next(),
            total,
        }
    }
}

/// One stage extract (this rank only) reduced to a [`StageMeasure`]:
/// collectives found inside the stage become shaped [`pcomm::CollAgg`]s —
/// per-call payload approximated by this rank's wire bytes per call — and
/// their traffic is subtracted from the stage counters, leaving `comm` as
/// the point-to-point residual.
fn stage_measure(e: &obs::project::StageExtract, p: usize) -> StageMeasure {
    let c = e.counters_total;
    let mut comm = CommStats {
        bytes_sent: c.bytes_sent,
        bytes_recv: c.bytes_recv,
        msgs_sent: c.msgs_sent,
        msgs_recv: c.msgs_recv,
        wait_nanos: c.wait_ns,
    };
    let mut colls = Vec::new();
    for (name, agg) in &e.kinds {
        let Some(rule) = pcomm::KIND_RULES
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
        else {
            continue;
        };
        if agg.calls_total == 0 {
            continue;
        }
        let kc = agg.counters_total;
        comm.bytes_sent = comm.bytes_sent.saturating_sub(kc.bytes_sent);
        comm.bytes_recv = comm.bytes_recv.saturating_sub(kc.bytes_recv);
        comm.msgs_sent = comm.msgs_sent.saturating_sub(kc.msgs_sent);
        comm.msgs_recv = comm.msgs_recv.saturating_sub(kc.msgs_recv);
        let calls = agg.calls_total as f64;
        let wire = kc.bytes_sent.max(kc.bytes_recv) as f64;
        colls.push(pcomm::CollAgg {
            shape: rule.shape,
            comm_size: rule.scope.size(p),
            calls,
            payload_bytes: wire / calls,
        });
    }
    StageMeasure {
        secs: e.secs_max,
        work_ns: e.work_ns_total,
        comm,
        colls,
    }
}

/// Aggregate pipeline statistics (identical on every rank for the
/// collective fields).
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Total sequences.
    pub n_seqs: u64,
    /// Nonzeros of `A`.
    pub nnz_a: u64,
    /// Nonzeros of `S` (0 without substitutes).
    pub nnz_s: u64,
    /// Nonzeros of `B` (global, both triangles).
    pub nnz_b: u64,
    /// Candidate pairs owned by this rank (upper-triangle ownership rule).
    pub candidates_local: u64,
    /// Alignments this rank performed (after the CK threshold).
    pub alignments_local: u64,
    /// Pairs the bitpacked gate tier culled on this rank — the score
    /// *upper bound* already missed `min_score`, so no exact DP ran
    /// (always 0 in x-drop mode unless `min_score > 1` opts the prefilter
    /// in).
    pub prefilter_bitpack_culled_local: u64,
    /// Pairs the exact score tier culled on this rank after the gate
    /// passed them (striped score-only pass, or the full DP on the scalar
    /// engine).
    pub prefilter_striped_culled_local: u64,
    /// Pairs that survived the whole prefilter cascade on this rank.
    pub prefilter_passed_local: u64,
    /// Cascade tier totals across ranks.
    pub prefilter_bitpack_culled_global: u64,
    pub prefilter_striped_culled_global: u64,
    pub prefilter_passed_global: u64,
    /// Total alignments across ranks.
    pub alignments_global: u64,
    /// Total surviving edges across ranks.
    pub edges_global: u64,
}

/// Result of one rank's participation in the pipeline.
#[derive(Debug, Clone)]
pub struct PastisRun {
    /// This rank's share of the similarity graph: `(gid_low, gid_high,
    /// weight)` with `gid_low < gid_high`, each global pair reported by
    /// exactly one rank.
    pub edges: Vec<(u64, u64, f64)>,
    /// Per-component timings on this rank, derived from `trace`.
    pub timings: Timings,
    /// Pipeline statistics.
    pub counters: Counters,
    /// The spans and metrics this rank recorded (the pipeline's own when no
    /// recorder was installed by the caller, otherwise a snapshot of the
    /// caller's).
    pub trace: obs::RankTrace,
}

/// Run one pipeline stage under its span, bracketed by an allocator peak
/// window when tracking is on: the window's per-subsystem peaks land in
/// `mem.stage.<span>.<subsystem>` gauges (merged by max across ranks), the
/// rows of the `--trace` per-stage memory table. Windows are process-global
/// (see [`obs::alloc::begin_window`]) — with several ranks in flight the
/// peaks are a cross-rank aggregate, i.e. the per-node footprint.
fn stage<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let track = obs::alloc::tracking();
    if track {
        obs::alloc::begin_window();
    }
    let r = {
        let _span = obs::span_start(name, None);
        f()
    };
    if track {
        let peaks = obs::alloc::window_peaks();
        for (i, sub) in obs::SUBSYSTEMS.iter().enumerate() {
            if peaks.per[i] > 0 {
                obs::gauge_max_owned(&format!("mem.stage.{name}.{sub}"), peaks.per[i]);
            }
        }
        obs::gauge_max_owned(&format!("mem.stage.{name}.total"), peaks.total);
    }
    r
}

/// Run the full PASTIS pipeline on this rank. Collective over `comm`, whose
/// size must be a perfect square. The resulting edge set is independent of
/// the rank count (paper §V: "connections found in the PSG are oblivious to
/// the number of processes").
pub fn run_pipeline(comm: &Comm, fasta: &[u8], params: &PastisParams) -> PastisRun {
    assert!(params.k >= 1 && params.k <= 13);
    assert!(
        !(params.reduced_alphabet && params.substitutes > 0),
        "reduced-alphabet seeding and substitute k-mers are mutually exclusive"
    );
    // Record into the caller's recorder when one is installed (so a caller
    // can splice the pipeline into a larger trace, e.g. pipeline + MCL);
    // otherwise install our own for the duration of the run.
    let own_rec = (!obs::enabled()).then(|| obs::Recorder::install(comm.rank()));
    let (edges, counters) = {
        let _root = obs::span!("pastis.run");
        let grid = Rc::new(Grid::new(comm));
        let q = grid.q() as u64;
        let mut counters = Counters::default();

        // 1. Parse my byte-balanced FASTA chunk; number sequences globally.
        let mut store = stage("pastis.fasta", || DistSeqStore::from_fasta(comm, fasta));
        let n = store.len();
        counters.n_seqs = n;

        // 2. Kick off the background sequence exchange for my B-block's row
        //    and column ranges (paper Fig. 10: overlapped with all matrix
        //    work).
        let row_range = (
            grid.myrow() as u64 * n / q,
            (grid.myrow() as u64 + 1) * n / q,
        );
        let col_range = (
            grid.mycol() as u64 * n / q,
            (grid.mycol() as u64 + 1) * n / q,
        );
        let exchange = store.start_exchange(&grid, row_range, col_range);

        // 3. Form A (|seqs| × 24^k, positions as values), optionally
        //    dropping k-mers that occur in too many sequences (§VII future
        //    work: k-mer pre-analysis; repeats otherwise inflate B
        //    quadratically).
        let space = kmer_space(params.k);
        let a_mat = stage("pastis.form_a", || {
            let triples = build_a_triples(store.owned(), params.k, params.reduced_alphabet);
            let mut a =
                DistMat::from_triples(Rc::clone(&grid), n, space, triples, |a, b| *a = (*a).min(b));
            if let Some(limit) = params.max_kmer_frequency {
                prune_frequent_kmers(&grid, &mut a, limit);
            }
            a
        });

        // 4. Aᵀ.
        let a_t = stage("pastis.tr_a", || a_mat.transpose());

        // 5–7. Overlap matrix B, exchange fence, alignment. Three layouts:
        //
        //  * substitute path — staged: `(AS)Aᵀ` must be symmetrized (a
        //    global barrier), so streaming cannot help; B materializes,
        //    then wait, then align.
        //  * exact + streaming (default) — the exchange fence moves ahead
        //    of the overlap SpGEMM (per-stage alignment needs sequences),
        //    and `A·Aᵀ` runs as a SUMMA stream whose finalized entries are
        //    filtered and aligned inside each stage, overlapped with the
        //    next stage's in-flight panel broadcasts. Bit-identical edges.
        //  * exact, staged — the pre-streaming layout, kept as the
        //    equivalence oracle.
        let edges = if params.substitutes > 0 {
            let s_mat = stage("pastis.form_s", || {
                let table = ExpenseTable::new(params.align.matrix);
                let local_kmers = distinct_kmers(store.owned(), params.k);
                build_s_dist(
                    Rc::clone(&grid),
                    &local_kmers,
                    params.k,
                    &table,
                    params.substitutes,
                )
            });
            counters.nnz_s = s_mat.nnz();

            let as_mat = stage("pastis.a_s", || {
                a_mat.spgemm(&s_mat, &AsSemiring, params.spgemm)
            });

            let b0 = stage("pastis.spgemm_b", || {
                as_mat.spgemm(&a_t, &SubSemiring, params.spgemm)
            });

            // Substitute matching is directional (row side substituted,
            // column side exact), so B must be symmetrized (paper Fig. 15
            // "sym.").
            let b_mat = stage("pastis.symmetricize", || {
                let swapped = b0.transpose().map(|_, _, v| v.swapped());
                b0.elementwise_add(&swapped, |acc, v| acc.merge_symmetric(v))
            });
            counters.nnz_a = a_mat.nnz();
            counters.nnz_b = b_mat.nnz();
            obs::gauge!("pastis.nnz_b", counters.nnz_b);
            stage("pastis.wait", || store.finish_exchange(exchange));
            stage("pastis.align", || {
                align_owned_pairs(
                    &b_mat,
                    &store,
                    params,
                    &grid,
                    row_range,
                    col_range,
                    &mut counters,
                )
            })
        } else if params.streaming {
            counters.nnz_a = a_mat.nnz();
            stage("pastis.wait", || store.finish_exchange(exchange));
            let edges = stage("pastis.spgemm_b", || {
                run_streaming_batches(
                    &a_mat,
                    &a_t,
                    &store,
                    params,
                    &grid,
                    row_range,
                    col_range,
                    fasta,
                    &mut counters,
                )
            });
            obs::gauge!("pastis.nnz_b", counters.nnz_b);
            // The alignment work ran inside `pastis.spgemm_b` (as
            // `align.overlap` chunk spans, which the dissection attributes
            // to the `align` row) — that is the point; the empty wrapper
            // keeps the span set uniform with the staged shapes.
            stage("pastis.align", || ());
            edges
        } else {
            let b_mat = stage("pastis.spgemm_b", || {
                a_mat.spgemm(&a_t, &ExactSemiring, params.spgemm)
            });
            counters.nnz_a = a_mat.nnz();
            counters.nnz_b = b_mat.nnz();
            obs::gauge!("pastis.nnz_b", counters.nnz_b);
            stage("pastis.wait", || store.finish_exchange(exchange));
            stage("pastis.align", || {
                align_owned_pairs(
                    &b_mat,
                    &store,
                    params,
                    &grid,
                    row_range,
                    col_range,
                    &mut counters,
                )
            })
        };

        counters.alignments_global = comm.allreduce(counters.alignments_local, |a, b| a + b);
        counters.prefilter_bitpack_culled_global =
            comm.allreduce(counters.prefilter_bitpack_culled_local, |a, b| a + b);
        counters.prefilter_striped_culled_global =
            comm.allreduce(counters.prefilter_striped_culled_local, |a, b| a + b);
        counters.prefilter_passed_global =
            comm.allreduce(counters.prefilter_passed_local, |a, b| a + b);
        counters.edges_global = comm.allreduce(edges.len() as u64, |a, b| a + b);
        (edges, counters)
    };

    let trace = match own_rec {
        Some(rec) => rec.finish(),
        None => obs::snapshot().expect("recorder uninstalled mid-pipeline"),
    };
    let timings = Timings::from_trace(&trace, comm.size());
    PastisRun {
        edges,
        timings,
        counters,
        trace,
    }
}

/// Drop columns of `A` (k-mers) whose global occurrence count exceeds
/// `limit`. A k-mer column is spread over the ranks of one grid column, so
/// global counts are assembled with an allgather along the column
/// subcommunicator. Collective.
fn prune_frequent_kmers(grid: &Grid, a: &mut DistMat<u32>, limit: u32) {
    use std::collections::HashMap;
    let local: Vec<(u64, u32)> = {
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for (_, c, _) in a.iter_local() {
            *counts.entry(c).or_insert(0) += 1;
        }
        let mut v: Vec<(u64, u32)> = counts.into_iter().collect();
        v.sort_unstable();
        v
    };
    let all = grid.col_comm().allgather(local);
    let mut global: HashMap<u64, u32> = HashMap::new();
    for (c, n) in all.into_iter().flatten() {
        *global.entry(c).or_insert(0) += n;
    }
    a.retain(|_, c, _| global.get(&c).copied().unwrap_or(0) <= limit);
}

/// Alignment task ownership for a local block entry.
#[inline]
fn owns_pair(li: u64, lj: u64, myrow: usize, mycol: usize) -> bool {
    li < lj || (li == lj && myrow <= mycol)
}

/// Per-rank OS-thread budget for alignment batches: 0 = auto, splitting
/// the host's cores evenly among co-located ranks (the paper's
/// one-process-per-node × t-threads layout).
fn batch_threads(params: &PastisParams, grid: &Grid) -> usize {
    if params.threads == 0 {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        (cores / grid.world().size().max(1)).max(1)
    } else {
        params.threads
    }
}

/// Outcome of one candidate pair's alignment attempt. The culled variants
/// are distinct from `Skipped` because a culled pair under `min_score > 1`
/// may still have a positive score — statistics must not conflate
/// "prefilter said no" with "nothing aligned" — and distinct from each
/// other so the dissection can report how much work each cascade tier
/// absorbed.
enum PairVerdict {
    /// Alignment ran to completion.
    Stats(AlignStats),
    /// The bitpacked gate culled the pair on its score upper bound; no
    /// exact DP ran.
    CulledBitpack,
    /// The exact score tier culled the pair before traceback.
    CulledScore,
    /// No alignment attempted (mode `None`) or no usable seed.
    Skipped,
}

/// Align one candidate pair under the configured mode.
fn align_pair(
    gi: u64,
    gj: u64,
    pair: &SeedPair,
    store: &DistSeqStore,
    params: &PastisParams,
) -> PairVerdict {
    let ap = &params.align;
    match params.mode {
        AlignMode::None => PairVerdict::Skipped,
        AlignMode::SmithWaterman => {
            let r = &store.row_seq(gi).expect("row sequence prefetched").data;
            let c = &store.col_seq(gj).expect("col sequence prefetched").data;
            match prefiltered_align_outcome(r, c, ap, params.min_score) {
                PrefilterOutcome::Passed(st) => PairVerdict::Stats(st),
                PrefilterOutcome::CulledBitpack => PairVerdict::CulledBitpack,
                PrefilterOutcome::CulledScore => PairVerdict::CulledScore,
            }
        }
        AlignMode::XDrop => {
            let r = &store.row_seq(gi).expect("row sequence prefetched").data;
            let c = &store.col_seq(gj).expect("col sequence prefetched").data;
            // Score-only pre-cull is opt-in for x-drop (`min_score > 1`):
            // the full-matrix score pass costs O(m·n), which x-drop exists
            // to avoid, but a high threshold can still pay for itself by
            // skipping whole seed loops. The bitpacked gate runs first —
            // its cull implies the exact score misses the threshold, so
            // the verdict matches what the score pass would have returned.
            if params.min_score > 1 {
                if let GateVerdict::Culled = bitpack_gate(r, c, ap, params.min_score) {
                    obs::counter!("prefilter.bitpack_culled", 1);
                    return PairVerdict::CulledBitpack;
                }
                let (score, _) = striped_score(r, c, ap);
                if score < params.min_score {
                    obs::counter!("prefilter.striped_culled", 1);
                    return PairVerdict::CulledScore;
                }
                obs::counter!("prefilter.passed", 1);
            }
            // Extend from each stored seed, keeping the best score
            // (paper §IV-E). Seeds on the same diagonal extend through
            // the same band to the same optimum, so only the first
            // seed per diagonal is extended.
            let k = params.k;
            let mut best: Option<AlignStats> = None;
            let mut done_diags = [i64::MAX; 2];
            let mut ndiags = 0;
            for &(rp, cp) in pair.seeds() {
                if rp as usize + k > r.len() || cp as usize + k > c.len() {
                    continue;
                }
                let diag = rp as i64 - cp as i64;
                if done_diags[..ndiags].contains(&diag) {
                    continue;
                }
                done_diags[ndiags] = diag;
                ndiags += 1;
                let st = xdrop_align(r, c, rp, cp, k, ap);
                // `>=` keeps the last maximum on ties, matching the
                // former max_by_key semantics.
                let better = match &best {
                    None => true,
                    Some(b) => st.score >= b.score,
                };
                if better {
                    best = Some(st);
                }
            }
            obs::hist!("align.seeds_extended", ndiags);
            match best {
                Some(st) => PairVerdict::Stats(st),
                None => PairVerdict::Skipped,
            }
        }
    }
}

/// Align a batch of owned, CK-surviving candidate pairs and fold the
/// surviving edges. Shared by the staged path (one batch for the whole
/// `B`) and the streamed path (one batch per SUMMA stage).
fn align_tasks(
    tasks: Vec<(u64, u64, SeedPair)>,
    store: &DistSeqStore,
    params: &PastisParams,
    threads: usize,
    counters: &mut Counters,
) -> Vec<(u64, u64, f64)> {
    // The chunk span is the dissection's alignment stage (see
    // [`Timings::STAGE_SPANS`]): emitted here so both the staged path (one
    // chunk for all of `B`) and the streamed path (one chunk per SUMMA
    // stage) attribute alignment time the same way.
    let _chunk = obs::span!("align.overlap", tasks = tasks.len());
    let aligned = match params.mode {
        AlignMode::None => 0,
        _ => tasks.len() as u64,
    };
    counters.alignments_local += aligned;
    // Live telemetry: announce the chunk's alignments before the batch
    // runs so the monitor shows an in-flight progress bar, retire them
    // after. Mirrors `alignments_local` exactly, so the final snapshot's
    // per-rank `done` totals reconcile against the trace counters.
    obs::live::add_items(0, aligned);
    let verdicts = align_batch(&tasks, threads, |&(gi, gj, ref pair)| {
        align_pair(gi, gj, pair, store, params)
    });
    obs::live::add_items(aligned, 0);

    let mut edges = Vec::new();
    for ((gi, gj, pair), verdict) in tasks.into_iter().zip(verdicts) {
        let (lo, hi) = if gi < gj { (gi, gj) } else { (gj, gi) };
        match params.mode {
            AlignMode::None => {
                // Scaling runs: candidate pairs weighted by shared k-mers.
                edges.push((lo, hi, pair.count as f64));
            }
            _ => match verdict {
                PairVerdict::Skipped => {}
                PairVerdict::CulledBitpack => counters.prefilter_bitpack_culled_local += 1,
                PairVerdict::CulledScore => counters.prefilter_striped_culled_local += 1,
                PairVerdict::Stats(st) => {
                    counters.prefilter_passed_local += 1;
                    match params.measure {
                        SimilarityMeasure::Ani => {
                            if st.passes_filter(params.min_ani, params.min_coverage) {
                                edges.push((lo, hi, st.ani()));
                            }
                        }
                        SimilarityMeasure::NormalizedScore => {
                            // The paper applies no cut-off under NS (§VI-B).
                            if st.score > 0 {
                                edges.push((lo, hi, st.normalized_score()));
                            }
                        }
                    }
                }
            },
        }
    }
    edges
}

fn align_owned_pairs(
    b_mat: &DistMat<SeedPair>,
    store: &DistSeqStore,
    params: &PastisParams,
    grid: &Grid,
    row_range: (u64, u64),
    col_range: (u64, u64),
    counters: &mut Counters,
) -> Vec<(u64, u64, f64)> {
    let (myrow, mycol) = (grid.myrow(), grid.mycol());
    let mut tasks: Vec<(u64, u64, SeedPair)> = Vec::new();
    for (gi, gj, pair) in b_mat.iter_local() {
        if gi == gj {
            continue; // self-overlap
        }
        let (li, lj) = (gi - row_range.0, gj - col_range.0);
        if !owns_pair(li, lj, myrow, mycol) {
            continue;
        }
        counters.candidates_local += 1;
        if pair.count <= params.common_kmer_threshold {
            continue; // CK threshold: too few shared k-mers to bother
        }
        tasks.push((gi, gj, *pair));
    }
    align_tasks(tasks, store, params, batch_threads(params, grid), counters)
}

/// Read an out-of-core test hook: `Some(k)` when the environment variable
/// names batch `k`.
fn env_batch(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Counter deltas accumulated by one batch on this rank (checkpointed in
/// the shard header so resumed runs reproduce the statistics).
fn counter_delta(now: &Counters, before: &Counters, nnz_b: u64) -> ckpt::CounterDelta {
    ckpt::CounterDelta {
        candidates: now.candidates_local - before.candidates_local,
        alignments: now.alignments_local - before.alignments_local,
        bitpack_culled: now.prefilter_bitpack_culled_local - before.prefilter_bitpack_culled_local,
        striped_culled: now.prefilter_striped_culled_local - before.prefilter_striped_culled_local,
        passed: now.prefilter_passed_local - before.prefilter_passed_local,
        nnz_b,
    }
}

/// The streaming layout's driver: monolithic when neither a memory budget
/// nor a checkpoint directory is configured (byte-for-byte the former
/// behavior), otherwise the out-of-core batch loop of DESIGN.md §15 —
/// size column batches against the budget, run the SUMMA stream once per
/// batch on a column-restricted `Aᵀ`, concatenate the per-batch edges
/// (bit-identical to the monolithic set: batches tile `B`'s columns and
/// per-entry fold order is unchanged), and checkpoint each completed
/// batch so a killed run resumes instead of restarting.
#[allow(clippy::too_many_arguments)]
fn run_streaming_batches(
    a_mat: &DistMat<u32>,
    a_t: &DistMat<u32>,
    store: &DistSeqStore,
    params: &PastisParams,
    grid: &Grid,
    row_range: (u64, u64),
    col_range: (u64, u64),
    fasta: &[u8],
    counters: &mut Counters,
) -> Vec<(u64, u64, f64)> {
    let world = grid.world();
    if params.mem_budget_bytes.is_none() && params.ckpt_dir.is_none() {
        let (edges, nnz_b_local) = stream_overlap_align(
            a_mat, a_t, store, params, grid, row_range, col_range, counters,
        );
        counters.nnz_b = world.allreduce(nnz_b_local, |a, b| a + b);
        return edges;
    }

    let n = a_mat.nrows();
    let plan = match params.mem_budget_bytes {
        Some(budget) => batch::plan(grid, a_t, budget),
        // Checkpointing without a budget: a single full-width batch still
        // gets a durable shard + manifest.
        None => BatchPlan {
            budget_bytes: u64::MAX,
            ranges: vec![(0, n)],
            est_bytes: vec![0],
        },
    };
    let rank = world.rank();
    let p = world.size();
    let ck = params.ckpt_dir.as_deref();

    // Resume state: the manifest's completed batches, keyed by index.
    // Every rank reads the same file with no writer active, so all ranks
    // derive the same map and the restore decisions below stay uniform —
    // the final word is still the collective shard-verification vote.
    let mut completed: std::collections::BTreeMap<usize, ckpt::BatchRecord> = Default::default();
    let mut fp = 0u64;
    if let Some(dir) = ck {
        if rank == 0 {
            // Created up front (and again at world launch by the binary)
            // so per-rank shard writes never race on mkdir.
            let _ = std::fs::create_dir_all(dir);
        }
        fp = ckpt::fingerprint(ckpt::fnv1a(fasta), &format!("{params:?}"), p, &plan.ranges);
        if let Some(m) = ckpt::load_manifest(dir) {
            if m.fingerprint == fp && m.p == p && m.n_batches == plan.ranges.len() {
                for b in m.completed {
                    completed.insert(b.index, b);
                }
            }
        }
    }

    let track = obs::alloc::tracking();
    let mut edges: Vec<(u64, u64, f64)> = Vec::new();
    let mut nnz_b_local = 0u64;
    for (k, &range) in plan.ranges.iter().enumerate() {
        let _batch = obs::span!("pastis.batch", batch = k);
        // Restore when the manifest lists the batch and *every* rank's
        // shard verifies; any corrupt shard votes the whole grid back to
        // recomputing the batch, keeping the SUMMA collectives uniform.
        let mut restored: Option<ckpt::Shard> = None;
        if let (Some(dir), Some(rec)) = (ck, completed.get(&k)) {
            let mine = rec
                .shard(rank)
                .and_then(|sr| ckpt::read_shard(dir, k, sr).ok());
            let all_ok = world.allreduce(mine.is_some() as u64, |a, b| a.min(b)) == 1;
            if all_ok {
                restored = mine;
            }
        }
        match restored {
            Some(shard) => {
                let d = &shard.delta;
                counters.candidates_local += d.candidates;
                counters.alignments_local += d.alignments;
                counters.prefilter_bitpack_culled_local += d.bitpack_culled;
                counters.prefilter_striped_culled_local += d.striped_culled;
                counters.prefilter_passed_local += d.passed;
                nnz_b_local += d.nnz_b;
                // Announce the restored alignments as instantly done so
                // the monitor's per-rank totals still reconcile against
                // the trace counters.
                obs::live::add_items(d.alignments, d.alignments);
                edges.extend(shard.edges);
            }
            None => {
                if track {
                    obs::alloc::begin_window();
                }
                let before = *counters;
                let a_t_k = a_t.restrict_cols(range);
                let (batch_edges, batch_nnz) = stream_overlap_align(
                    a_mat, &a_t_k, store, params, grid, row_range, col_range, counters,
                );
                nnz_b_local += batch_nnz;
                if track {
                    // Per-batch peaks for the `--trace` batch-memory
                    // table. Windows are process-global and reset on
                    // `begin_window`, so the enclosing stage window now
                    // only covers this batch — re-emitting the peaks
                    // under the stage gauges (max-merged) keeps the
                    // per-stage row equal to the max over batch windows,
                    // which is exactly the stage peak (each window's
                    // baseline includes everything still live from
                    // earlier batches).
                    let peaks = obs::alloc::window_peaks();
                    for (i, sub) in obs::SUBSYSTEMS.iter().enumerate() {
                        if peaks.per[i] > 0 {
                            obs::gauge_max_owned(&format!("mem.batch.{k}.{sub}"), peaks.per[i]);
                            obs::gauge_max_owned(
                                &format!("mem.stage.pastis.spgemm_b.{sub}"),
                                peaks.per[i],
                            );
                        }
                    }
                    obs::gauge_max_owned(&format!("mem.batch.{k}.total"), peaks.total);
                    obs::gauge_max_owned("mem.stage.pastis.spgemm_b.total", peaks.total);
                }
                if let Some(dir) = ck {
                    let delta = counter_delta(counters, &before, batch_nnz);
                    let rec = ckpt::write_shard(dir, k, rank, &batch_edges, &delta)
                        .expect("checkpoint shard write failed");
                    // Rank 0 learns every shard's record, then commits the
                    // manifest; the allgather doubles as the barrier that
                    // guarantees all shards are durable first.
                    let recs = world.allgather((rec.rank as u64, rec.len, rec.checksum));
                    if rank == 0 {
                        completed.insert(
                            k,
                            ckpt::BatchRecord {
                                index: k,
                                shards: recs
                                    .into_iter()
                                    .map(|(r, len, checksum)| ckpt::ShardRecord {
                                        rank: r as usize,
                                        len,
                                        checksum,
                                    })
                                    .collect(),
                            },
                        );
                        let m = ckpt::Manifest {
                            version: ckpt::CKPT_SCHEMA_VERSION,
                            fingerprint: fp,
                            p,
                            n_batches: plan.ranges.len(),
                            completed: completed.values().cloned().collect(),
                        };
                        ckpt::write_manifest(dir, &m).expect("checkpoint manifest write failed");
                    }
                }
                edges.extend(batch_edges);
            }
        }
        // Kill-test hooks for verify.sh and the resume proptest: die (or
        // hang, awaiting an external SIGKILL) only after batch k's
        // manifest commit is visible on every rank.
        if ck.is_some() {
            if env_batch("PASTIS_KILL_AFTER_BATCH") == Some(k) {
                world.barrier();
                if rank == 0 {
                    eprintln!("PASTIS_KILL_AFTER_BATCH={k}: aborting after batch {k}");
                }
                std::process::abort();
            }
            if env_batch("PASTIS_HANG_AFTER_BATCH") == Some(k) {
                world.barrier();
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(1));
                }
            }
        }
    }
    counters.nnz_b = world.allreduce(nnz_b_local, |a, b| a + b);
    edges
}

/// Streamed overlap SpGEMM + per-stage alignment: `A·Aᵀ` runs as a
/// [`sparse::SummaStream`] and candidate pairs are filtered and aligned as
/// soon as their entry can no longer change, while the next stage's panel
/// broadcasts are already in flight.
///
/// An entry `(i, j)` of my `B` block accumulates a contribution at stage
/// `t` only when row `i` of `A(myrow, t)` and column `j` of `Aᵀ(t, mycol)`
/// are both nonzero, so it is final once `t ≥ min(last_row[i],
/// last_col[j])` where `last_*` records the last stage with matching
/// occupancy. Per entry, contributions fold in stage order — the same
/// order the staged path's stable sort produces — so the extracted
/// [`SeedPair`]s, and with them the edge set, are bit-identical to the
/// staged path.
///
/// `a_t` may be a column-restricted view ([`DistMat::restrict_cols`]): the
/// finality bounds then derive from the restricted occupancy, and only the
/// batch's columns ever enter the pending map. Returns the edges plus this
/// rank's drained-nonzero count (the caller sums it across batches before
/// the global reduction).
#[allow(clippy::too_many_arguments)]
fn stream_overlap_align(
    a_mat: &DistMat<u32>,
    a_t: &DistMat<u32>,
    store: &DistSeqStore,
    params: &PastisParams,
    grid: &Grid,
    row_range: (u64, u64),
    col_range: (u64, u64),
    counters: &mut Counters,
) -> (Vec<(u64, u64, f64)>, u64) {
    use std::collections::btree_map::Entry;
    use std::collections::BTreeMap;

    let (myrow, mycol) = (grid.myrow(), grid.mycol());
    let threads = batch_threads(params, grid);

    // Stage-finality index (see doc above): each rank knows its own
    // block's occupancy; an allgather along the grid row/column assembles
    // the per-stage view (subcommunicator ranks are ordered by grid
    // coordinate, so result index = stage).
    let (last_row, last_col) = {
        let _span = obs::span!("summa.finality");
        let mut row_occ = vec![0u8; (row_range.1 - row_range.0) as usize];
        for (r, _, _) in a_mat.local().iter() {
            row_occ[r as usize] = 1;
        }
        let mut col_occ = vec![0u8; (col_range.1 - col_range.0) as usize];
        for (_, c, _) in a_t.local().iter() {
            col_occ[c as usize] = 1;
        }
        let fold = |stages: Vec<Vec<u8>>| {
            let mut last = vec![0usize; stages[0].len()];
            for (t, occ) in stages.iter().enumerate() {
                for (i, &o) in occ.iter().enumerate() {
                    if o != 0 {
                        last[i] = t;
                    }
                }
            }
            last
        };
        (
            fold(grid.row_comm().allgather(row_occ)),
            fold(grid.col_comm().allgather(col_occ)),
        )
    };

    let sr = ExactSemiring;
    let mut pending: BTreeMap<(u32, u64), SeedPair> = BTreeMap::new();
    let mut edges: Vec<(u64, u64, f64)> = Vec::new();
    let mut nnz_b_local = 0u64;
    let stream = a_mat.spgemm_stream(a_t, &sr, params.spgemm);
    stream.for_each_stage(|t, triples| {
        for (r, c, v) in triples {
            match pending.entry((r, c)) {
                Entry::Occupied(mut e) => sr.add(e.get_mut(), v),
                Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        // The pending map is fullest right after a stage's triples fold in,
        // before finalized entries drain — probe it here.
        obs::alloc::probe("mem.watermark.pastis.pending", &pending);
        // Drain the entries that can no longer change. (row, col) order
        // groups this chunk's tasks by query row, maximizing the striped
        // profile-cache hit rate.
        let mut tasks: Vec<(u64, u64, SeedPair)> = Vec::new();
        pending.retain(|&(r, c), pair| {
            if t < last_row[r as usize].min(last_col[c as usize]) {
                return true;
            }
            nnz_b_local += 1;
            let (gi, gj) = (row_range.0 + r as u64, col_range.0 + c);
            if gi != gj && owns_pair(r as u64, c, myrow, mycol) {
                counters.candidates_local += 1;
                if pair.count > params.common_kmer_threshold {
                    tasks.push((gi, gj, *pair));
                }
            }
            false
        });
        edges.extend(align_tasks(tasks, store, params, threads, counters));
    });
    debug_assert!(pending.is_empty(), "stage-finality left undrained entries");
    (edges, nnz_b_local)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_rule_is_a_partition() {
        // For every grid size and pair (i, j), exactly one rank owns the
        // pair — the §V-D claim.
        let n = 23u64;
        for q in [1usize, 2, 3, 4] {
            let ranges: Vec<(u64, u64)> = (0..q)
                .map(|i| (i as u64 * n / q as u64, (i as u64 + 1) * n / q as u64))
                .collect();
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let mut owners = 0;
                    for r in 0..q {
                        for c in 0..q {
                            let (r0, r1) = ranges[r];
                            let (c0, c1) = ranges[c];
                            // Entry (i,j) of symmetric B exists in block
                            // (r,c) iff i ∈ rows, j ∈ cols.
                            if i >= r0
                                && i < r1
                                && j >= c0
                                && j < c1
                                && owns_pair(i - r0, j - c0, r, c)
                            {
                                owners += 1;
                            }
                        }
                    }
                    // B symmetric: (i,j) and (j,i) both exist; exactly one
                    // of the two entries may be owned.
                    let mut owners_t = 0;
                    for r in 0..q {
                        for c in 0..q {
                            let (r0, r1) = ranges[r];
                            let (c0, c1) = ranges[c];
                            if j >= r0
                                && j < r1
                                && i >= c0
                                && i < c1
                                && owns_pair(j - r0, i - c0, r, c)
                            {
                                owners_t += 1;
                            }
                        }
                    }
                    assert_eq!(
                        owners + owners_t,
                        1,
                        "pair ({i},{j}) q={q}: {owners}+{owners_t}"
                    );
                }
            }
        }
    }
}
