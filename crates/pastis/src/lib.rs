//! # PASTIS — Protein Alignment via Sparse Matrices
//!
//! A from-scratch Rust reproduction of *"Distributed Many-to-Many Protein
//! Sequence Alignment using Sparse Matrices"* (Selvitopi et al., SC 2020).
//!
//! PASTIS builds a **protein similarity graph** over a set of sequences:
//!
//! 1. **Seed discovery** — a sparse |sequences| × |k-mers| matrix `A`
//!    records each k-mer's starting position in each sequence; the overlap
//!    matrix `B = A·Aᵀ` (exact matching) or `B = (A·S)·Aᵀ` (substitute
//!    k-mer matching, §IV-C) is computed with custom semirings that carry
//!    up to two shared seed positions per pair (Fig. 3–4).
//! 2. **Alignment** — every nonzero of `B`'s upper triangle is aligned
//!    with seed-and-extend x-drop or full Smith–Waterman; the triangular
//!    block-ownership rule of §V-D balances this work across the grid with
//!    zero extra communication, and the sequences needed were prefetched in
//!    the background while `B` was being computed (§V-C).
//! 3. **Filtering** — pairs below identity/coverage thresholds are dropped
//!    (§IV-F); survivors become weighted edges of the similarity graph.
//!
//! ```
//! use pastis::{run_pipeline, AlignMode, PastisParams};
//! use pcomm::World;
//! use seqstore::write_fasta;
//!
//! let fasta = write_fasta(&datagen::metaclust_like(
//!     40,
//!     &datagen::MetaclustConfig { len_range: (60, 120), ..Default::default() },
//! ));
//! let params = PastisParams { k: 4, substitutes: 10, ..Default::default() };
//! // Run on a 2×2 simulated process grid.
//! let runs = World::run(4, |comm| run_pipeline(&comm, &fasta, &params));
//! let edges: usize = runs.iter().map(|r| r.edges.len()).sum();
//! assert!(edges > 0);
//! ```

pub mod batch;
pub mod ckpt;
mod matrices;
mod output;
mod params;
mod pipeline;
mod seedpair;
mod semirings;

pub use matrices::{build_a_triples, build_s_dist, distinct_kmers};
pub use output::{read_psg_shards, shard_path, write_psg_shard};
pub use params::{AlignMode, PastisParams};
pub use pipeline::{run_pipeline, Counters, PastisRun, StageMeasure, Timings};
pub use seedpair::{SeedPair, SubPos};
pub use semirings::{AsSemiring, ExactSemiring, SubSemiring};
