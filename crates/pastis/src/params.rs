//! Pipeline configuration.

use align::{AlignParams, SimilarityMeasure};
use sparse::SpGemmStrategy;

/// Alignment mode for candidate pairs (paper §IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignMode {
    /// Gapped x-drop seed-and-extend from the stored shared seeds — the
    /// fast mode (`PASTIS-XD`).
    XDrop,
    /// Full local Smith–Waterman, seeds only used for candidate detection
    /// (`PASTIS-SW`).
    SmithWaterman,
    /// Skip alignment entirely — used by the paper's scaling experiments,
    /// which time only the sparse stages (§VI-A "Strong and Weak Scaling").
    None,
}

/// Full PASTIS configuration. Defaults mirror the paper's evaluation
/// settings (§VI): k = 6, BLOSUM62 with gap 11/1, x-drop 49, ANI ≥ 30%,
/// shorter-sequence coverage ≥ 70%.
#[derive(Debug, Clone)]
pub struct PastisParams {
    /// K-mer length.
    pub k: usize,
    /// Substitute k-mers per k-mer (`m`); 0 disables the `S` matrix
    /// (`s0` in the paper's variant names).
    pub substitutes: usize,
    /// Alignment mode.
    pub mode: AlignMode,
    /// Common-k-mer threshold: drop pairs sharing ≤ this many (substitute)
    /// k-mers before alignment (`CK` variants; paper uses 1 for exact and
    /// 3 for substitute k-mers).
    pub common_kmer_threshold: u32,
    /// Seed in the Murphy-10 reduced amino acid alphabet instead of the
    /// full 24-letter one (DIAMOND's sensitivity trick, paper §III):
    /// diverged homologs share more seeds at the cost of more candidates.
    /// Alignment always runs in the full alphabet. Incompatible with
    /// substitute k-mers (the expense table is 24-letter).
    pub reduced_alphabet: bool,
    /// Drop k-mers occurring in more than this many sequences before the
    /// overlap products (the pre-processing k-mer elimination the paper
    /// lists as future work in §VII; real-world repeats and low-complexity
    /// regions otherwise inflate `B` quadratically). `None` keeps all.
    pub max_kmer_frequency: Option<u32>,
    /// Similarity measure used as edge weight (ANI or NS, §VI-B).
    pub measure: SimilarityMeasure,
    /// Minimum alignment identity (applied only under ANI).
    pub min_ani: f64,
    /// Minimum shorter-sequence coverage (applied only under ANI).
    pub min_coverage: f64,
    /// Kernel parameters (matrix, gaps, x-drop).
    pub align: AlignParams,
    /// Local SpGEMM accumulation strategy.
    pub spgemm: SpGemmStrategy,
    /// OS threads per rank for the alignment batch (OpenMP stand-in).
    /// `0` = auto: divide the host's cores evenly among the ranks (the
    /// paper's one-process-per-node × t-threads layout), at least one.
    pub threads: usize,
    /// Stream candidate pairs out of the overlap SpGEMM into alignment
    /// while later SUMMA stages are still running (nonblocking panel
    /// broadcasts + per-stage candidate extraction). The edge set is
    /// bit-identical to the staged path; only exact seeding streams — the
    /// substitute path's symmetrization is a global barrier and stays
    /// staged.
    pub streaming: bool,
    /// Score-only prefilter: pairs whose striped Smith–Waterman score is
    /// below this skip the traceback pass entirely (MMseqs2-style
    /// prefilter-then-align staging). The default of 1 is exact — a score
    /// ≤ 0 can produce an edge under neither ANI (empty alignment fails
    /// the identity filter) nor NS (which requires score > 0). Applied in
    /// SW mode always; in XDrop mode only when > 1 (opt-in — the score
    /// pass is O(mn), which x-drop exists to avoid).
    pub min_score: i32,
    /// Per-rank memory budget in bytes for the overlap product. When set,
    /// the streaming pipeline partitions B's columns into batches sized so
    /// the estimated per-rank footprint of any one batch stays under the
    /// budget (out-of-core driver, DESIGN.md §15): the SUMMA stream runs
    /// once per batch against a column-restricted `Aᵀ`, and the per-batch
    /// edges concatenate into an edge set bit-identical to the monolithic
    /// run. `None` = single pass. Only the exact streaming layout batches;
    /// the substitute and staged layouts ignore the budget. A good value
    /// on a recorded machine is the `pcomm::project_mem` peak at the
    /// current grid scaled by the desired headroom (see
    /// [`crate::batch::budget_from_projection`]).
    pub mem_budget_bytes: Option<u64>,
    /// Checkpoint directory for streaming runs: each completed batch
    /// writes per-rank PSG shards plus a versioned manifest here
    /// (checksummed, committed tmp-then-rename — see `pastis::ckpt`), and
    /// a rerun pointed at the same directory resumes after the last
    /// complete batch instead of restarting. `None` disables
    /// checkpointing.
    pub ckpt_dir: Option<std::path::PathBuf>,
}

impl Default for PastisParams {
    fn default() -> Self {
        PastisParams {
            k: 6,
            substitutes: 0,
            mode: AlignMode::XDrop,
            common_kmer_threshold: 0,
            reduced_alphabet: false,
            max_kmer_frequency: None,
            measure: SimilarityMeasure::Ani,
            min_ani: 0.30,
            min_coverage: 0.70,
            align: AlignParams::default(),
            spgemm: SpGemmStrategy::Hybrid,
            threads: 1,
            streaming: true,
            min_score: 1,
            mem_budget_bytes: None,
            ckpt_dir: None,
        }
    }
}

impl PastisParams {
    /// The paper's variant naming, e.g. `PASTIS-XD-s25-CK`.
    pub fn variant_name(&self) -> String {
        let mode = match self.mode {
            AlignMode::XDrop => "XD",
            AlignMode::SmithWaterman => "SW",
            AlignMode::None => "NOALIGN",
        };
        let ck = if self.common_kmer_threshold > 0 {
            "-CK"
        } else {
            ""
        };
        format!("PASTIS-{mode}-s{}{ck}", self.substitutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = PastisParams::default();
        assert_eq!(p.k, 6);
        assert_eq!(p.align.gap_open, 11);
        assert_eq!(p.align.gap_extend, 1);
        assert_eq!(p.align.xdrop, 49);
        assert_eq!(p.min_ani, 0.30);
        assert_eq!(p.min_coverage, 0.70);
    }

    #[test]
    fn variant_names() {
        let mut p = PastisParams::default();
        assert_eq!(p.variant_name(), "PASTIS-XD-s0");
        p.mode = AlignMode::SmithWaterman;
        p.substitutes = 25;
        p.common_kmer_threshold = 3;
        assert_eq!(p.variant_name(), "PASTIS-SW-s25-CK");
    }
}
