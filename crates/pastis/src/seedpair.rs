//! Value types carried through the sparse matrix products (paper Fig. 3).

use pcomm::Payload;

/// Value of `A·S`: for a (sequence, substitute-k-mer) pair, the starting
/// position of the *closest* original k-mer of that sequence, plus its
/// substitution distance (paper §IV-C: "if d_ps ≤ d_qs we would store the
/// position of k_p as the starting position of k_s").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubPos {
    /// Starting position of the closest original k-mer in the sequence.
    pub pos: u32,
    /// Substitution distance between that k-mer and the substitute.
    pub dist: u32,
}

impl Payload for SubPos {
    fn payload_bytes(&self) -> usize {
        8
    }
}

/// Value of the overlap matrix `B`: the number of shared (substitute)
/// k-mers of the pair plus up to two shared seed locations (paper Fig. 3:
/// "a maximum of two shared k-mer locations per sequence pair are kept").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeedPair {
    /// Count of shared (substitute) k-mers.
    pub count: u32,
    /// Stored seeds `(position in row sequence, position in col sequence)`.
    seeds: [(u32, u32); 2],
    nseeds: u8,
}

impl SeedPair {
    /// A single shared seed.
    pub fn single(rpos: u32, cpos: u32) -> SeedPair {
        SeedPair {
            count: 1,
            seeds: [(rpos, cpos), (0, 0)],
            nseeds: 1,
        }
    }

    /// The stored seeds (at most two).
    pub fn seeds(&self) -> &[(u32, u32)] {
        &self.seeds[..self.nseeds as usize]
    }

    /// Fold another contribution into this pair: counts add, and up to two
    /// *distinct* seed locations are retained (first-come order, which the
    /// deterministic semiring fold makes reproducible).
    pub fn merge(&mut self, other: SeedPair) {
        self.count += other.count;
        for &s in other.seeds() {
            if (self.nseeds as usize) < 2 && !self.seeds().contains(&s) {
                self.seeds[self.nseeds as usize] = s;
                self.nseeds += 1;
            }
        }
    }

    /// Merge used during symmetrization: the transposed direction found the
    /// same pair independently, so take the max count rather than the sum
    /// (avoiding double-counting the shared k-mers).
    pub fn merge_symmetric(&mut self, other: SeedPair) {
        self.count = self.count.max(other.count);
        for &s in other.seeds() {
            if (self.nseeds as usize) < 2 && !self.seeds().contains(&s) {
                self.seeds[self.nseeds as usize] = s;
                self.nseeds += 1;
            }
        }
    }

    /// Swap seed orientation (row↔column), used when folding in the
    /// transposed matrix during symmetrization.
    pub fn swapped(&self) -> SeedPair {
        let mut out = *self;
        for s in out.seeds.iter_mut() {
            *s = (s.1, s.0);
        }
        out
    }
}

impl Payload for SeedPair {
    fn payload_bytes(&self) -> usize {
        4 + 8 * self.nseeds as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_merge_counts() {
        let mut a = SeedPair::single(3, 7);
        a.merge(SeedPair::single(10, 14));
        assert_eq!(a.count, 2);
        assert_eq!(a.seeds(), &[(3, 7), (10, 14)]);
    }

    #[test]
    fn keeps_at_most_two_seeds() {
        let mut a = SeedPair::single(1, 1);
        a.merge(SeedPair::single(2, 2));
        a.merge(SeedPair::single(3, 3));
        assert_eq!(a.count, 3);
        assert_eq!(a.seeds().len(), 2);
        assert_eq!(a.seeds(), &[(1, 1), (2, 2)]);
    }

    #[test]
    fn duplicate_seed_not_stored_twice() {
        let mut a = SeedPair::single(5, 5);
        a.merge(SeedPair::single(5, 5));
        assert_eq!(a.count, 2);
        assert_eq!(a.seeds(), &[(5, 5)]);
    }

    #[test]
    fn symmetric_merge_takes_max_count() {
        let mut a = SeedPair::single(1, 2);
        a.merge(SeedPair::single(3, 4)); // count 2
        let mut b = SeedPair::single(2, 1);
        b.merge(SeedPair::single(9, 9));
        b.merge(SeedPair::single(8, 8)); // count 3
        a.merge_symmetric(b);
        assert_eq!(a.count, 3);
        assert_eq!(a.seeds().len(), 2);
    }

    #[test]
    fn swapped_flips_orientation() {
        let mut a = SeedPair::single(1, 2);
        a.merge(SeedPair::single(3, 4));
        let s = a.swapped();
        assert_eq!(s.seeds(), &[(2, 1), (4, 3)]);
        assert_eq!(s.count, a.count);
    }
}
