//! Parallel similarity-graph output.
//!
//! The paper attributes MMseqs2's scaling ceiling to gathering all results
//! to a single writer process, "which is handled in parallel in PASTIS"
//! (§VI-A). Accordingly, every rank writes its own shard of the PSG —
//! `<stem>.rank<r>.tsv` — with no communication at all; the shards together
//! hold each unordered pair exactly once (the triangular ownership rule
//! guarantees disjointness).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use pcomm::Comm;

/// Write this rank's edges to `<stem>.rank<R>.tsv` (tab-separated
/// `gid_low gid_high weight`). Returns the path written. Purely local —
/// the paper's parallel-output answer to the single-writer bottleneck.
pub fn write_psg_shard(
    comm: &Comm,
    stem: &Path,
    edges: &[(u64, u64, f64)],
) -> std::io::Result<PathBuf> {
    let path = shard_path(stem, comm.rank());
    let file = std::fs::File::create(&path)?;
    let mut out = std::io::BufWriter::new(file);
    for &(a, b, w) in edges {
        writeln!(out, "{a}\t{b}\t{w:.6}")?;
    }
    out.flush()?;
    Ok(path)
}

/// Path of rank `rank`'s shard for `stem`.
pub fn shard_path(stem: &Path, rank: usize) -> PathBuf {
    let mut name = stem
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    name.push(format!(".rank{rank}.tsv"));
    stem.with_file_name(name)
}

/// Read back the shards of a `p`-rank run and return the merged, sorted
/// edge list (for tests and downstream single-node tools).
pub fn read_psg_shards(stem: &Path, p: usize) -> std::io::Result<Vec<(u64, u64, f64)>> {
    let mut edges = Vec::new();
    for rank in 0..p {
        let text = std::fs::read_to_string(shard_path(stem, rank))?;
        for line in text.lines() {
            let mut it = line.split('\t');
            let a = it.next().and_then(|s| s.parse().ok());
            let b = it.next().and_then(|s| s.parse().ok());
            let w = it.next().and_then(|s| s.parse().ok());
            match (a, b, w) {
                (Some(a), Some(b), Some(w)) => edges.push((a, b, w)),
                _ => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("malformed PSG line: {line:?}"),
                    ))
                }
            }
        }
    }
    edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_path_format() {
        let p = shard_path(Path::new("/tmp/out/psg"), 3);
        assert_eq!(p, Path::new("/tmp/out/psg.rank3.tsv"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let dir = std::env::temp_dir().join("pastis_psg_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("psg");
        std::fs::write(shard_path(&stem, 0), "1\t2\n").unwrap();
        assert!(read_psg_shards(&stem, 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
