//! Kill-safe checkpoint/resume for batched streaming runs (DESIGN.md §15).
//!
//! Directory layout:
//!
//! ```text
//! <ckpt_dir>/manifest.json        versioned manifest (see [`Manifest`])
//! <ckpt_dir>/batch<k>.rank<r>.psg one shard per (completed batch, rank)
//! ```
//!
//! Every file commits via tmp-then-rename, and the manifest only ever
//! references batches whose shards are all durably on disk, so a run
//! killed at any instant leaves either no trace of the in-flight batch or
//! a complete, checksummed record of it. Shard weights are stored as raw
//! `f64` bits (hex), so a resumed run's edge set is bit-identical to the
//! uninterrupted one; each shard also carries the rank's counter deltas
//! for the batch, so resumed runs reproduce the pipeline's statistics.
//!
//! All checkpoint filesystem writes live in this module — the
//! `ckpt-confinement` xlint rule keeps the `fs::rename` commit primitive
//! here, so nothing can bypass the manifest/checksum protocol.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use obs::JsonValue;

/// Manifest schema version; bump on any layout change. A manifest with a
/// different version is ignored (the run restarts from scratch) rather
/// than misread.
pub const CKPT_SCHEMA_VERSION: u64 = 1;

/// One rank's shard of one completed batch, as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecord {
    /// World rank that wrote the shard.
    pub rank: usize,
    /// Exact file length in bytes.
    pub len: u64,
    /// FNV-1a checksum of the file bytes.
    pub checksum: u64,
}

/// A completed batch: one shard per rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Batch index in the plan.
    pub index: usize,
    /// Shards, one per rank (any order; looked up by rank).
    pub shards: Vec<ShardRecord>,
}

impl BatchRecord {
    /// The shard `rank` wrote, if recorded.
    pub fn shard(&self, rank: usize) -> Option<&ShardRecord> {
        self.shards.iter().find(|s| s.rank == rank)
    }
}

/// The checkpoint manifest: which batches of which run are durably done.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// [`CKPT_SCHEMA_VERSION`] at write time.
    pub version: u64,
    /// Run fingerprint (input + params + grid + plan); a manifest from a
    /// different run must never be resumed from.
    pub fingerprint: u64,
    /// World size of the writing run.
    pub p: usize,
    /// Total batches in the plan.
    pub n_batches: usize,
    /// Completed batches, ascending by index.
    pub completed: Vec<BatchRecord>,
}

/// Per-rank, per-batch counter deltas stored in the shard header, so a
/// resumed run reports the same [`crate::Counters`] as an uninterrupted
/// one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterDelta {
    /// Candidate pairs this rank owned in the batch.
    pub candidates: u64,
    /// Alignments this rank ran in the batch.
    pub alignments: u64,
    /// Bitpacked-gate culls in the batch.
    pub bitpack_culled: u64,
    /// Exact-score-tier culls in the batch.
    pub striped_culled: u64,
    /// Pairs that survived the prefilter cascade in the batch.
    pub passed: u64,
    /// Nonzeros of `B` this rank drained in the batch.
    pub nnz_b: u64,
}

/// A decoded shard: the rank's edges for one batch plus its counter
/// deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// `(gid_low, gid_high, weight)` edges, in drain order.
    pub edges: Vec<(u64, u64, f64)>,
    /// Counter deltas for the batch.
    pub delta: CounterDelta,
}

/// FNV-1a 64-bit hash — the shard checksum and fingerprint primitive (no
/// external digest crates in this workspace).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Fingerprint of a run: FASTA digest, parameter signature, world size,
/// and the batch plan's column boundaries. Any mismatch means the
/// manifest describes a different computation and is ignored.
pub fn fingerprint(fasta_digest: u64, params_sig: &str, p: usize, ranges: &[(u64, u64)]) -> u64 {
    let mut s = format!("pastis-ckpt:{fasta_digest:016x}:{p}:{params_sig}");
    for &(a, b) in ranges {
        s.push_str(&format!(":{a}-{b}"));
    }
    fnv1a(s.as_bytes())
}

/// Path of the manifest inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// Path of rank `rank`'s shard for batch `batch` inside `dir`.
pub fn shard_path(dir: &Path, batch: usize, rank: usize) -> PathBuf {
    dir.join(format!("batch{batch}.rank{rank}.psg"))
}

/// Write bytes to `path` durably: write `<path>.tmp`, then rename over
/// `path`. A kill between the two calls leaves at worst a stale `.tmp`
/// that the next run overwrites; `path` itself is always either absent or
/// complete.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Serialize and durably write one rank's shard for `batch`. Returns the
/// record (length + checksum) destined for the manifest.
pub fn write_shard(
    dir: &Path,
    batch: usize,
    rank: usize,
    edges: &[(u64, u64, f64)],
    delta: &CounterDelta,
) -> io::Result<ShardRecord> {
    use std::fmt::Write as _;
    let mut text = format!("#pastis-ckpt {CKPT_SCHEMA_VERSION} batch={batch} rank={rank}\n");
    let d = delta;
    let _ = writeln!(
        text,
        "#counters cand={} aln={} bp={} sc={} passed={} nnzb={}",
        d.candidates, d.alignments, d.bitpack_culled, d.striped_culled, d.passed, d.nnz_b
    );
    for &(lo, hi, w) in edges {
        let _ = writeln!(text, "{lo}\t{hi}\t{:016x}", w.to_bits());
    }
    write_atomic(&shard_path(dir, batch, rank), text.as_bytes())?;
    Ok(ShardRecord {
        rank,
        len: text.len() as u64,
        checksum: fnv1a(text.as_bytes()),
    })
}

/// Read back and verify one shard against its manifest record. Any
/// mismatch — missing file, wrong length, checksum failure, malformed
/// line — returns `Err`, and the caller treats the batch as incomplete
/// and recomputes it.
pub fn read_shard(dir: &Path, batch: usize, rec: &ShardRecord) -> Result<Shard, String> {
    let path = shard_path(dir, batch, rec.rank);
    let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    if bytes.len() as u64 != rec.len {
        return Err(format!(
            "{}: length {} != recorded {}",
            path.display(),
            bytes.len(),
            rec.len
        ));
    }
    let sum = fnv1a(&bytes);
    if sum != rec.checksum {
        return Err(format!(
            "{}: checksum {sum:016x} != recorded {:016x}",
            path.display(),
            rec.checksum
        ));
    }
    let text = std::str::from_utf8(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    let head = lines.next().unwrap_or_default();
    if !head.starts_with("#pastis-ckpt ") {
        return Err(format!("{}: bad header {head:?}", path.display()));
    }
    let counters = lines.next().unwrap_or_default();
    let delta = parse_counters(counters)
        .ok_or_else(|| format!("{}: bad counters line {counters:?}", path.display()))?;
    let mut edges = Vec::new();
    for line in lines {
        let mut it = line.split('\t');
        let lo = it.next().and_then(|s| s.parse::<u64>().ok());
        let hi = it.next().and_then(|s| s.parse::<u64>().ok());
        let w = it
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .map(f64::from_bits);
        match (lo, hi, w) {
            (Some(lo), Some(hi), Some(w)) if it.next().is_none() => edges.push((lo, hi, w)),
            _ => return Err(format!("{}: malformed edge line {line:?}", path.display())),
        }
    }
    Ok(Shard { edges, delta })
}

fn parse_counters(line: &str) -> Option<CounterDelta> {
    let rest = line.strip_prefix("#counters ")?;
    let mut vals = BTreeMap::new();
    for field in rest.split(' ') {
        let (k, v) = field.split_once('=')?;
        vals.insert(k, v.parse::<u64>().ok()?);
    }
    Some(CounterDelta {
        candidates: *vals.get("cand")?,
        alignments: *vals.get("aln")?,
        bitpack_culled: *vals.get("bp")?,
        striped_culled: *vals.get("sc")?,
        passed: *vals.get("passed")?,
        nnz_b: *vals.get("nnzb")?,
    })
}

/// Durably write the manifest (tmp-then-rename).
pub fn write_manifest(dir: &Path, m: &Manifest) -> io::Result<()> {
    let mut root = BTreeMap::new();
    root.insert("schema".into(), JsonValue::Str("pastis-ckpt".into()));
    root.insert("version".into(), JsonValue::Num(m.version as f64));
    root.insert(
        "fingerprint".into(),
        JsonValue::Str(format!("{:016x}", m.fingerprint)),
    );
    root.insert("p".into(), JsonValue::Num(m.p as f64));
    root.insert("n_batches".into(), JsonValue::Num(m.n_batches as f64));
    let batches = m
        .completed
        .iter()
        .map(|b| {
            let mut o = BTreeMap::new();
            o.insert("index".into(), JsonValue::Num(b.index as f64));
            let shards = b
                .shards
                .iter()
                .map(|s| {
                    let mut so = BTreeMap::new();
                    so.insert("rank".into(), JsonValue::Num(s.rank as f64));
                    so.insert("len".into(), JsonValue::Num(s.len as f64));
                    // Hex string: JSON numbers are f64 and would round
                    // 64-bit checksums.
                    so.insert(
                        "checksum".into(),
                        JsonValue::Str(format!("{:016x}", s.checksum)),
                    );
                    JsonValue::Obj(so)
                })
                .collect();
            o.insert("shards".into(), JsonValue::Arr(shards));
            JsonValue::Obj(o)
        })
        .collect();
    root.insert("batches".into(), JsonValue::Arr(batches));
    let doc = JsonValue::Obj(root);
    write_atomic(&manifest_path(dir), format!("{doc}\n").as_bytes())
}

/// Load the manifest from `dir`, or `None` when there is nothing usable —
/// missing file, unparseable JSON, wrong schema name or version, or any
/// malformed record. Callers treat `None` as "start fresh".
pub fn load_manifest(dir: &Path) -> Option<Manifest> {
    let text = std::fs::read_to_string(manifest_path(dir)).ok()?;
    let doc = JsonValue::parse(&text).ok()?;
    if doc.get("schema")?.as_str()? != "pastis-ckpt" {
        return None;
    }
    let version = doc.get("version")?.as_u64()?;
    if version != CKPT_SCHEMA_VERSION {
        return None;
    }
    let fingerprint = u64::from_str_radix(doc.get("fingerprint")?.as_str()?, 16).ok()?;
    let p = doc.get("p")?.as_u64()? as usize;
    let n_batches = doc.get("n_batches")?.as_u64()? as usize;
    let mut completed = Vec::new();
    for b in doc.get("batches")?.as_arr()? {
        let index = b.get("index")?.as_u64()? as usize;
        let mut shards = Vec::new();
        for s in b.get("shards")?.as_arr()? {
            shards.push(ShardRecord {
                rank: s.get("rank")?.as_u64()? as usize,
                len: s.get("len")?.as_u64()?,
                checksum: u64::from_str_radix(s.get("checksum")?.as_str()?, 16).ok()?,
            });
        }
        completed.push(BatchRecord { index, shards });
    }
    Some(Manifest {
        version,
        fingerprint,
        p,
        n_batches,
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pastis_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn shard_roundtrip_is_bit_exact() {
        let d = tmpdir("roundtrip");
        let edges = vec![
            (0u64, 7u64, 1.0 / 3.0),
            (2, 5, -0.0),
            (3, 9, f64::MIN_POSITIVE),
        ];
        let delta = CounterDelta {
            candidates: 5,
            alignments: 3,
            bitpack_culled: 1,
            striped_culled: 1,
            passed: 1,
            nnz_b: 12,
        };
        let rec = write_shard(&d, 2, 1, &edges, &delta).unwrap();
        let shard = read_shard(&d, 2, &rec).unwrap();
        assert_eq!(shard.delta, delta);
        assert_eq!(shard.edges.len(), edges.len());
        for (a, b) in shard.edges.iter().zip(&edges) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2.to_bits(), b.2.to_bits(), "weight bits must survive");
        }
        // tmp-then-rename leaves no temporary behind.
        assert!(!shard_path(&d, 2, 1).with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupted_shard_is_rejected_by_checksum() {
        let d = tmpdir("corrupt");
        let rec = write_shard(&d, 0, 0, &[(1, 2, 0.5)], &CounterDelta::default()).unwrap();
        let path = shard_path(&d, 0, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let i = bytes.len() - 2;
        bytes[i] ^= 0x01; // same length, different content
        std::fs::write(&path, &bytes).unwrap();
        let err = read_shard(&d, 0, &rec).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");
        // A truncated shard fails on length before checksum.
        std::fs::write(&path, &bytes[..i]).unwrap();
        let err = read_shard(&d, 0, &rec).unwrap_err();
        assert!(err.contains("length"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn manifest_roundtrip_and_version_gate() {
        let d = tmpdir("manifest");
        let m = Manifest {
            version: CKPT_SCHEMA_VERSION,
            fingerprint: 0xdead_beef_cafe_f00d,
            p: 4,
            n_batches: 7,
            completed: vec![BatchRecord {
                index: 0,
                shards: vec![
                    ShardRecord {
                        rank: 0,
                        len: 10,
                        checksum: u64::MAX,
                    },
                    ShardRecord {
                        rank: 1,
                        len: 0,
                        checksum: 3,
                    },
                ],
            }],
        };
        write_manifest(&d, &m).unwrap();
        assert_eq!(load_manifest(&d), Some(m.clone()));
        assert!(!manifest_path(&d).with_extension("tmp").exists());
        // A future-versioned manifest is ignored, not misread.
        let bumped = std::fs::read_to_string(manifest_path(&d)).unwrap().replace(
            &format!("\"version\":{CKPT_SCHEMA_VERSION}"),
            &format!("\"version\":{}", CKPT_SCHEMA_VERSION + 1),
        );
        std::fs::write(manifest_path(&d), bumped).unwrap();
        assert_eq!(load_manifest(&d), None);
        // Garbage is ignored too.
        std::fs::write(manifest_path(&d), "{not json").unwrap();
        assert_eq!(load_manifest(&d), None);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fingerprint_tracks_inputs() {
        let base = fingerprint(1, "sig", 4, &[(0, 10)]);
        assert_ne!(base, fingerprint(2, "sig", 4, &[(0, 10)]));
        assert_ne!(base, fingerprint(1, "sig2", 4, &[(0, 10)]));
        assert_ne!(base, fingerprint(1, "sig", 9, &[(0, 10)]));
        assert_ne!(base, fingerprint(1, "sig", 4, &[(0, 5), (5, 10)]));
        assert_eq!(base, fingerprint(1, "sig", 4, &[(0, 10)]));
    }
}
