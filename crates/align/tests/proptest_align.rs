//! Property-based tests of the alignment kernels: score bounds, symmetry,
//! statistics consistency, the SW ≥ XD dominance relation, and
//! striped-engine ↔ scalar-engine bit-identity.

use align::{
    smith_waterman, striped_align, striped_score, ungapped_xdrop, xdrop_align, AlignParams,
};
use proptest::prelude::*;

fn seq_strategy(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sw_score_nonnegative_and_stats_consistent(a in seq_strategy(80), b in seq_strategy(80)) {
        let st = smith_waterman(&a, &b, &AlignParams::default());
        prop_assert!(st.score >= 0);
        prop_assert!(st.matches <= st.align_len);
        prop_assert!(st.r_span.0 <= st.r_span.1);
        prop_assert!(st.c_span.0 <= st.c_span.1);
        prop_assert!(st.r_span.1 as usize <= a.len());
        prop_assert!(st.c_span.1 as usize <= b.len());
        let (sr, sc) = (st.r_span.1 - st.r_span.0, st.c_span.1 - st.c_span.0);
        prop_assert!(st.align_len >= sr.max(sc));
        prop_assert!(st.align_len <= sr + sc);
        prop_assert!((0.0..=1.0).contains(&st.ani()));
        prop_assert!((0.0..=1.0).contains(&st.coverage_short()) || st.coverage_short() == 0.0);
    }

    #[test]
    fn sw_score_is_symmetric(a in seq_strategy(60), b in seq_strategy(60)) {
        // Only the optimal score is symmetric: when several alignments tie,
        // the deterministic tie-break may pick different paths for (a,b)
        // and (b,a), so spans/matches can legitimately differ.
        let p = AlignParams::default();
        let ab = smith_waterman(&a, &b, &p);
        let ba = smith_waterman(&b, &a, &p);
        prop_assert_eq!(ab.score, ba.score);
    }

    #[test]
    fn sw_self_alignment_is_perfect(a in proptest::collection::vec(0u8..20, 1..80)) {
        let st = smith_waterman(&a, &a, &AlignParams::default());
        prop_assert_eq!(st.matches as usize, a.len());
        prop_assert_eq!(st.align_len as usize, a.len());
        prop_assert!((st.ani() - 1.0).abs() < 1e-12);
        prop_assert!((st.coverage_short() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xdrop_never_beats_sw(
        a in proptest::collection::vec(0u8..20, 10..60),
        b in proptest::collection::vec(0u8..20, 10..60),
        rp in 0u32..4,
        cp in 0u32..4,
    ) {
        let p = AlignParams::default();
        let k = 4;
        let sw = smith_waterman(&a, &b, &p);
        let xd = xdrop_align(&a, &b, rp, cp, k, &p);
        // XD is anchored on a (possibly bad) seed: it can never exceed the
        // optimum local alignment score.
        prop_assert!(xd.score <= sw.score, "xd {} > sw {}", xd.score, sw.score);
        prop_assert!(xd.matches <= xd.align_len);
        // Seed contained in reported spans.
        prop_assert!(xd.r_span.0 <= rp && rp + k as u32 <= xd.r_span.1);
        prop_assert!(xd.c_span.0 <= cp && cp + k as u32 <= xd.c_span.1);
    }

    #[test]
    fn ungapped_never_beats_gapped_xdrop(
        a in proptest::collection::vec(0u8..20, 10..60),
        b in proptest::collection::vec(0u8..20, 10..60),
        pos in 0u32..4,
    ) {
        let p = AlignParams::default();
        let ug = ungapped_xdrop(&a, &b, pos, pos, 4, &p);
        let xd = xdrop_align(&a, &b, pos, pos, 4, &p);
        // Gapped extension explores a superset of the ungapped diagonal.
        prop_assert!(xd.score >= ug.score, "xd {} < ungapped {}", xd.score, ug.score);
        prop_assert_eq!(ug.r_span.1 - ug.r_span.0, ug.c_span.1 - ug.c_span.0);
    }

    #[test]
    fn striped_score_equals_scalar(
        a in proptest::collection::vec(0u8..24, 1..120),
        b in proptest::collection::vec(0u8..24, 1..120),
    ) {
        let p = AlignParams::default();
        let sw = smith_waterman(&a, &b, &p);
        let (score, end) = striped_score(&a, &b, &p);
        prop_assert_eq!(score, sw.score);
        if sw.score > 0 {
            // Same argmax cell, not just the same score.
            prop_assert_eq!(end, (sw.r_span.1, sw.c_span.1));
        }
    }

    #[test]
    fn striped_stats_bit_identical_to_scalar(
        a in proptest::collection::vec(0u8..24, 1..120),
        b in proptest::collection::vec(0u8..24, 1..120),
        open in 0i32..14,
        ext in 1i32..4,
    ) {
        // Full AlignStats equality (score, matches, align_len, spans) across
        // varied gap penalties, which shift tie-breaks and band shapes.
        let p = AlignParams { gap_open: open, gap_extend: ext, ..Default::default() };
        prop_assert_eq!(striped_align(&a, &b, &p), smith_waterman(&a, &b, &p));
    }

    #[test]
    fn striped_matches_scalar_on_homologous_pairs(
        a in proptest::collection::vec(0u8..20, 40..160),
        flips in proptest::collection::vec((0usize..160, 0u8..20), 0..12),
    ) {
        // High-identity pairs exercise long diagonal runs and the
        // tie-relocation path more than uniform noise does.
        let mut b = a.clone();
        for &(pos, res) in &flips {
            let at = pos % b.len();
            b[at] = res;
        }
        let p = AlignParams::default();
        prop_assert_eq!(striped_align(&a, &b, &p), smith_waterman(&a, &b, &p));
    }

    #[test]
    fn xdrop_score_monotone_in_x(
        a in proptest::collection::vec(0u8..20, 12..50),
        b in proptest::collection::vec(0u8..20, 12..50),
    ) {
        let lo = AlignParams { xdrop: 5, ..Default::default() };
        let hi = AlignParams { xdrop: 100, ..Default::default() };
        let s_lo = xdrop_align(&a, &b, 0, 0, 4, &lo).score;
        let s_hi = xdrop_align(&a, &b, 0, 0, 4, &hi).score;
        // A wider band can only find an equal or better extension.
        prop_assert!(s_hi >= s_lo, "hi {} < lo {}", s_hi, s_lo);
    }
}
