//! Property-based tests of the alignment kernels: score bounds, symmetry,
//! statistics consistency, the SW ≥ XD dominance relation,
//! striped-engine ↔ scalar-engine bit-identity, and prefilter-cascade
//! soundness (a culled pair is provably below the threshold).

use align::{
    bitpack_bound, local_align, prefiltered_align_outcome, smith_waterman, striped_align,
    striped_score, ungapped_xdrop, xdrop_align, AlignEngine, AlignParams, PrefilterOutcome,
};
use proptest::prelude::*;

fn seq_strategy(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sw_score_nonnegative_and_stats_consistent(a in seq_strategy(80), b in seq_strategy(80)) {
        let st = smith_waterman(&a, &b, &AlignParams::default());
        prop_assert!(st.score >= 0);
        prop_assert!(st.matches <= st.align_len);
        prop_assert!(st.r_span.0 <= st.r_span.1);
        prop_assert!(st.c_span.0 <= st.c_span.1);
        prop_assert!(st.r_span.1 as usize <= a.len());
        prop_assert!(st.c_span.1 as usize <= b.len());
        let (sr, sc) = (st.r_span.1 - st.r_span.0, st.c_span.1 - st.c_span.0);
        prop_assert!(st.align_len >= sr.max(sc));
        prop_assert!(st.align_len <= sr + sc);
        prop_assert!((0.0..=1.0).contains(&st.ani()));
        prop_assert!((0.0..=1.0).contains(&st.coverage_short()) || st.coverage_short() == 0.0);
    }

    #[test]
    fn sw_score_is_symmetric(a in seq_strategy(60), b in seq_strategy(60)) {
        // Only the optimal score is symmetric: when several alignments tie,
        // the deterministic tie-break may pick different paths for (a,b)
        // and (b,a), so spans/matches can legitimately differ.
        let p = AlignParams::default();
        let ab = smith_waterman(&a, &b, &p);
        let ba = smith_waterman(&b, &a, &p);
        prop_assert_eq!(ab.score, ba.score);
    }

    #[test]
    fn sw_self_alignment_is_perfect(a in proptest::collection::vec(0u8..20, 1..80)) {
        let st = smith_waterman(&a, &a, &AlignParams::default());
        prop_assert_eq!(st.matches as usize, a.len());
        prop_assert_eq!(st.align_len as usize, a.len());
        prop_assert!((st.ani() - 1.0).abs() < 1e-12);
        prop_assert!((st.coverage_short() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xdrop_never_beats_sw(
        a in proptest::collection::vec(0u8..20, 10..60),
        b in proptest::collection::vec(0u8..20, 10..60),
        rp in 0u32..4,
        cp in 0u32..4,
    ) {
        let p = AlignParams::default();
        let k = 4;
        let sw = smith_waterman(&a, &b, &p);
        let xd = xdrop_align(&a, &b, rp, cp, k, &p);
        // XD is anchored on a (possibly bad) seed: it can never exceed the
        // optimum local alignment score.
        prop_assert!(xd.score <= sw.score, "xd {} > sw {}", xd.score, sw.score);
        prop_assert!(xd.matches <= xd.align_len);
        // Seed contained in reported spans.
        prop_assert!(xd.r_span.0 <= rp && rp + k as u32 <= xd.r_span.1);
        prop_assert!(xd.c_span.0 <= cp && cp + k as u32 <= xd.c_span.1);
    }

    #[test]
    fn ungapped_never_beats_gapped_xdrop(
        a in proptest::collection::vec(0u8..20, 10..60),
        b in proptest::collection::vec(0u8..20, 10..60),
        pos in 0u32..4,
    ) {
        let p = AlignParams::default();
        let ug = ungapped_xdrop(&a, &b, pos, pos, 4, &p);
        let xd = xdrop_align(&a, &b, pos, pos, 4, &p);
        // Gapped extension explores a superset of the ungapped diagonal.
        prop_assert!(xd.score >= ug.score, "xd {} < ungapped {}", xd.score, ug.score);
        prop_assert_eq!(ug.r_span.1 - ug.r_span.0, ug.c_span.1 - ug.c_span.0);
    }

    #[test]
    fn striped_score_equals_scalar(
        a in proptest::collection::vec(0u8..24, 1..120),
        b in proptest::collection::vec(0u8..24, 1..120),
    ) {
        let p = AlignParams::default();
        let sw = smith_waterman(&a, &b, &p);
        let (score, end) = striped_score(&a, &b, &p);
        prop_assert_eq!(score, sw.score);
        if sw.score > 0 {
            // Same argmax cell, not just the same score.
            prop_assert_eq!(end, (sw.r_span.1, sw.c_span.1));
        }
    }

    #[test]
    fn striped_stats_bit_identical_to_scalar(
        a in proptest::collection::vec(0u8..24, 1..120),
        b in proptest::collection::vec(0u8..24, 1..120),
        open in 0i32..14,
        ext in 1i32..4,
    ) {
        // Full AlignStats equality (score, matches, align_len, spans) across
        // varied gap penalties, which shift tie-breaks and band shapes.
        let p = AlignParams { gap_open: open, gap_extend: ext, ..Default::default() };
        prop_assert_eq!(striped_align(&a, &b, &p), smith_waterman(&a, &b, &p));
    }

    #[test]
    fn striped_matches_scalar_on_homologous_pairs(
        a in proptest::collection::vec(0u8..20, 40..160),
        flips in proptest::collection::vec((0usize..160, 0u8..20), 0..12),
    ) {
        // High-identity pairs exercise long diagonal runs and the
        // tie-relocation path more than uniform noise does.
        let mut b = a.clone();
        for &(pos, res) in &flips {
            let at = pos % b.len();
            b[at] = res;
        }
        let p = AlignParams::default();
        prop_assert_eq!(striped_align(&a, &b, &p), smith_waterman(&a, &b, &p));
    }

    #[test]
    fn bitpack_bound_dominates_exact_score(
        a in proptest::collection::vec(0u8..24, 0..150),
        b in proptest::collection::vec(0u8..24, 0..150),
        open in 0i32..14,
        ext in 0i32..4,
    ) {
        // The gate's upper bound must dominate the exact score under any
        // non-negative gap costs (it ignores gaps entirely).
        let p = AlignParams { gap_open: open, gap_extend: ext, ..Default::default() };
        let exact = smith_waterman(&a, &b, &p).score;
        let bound = bitpack_bound(&a, &b, &p);
        prop_assert!(bound >= exact, "bound {} < exact {}", bound, exact);
    }

    #[test]
    fn cascade_cull_is_sound(
        a in proptest::collection::vec(0u8..24, 0..120),
        b in proptest::collection::vec(0u8..24, 0..120),
        min_score in 1i32..900,
        scalar in 0u32..2,
    ) {
        // Whatever tier culls a pair, the exact score must really miss the
        // threshold; whatever passes must match the exact stats.
        let engine = if scalar == 1 { AlignEngine::Scalar } else { AlignEngine::Striped };
        let p = AlignParams { engine, ..Default::default() };
        let full = local_align(&a, &b, &p);
        match prefiltered_align_outcome(&a, &b, &p, min_score) {
            PrefilterOutcome::Passed(st) => {
                prop_assert!(full.score >= min_score);
                prop_assert_eq!(st, full);
            }
            PrefilterOutcome::CulledBitpack | PrefilterOutcome::CulledScore => {
                prop_assert!(full.score < min_score,
                    "culled pair scores {} >= {}", full.score, min_score);
            }
        }
    }

    #[test]
    fn xdrop_score_monotone_in_x(
        a in proptest::collection::vec(0u8..20, 12..50),
        b in proptest::collection::vec(0u8..20, 12..50),
    ) {
        let lo = AlignParams { xdrop: 5, ..Default::default() };
        let hi = AlignParams { xdrop: 100, ..Default::default() };
        let s_lo = xdrop_align(&a, &b, 0, 0, 4, &lo).score;
        let s_hi = xdrop_align(&a, &b, 0, 0, 4, &hi).score;
        // A wider band can only find an equal or better extension.
        prop_assert!(s_hi >= s_lo, "hi {} < lo {}", s_hi, s_lo);
    }
}

/// Cascade soundness across 16 fixed seeds: every culled pair's exact
/// scalar score really misses the threshold, and every passing pair's
/// stats are bit-identical to the scalar engine's.
#[test]
fn cascade_sound_across_16_seeds() {
    use rand::prelude::*;
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = AlignParams::default();
        for _ in 0..25 {
            let m = rng.random_range(1..140);
            let n = rng.random_range(1..140);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            let min_score = rng.random_range(1..1200);
            let full = smith_waterman(&a, &b, &p);
            match prefiltered_align_outcome(&a, &b, &p, min_score) {
                PrefilterOutcome::Passed(st) => {
                    assert!(full.score >= min_score, "seed {seed}");
                    assert_eq!(st, full, "seed {seed}");
                }
                _ => assert!(
                    full.score < min_score,
                    "seed {seed}: culled pair scores {} >= {min_score}",
                    full.score
                ),
            }
        }
    }
}

/// i16-saturation edge cases: max-length all-identical-residue pairs push
/// the exact score (and the gate's partial bounds) far past `i16::MAX`,
/// forcing the striped engine's i32 fallback while the gate must still
/// neither wrongly cull nor wrongly pass around the exact boundary.
#[test]
fn cascade_sound_under_i16_saturation() {
    let p = AlignParams::default();
    // Tryptophan self-alignment: exact score 11·len, far beyond i16.
    let trp = seqstore::encode_seq(&b"W".repeat(4000));
    let exact = 11 * 4000;
    match prefiltered_align_outcome(&trp, &trp, &p, exact) {
        PrefilterOutcome::Passed(st) => {
            assert_eq!(st.score, exact);
            assert_eq!(st.matches, 4000);
        }
        other => panic!("saturating self-pair wrongly culled: {other:?}"),
    }
    // Just past the bound: must cull (bound = (t_max + d_extra)·len).
    let bound = bitpack_bound(&trp, &trp, &p);
    assert!(bound >= exact);
    assert!(matches!(
        prefiltered_align_outcome(&trp, &trp, &p, bound + 1),
        PrefilterOutcome::CulledBitpack
    ));
    // Identical long mixed-residue pair (max-length case): passes at its
    // exact score, stats bit-identical to scalar.
    let mixed: Vec<u8> = (0..6000).map(|i| (i % 20) as u8).collect();
    let full = smith_waterman(&mixed, &mixed, &p);
    assert!(full.score > i16::MAX as i32);
    match prefiltered_align_outcome(&mixed, &mixed, &p, full.score) {
        PrefilterOutcome::Passed(st) => assert_eq!(st, full),
        other => panic!("saturating mixed pair wrongly culled: {other:?}"),
    }
}
