//! Steady-state allocation accounting for the batch alignment path.
//!
//! Once the thread-local scratch arenas have seen the largest task of a
//! batch, re-running the batch must not touch the heap beyond the single
//! output vector — per-task allocations would dominate the runtime of
//! small alignments. Counting goes through the workspace-wide tracking
//! allocator in `obs::alloc` (the only `#[global_allocator]` in the
//! workspace). This file holds exactly one test so no concurrent test can
//! perturb the global counter.

#[test]
fn steady_state_batch_does_not_allocate_per_task() {
    use align::{align_batch, local_align, xdrop_align, AlignParams};

    // Deterministic pseudo-random residues without pulling in an RNG.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut residue = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 24) as u8
    };
    let tasks: Vec<(Vec<u8>, Vec<u8>)> = (0..200)
        .map(|i| {
            // Lengths sweep up and down so later tasks are NOT all smaller
            // than earlier ones — reuse must survive shape changes.
            let m = 20 + (i * 13) % 180;
            let n = 20 + (i * 29) % 180;
            let a: Vec<u8> = (0..m).map(|_| residue()).collect();
            let b: Vec<u8> = (0..n).map(|_| residue()).collect();
            (a, b)
        })
        .collect();

    let p = AlignParams::default();
    let run = |tasks: &[(Vec<u8>, Vec<u8>)]| {
        // Exercise all three arena-backed kernels per task; threads = 1
        // keeps the work on this thread's arena (and avoids counting
        // thread-spawn allocations).
        align_batch(tasks, 1, |(a, b)| {
            let st = local_align(a, b, &p);
            let sc = AlignParams {
                engine: align::AlignEngine::Scalar,
                ..p
            };
            let st2 = local_align(a, b, &sc);
            assert_eq!(st, st2);
            let xd = xdrop_align(a, b, 0, 0, 4, &p);
            st.score + xd.score
        })
    };

    // Count through the workspace tracking allocator; forced on so the
    // test also holds in release builds (`ALLOC_TRACK` defaults off there).
    obs::alloc::set_tracking(true);

    // Warm-up pass grows every arena buffer to the batch's high-water mark.
    let want = run(&tasks);

    let before = obs::alloc::total_allocs();
    let got = run(&tasks);
    let after = obs::alloc::total_allocs();
    assert_eq!(got, want);

    // The only permitted allocation is the output Vec of align_batch (its
    // exact-size collect is one allocation); everything else must come
    // from the warm arenas. "≤ 2" leaves room for one harness hiccup while
    // still proving per-task allocation is zero (200 tasks, ~600 kernel
    // calls).
    let delta = after - before;
    assert!(delta <= 2, "steady-state batch made {delta} allocations");
}
