//! Amino acid substitution matrices in the 24-letter NCBI ordering
//! `ARNDCQEGHILKMFPSTWYVBZX*` (matching `seqstore::ALPHABET`).

use seqstore::SIGMA;

/// A symmetric substitution matrix over the 24-letter alphabet.
#[derive(Debug, Clone)]
pub struct ScoringMatrix {
    /// Human-readable name ("BLOSUM62").
    pub name: &'static str,
    /// `scores[a][b]` is the score of aligning bases `a` and `b`.
    pub scores: [[i8; SIGMA]; SIGMA],
}

impl ScoringMatrix {
    /// Score of aligning base indices `a` and `b`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.scores[a as usize][b as usize] as i32
    }

    /// The exact-match score of base `a` (diagonal entry).
    #[inline]
    pub fn diag(&self, a: u8) -> i32 {
        self.scores[a as usize][a as usize] as i32
    }

    /// Exact-match score of a whole k-mer: `Σ diag(base)` (paper §IV-B).
    pub fn kmer_self_score(&self, kmer: &[u8]) -> i32 {
        kmer.iter().map(|&b| self.diag(b)).sum()
    }

    /// Substitution "expense" of replacing `from` by `to`:
    /// `diag(from) − score(from, to)` — the score loss an exact match incurs
    /// (paper §IV-B, matrix `E = SORT(DIAG(C) − C)`).
    #[inline]
    pub fn expense(&self, from: u8, to: u8) -> i32 {
        self.diag(from) - self.score(from, to)
    }
}

/// The BLOSUM62 matrix (Henikoff & Henikoff 1992), NCBI rendering, used for
/// every alignment in the paper's evaluation.
pub static BLOSUM62: ScoringMatrix = ScoringMatrix {
    name: "BLOSUM62",
    #[rustfmt::skip]
    scores: [
        //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
        [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4], // A
        [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4], // R
        [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4], // N
        [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4], // D
        [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4], // C
        [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4], // Q
        [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4], // E
        [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4], // G
        [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4], // H
        [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4], // I
        [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4], // L
        [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4], // K
        [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4], // M
        [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4], // F
        [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4], // P
        [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4], // S
        [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4], // T
        [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4], // W
        [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4], // Y
        [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4], // V
        [-2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4], // B
        [-1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4], // Z
        [ 0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4], // X
        [-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1], // *
    ],
};

#[cfg(test)]
mod tests {
    use super::*;
    use seqstore::{aa_index, encode_seq};

    #[test]
    fn is_symmetric() {
        for a in 0..SIGMA {
            for b in 0..SIGMA {
                assert_eq!(BLOSUM62.scores[a][b], BLOSUM62.scores[b][a], "({a},{b})");
            }
        }
    }

    #[test]
    fn paper_fig6_examples() {
        let (a, s, c) = (
            aa_index(b'A').unwrap(),
            aa_index(b'S').unwrap(),
            aa_index(b'C').unwrap(),
        );
        // §IV-B: AAC exact match scores 4+4+9 = 17.
        assert_eq!(BLOSUM62.kmer_self_score(&encode_seq(b"AAC")), 17);
        // A→S is the cheapest substitution of A: SAC scores 1+4+9 = 14.
        assert_eq!(BLOSUM62.score(a, s), 1);
        // C→M lowers the 9 to −1.
        let m = aa_index(b'M').unwrap();
        assert_eq!(BLOSUM62.score(c, m), -1);
    }

    #[test]
    fn expense_is_diag_minus_score() {
        let (a, s) = (aa_index(b'A').unwrap(), aa_index(b'S').unwrap());
        assert_eq!(BLOSUM62.expense(a, s), 4 - 1);
        assert_eq!(BLOSUM62.expense(a, a), 0);
        // Expense is asymmetric in general (diag differs per base).
        let w = aa_index(b'W').unwrap();
        assert_eq!(BLOSUM62.expense(w, a), 11 - (-3));
        assert_eq!(BLOSUM62.expense(a, w), 4 - (-3));
    }

    #[test]
    fn diagonal_dominates_column() {
        // Every standard residue's best partner is itself. The ambiguity
        // codes violate this (B–D ties B–B; X–A beats X–X), which is why
        // substitute-k-mer expenses are only meaningful for real residues.
        for a in 0..20u8 {
            for b in 0..SIGMA as u8 {
                if a != b {
                    assert!(BLOSUM62.score(a, b) < BLOSUM62.diag(a), "a={a} b={b}");
                }
            }
        }
    }
}
