//! Gapped x-drop seed-and-extend alignment (Altschul et al. 1997; the XD
//! mode of PASTIS, paper §IV-E).
//!
//! The alignment is anchored on a shared k-mer: the seed is scored exactly,
//! then extended with affine-gap DP in both directions. Rows maintain a
//! *live window* of cells whose score stays within `xdrop` of the best seen;
//! cells outside are abandoned, which is what makes XD substantially
//! cheaper than full Smith–Waterman on unrelated pairs.

use crate::scratch::{with_scratch, AlignScratch, XdropScratch};
use crate::stats::AlignStats;
use crate::AlignParams;

const NEG_INF: i32 = i32::MIN / 4;

// Traceback byte layout (per live cell).
const H_SRC_MASK: u8 = 0b11; // 0 origin/dead, 1 diag, 2 E, 3 F
const H_DIAG: u8 = 1;
const H_FROM_E: u8 = 2;
const H_FROM_F: u8 = 3;
const E_EXTEND: u8 = 1 << 2;
const F_EXTEND: u8 = 1 << 3;

/// Result of a one-directional gapped extension from the origin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Extension {
    score: i32,
    /// Consumed prefix lengths of the two sequences.
    a_end: usize,
    b_end: usize,
    matches: u32,
    align_len: u32,
}

/// One row of the banded DP: scores for `[lo, lo+len)`. The backing
/// buffers are borrowed from the scratch arena and returned when the
/// extension finishes.
struct Row {
    lo: usize,
    h: Vec<i32>,
    f: Vec<i32>,
}

impl Row {
    #[inline]
    fn h_at(&self, j: usize) -> i32 {
        if j >= self.lo && j < self.lo + self.h.len() {
            self.h[j - self.lo]
        } else {
            NEG_INF
        }
    }

    #[inline]
    fn f_at(&self, j: usize) -> i32 {
        if j >= self.lo && j < self.lo + self.f.len() {
            self.f[j - self.lo]
        } else {
            NEG_INF
        }
    }
}

/// Extend an alignment from `(0, 0)` over prefixes of `a` and `b`,
/// abandoning cells scoring below `best − xdrop`. All DP rows and
/// traceback bytes live in the scratch arena.
fn extend_gapped(a: &[u8], b: &[u8], params: &AlignParams, xd: &mut XdropScratch) -> Extension {
    let open = params.gap_open + params.gap_extend;
    let ext = params.gap_extend;
    let x = params.xdrop;
    let (m, n) = (a.len(), b.len());

    let mut best = 0i32;
    let mut best_pos = (0usize, 0usize);
    let mut cells: u64 = 0; // work accounting: DP cells actually computed

    // Per-row traceback bytes are concatenated into dir_flat;
    // dir_rows[i] = (lo, start, len) locates row i's live window.
    xd.dir_flat.clear();
    xd.dir_rows.clear();

    // Take the four row buffers out of the arena; every exit path below
    // returns them, so the arena keeps its capacity across calls.
    let mut row_h = std::mem::take(&mut xd.row_h);
    let mut row_f = std::mem::take(&mut xd.row_f);
    let mut spare_h = std::mem::take(&mut xd.spare_h);
    let mut spare_f = std::mem::take(&mut xd.spare_f);

    // Row 0: leading gap in `a`.
    row_h.clear();
    row_f.clear();
    row_h.push(0);
    row_f.push(NEG_INF);
    xd.dir_flat.push(0u8);
    for j in 1..=n {
        let h = -open - (j as i32 - 1) * ext;
        if h < best - x {
            break;
        }
        row_h.push(h);
        row_f.push(NEG_INF);
        xd.dir_flat
            .push(H_FROM_E | if j > 1 { E_EXTEND } else { 0 });
        if h > best {
            best = h;
            best_pos = (0, j);
        }
    }
    xd.dir_rows.push((0, 0, xd.dir_flat.len()));
    let mut row = Row {
        lo: 0,
        h: row_h,
        f: row_f,
    };

    for i in 1..=m {
        let prev = row;
        // The row can start one left of the previous window (F/diag reach)
        // and extend right indefinitely through E runs.
        let start = prev.lo;
        let mut lo = usize::MAX;
        let mut h_new = spare_h;
        h_new.clear();
        h_new.reserve(prev.h.len() + 2);
        let mut f_new = spare_f;
        f_new.clear();
        f_new.reserve(prev.h.len() + 2);
        let dir_start = xd.dir_flat.len();
        let mut e = NEG_INF;
        let prev_hi = prev.lo + prev.h.len(); // exclusive
        let mut j = start;
        while j <= n {
            cells += 1;
            // E from the left neighbour of this row.
            let (h_left, e_left) = if j == 0 || lo == usize::MAX || j - 1 < lo {
                (NEG_INF, NEG_INF)
            } else {
                (h_new[j - 1 - lo], e)
            };
            let mut dir = 0u8;
            let e_open = h_left.saturating_sub(open);
            let e_ext = e_left.saturating_sub(ext);
            e = if e_ext > e_open {
                dir |= E_EXTEND;
                e_ext
            } else {
                e_open
            };
            // F from the previous row, same column.
            let f_open = prev.h_at(j).saturating_sub(open);
            let f_ext = prev.f_at(j).saturating_sub(ext);
            let f = if f_ext > f_open {
                dir |= F_EXTEND;
                f_ext
            } else {
                f_open
            };
            // Diagonal.
            let diag = if j >= 1 {
                let d = prev.h_at(j - 1);
                if d <= NEG_INF / 2 {
                    NEG_INF
                } else {
                    d + params.matrix.score(a[i - 1], b[j - 1])
                }
            } else {
                NEG_INF
            };
            let mut h = NEG_INF;
            let mut src = 0u8;
            if diag > h {
                h = diag;
                src = H_DIAG;
            }
            if e > h {
                h = e;
                src = H_FROM_E;
            }
            if f > h {
                h = f;
                src = H_FROM_F;
            }
            let live = h >= best - x && h > NEG_INF / 2;
            if live {
                if lo == usize::MAX {
                    lo = j;
                }
                h_new.push(h);
                f_new.push(f);
                xd.dir_flat.push(dir | src);
                if h > best {
                    best = h;
                    best_pos = (i, j);
                }
            } else if lo != usize::MAX {
                // Window already open: a dead cell ends it once we are past
                // the reach of the previous row (no F/diag can revive us and
                // E is dead too).
                if j >= prev_hi && e < best - x {
                    break;
                }
                h_new.push(NEG_INF);
                f_new.push(NEG_INF);
                xd.dir_flat.push(0);
            } else if j >= prev_hi {
                // Never opened and nothing can open it any more.
                break;
            }
            j += 1;
        }
        if lo == usize::MAX {
            // Row fully dead — extension terminated. No traceback bytes
            // were pushed for this row.
            spare_h = h_new;
            spare_f = f_new;
            row = prev;
            break;
        }
        // Trim trailing dead cells.
        while h_new.last() == Some(&NEG_INF) {
            h_new.pop();
            f_new.pop();
            xd.dir_flat.pop();
        }
        // Retire the previous row's buffers for reuse.
        spare_h = prev.h;
        spare_f = prev.f;
        row = Row {
            lo,
            h: h_new,
            f: f_new,
        };
        xd.dir_rows
            .push((lo, dir_start, xd.dir_flat.len() - dir_start));
        if row.h.is_empty() {
            break;
        }
    }

    // The x-drop band is what makes XD cheap: charge only computed cells
    // (the banded bookkeeping costs a little over plain SW).
    pcomm::work::record_class(cells + n as u64 + 1, pcomm::work::CostClass::XdropCell);
    obs::hist!("align.xdrop_cells", cells);

    // Traceback from best_pos.
    let (mut i, mut j) = best_pos;
    let mut matches = 0u32;
    let mut align_len = 0u32;
    enum State {
        H,
        E,
        F,
    }
    let mut state = State::H;
    while i > 0 || j > 0 {
        let (lo, dir_start, len) = xd.dir_rows[i];
        debug_assert!(j >= lo && j - lo < len, "traceback left the live band");
        let dir = xd.dir_flat[dir_start + (j - lo)];
        match state {
            State::H => match dir & H_SRC_MASK {
                H_DIAG => {
                    align_len += 1;
                    if a[i - 1] == b[j - 1] {
                        matches += 1;
                    }
                    i -= 1;
                    j -= 1;
                }
                H_FROM_E => state = State::E,
                H_FROM_F => state = State::F,
                _ => unreachable!("dead cell on the optimal path"),
            },
            State::E => {
                align_len += 1;
                if dir & E_EXTEND == 0 {
                    state = State::H;
                }
                j -= 1;
            }
            State::F => {
                align_len += 1;
                if dir & F_EXTEND == 0 {
                    state = State::H;
                }
                i -= 1;
            }
        }
    }

    // Return the row buffers to the arena.
    xd.row_h = row.h;
    xd.row_f = row.f;
    xd.spare_h = spare_h;
    xd.spare_f = spare_f;
    Extension {
        score: best,
        a_end: best_pos.0,
        b_end: best_pos.1,
        matches,
        align_len,
    }
}

/// Seed-and-extend alignment of `r` and `c` anchored on a shared k-mer at
/// `r_pos`/`c_pos` (paper §IV-E): the seed region is scored exactly and the
/// alignment is extended with gapped x-drop in both directions.
pub fn xdrop_align(
    r: &[u8],
    c: &[u8],
    r_pos: u32,
    c_pos: u32,
    k: usize,
    params: &AlignParams,
) -> AlignStats {
    with_scratch(|s| xdrop_align_with(r, c, r_pos, c_pos, k, params, s))
}

/// [`xdrop_align`] with an explicit scratch arena (no per-call heap
/// allocation once the arena is warm).
pub fn xdrop_align_with(
    r: &[u8],
    c: &[u8],
    r_pos: u32,
    c_pos: u32,
    k: usize,
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> AlignStats {
    let (r_pos, c_pos) = (r_pos as usize, c_pos as usize);
    assert!(
        r_pos + k <= r.len() && c_pos + k <= c.len(),
        "seed outside sequence"
    );
    // Seed score: the anchor k-mers may differ under substitute k-mer
    // matching, so score the actual residues pairwise.
    let mut seed_score = 0i32;
    let mut seed_matches = 0u32;
    for t in 0..k {
        seed_score += params.matrix.score(r[r_pos + t], c[c_pos + t]);
        if r[r_pos + t] == c[c_pos + t] {
            seed_matches += 1;
        }
    }
    // Right extension over the suffixes past the seed.
    let right = extend_gapped(&r[r_pos + k..], &c[c_pos + k..], params, &mut scratch.xd);
    // Left extension over the reversed prefixes before the seed.
    scratch.rev_a.clear();
    scratch.rev_a.extend(r[..r_pos].iter().rev());
    scratch.rev_b.clear();
    scratch.rev_b.extend(c[..c_pos].iter().rev());
    let left = extend_gapped(&scratch.rev_a, &scratch.rev_b, params, &mut scratch.xd);

    AlignStats {
        score: seed_score + left.score + right.score,
        matches: seed_matches + left.matches + right.matches,
        align_len: k as u32 + left.align_len + right.align_len,
        r_span: (
            (r_pos - left.a_end) as u32,
            (r_pos + k + right.a_end) as u32,
        ),
        c_span: (
            (c_pos - left.b_end) as u32,
            (c_pos + k + right.b_end) as u32,
        ),
        r_len: r.len() as u32,
        c_len: c.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::smith_waterman;
    use seqstore::encode_seq;

    fn params() -> AlignParams {
        AlignParams::default()
    }

    #[test]
    fn identical_sequences_extend_fully() {
        let s = encode_seq(b"MKVLAWHERTYCCDDEE");
        let st = xdrop_align(&s, &s, 5, 5, 3, &params());
        assert_eq!(st.matches as usize, s.len());
        assert_eq!(st.align_len as usize, s.len());
        assert_eq!(st.r_span, (0, s.len() as u32));
        assert_eq!(st.c_span, (0, s.len() as u32));
        let sw = smith_waterman(&s, &s, &params());
        assert_eq!(st.score, sw.score);
    }

    #[test]
    fn seed_at_sequence_edges() {
        let s = encode_seq(b"MKVLAW");
        let st0 = xdrop_align(&s, &s, 0, 0, 3, &params());
        assert_eq!(st0.matches, 6);
        let st_end = xdrop_align(&s, &s, 3, 3, 3, &params());
        assert_eq!(st_end.matches, 6);
    }

    #[test]
    fn mismatch_tail_is_dropped() {
        // Shared prefix, then unrelated tails: extension must stop early.
        let a = encode_seq(b"MKVLAWHERTYWWWWWWWW");
        let b = encode_seq(b"MKVLAWHERTYAAAAAAAA");
        let st = xdrop_align(&a, &b, 0, 0, 6, &params());
        assert_eq!(st.matches, 11);
        assert!(st.r_span.1 <= 12);
    }

    #[test]
    fn extension_crosses_single_gap() {
        let a = encode_seq(b"MKVLAWHERTYDDDD");
        let b = encode_seq(b"MKVLAWCCCHERTYDDDD");
        // Seed on the common prefix.
        let st = xdrop_align(&a, &b, 0, 0, 6, &params());
        assert_eq!(st.matches, 15);
        assert_eq!(st.align_len, 18);
        let swr = smith_waterman(&a, &b, &params());
        assert_eq!(st.score, swr.score);
    }

    #[test]
    fn matches_smith_waterman_on_homologs() {
        // When the pair is genuinely similar end to end, XD from a correct
        // seed finds the same alignment as SW.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let len = rng.random_range(30..80);
            let a: Vec<u8> = (0..len).map(|_| rng.random_range(0..20u8)).collect();
            // 10% point mutations.
            let b: Vec<u8> = a
                .iter()
                .map(|&x| {
                    if rng.random::<f64>() < 0.1 {
                        rng.random_range(0..20u8)
                    } else {
                        x
                    }
                })
                .collect();
            // Find a shared 6-mer to seed from.
            let seed = (0..len - 6).find(|&i| a[i..i + 6] == b[i..i + 6]);
            let Some(seed) = seed else { continue };
            let st = xdrop_align(&a, &b, seed as u32, seed as u32, 6, &params());
            let swr = smith_waterman(&a, &b, &params());
            assert!(st.score <= swr.score, "xdrop cannot beat SW");
            assert!(
                st.score >= swr.score - 10,
                "xd={} sw={}",
                st.score,
                swr.score
            );
        }
    }

    #[test]
    fn spans_contain_seed() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let m = rng.random_range(10..50);
            let n = rng.random_range(10..50);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            let rp = rng.random_range(0..m - 6) as u32;
            let cp = rng.random_range(0..n - 6) as u32;
            let st = xdrop_align(&a, &b, rp, cp, 6, &params());
            assert!(st.r_span.0 <= rp && st.r_span.1 >= rp + 6);
            assert!(st.c_span.0 <= cp && st.c_span.1 >= cp + 6);
            assert!(st.matches <= st.align_len);
        }
    }

    #[test]
    fn xdrop_zero_stops_at_first_drop() {
        let mut p = params();
        p.xdrop = 0;
        let a = encode_seq(b"WWWWAW");
        let b = encode_seq(b"WWWWWW");
        let st = xdrop_align(&a, &b, 0, 0, 4, &p);
        // Extension right hits A/W (−3 < best − 0) and stops immediately,
        // so the final W match is never reached.
        assert_eq!(st.matches, 4);
        // A generous x-drop crosses the mismatch and recovers the last W.
        let st49 = xdrop_align(&a, &b, 0, 0, 4, &AlignParams::default());
        assert_eq!(st49.matches, 5);
    }

    #[test]
    fn explicit_scratch_reuse_matches_fresh() {
        // The same arena driven through many differently-shaped extensions
        // must give the same answers as fresh state each time.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(40);
        let mut scratch = crate::AlignScratch::new();
        for _ in 0..25 {
            let m = rng.random_range(8..60);
            let n = rng.random_range(8..60);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            let rp = rng.random_range(0..m - 6) as u32;
            let cp = rng.random_range(0..n - 6) as u32;
            let reused = xdrop_align_with(&a, &b, rp, cp, 6, &params(), &mut scratch);
            let fresh = xdrop_align_with(
                &a,
                &b,
                rp,
                cp,
                6,
                &params(),
                &mut crate::AlignScratch::new(),
            );
            assert_eq!(reused, fresh);
        }
    }
}
