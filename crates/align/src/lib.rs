//! `align` — protein alignment kernels (the SeqAn stand-in of the PASTIS
//! reproduction, paper §IV-E).
//!
//! Provides the two alignment modes PASTIS offers — full local
//! Smith–Waterman with affine gaps ([`smith_waterman`]) and gapped x-drop
//! seed-and-extend ([`xdrop_align`]) — plus the ungapped diagonal extension
//! used by the MMseqs2-like baseline, BLOSUM scoring matrices, alignment
//! statistics (identity, coverage, normalized score) and a multi-threaded
//! batch driver.

mod batch;
mod matrix;
mod stats;
mod sw;
mod ungapped;
mod xdrop;

pub use batch::align_batch;
pub use matrix::{ScoringMatrix, BLOSUM62};
pub use stats::{AlignStats, SimilarityMeasure};
pub use sw::smith_waterman;
pub use ungapped::ungapped_xdrop;
pub use xdrop::xdrop_align;

/// Alignment parameters shared by all kernels. Defaults follow the paper's
/// evaluation: BLOSUM62, gap opening 11, gap extension 1, x-drop 49 (§VI).
#[derive(Debug, Clone, Copy)]
pub struct AlignParams {
    /// Cost charged when a gap is opened (first gap column costs
    /// `gap_open + gap_extend`).
    pub gap_open: i32,
    /// Cost per gap column.
    pub gap_extend: i32,
    /// Score drop-off terminating x-drop extension.
    pub xdrop: i32,
    /// Substitution matrix.
    pub matrix: &'static ScoringMatrix,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams { gap_open: 11, gap_extend: 1, xdrop: 49, matrix: &BLOSUM62 }
    }
}
