//! `align` — protein alignment kernels (the SeqAn stand-in of the PASTIS
//! reproduction, paper §IV-E).
//!
//! Provides the two alignment modes PASTIS offers — full local
//! Smith–Waterman with affine gaps ([`smith_waterman`] and its
//! lane-parallel equivalent [`striped_align`], selected via
//! [`AlignEngine`]) and gapped x-drop seed-and-extend ([`xdrop_align`]) —
//! plus the ungapped diagonal extension used by the MMseqs2-like baseline,
//! BLOSUM scoring matrices, alignment statistics (identity, coverage,
//! normalized score), reusable DP scratch arenas ([`AlignScratch`]) and a
//! work-stealing multi-threaded batch driver ([`align_batch`]).

mod batch;
mod bitpack;
mod dispatch;
mod matrix;
mod scratch;
mod stats;
mod striped;
mod sw;
mod ungapped;
mod xdrop;

pub use batch::align_batch;
pub use bitpack::{
    bitpack_bound, bitpack_bound_with, bitpack_gate, bitpack_gate_with, GateVerdict,
};
pub use dispatch::{level as simd_level, SimdLevel};
pub use matrix::{ScoringMatrix, BLOSUM62};
pub use scratch::{with_scratch, AlignScratch};
pub use stats::{AlignStats, SimilarityMeasure};
pub use striped::{
    striped_align, striped_align_with, striped_score, striped_score_at_level, striped_score_with,
    striped_traceback, striped_traceback_with,
};
pub use sw::{smith_waterman, smith_waterman_with};
pub use ungapped::ungapped_xdrop;
pub use xdrop::{xdrop_align, xdrop_align_with};

/// Which Smith–Waterman implementation [`local_align`] dispatches to. Both
/// engines return bit-identical [`AlignStats`]; they differ only in speed
/// and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlignEngine {
    /// Reference scalar DP with full-matrix traceback (O(m·n) direction
    /// bytes).
    Scalar,
    /// Lane-parallel striped kernel (Farrar) with an O(m)-memory score
    /// pass and a banded traceback rerun. The default.
    #[default]
    Striped,
}

/// Alignment parameters shared by all kernels. Defaults follow the paper's
/// evaluation: BLOSUM62, gap opening 11, gap extension 1, x-drop 49 (§VI).
#[derive(Debug, Clone, Copy)]
pub struct AlignParams {
    /// Cost charged when a gap is opened (first gap column costs
    /// `gap_open + gap_extend`).
    pub gap_open: i32,
    /// Cost per gap column.
    pub gap_extend: i32,
    /// Score drop-off terminating x-drop extension.
    pub xdrop: i32,
    /// Substitution matrix.
    pub matrix: &'static ScoringMatrix,
    /// Smith–Waterman implementation used by [`local_align`].
    pub engine: AlignEngine,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams {
            gap_open: 11,
            gap_extend: 1,
            xdrop: 49,
            matrix: &BLOSUM62,
            engine: AlignEngine::default(),
        }
    }
}

/// Full local alignment with the engine selected in `params`, using the
/// calling thread's scratch arena.
pub fn local_align(r: &[u8], c: &[u8], params: &AlignParams) -> AlignStats {
    obs::hist!("align.dp_cells", r.len() * c.len());
    with_scratch(|s| local_align_with(r, c, params, s))
}

/// [`local_align`] with an explicit scratch arena.
pub fn local_align_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> AlignStats {
    match params.engine {
        AlignEngine::Scalar => smith_waterman_with(r, c, params, scratch),
        AlignEngine::Striped => striped_align_with(r, c, params, scratch),
    }
}

/// Which tier of the prefilter cascade decided a pair's fate. The cascade
/// is sound at every tier: a culled pair's exact score is provably below
/// `min_score`, so the verdicts (and the surviving stats) are bit-identical
/// to running the exact engine on every pair — the tiers only change how
/// fast a "no" is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefilterOutcome {
    /// The bitpacked gate's score upper bound already misses `min_score`;
    /// no exact DP ran at all.
    CulledBitpack,
    /// The exact score pass (striped score-only pass, or the full DP on
    /// the scalar engine) came in below `min_score`.
    CulledScore,
    /// The pair reaches `min_score`; stats are bit-identical to
    /// [`local_align`].
    Passed(AlignStats),
}

/// Score-gated local alignment: run the traceback only when the optimal
/// score reaches `min_score`, returning `None` for culled pairs (the
/// MMseqs2-style prefilter-then-align staging). Culls cascade through two
/// tiers: the Myers-bitpacked gate ([`bitpack_gate`]) rejects pairs whose
/// score *upper bound* provably misses `min_score` without running any
/// exact DP, and survivors fall through to the exact tier (on the striped
/// engine the cull decision then costs only the O(m)-memory score pass;
/// the scalar engine has no score-only mode, so it culls after the full
/// DP). For surviving pairs the stats are bit-identical to
/// [`local_align`].
pub fn prefiltered_align(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    min_score: i32,
) -> Option<AlignStats> {
    match prefiltered_align_outcome(r, c, params, min_score) {
        PrefilterOutcome::Passed(stats) => Some(stats),
        _ => None,
    }
}

/// [`prefiltered_align`] with an explicit scratch arena.
pub fn prefiltered_align_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    min_score: i32,
    scratch: &mut AlignScratch,
) -> Option<AlignStats> {
    match prefiltered_align_outcome_with(r, c, params, min_score, scratch) {
        PrefilterOutcome::Passed(stats) => Some(stats),
        _ => None,
    }
}

/// [`prefiltered_align`], reporting *which* cascade tier decided the pair
/// (for tier-outcome accounting; the pipeline surfaces these as the
/// `prefilter.*` counter family).
pub fn prefiltered_align_outcome(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    min_score: i32,
) -> PrefilterOutcome {
    obs::hist!("align.dp_cells", r.len() * c.len());
    with_scratch(|s| prefiltered_align_outcome_with(r, c, params, min_score, s))
}

/// [`prefiltered_align_outcome`] with an explicit scratch arena.
pub fn prefiltered_align_outcome_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    min_score: i32,
    scratch: &mut AlignScratch,
) -> PrefilterOutcome {
    if bitpack_gate_with(r, c, params, min_score, scratch) == GateVerdict::Culled {
        obs::counter!("prefilter.bitpack_culled", 1);
        return PrefilterOutcome::CulledBitpack;
    }
    let outcome = match params.engine {
        AlignEngine::Scalar => {
            let stats = smith_waterman_with(r, c, params, scratch);
            if stats.score >= min_score {
                PrefilterOutcome::Passed(stats)
            } else {
                PrefilterOutcome::CulledScore
            }
        }
        AlignEngine::Striped => {
            let (score, end) = striped_score_with(r, c, params, scratch);
            if score < min_score {
                PrefilterOutcome::CulledScore
            } else {
                PrefilterOutcome::Passed(striped_traceback_with(r, c, params, score, end, scratch))
            }
        }
    };
    match &outcome {
        PrefilterOutcome::Passed(_) => obs::counter!("prefilter.passed", 1),
        _ => obs::counter!("prefilter.striped_culled", 1),
    }
    outcome
}
