//! `align` — protein alignment kernels (the SeqAn stand-in of the PASTIS
//! reproduction, paper §IV-E).
//!
//! Provides the two alignment modes PASTIS offers — full local
//! Smith–Waterman with affine gaps ([`smith_waterman`] and its
//! lane-parallel equivalent [`striped_align`], selected via
//! [`AlignEngine`]) and gapped x-drop seed-and-extend ([`xdrop_align`]) —
//! plus the ungapped diagonal extension used by the MMseqs2-like baseline,
//! BLOSUM scoring matrices, alignment statistics (identity, coverage,
//! normalized score), reusable DP scratch arenas ([`AlignScratch`]) and a
//! work-stealing multi-threaded batch driver ([`align_batch`]).

mod batch;
mod matrix;
mod scratch;
mod stats;
mod striped;
mod sw;
mod ungapped;
mod xdrop;

pub use batch::align_batch;
pub use matrix::{ScoringMatrix, BLOSUM62};
pub use scratch::{with_scratch, AlignScratch};
pub use stats::{AlignStats, SimilarityMeasure};
pub use striped::{
    striped_align, striped_align_with, striped_score, striped_score_with, striped_traceback,
    striped_traceback_with,
};
pub use sw::{smith_waterman, smith_waterman_with};
pub use ungapped::ungapped_xdrop;
pub use xdrop::{xdrop_align, xdrop_align_with};

/// Which Smith–Waterman implementation [`local_align`] dispatches to. Both
/// engines return bit-identical [`AlignStats`]; they differ only in speed
/// and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlignEngine {
    /// Reference scalar DP with full-matrix traceback (O(m·n) direction
    /// bytes).
    Scalar,
    /// Lane-parallel striped kernel (Farrar) with an O(m)-memory score
    /// pass and a banded traceback rerun. The default.
    #[default]
    Striped,
}

/// Alignment parameters shared by all kernels. Defaults follow the paper's
/// evaluation: BLOSUM62, gap opening 11, gap extension 1, x-drop 49 (§VI).
#[derive(Debug, Clone, Copy)]
pub struct AlignParams {
    /// Cost charged when a gap is opened (first gap column costs
    /// `gap_open + gap_extend`).
    pub gap_open: i32,
    /// Cost per gap column.
    pub gap_extend: i32,
    /// Score drop-off terminating x-drop extension.
    pub xdrop: i32,
    /// Substitution matrix.
    pub matrix: &'static ScoringMatrix,
    /// Smith–Waterman implementation used by [`local_align`].
    pub engine: AlignEngine,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams {
            gap_open: 11,
            gap_extend: 1,
            xdrop: 49,
            matrix: &BLOSUM62,
            engine: AlignEngine::default(),
        }
    }
}

/// Full local alignment with the engine selected in `params`, using the
/// calling thread's scratch arena.
pub fn local_align(r: &[u8], c: &[u8], params: &AlignParams) -> AlignStats {
    obs::hist!("align.dp_cells", r.len() * c.len());
    with_scratch(|s| local_align_with(r, c, params, s))
}

/// [`local_align`] with an explicit scratch arena.
pub fn local_align_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> AlignStats {
    match params.engine {
        AlignEngine::Scalar => smith_waterman_with(r, c, params, scratch),
        AlignEngine::Striped => striped_align_with(r, c, params, scratch),
    }
}

/// Score-gated local alignment: run the traceback only when the optimal
/// score reaches `min_score`, returning `None` for culled pairs (the
/// MMseqs2-style prefilter-then-align staging). On the striped engine the
/// cull decision costs only the O(m)-memory score pass; the scalar engine
/// has no score-only mode, so it culls after the full DP. For surviving
/// pairs the stats are bit-identical to [`local_align`].
pub fn prefiltered_align(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    min_score: i32,
) -> Option<AlignStats> {
    obs::hist!("align.dp_cells", r.len() * c.len());
    with_scratch(|s| prefiltered_align_with(r, c, params, min_score, s))
}

/// [`prefiltered_align`] with an explicit scratch arena.
pub fn prefiltered_align_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    min_score: i32,
    scratch: &mut AlignScratch,
) -> Option<AlignStats> {
    match params.engine {
        AlignEngine::Scalar => {
            let stats = smith_waterman_with(r, c, params, scratch);
            (stats.score >= min_score).then_some(stats)
        }
        AlignEngine::Striped => {
            let (score, end) = striped_score_with(r, c, params, scratch);
            if score < min_score {
                return None;
            }
            Some(striped_traceback_with(r, c, params, score, end, scratch))
        }
    }
}
