//! Thread-parallel batch alignment driver.
//!
//! Pairwise alignments are embarrassingly parallel (paper §VI-A: "alignment
//! computations are independent of each other"); PASTIS runs OpenMP threads
//! under each MPI rank for them. Here each simulated rank fans its
//! alignment batch out over OS threads the same way.
//!
//! Scheduling is work-stealing rather than static chunking: alignment cost
//! scales with the *product* of sequence lengths, so a contiguous chunk of
//! long pairs can make one thread the straggler for the whole batch.
//! Workers instead draw tasks one at a time from a shared atomic cursor —
//! a thread that lands short tasks simply comes back for more.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use obs::Stopwatch;

/// Per-task output slots shared across worker threads. Each index is drawn
/// exactly once from the batch cursor, so every cell is written by exactly
/// one thread, and the scope join orders those writes before the read-back.
struct Slots<'a, R>(&'a [UnsafeCell<Option<R>>]);

// SAFETY: see `Slots` — all access to a given cell is by the single worker
// that drew its index, and results are only read after the workers join.
unsafe impl<R: Send> Sync for Slots<'_, R> {}

/// Map `f` over `tasks` on up to `threads` OS threads, preserving input
/// order in the output regardless of scheduling.
///
/// With `threads <= 1` (or a single-core host) this degrades to a plain
/// sequential map with no spawn overhead. Kernel work recorded by workers
/// (via `pcomm::work`) is summed and folded back into the calling thread's
/// counter, so stage accounting stays deterministic and
/// schedule-independent.
pub fn align_batch<T, R, F>(tasks: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    let _batch = obs::span!("align.batch", tasks = tasks.len());
    obs::counter!("align.batch.tasks", tasks.len());
    if threads == 1 {
        let _worker = obs::span!("align.worker");
        return tasks.iter().map(&f).collect();
    }
    // Workers record onto their own thread-local recorders (sharing the
    // caller's rank and epoch) so kernel metrics survive the scope; spans
    // and metrics are folded back in worker order after the join, keeping
    // the recorded structure independent of the steal schedule.
    let tracing = obs::enabled();
    let epoch = obs::epoch();
    let rank = obs::rank().unwrap_or(0);
    let cells: Vec<UnsafeCell<Option<R>>> =
        (0..tasks.len()).map(|_| UnsafeCell::new(None)).collect();
    {
        let slots = Slots(&cells);
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let slots = &slots;
                    let cursor = &cursor;
                    let f = &f;
                    scope.spawn(move || {
                        let rec = tracing.then(|| obs::Recorder::install(rank));
                        let start_ns = epoch.map(|e| e.elapsed().as_nanos() as u64).unwrap_or(0);
                        let t0 = Stopwatch::start();
                        let work_before = pcomm::work::counter_milli_ns();
                        let mut done = 0u64;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks.len() {
                                break;
                            }
                            // SAFETY: index i is drawn exactly once across
                            // all workers (fetch_add), so this is the only
                            // write to cell i.
                            unsafe { *slots.0[i].get() = Some(f(&tasks[i])) };
                            done += 1;
                        }
                        let work_milli = pcomm::work::counter_milli_ns() - work_before;
                        let dur_ns = t0.elapsed_ns();
                        let metrics = rec.map(|r| r.finish().metrics);
                        (work_milli, done, start_ns, dur_ns, metrics)
                    })
                })
                .collect();
            // Work lands on the workers' thread-local counters, which die
            // with the scope; the sum is schedule-independent, so folding
            // it into the caller keeps accounting deterministic. The fold
            // stays in milli-ns: truncating per worker would make the rank
            // total depend on how tasks were split.
            let mut worker_milli = 0u64;
            // Tasks beyond an even static split are steals: work a thread
            // picked up because another was busy with long alignments.
            let fair = (tasks.len() as u64).div_ceil(threads as u64);
            let mut steals = 0u64;
            for (w, handle) in handles.into_iter().enumerate() {
                let (work_milli, done, start_ns, dur_ns, metrics) =
                    handle.join().expect("alignment worker panicked");
                worker_milli += work_milli;
                steals += done.saturating_sub(fair);
                if tracing {
                    obs::emit_span(
                        "align.worker",
                        (w + 1) as u16,
                        start_ns,
                        dur_ns,
                        obs::CounterSet {
                            work_ns: work_milli / 1_000,
                            ..Default::default()
                        },
                        Some(("tasks", done as i64)),
                    );
                    if let Some(m) = &metrics {
                        obs::absorb_metrics(m);
                    }
                }
            }
            obs::counter!("align.batch.steals", steals);
            pcomm::work::add_milli_ns(worker_milli);
        });
    }
    cells
        .into_iter()
        .map(|c| c.into_inner().expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let tasks: Vec<u64> = (0..101).collect();
        for threads in [1, 2, 4, 7] {
            let got = align_batch(&tasks, threads, |&t| t * t);
            let want: Vec<u64> = tasks.iter().map(|&t| t * t).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        let got: Vec<u64> = align_batch(&Vec::<u64>::new(), 4, |&t| t);
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_tasks() {
        let got = align_batch(&[1u64, 2], 16, |&t| t + 1);
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn skewed_task_lengths_preserve_order() {
        // Cost varies by orders of magnitude across the batch; under
        // static chunking one thread would own nearly all heavy tasks,
        // and a scheduler bug that returns results in completion order
        // would scramble the output.
        let tasks: Vec<u64> = (0..200)
            .map(|i| if i % 17 == 0 { 50_000 } else { 10 })
            .collect();
        let want: Vec<u64> = tasks.iter().map(|&n| (0..n).sum()).collect();
        for threads in [2, 3, 5, 8] {
            let got = align_batch(&tasks, threads, |&n| (0..n).sum::<u64>());
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn worker_kernel_work_folds_into_caller() {
        let tasks: Vec<u64> = (0..50).collect();
        for threads in [1, 4] {
            let before = pcomm::work::counter();
            align_batch(&tasks, threads, |_| pcomm::work::add_ns(10));
            assert_eq!(pcomm::work::counter() - before, 500, "threads={threads}");
        }
    }

    #[test]
    fn runs_real_alignments() {
        use crate::{smith_waterman, AlignParams};
        use seqstore::encode_seq;
        let seqs: Vec<(Vec<u8>, Vec<u8>)> = (0..8)
            .map(|i| {
                let a = encode_seq(b"MKVLAWHERTYCC");
                let mut b = a.clone();
                b[i % a.len()] = (b[i % a.len()] + 1) % 20;
                (a, b)
            })
            .collect();
        let p = AlignParams::default();
        let res = align_batch(&seqs, 3, |(a, b)| smith_waterman(a, b, &p));
        assert_eq!(res.len(), 8);
        for st in res {
            assert!(st.matches >= 10);
        }
    }
}
