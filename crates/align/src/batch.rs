//! Thread-parallel batch alignment driver.
//!
//! Pairwise alignments are embarrassingly parallel (paper §VI-A: "alignment
//! computations are independent of each other"); PASTIS runs OpenMP threads
//! under each MPI rank for them. Here each simulated rank can fan its
//! alignment batch out over OS threads the same way.

/// Map `f` over `tasks` on up to `threads` OS threads, preserving order.
///
/// With `threads <= 1` (or a single-core host) this degrades to a plain
/// sequential map with no spawn overhead.
pub fn align_batch<T, R, F>(tasks: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads == 1 {
        return tasks.iter().map(&f).collect();
    }
    let chunk = tasks.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
    let slots: Vec<&mut [Option<R>]> = out.chunks_mut(chunk).collect();
    std::thread::scope(|scope| {
        for (ti, slot) in slots.into_iter().enumerate() {
            let f = &f;
            let start = ti * chunk;
            let task_slice = &tasks[start..(start + slot.len()).min(tasks.len())];
            scope.spawn(move || {
                for (s, t) in slot.iter_mut().zip(task_slice) {
                    *s = Some(f(t));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let tasks: Vec<u64> = (0..101).collect();
        for threads in [1, 2, 4, 7] {
            let got = align_batch(&tasks, threads, |&t| t * t);
            let want: Vec<u64> = tasks.iter().map(|&t| t * t).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        let got: Vec<u64> = align_batch(&Vec::<u64>::new(), 4, |&t| t);
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_tasks() {
        let got = align_batch(&[1u64, 2], 16, |&t| t + 1);
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn runs_real_alignments() {
        use crate::{smith_waterman, AlignParams};
        use seqstore::encode_seq;
        let seqs: Vec<(Vec<u8>, Vec<u8>)> = (0..8)
            .map(|i| {
                let a = encode_seq(b"MKVLAWHERTYCC");
                let mut b = a.clone();
                b[i % a.len()] = (b[i % a.len()] + 1) % 20;
                (a, b)
            })
            .collect();
        let p = AlignParams::default();
        let res = align_batch(&seqs, 3, |(a, b)| smith_waterman(a, b, &p));
        assert_eq!(res.len(), 8);
        for st in res {
            assert!(st.matches >= 10);
        }
    }
}
