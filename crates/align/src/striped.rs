//! Lane-parallel ("striped") Smith–Waterman — the fast local-alignment
//! engine (Farrar, *Bioinformatics* 2007).
//!
//! The query is laid out in `LANES` interleaved segments so the inner loop
//! updates a whole lane vector of DP cells with straight-line arithmetic on
//! lane arrays. The same kernel is instantiated at three lane widths and
//! chosen once per process by [`crate::dispatch`]: AVX2 lanes
//! (`[i16; 16]` / `[i32; 8]`, compiled under `target_feature(avx2)`),
//! portable SLP lanes (`[i16; 8]` / `[i32; 4]`, written so LLVM
//! autovectorizes them on stable Rust — no intrinsics), and a single-lane
//! fallback. DP values and the argmax scan are lane-layout independent, so
//! every width returns bit-identical results. Vertical gaps that cross
//! segment boundaries are repaired by Farrar's lazy-F loop, extended here
//! with the E update that keeps the recurrence *exactly* the textbook
//! affine-gap SW (the common SWPS3-style shortcut forbids
//! insertion-after-deletion and would diverge from the scalar reference).
//!
//! Scores run in saturating i16 lanes; negative saturation is harmless for
//! local alignment (values below zero never decide a cell) and positive
//! saturation is detected by headroom check, falling back to an i32-lane
//! pass.
//!
//! Tracebacks use two score-only striped passes plus a scalar rerun: the
//! forward pass finds the best end cell; a reverse pass over the reversed
//! prefixes locates the alignment *start* cell (the farthest-from-the-end
//! cell attaining the best score, so the rectangle covers every optimal
//! path); the scalar pass then reruns the DP only on the start→end
//! rectangle, keeping direction bytes inside a diagonal band that doubles
//! until the optimal path fits. Both the end cell and every direction byte
//! reproduce the scalar engine's choices, so the resulting [`AlignStats`]
//! is bit-identical to [`crate::smith_waterman`] while traceback memory
//! and rerun work drop from the `best_i × best_j` prefix to the alignment
//! span.

use seqstore::SIGMA;

use crate::dispatch::{self, SimdLevel};
use crate::scratch::{with_scratch, AlignScratch, StripedBufs};
use crate::stats::AlignStats;
use crate::sw::{E_EXTEND, F_EXTEND, H_DIAG, H_FROM_E, H_SRC_MASK, H_STOP, NEG_INF};
use crate::AlignParams;

/// Portable lane counts: 16 bytes of state per vector, mirroring one SSE
/// register — wide enough for SLP autovectorization, small enough to spill
/// nowhere.
pub(crate) const L16: usize = 8;
pub(crate) const L32: usize = 4;

/// AVX2 lane counts: 32 bytes of state per vector (one YMM register).
pub(crate) const L16W: usize = 16;
pub(crate) const L32W: usize = 8;

const NEG16: i16 = i16::MIN / 2;
const NEG32: i32 = i32::MIN / 4;

/// Highest best-score the i16 kernel reports as exact: one matrix score of
/// headroom below saturation, so any pass that could have clipped is redone
/// in i32 lanes.
const I16_SAFE: i32 = i16::MAX as i32 - 12;

/// Initial traceback band half-width; doubled until the optimal path fits.
const BAND_START: usize = 64;

/// Smallest end-cell rectangle (in DP cells) for which the traceback runs
/// the reverse start-cell pass. Below this the pass's own striped rerun
/// costs more than the scalar cells it could save.
const SPAN_PASS_MIN: usize = 16_384;

/// Move each lane's value to the next lane, filling lane 0 with `fill` —
/// the striped layout's "previous query row" permutation.
#[inline]
fn shift_in<T: Copy, const L: usize>(v: [T; L], fill: T) -> [T; L] {
    let mut out = [fill; L];
    out[1..].copy_from_slice(&v[..L - 1]);
    out
}

/// Smallest valid query index whose cell in the finished column equals
/// `target`. Lane `l` covers the contiguous query block starting at
/// `l·seg`, so a lane-major scan visits cells in ascending query order.
#[inline]
fn min_query_at<T: Copy + PartialEq, const L: usize>(
    h_store: &[[T; L]],
    target: T,
    seg: usize,
    m: usize,
) -> Option<usize> {
    for (l, base) in (0..L).map(|l| (l, l * seg)) {
        if base >= m {
            break;
        }
        for (s, col) in h_store.iter().enumerate().take(seg.min(m - base)) {
            if col[l] == target {
                return Some(base + s);
            }
        }
    }
    None
}

/// Largest valid query index whose cell in the finished column equals
/// `target` — the descending-order dual of [`min_query_at`], used by the
/// reverse start-cell pass.
#[inline]
fn max_query_at<T: Copy + PartialEq, const L: usize>(
    h_store: &[[T; L]],
    target: T,
    seg: usize,
    m: usize,
) -> Option<usize> {
    for l in (0..L).rev() {
        let base = l * seg;
        if base >= m {
            continue;
        }
        for s in (0..seg.min(m - base)).rev() {
            if h_store[s][l] == target {
                return Some(base + s);
            }
        }
    }
    None
}

macro_rules! striped_kernel {
    ($(#[$attr:meta])* $name:ident, $ty:ty, $lanes:expr, $neg:expr, $rev:literal) => {
        /// Score-only striped pass. Returns `(best, end_i, end_j)` with
        /// 1-based inclusive indices, or `(0, 0, 0)` when nothing scores
        /// positive. In forward mode (`rev = false`) the end cell is
        /// chosen exactly as the scalar engine's row-major argmax would;
        /// in reverse mode it is the *componentwise largest* `(i, j)`
        /// attaining the best — run on reversed sequences this yields the
        /// componentwise-smallest start over all optimal paths.
        $(#[$attr])*
        #[allow(clippy::too_many_arguments)] // scratch arenas threaded explicitly
        fn $name(
            r: &[u8],
            c: &[u8],
            params: &AlignParams,
            prof: &mut Vec<[$ty; $lanes]>,
            prof_key: &mut Option<(Vec<u8>, usize)>,
            h_store: &mut Vec<[$ty; $lanes]>,
            h_load: &mut Vec<[$ty; $lanes]>,
            e_buf: &mut Vec<[$ty; $lanes]>,
        ) -> (i32, usize, usize) {
            const L: usize = $lanes;
            const NEG: $ty = $neg;
            let (m, n) = (r.len(), c.len());
            debug_assert!(m > 0 && n > 0);
            let seg = m.div_ceil(L);
            let open = (params.gap_open + params.gap_extend) as $ty;
            let ext = params.gap_extend as $ty;

            // Striped query profile: prof[x·seg + s][l] = score(r[q], x)
            // for q = l·seg + s. Padding rows (q ≥ m) score NEG, which
            // keeps their H at or below every bound a valid cell sets, so
            // they can never decide a column maximum. The profile depends
            // only on `(r, matrix)`, so it is rebuilt only when either
            // differs from what the arena already holds — candidate batches
            // arrive grouped by query row, making back-to-back hits the
            // common case.
            let mat_addr = params.matrix as *const _ as usize;
            let cached = prof.len() == SIGMA * seg
                && matches!(prof_key, Some((q, ma)) if *ma == mat_addr && q.as_slice() == r);
            if cached {
                obs::counter!("align.prof_cache_hits", 1);
            } else {
                prof.clear();
                prof.resize(SIGMA * seg, [NEG; L]);
                for s in 0..seg {
                    for l in 0..L {
                        let q = l * seg + s;
                        if q < m {
                            let row = &params.matrix.scores[r[q] as usize];
                            for (x, &sc) in row.iter().enumerate() {
                                prof[x * seg + s][l] = sc as $ty;
                            }
                        }
                    }
                }
                match prof_key {
                    Some((q, ma)) => {
                        q.clear();
                        q.extend_from_slice(r);
                        *ma = mat_addr;
                    }
                    None => *prof_key = Some((r.to_vec(), mat_addr)),
                }
            }

            h_store.clear();
            h_store.resize(seg, [0; L]);
            h_load.clear();
            h_load.resize(seg, [0; L]);
            e_buf.clear();
            e_buf.resize(seg, [NEG; L]);

            let mut best: $ty = 0;
            let (mut best_i, mut best_j) = (0usize, 0usize);

            for j in 0..n {
                let pcol = &prof[c[j] as usize * seg..(c[j] as usize + 1) * seg];
                std::mem::swap(h_store, h_load);
                // v_h carries the diagonal source H(q−1, j−1): the previous
                // column's last segment row shifted down one lane, with the
                // local-alignment boundary H = 0 entering lane 0.
                let mut v_h = shift_in(h_load[seg - 1], 0 as $ty);
                let mut v_f = [NEG; L];
                let mut v_cmax = [NEG; L];
                // The lane dimension is the vector: each step below is a
                // straight-line load → lane-wise op → store block over
                // `[T; L]` values, the shape LLVM's SLP vectorizer turns
                // into single vector instructions (paddsw/pmaxsw etc.).
                for (((p, e), hs), hl) in pcol
                    .iter()
                    .zip(e_buf.iter_mut())
                    .zip(h_store.iter_mut())
                    .zip(h_load.iter())
                {
                    let p = *p;
                    let mut e_v = *e;
                    let mut h = [0 as $ty; L];
                    for l in 0..L {
                        h[l] = v_h[l].saturating_add(p[l]).max(e_v[l]).max(v_f[l]).max(0);
                    }
                    *hs = h;
                    let mut ho = [0 as $ty; L];
                    for l in 0..L {
                        v_cmax[l] = v_cmax[l].max(h[l]);
                        ho[l] = h[l].saturating_sub(open);
                    }
                    for l in 0..L {
                        e_v[l] = e_v[l].saturating_sub(ext).max(ho[l]);
                        v_f[l] = v_f[l].saturating_sub(ext).max(ho[l]);
                    }
                    *e = e_v;
                    v_h = *hl;
                }

                // Lazy F: vertical gaps crossing segment boundaries
                // re-enter shifted one lane and propagate until they can
                // neither raise an H nor open a better gap downstream
                // (Farrar's termination test). H corrections must also lift
                // E for the next column — that is what keeps this the exact
                // affine recurrence.
                'lazy: for _wrap in 0..L {
                    v_f = shift_in(v_f, NEG);
                    for s in 0..seg {
                        let mut h = h_store[s];
                        let mut live = false;
                        for l in 0..L {
                            live |= v_f[l] > h[l].saturating_sub(open);
                        }
                        if !live {
                            break 'lazy;
                        }
                        let mut e = e_buf[s];
                        for l in 0..L {
                            h[l] = h[l].max(v_f[l]);
                            v_cmax[l] = v_cmax[l].max(h[l]);
                            e[l] = e[l].max(h[l].saturating_sub(open));
                            v_f[l] = v_f[l].saturating_sub(ext);
                        }
                        h_store[s] = h;
                        e_buf[s] = e;
                    }
                }

                let mut cmax = v_cmax[0];
                #[allow(clippy::reversed_empty_ranges)] // L == 1 in the single-lane instantiation
                for l in 1..L {
                    if v_cmax[l] > cmax {
                        cmax = v_cmax[l];
                    }
                }
                let cmax32 = cmax as i32;
                if $rev {
                    // Track the componentwise *largest* cell attaining the
                    // best: on any column that attains it, take the column
                    // (max j) and lift the max row seen so far.
                    if cmax > best {
                        best = cmax;
                        let q = max_query_at(h_store, cmax, seg, m)
                            .expect("column max must come from a valid lane");
                        best_i = q + 1;
                        best_j = j + 1;
                    } else if cmax32 > 0 && cmax == best {
                        if let Some(q) = max_query_at(h_store, cmax, seg, m) {
                            best_i = best_i.max(q + 1);
                        }
                        best_j = j + 1;
                    }
                } else {
                    // Reproduce the scalar row-major argmax (the first
                    // strictly improving cell = lexicographically smallest
                    // (i, j) attaining the maximum). Columns arrive in j
                    // order, so a strict improvement takes this column's
                    // smallest attaining row, and a tie relocates only if
                    // this column attains the best in a smaller row than
                    // recorded.
                    if cmax > best {
                        best = cmax;
                        let q = min_query_at(h_store, cmax, seg, m)
                            .expect("column max must come from a valid lane");
                        best_i = q + 1;
                        best_j = j + 1;
                    } else if cmax32 > 0 && cmax == best && best_i > 1 {
                        if let Some(q) = min_query_at(h_store, cmax, seg, m) {
                            if q + 1 < best_i {
                                best_i = q + 1;
                                best_j = j + 1;
                            }
                        }
                    }
                }
            }
            (best as i32, best_i, best_j)
        }
    };
}

// Portable SLP-lane instantiations (the pre-dispatch kernels).
striped_kernel!(kernel_i16, i16, L16, NEG16, false);
striped_kernel!(kernel_i32, i32, L32, NEG32, false);
striped_kernel!(kernel_i16_rev, i16, L16, NEG16, true);
striped_kernel!(kernel_i32_rev, i32, L32, NEG32, true);

// Single-lane instantiations for the forced-scalar dispatch level.
striped_kernel!(kernel_i16_s1, i16, 1, NEG16, false);
striped_kernel!(kernel_i32_s1, i32, 1, NEG32, false);
striped_kernel!(kernel_i16_s1_rev, i16, 1, NEG16, true);
striped_kernel!(kernel_i32_s1_rev, i32, 1, NEG32, true);

// AVX2-width instantiations. `inline(always)` folds each kernel body into
// its `target_feature(avx2)` wrapper below, so LLVM vectorizes the lane
// loops at YMM width; the wrappers are the only callers.
#[cfg(target_arch = "x86_64")]
striped_kernel!(
    #[inline(always)]
    kernel_i16_w,
    i16,
    L16W,
    NEG16,
    false
);
#[cfg(target_arch = "x86_64")]
striped_kernel!(
    #[inline(always)]
    kernel_i32_w,
    i32,
    L32W,
    NEG32,
    false
);
#[cfg(target_arch = "x86_64")]
striped_kernel!(
    #[inline(always)]
    kernel_i16_w_rev,
    i16,
    L16W,
    NEG16,
    true
);
#[cfg(target_arch = "x86_64")]
striped_kernel!(
    #[inline(always)]
    kernel_i32_w_rev,
    i32,
    L32W,
    NEG32,
    true
);

/// Run one lane configuration, selecting the forward or reverse profile
/// cache. Forward and reverse passes run on different query bytes (the
/// reverse pass reverses the prefix), so each keeps its own cached
/// profile.
macro_rules! run_config {
    ($fwd:ident, $rev:ident, $r:expr, $c:expr, $params:expr, $b:expr, $reverse:expr) => {{
        let b = $b;
        if $reverse {
            $rev(
                $r,
                $c,
                $params,
                &mut b.rprof,
                &mut b.rprof_key,
                &mut b.h_store,
                &mut b.h_load,
                &mut b.e,
            )
        } else {
            $fwd(
                $r,
                $c,
                $params,
                &mut b.prof,
                &mut b.prof_key,
                &mut b.h_store,
                &mut b.h_load,
                &mut b.e,
            )
        }
    }};
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `target_feature` makes this fn unsafe to call; the only callers
// are the `SimdLevel::Avx2` dispatch arms, reached exclusively after
// runtime AVX2 detection in `dispatch::level()`.
unsafe fn avx2_i16(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    b: &mut StripedBufs<i16, L16W>,
    reverse: bool,
) -> (i32, usize, usize) {
    run_config!(kernel_i16_w, kernel_i16_w_rev, r, c, params, b, reverse)
}

// SAFETY: same contract as `avx2_i16` — called only from the
// `SimdLevel::Avx2` dispatch arms after runtime detection.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_i32(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    b: &mut StripedBufs<i32, L32W>,
    reverse: bool,
) -> (i32, usize, usize) {
    run_config!(kernel_i32_w, kernel_i32_w_rev, r, c, params, b, reverse)
}

/// One striped score pass at the dispatched SIMD level, i16 lanes with
/// automatic i32 overflow fallback. `reverse = true` selects the
/// max-attaining argmax (start-cell mode).
fn striped_pass(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
    reverse: bool,
) -> (i32, usize, usize) {
    striped_pass_at(dispatch::level(), r, c, params, scratch, reverse)
}

/// [`striped_pass`] pinned to an explicit SIMD level. Benchmarks use this
/// to compare lanes inside one process (the dispatcher's level is cached
/// for the process lifetime, so `ALIGN_FORCE` can't toggle mid-run).
fn striped_pass_at(
    lv: SimdLevel,
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
    reverse: bool,
) -> (i32, usize, usize) {
    let (m, n) = (r.len(), c.len());
    if m == 0 || n == 0 {
        return (0, 0, 0);
    }
    pcomm::work::record_class((m * n) as u64, pcomm::work::CostClass::SwStripedCell);
    let (best, bi, bj) = match lv {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returns Avx2 only after runtime detection.
        SimdLevel::Avx2 => unsafe { avx2_i16(r, c, params, &mut scratch.avx16, reverse) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => run_config!(
            kernel_i16,
            kernel_i16_rev,
            r,
            c,
            params,
            &mut scratch.slp16,
            reverse
        ),
        SimdLevel::Slp => run_config!(
            kernel_i16,
            kernel_i16_rev,
            r,
            c,
            params,
            &mut scratch.slp16,
            reverse
        ),
        SimdLevel::Scalar => {
            run_config!(
                kernel_i16_s1,
                kernel_i16_s1_rev,
                r,
                c,
                params,
                &mut scratch.sc16,
                reverse
            )
        }
    };
    if best < I16_SAFE {
        return (best, bi, bj);
    }
    // The i16 lanes may have saturated; redo the whole pass in i32 lanes.
    pcomm::work::record_class((m * n) as u64, pcomm::work::CostClass::SwStripedCell);
    match lv {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch returns Avx2 only after runtime detection.
        SimdLevel::Avx2 => unsafe { avx2_i32(r, c, params, &mut scratch.avx32, reverse) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => run_config!(
            kernel_i32,
            kernel_i32_rev,
            r,
            c,
            params,
            &mut scratch.slp32,
            reverse
        ),
        SimdLevel::Slp => run_config!(
            kernel_i32,
            kernel_i32_rev,
            r,
            c,
            params,
            &mut scratch.slp32,
            reverse
        ),
        SimdLevel::Scalar => {
            run_config!(
                kernel_i32_s1,
                kernel_i32_s1_rev,
                r,
                c,
                params,
                &mut scratch.sc32,
                reverse
            )
        }
    }
}

/// Striped best score and scalar-identical end cell (1-based inclusive),
/// with automatic i16 → i32 overflow fallback.
fn striped_end_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> (i32, usize, usize) {
    striped_pass(r, c, params, scratch, false)
}

/// Score-only striped local alignment: `(score, (r_end, c_end))` with
/// exclusive span ends, identical to the span ends [`crate::smith_waterman`]
/// reports. O(m) memory, no traceback.
pub fn striped_score(r: &[u8], c: &[u8], params: &AlignParams) -> (i32, (u32, u32)) {
    with_scratch(|s| striped_score_with(r, c, params, s))
}

/// [`striped_score`] with an explicit scratch arena.
pub fn striped_score_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> (i32, (u32, u32)) {
    let (best, bi, bj) = striped_end_with(r, c, params, scratch);
    (best, (bi as u32, bj as u32))
}

/// [`striped_score`] pinned to an explicit SIMD level, ignoring the
/// process-wide dispatch decision. Requesting [`SimdLevel::Avx2`] on a
/// host without AVX2 silently runs the SLP lanes instead (same results —
/// every lane width is bit-identical). Benchmark/test entry point.
pub fn striped_score_at_level(
    level: SimdLevel,
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
) -> (i32, (u32, u32)) {
    let lv = match level {
        SimdLevel::Avx2 if !dispatch::avx2_available() => SimdLevel::Slp,
        other => other,
    };
    with_scratch(|s| {
        let (best, bi, bj) = striped_pass_at(lv, r, c, params, s, false);
        (best, (bi as u32, bj as u32))
    })
}

/// Full local alignment on the striped engine. Returns [`AlignStats`]
/// bit-identical to [`crate::smith_waterman`].
pub fn striped_align(r: &[u8], c: &[u8], params: &AlignParams) -> AlignStats {
    with_scratch(|s| striped_align_with(r, c, params, s))
}

/// [`striped_align`] with an explicit scratch arena.
pub fn striped_align_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> AlignStats {
    let (best, bi, bj) = striped_end_with(r, c, params, scratch);
    striped_traceback_with(r, c, params, best, (bi as u32, bj as u32), scratch)
}

/// Reverse start-cell pass: the componentwise-smallest `(i, j)` any
/// optimal path ending at `(bi, bj)` starts in, found by rerunning the
/// striped score on the reversed prefixes and taking the componentwise
/// *largest* cell attaining the best. The rectangle it spans therefore
/// contains every optimal path — in particular the one the scalar engine
/// traces — which is what makes the shrunk rerun bit-identical. Returns
/// `(1, 1)` (no shrink) when the rectangle is too small to pay for the
/// pass or when the reverse score fails its sanity check.
fn span_start_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    score: i32,
    bi: usize,
    bj: usize,
    scratch: &mut AlignScratch,
) -> (usize, usize) {
    if bi * bj < SPAN_PASS_MIN {
        return (1, 1);
    }
    let mut ra = std::mem::take(&mut scratch.rev_a);
    let mut rb = std::mem::take(&mut scratch.rev_b);
    ra.clear();
    ra.extend(r[..bi].iter().rev());
    rb.clear();
    rb.extend(c[..bj].iter().rev());
    let (rbest, ti, tj) = striped_pass(&ra, &rb, params, scratch, true);
    scratch.rev_a = ra;
    scratch.rev_b = rb;
    // The reversed prefix problem has the same optimum (reverse both
    // members of any path). Guarded at runtime so an impossible mismatch
    // degrades to the unshrunk rectangle instead of a wrong traceback.
    debug_assert_eq!(rbest, score, "reverse pass must reproduce the best score");
    if rbest == score && ti >= 1 && tj >= 1 {
        obs::counter!("align.span_pass", 1);
        (bi - ti + 1, bj - tj + 1)
    } else {
        (1, 1)
    }
}

/// Traceback pass alone: given the `(score, end)` that
/// [`striped_score_with`] reported for the same `(r, c, params)`, produce
/// the full [`AlignStats`] without repeating the score pass. This is the
/// second half of [`striped_align_with`], exposed so a score-only prefilter
/// can decide whether the traceback is worth running at all.
pub fn striped_traceback(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    score: i32,
    end: (u32, u32),
) -> AlignStats {
    with_scratch(|s| striped_traceback_with(r, c, params, score, end, s))
}

/// [`striped_traceback`] with an explicit scratch arena.
pub fn striped_traceback_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    score: i32,
    end: (u32, u32),
    scratch: &mut AlignScratch,
) -> AlignStats {
    let mut stats = AlignStats {
        r_len: r.len() as u32,
        c_len: c.len() as u32,
        ..Default::default()
    };
    if score == 0 {
        return stats;
    }
    stats.score = score;
    let (bi, bj) = (end.0 as usize, end.1 as usize);
    // Third pass: scalar DP over the start→end rectangle (the recurrence
    // never looks outside it), keeping direction bytes only inside a
    // diagonal band. Growing the band until the path fits makes the
    // traceback identical to the full-matrix one.
    let (mut i_lo, mut j_lo) = span_start_with(r, c, params, score, bi, bj, scratch);
    loop {
        let (sub_r, sub_c) = (&r[i_lo - 1..bi], &c[j_lo - 1..bj]);
        let (rbi, rbj) = (bi - i_lo + 1, bj - j_lo + 1);
        let full = (rbi.max(rbj) - 1).max(1);
        let mut w = BAND_START.min(full);
        loop {
            pcomm::work::record_class((rbi * rbj) as u64, pcomm::work::CostClass::SwCell);
            if banded_traceback(sub_r, sub_c, params, rbi, rbj, w, scratch, &mut stats) {
                let (di, dj) = ((i_lo - 1) as u32, (j_lo - 1) as u32);
                stats.r_span.0 += di;
                stats.r_span.1 += di;
                stats.c_span.0 += dj;
                stats.c_span.1 += dj;
                return stats;
            }
            if w >= full {
                // A full-width band cannot be escaped, so the start-cell
                // rectangle itself must have been too small — impossible
                // per the containment argument, but degrade to the
                // unshrunk rectangle rather than loop.
                debug_assert!(i_lo > 1 || j_lo > 1, "full-width band cannot be escaped");
                if i_lo == 1 && j_lo == 1 {
                    return stats;
                }
                (i_lo, j_lo) = (1, 1);
                break;
            }
            w = (w * 2).min(full);
        }
    }
}

/// Rerun the scalar recurrence over rows `1..=bi`, columns `1..=bj`,
/// recording direction bytes only where `|(i − j) − (bi − bj)| ≤ w`, then
/// trace back from `(bi, bj)` into `stats`. Returns `false` if the
/// traceback left the band (caller retries with a wider one) or the rerun
/// failed to reach `stats.score` (caller retries with a larger rectangle).
#[allow(clippy::too_many_arguments)]
fn banded_traceback(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    bi: usize,
    bj: usize,
    w: usize,
    scratch: &mut AlignScratch,
    stats: &mut AlignStats,
) -> bool {
    let open = params.gap_open + params.gap_extend;
    let ext = params.gap_extend;
    let d0 = bi as isize - bj as isize;
    let width = 2 * w + 1;

    scratch.h_prev.clear();
    scratch.h_prev.resize(bj + 1, 0);
    scratch.h_curr.clear();
    scratch.h_curr.resize(bj + 1, 0);
    scratch.f_row.clear();
    scratch.f_row.resize(bj + 1, NEG_INF);
    scratch.band_dirs.clear();
    scratch.band_dirs.resize(bi * width, 0);
    let h_prev = &mut scratch.h_prev;
    let h_curr = &mut scratch.h_curr;
    let f_row = &mut scratch.f_row;
    let band = &mut scratch.band_dirs;

    for i in 1..=bi {
        let mut e = NEG_INF;
        h_curr[0] = 0;
        let ri = r[i - 1];
        let row_base = (i - 1) * width;
        // In-band column window of this row: `[band_l, band_r)`. Cells
        // outside it still run the full recurrence (exactness — E chains
        // span whole rows) but skip direction recording, so the row loop
        // stays branch-free per cell.
        let jlo = i as isize - d0 - w as isize;
        let band_l = jlo.clamp(1, bj as isize + 1) as usize;
        let band_r = (jlo + width as isize).clamp(1, bj as isize + 1) as usize;
        // Same recurrence and tie-break order as the scalar engine — the
        // recorded direction bytes must be byte-identical.
        macro_rules! dp_cell {
            ($j:expr, $record:literal) => {{
                let j = $j;
                let mut dir = 0u8;
                let e_open = h_curr[j - 1] - open;
                let e_ext = e - ext;
                e = if e_ext > e_open {
                    dir |= E_EXTEND;
                    e_ext
                } else {
                    e_open
                };
                let f_open = h_prev[j] - open;
                let f_ext = f_row[j] - ext;
                f_row[j] = if f_ext > f_open {
                    dir |= F_EXTEND;
                    f_ext
                } else {
                    f_open
                };
                let diag = h_prev[j - 1] + params.matrix.score(ri, c[j - 1]);
                let mut h = 0i32;
                let mut src = H_STOP;
                if diag > h {
                    h = diag;
                    src = H_DIAG;
                }
                if e > h {
                    h = e;
                    src = H_FROM_E;
                }
                if f_row[j] > h {
                    h = f_row[j];
                    src = crate::sw::H_FROM_F;
                }
                h_curr[j] = h;
                if $record {
                    band[row_base + (j as isize - jlo) as usize] = dir | src;
                }
            }};
        }
        for j in 1..band_l {
            dp_cell!(j, false);
        }
        for j in band_l..band_r {
            dp_cell!(j, true);
        }
        for j in band_r..=bj {
            dp_cell!(j, false);
        }
        std::mem::swap(h_prev, h_curr);
    }
    debug_assert_eq!(
        h_prev[bj], stats.score,
        "banded rerun disagrees with striped best"
    );
    if h_prev[bj] != stats.score {
        return false; // rectangle too small — caller widens it
    }

    // Traceback, identical to the scalar engine's but over the band; any
    // access outside it aborts the attempt.
    stats.matches = 0;
    stats.align_len = 0;
    let (mut i, mut j) = (bi, bj);
    stats.r_span.1 = i as u32;
    stats.c_span.1 = j as u32;
    #[derive(PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut state = State::H;
    loop {
        let off = j as isize - i as isize + d0 + w as isize;
        if off < 0 || off >= width as isize {
            return false; // escaped the band
        }
        let dir = band[(i - 1) * width + off as usize];
        match state {
            State::H => match dir & H_SRC_MASK {
                H_STOP => break,
                H_DIAG => {
                    stats.align_len += 1;
                    if r[i - 1] == c[j - 1] {
                        stats.matches += 1;
                    }
                    i -= 1;
                    j -= 1;
                    if i == 0 || j == 0 {
                        break;
                    }
                }
                H_FROM_E => state = State::E,
                _ => state = State::F,
            },
            State::E => {
                stats.align_len += 1;
                let extended = dir & E_EXTEND != 0;
                j -= 1;
                if !extended {
                    state = State::H;
                }
                if j == 0 {
                    break;
                }
            }
            State::F => {
                stats.align_len += 1;
                let extended = dir & F_EXTEND != 0;
                i -= 1;
                if !extended {
                    state = State::H;
                }
                if i == 0 {
                    break;
                }
            }
        }
    }
    stats.r_span.0 = i as u32;
    stats.c_span.0 = j as u32;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::smith_waterman;
    use seqstore::encode_seq;

    #[test]
    fn matches_scalar_on_fixed_cases() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"MKVLAWHERTYCC", b"MKVLAWHERTYCC"),
            (b"MKVLAWHERTYDDDD", b"MKVLAWCCCHERTYDDDD"),
            (b"CCCCWWWWHHHHGGGG", b"TTTTWWWWHHHHVVVV"),
            (b"AAAAAAAA", b"WWWWWWWW"),
            (b"A", b"A"),
            (
                b"MKVLAWHERTYACDEFGHIKLMNPQRSTVWY",
                b"MKVIAWHETYACDEFGHLKLMNPQRSTVWY",
            ),
        ];
        let p = AlignParams::default();
        for (a, b) in cases {
            let (ea, eb) = (encode_seq(a), encode_seq(b));
            assert_eq!(
                striped_align(&ea, &eb, &p),
                smith_waterman(&ea, &eb, &p),
                "case {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn matches_scalar_on_random_pairs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        let mut p = AlignParams::default();
        for round in 0..60 {
            // Vary gap costs to exercise tie-break and band behaviour.
            p.gap_open = [11, 5, 0][round % 3];
            p.gap_extend = [1, 2, 1][round % 3];
            let m = rng.random_range(1..90);
            let n = rng.random_range(1..90);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            assert_eq!(
                striped_align(&a, &b, &p),
                smith_waterman(&a, &b, &p),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn all_lane_widths_match_scalar() {
        // Drive each kernel instantiation directly (dispatch is cached
        // per process, so the dispatched path alone cannot cover all
        // three in one test run; verify.sh additionally runs the whole
        // suite under each ALIGN_FORCE value).
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        let p = AlignParams::default();
        let mut b16 = StripedBufs::<i16, L16>::default();
        let mut b1 = StripedBufs::<i16, 1>::default();
        #[cfg(target_arch = "x86_64")]
        let mut bw = StripedBufs::<i16, L16W>::default();
        for _ in 0..25 {
            let m = rng.random_range(1..120);
            let n = rng.random_range(1..120);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            let st = smith_waterman(&a, &b, &p);
            let want = (st.score, st.r_span.1 as usize, st.c_span.1 as usize);
            let got_slp = run_config!(kernel_i16, kernel_i16_rev, &a, &b, &p, &mut b16, false);
            let got_s1 = run_config!(kernel_i16_s1, kernel_i16_s1_rev, &a, &b, &p, &mut b1, false);
            if st.score > 0 {
                assert_eq!(got_slp, want);
                assert_eq!(got_s1, want);
            } else {
                assert_eq!(got_slp.0, 0);
                assert_eq!(got_s1.0, 0);
            }
            #[cfg(target_arch = "x86_64")]
            if crate::dispatch::level() == SimdLevel::Avx2 {
                // SAFETY: AVX2 presence just checked via dispatch.
                let got_w = unsafe { avx2_i16(&a, &b, &p, &mut bw, false) };
                if st.score > 0 {
                    assert_eq!(got_w, want);
                } else {
                    assert_eq!(got_w.0, 0);
                }
            }
        }
    }

    #[test]
    fn score_only_matches_full() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(13);
        let p = AlignParams::default();
        for _ in 0..30 {
            let m = rng.random_range(1..70);
            let n = rng.random_range(1..70);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..20u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..20u8)).collect();
            let st = smith_waterman(&a, &b, &p);
            let (score, end) = striped_score(&a, &b, &p);
            assert_eq!(score, st.score);
            if st.score > 0 {
                assert_eq!(end, (st.r_span.1, st.c_span.1));
            }
        }
    }

    #[test]
    fn i16_overflow_falls_back_to_i32() {
        // 3500 tryptophans self-aligned score 3500·11 = 38500 > i16::MAX,
        // forcing the wide-lane rerun (and, at 3500² cells, the reverse
        // start-cell pass in i32 lanes too).
        let s = vec![seqstore::encode_seq(b"W")[0]; 3500];
        let p = AlignParams::default();
        let (score, _) = striped_score(&s, &s, &p);
        assert_eq!(score, 38500);
        let st = striped_align(&s, &s, &p);
        assert_eq!(st.score, 38500);
        assert_eq!(st.matches, 3500);
        assert_eq!(st.r_span, (0, 3500));
    }

    #[test]
    fn span_pass_keeps_traceback_identical() {
        // Big enough to trigger the reverse start-cell pass (> 128×128
        // end rectangle), with the alignment confined to a small shared
        // core so the rectangle actually shrinks.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(53);
        let p = AlignParams::default();
        let core: Vec<u8> = (0..60).map(|_| rng.random_range(0..20u8)).collect();
        for _ in 0..8 {
            let mut a: Vec<u8> = (0..200).map(|_| rng.random_range(0..20u8)).collect();
            let mut b: Vec<u8> = (0..200).map(|_| rng.random_range(0..20u8)).collect();
            let (ia, ib) = (rng.random_range(100..180), rng.random_range(100..180));
            a.splice(ia..ia, core.iter().copied());
            b.splice(ib..ib, core.iter().copied());
            assert_eq!(striped_align(&a, &b, &p), smith_waterman(&a, &b, &p));
        }
    }

    #[test]
    fn profile_cache_reuse_is_exact() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let p = AlignParams::default();
        let mut scratch = AlignScratch::new();
        let queries: Vec<Vec<u8>> = (0..4)
            .map(|_| (0..50).map(|_| rng.random_range(0..24u8)).collect())
            .collect();
        // Same arena throughout: the second inner iteration hits the
        // profile cache, query changes between outer iterations evict it.
        for q in queries.iter().cycle().take(12) {
            for _ in 0..2 {
                let t: Vec<u8> = (0..40).map(|_| rng.random_range(0..24u8)).collect();
                assert_eq!(
                    striped_align_with(q, &t, &p, &mut scratch),
                    smith_waterman(q, &t, &p),
                );
            }
        }
    }

    #[test]
    fn prefiltered_matches_full_and_culls() {
        use crate::{local_align, prefiltered_align, AlignEngine};
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(21);
        for engine in [AlignEngine::Striped, AlignEngine::Scalar] {
            let p = AlignParams {
                engine,
                ..Default::default()
            };
            for _ in 0..20 {
                let m = rng.random_range(1..60);
                let n = rng.random_range(1..60);
                let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
                let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
                let full = local_align(&a, &b, &p);
                match prefiltered_align(&a, &b, &p, 1) {
                    Some(st) => {
                        assert!(full.score >= 1);
                        assert_eq!(st, full);
                    }
                    None => assert!(full.score < 1),
                }
                assert!(prefiltered_align(&a, &b, &p, full.score + 1).is_none());
            }
        }
    }

    #[test]
    fn long_gap_widens_band() {
        // An alignment whose path wanders > BAND_START off the end-cell
        // diagonal: identical flanks around a 200-residue insertion.
        let flank_a = b"MKVLAWHERTYCDEFGHIKLMNPQRSTVWYAADDEEFFGGHH".repeat(4);
        let mut a = encode_seq(&flank_a);
        let mut b = a.clone();
        let insert = vec![encode_seq(b"G")[0]; 200];
        b.splice(b.len() / 2..b.len() / 2, insert);
        a.extend_from_slice(&encode_seq(&flank_a));
        b.extend_from_slice(&encode_seq(&flank_a));
        let p = AlignParams::default();
        assert_eq!(striped_align(&a, &b, &p), smith_waterman(&a, &b, &p));
    }
}
