//! Alignment statistics and the similarity measures PASTIS supports for
//! weighting similarity-graph edges (paper §VI-B): Average Nucleotide
//! Identity (ANI — the paper's name for percent identity of the alignment)
//! and Normalized raw alignment Score (NS).

/// Outcome of a pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlignStats {
    /// Raw alignment score under the scoring scheme.
    pub score: i32,
    /// Number of alignment columns with identical residues.
    pub matches: u32,
    /// Total alignment columns (matches + mismatches + gap columns).
    pub align_len: u32,
    /// Aligned region on the first sequence: `[begin, end)`.
    pub r_span: (u32, u32),
    /// Aligned region on the second sequence: `[begin, end)`.
    pub c_span: (u32, u32),
    /// Length of the first sequence.
    pub r_len: u32,
    /// Length of the second sequence.
    pub c_len: u32,
}

impl AlignStats {
    /// Identity of the alignment in `[0, 1]` (the paper's "ANI").
    pub fn ani(&self) -> f64 {
        if self.align_len == 0 {
            0.0
        } else {
            self.matches as f64 / self.align_len as f64
        }
    }

    /// Coverage of the *shorter* sequence by its aligned span (the paper
    /// filters pairs covering less than 70% of the shorter sequence, §IV-F).
    pub fn coverage_short(&self) -> f64 {
        let (span, len) = if self.r_len <= self.c_len {
            (self.r_span.1 - self.r_span.0, self.r_len)
        } else {
            (self.c_span.1 - self.c_span.0, self.c_len)
        };
        if len == 0 {
            0.0
        } else {
            span as f64 / len as f64
        }
    }

    /// Raw score normalized by the shorter sequence length (the paper's
    /// "NS" measure — cheaper than ANI because it needs no traceback).
    pub fn normalized_score(&self) -> f64 {
        let len = self.r_len.min(self.c_len);
        if len == 0 {
            0.0
        } else {
            self.score.max(0) as f64 / len as f64
        }
    }

    /// Edge weight under the chosen similarity measure.
    pub fn weight(&self, measure: SimilarityMeasure) -> f64 {
        match measure {
            SimilarityMeasure::Ani => self.ani(),
            SimilarityMeasure::NormalizedScore => self.normalized_score(),
        }
    }

    /// The paper's default similarity filter: ANI ≥ 30% and shorter-sequence
    /// coverage ≥ 70% (§IV-F).
    pub fn passes_filter(&self, min_ani: f64, min_coverage: f64) -> bool {
        self.ani() >= min_ani && self.coverage_short() >= min_coverage
    }
}

/// Edge-weighting schemes for the similarity graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityMeasure {
    /// Alignment identity (requires traceback).
    Ani,
    /// Score over shorter-sequence length (no traceback needed).
    NormalizedScore,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> AlignStats {
        AlignStats {
            score: 50,
            matches: 40,
            align_len: 50,
            r_span: (0, 45),
            c_span: (10, 60),
            r_len: 50,
            c_len: 100,
        }
    }

    #[test]
    fn ani_is_matches_over_columns() {
        assert!((stats().ani() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn coverage_uses_shorter_sequence() {
        // Shorter is r (50); span 45.
        assert!((stats().coverage_short() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn normalized_score_uses_shorter_length() {
        assert!((stats().normalized_score() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn filter_thresholds() {
        let s = stats();
        assert!(s.passes_filter(0.3, 0.7));
        assert!(!s.passes_filter(0.85, 0.7));
        assert!(!s.passes_filter(0.3, 0.95));
    }

    #[test]
    fn empty_alignment_is_safe() {
        let z = AlignStats::default();
        assert_eq!(z.ani(), 0.0);
        assert_eq!(z.coverage_short(), 0.0);
        assert_eq!(z.normalized_score(), 0.0);
    }

    #[test]
    fn negative_score_clamps_ns() {
        let mut s = stats();
        s.score = -5;
        assert_eq!(s.normalized_score(), 0.0);
    }
}
