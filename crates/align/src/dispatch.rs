//! Runtime SIMD dispatch for the striped kernels.
//!
//! The striped engine carries three lane configurations of the same
//! kernel: AVX2-width lanes (`[i16; 16]` / `[i32; 8]`, compiled with
//! `target_feature(avx2)`), the portable SLP lanes (`[i16; 8]` /
//! `[i32; 4]`, plain autovectorized code — the default fallback), and a
//! single-lane instantiation that exercises the kernel's control flow with
//! no SIMD shape at all. All three produce bit-identical results (the DP
//! values and the argmax scan are lane-layout independent); they differ
//! only in throughput, so the choice is made once per process here.
//!
//! `ALIGN_FORCE=scalar|slp|avx2` overrides detection — verify.sh runs the
//! align test suite under each value so the portable paths cannot rot on
//! AVX2 hosts. Forcing `avx2` on a host without it falls back to `slp`
//! with a one-time note (the tests then cover SLP twice rather than
//! failing on machines that cannot run the wide kernels).
//!
//! This module is the only place in the workspace allowed to call
//! `is_x86_feature_detected!` (enforced by xlint): detection scattered
//! across call sites is how dispatch decisions drift apart.

use std::sync::OnceLock;

/// Which kernel instantiation the striped engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Single-lane kernel: no SIMD shape, the portable worst case.
    Scalar,
    /// SLP-autovectorized 128-bit lanes (the pre-dispatch default).
    Slp,
    /// AVX2 256-bit lanes.
    Avx2,
}

impl SimdLevel {
    /// Name as accepted by `ALIGN_FORCE` and reported in benches.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Slp => "slp",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
pub(crate) fn avx2_available() -> bool {
    is_x86_feature_detected!("avx2")
}

#[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
pub(crate) fn avx2_available() -> bool {
    false
}

/// The SIMD level every striped kernel call in this process uses. Decided
/// once: `ALIGN_FORCE` env override first, then feature detection.
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("ALIGN_FORCE") {
        Ok(v) if v == "scalar" => SimdLevel::Scalar,
        Ok(v) if v == "slp" => SimdLevel::Slp,
        Ok(v) if v == "avx2" => {
            if avx2_available() {
                SimdLevel::Avx2
            } else {
                eprintln!("align: ALIGN_FORCE=avx2 but host lacks AVX2; using slp");
                SimdLevel::Slp
            }
        }
        Ok(v) if !v.is_empty() => {
            eprintln!("align: unknown ALIGN_FORCE={v:?} (want scalar|slp|avx2); autodetecting");
            detect()
        }
        _ => detect(),
    })
}

fn detect() -> SimdLevel {
    if avx2_available() {
        SimdLevel::Avx2
    } else {
        SimdLevel::Slp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_stable_and_consistent_with_force() {
        let lv = level();
        assert_eq!(lv, level(), "dispatch decision must be cached");
        match std::env::var("ALIGN_FORCE").as_deref() {
            Ok("scalar") => assert_eq!(lv, SimdLevel::Scalar),
            Ok("slp") => assert_eq!(lv, SimdLevel::Slp),
            Ok("avx2") => assert!(lv == SimdLevel::Avx2 || lv == SimdLevel::Slp),
            _ => assert_ne!(lv, SimdLevel::Scalar, "detection never picks scalar"),
        }
    }

    #[test]
    fn names_round_trip() {
        for lv in [SimdLevel::Scalar, SimdLevel::Slp, SimdLevel::Avx2] {
            assert!(!lv.name().is_empty());
        }
    }
}
