//! Reusable DP buffers shared by all alignment kernels.
//!
//! Every kernel needs a handful of growable buffers (DP rows, direction
//! bytes, query profiles). Allocating them per call dominates small
//! alignments and fragments the heap in batch runs, so they live in an
//! [`AlignScratch`] arena instead: buffers are cleared and refilled but
//! never shrunk, so once the arena has seen the largest task of a batch,
//! subsequent alignments perform no heap allocation at all. The public
//! kernel entry points route through a thread-local arena (one per batch
//! worker thread); callers that manage their own threads can pass an
//! explicit arena to the `*_with` variants.

use std::cell::RefCell;

use crate::bitpack::{BitpackScratch, MatrixBound};
use crate::matrix::ScoringMatrix;
use crate::striped::{L16, L16W, L32, L32W};

/// Buffers for one in-flight banded x-drop extension.
#[derive(Default)]
pub(crate) struct XdropScratch {
    /// Current row's live-window scores.
    pub(crate) row_h: Vec<i32>,
    pub(crate) row_f: Vec<i32>,
    /// Retired row buffers recycled into the next row.
    pub(crate) spare_h: Vec<i32>,
    pub(crate) spare_f: Vec<i32>,
    /// All rows' traceback bytes, concatenated.
    pub(crate) dir_flat: Vec<u8>,
    /// Per-row `(lo, start, len)` slices into `dir_flat`.
    pub(crate) dir_rows: Vec<(usize, usize, usize)>,
}

/// One lane configuration's worth of striped-kernel state. The profile
/// caches remember which `(query, matrix)` they hold: in many-vs-one
/// batches the same query arrives back to back, and the O(Σ·m) profile
/// build is skipped when the key matches. The key stores a copy of the
/// query bytes (verified on hit), so a freed-and-reallocated query buffer
/// at the same address cannot alias a stale profile. Forward and reverse
/// profiles cache independently — the traceback start-cell pass runs on
/// the reversed query, and sharing one slot would make the two passes
/// evict each other on every pair.
#[derive(Default)]
pub(crate) struct StripedBufs<T, const L: usize> {
    pub(crate) prof: Vec<[T; L]>,
    pub(crate) prof_key: Option<(Vec<u8>, usize)>,
    pub(crate) rprof: Vec<[T; L]>,
    pub(crate) rprof_key: Option<(Vec<u8>, usize)>,
    pub(crate) h_store: Vec<[T; L]>,
    pub(crate) h_load: Vec<[T; L]>,
    pub(crate) e: Vec<[T; L]>,
}

/// Arena of reusable buffers for the alignment kernels. See the module
/// docs; construct with [`AlignScratch::new`] or use the thread-local via
/// [`with_scratch`].
#[derive(Default)]
pub struct AlignScratch {
    // Scalar Smith–Waterman rows (shared with the striped engine's
    // traceback pass).
    pub(crate) h_prev: Vec<i32>,
    pub(crate) h_curr: Vec<i32>,
    pub(crate) f_row: Vec<i32>,
    /// Full-matrix direction bytes (scalar engine only).
    pub(crate) dirs: Vec<u8>,
    /// Banded direction bytes (striped engine's traceback pass).
    pub(crate) band_dirs: Vec<u8>,
    // Striped kernel state per SIMD dispatch level (see
    // `dispatch::SimdLevel`): portable SLP lanes, i16 with i32
    // overflow-fallback.
    pub(crate) slp16: StripedBufs<i16, L16>,
    pub(crate) slp32: StripedBufs<i32, L32>,
    // AVX2 wide lanes.
    pub(crate) avx16: StripedBufs<i16, L16W>,
    pub(crate) avx32: StripedBufs<i32, L32W>,
    // Forced single-lane ("scalar") instantiation.
    pub(crate) sc16: StripedBufs<i16, 1>,
    pub(crate) sc32: StripedBufs<i32, 1>,
    /// Bitpacked prefilter gate state (match vectors + DP words).
    pub(crate) bp: BitpackScratch,
    /// Cached scoring-matrix decomposition backing the gate bound, keyed
    /// by matrix address ('static matrices, so addresses are stable).
    pub(crate) mb_cache: Option<(usize, MatrixBound)>,
    // X-drop extension state.
    pub(crate) xd: XdropScratch,
    /// Reversed prefixes for the leftward x-drop extension and the striped
    /// traceback's start-cell pass.
    pub(crate) rev_a: Vec<u8>,
    pub(crate) rev_b: Vec<u8>,
}

impl<T, const L: usize> StripedBufs<T, L> {
    fn heap_bytes(&self) -> usize {
        let lane = std::mem::size_of::<[T; L]>();
        (self.prof.capacity()
            + self.rprof.capacity()
            + self.h_store.capacity()
            + self.h_load.capacity()
            + self.e.capacity())
            * lane
            + self.prof_key.as_ref().map_or(0, |(k, _)| k.capacity())
            + self.rprof_key.as_ref().map_or(0, |(k, _)| k.capacity())
    }
}

impl obs::HeapSize for AlignScratch {
    fn heap_bytes(&self) -> usize {
        let i32s = |v: &Vec<i32>| v.capacity() * 4;
        let xd = &self.xd;
        let bp = &self.bp;
        i32s(&self.h_prev)
            + i32s(&self.h_curr)
            + i32s(&self.f_row)
            + self.dirs.capacity()
            + self.band_dirs.capacity()
            + self.slp16.heap_bytes()
            + self.slp32.heap_bytes()
            + self.avx16.heap_bytes()
            + self.avx32.heap_bytes()
            + self.sc16.heap_bytes()
            + self.sc32.heap_bytes()
            + i32s(&xd.row_h)
            + i32s(&xd.row_f)
            + i32s(&xd.spare_h)
            + i32s(&xd.spare_f)
            + xd.dir_flat.capacity()
            + xd.dir_rows.capacity() * std::mem::size_of::<(usize, usize, usize)>()
            + bp.key.as_ref().map_or(0, |(k, _)| k.capacity())
            + (bp.m_rel.capacity() + bp.m_id.capacity() + bp.v_rel.capacity() + bp.v_id.capacity())
                * 8
            + self.rev_a.capacity()
            + self.rev_b.capacity()
    }
}

impl AlignScratch {
    pub fn new() -> Self {
        AlignScratch::default()
    }

    /// The gate's decomposition of `matrix` (see [`MatrixBound`]), computed
    /// on first use and cached by matrix address.
    pub(crate) fn matrix_bound(&mut self, matrix: &'static ScoringMatrix) -> &MatrixBound {
        let addr = matrix as *const ScoringMatrix as usize;
        if !matches!(&self.mb_cache, Some((a, _)) if *a == addr) {
            self.mb_cache = Some((addr, MatrixBound::new(matrix)));
        }
        &self.mb_cache.as_ref().unwrap().1
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<AlignScratch> = RefCell::new(AlignScratch::new());
}

/// Run `f` with this thread's alignment scratch arena. The arena persists
/// for the thread's lifetime, so repeated kernel calls reuse its buffers.
/// Every call re-probes the arena's footprint into the `align.scratch`
/// watermark gauge (an O(1) capacity sum; no-op without a recorder), so
/// the memory observatory sees the arena at its largest.
pub fn with_scratch<R>(f: impl FnOnce(&mut AlignScratch) -> R) -> R {
    TLS_SCRATCH.with(|s| {
        let arena = &mut *s.borrow_mut();
        let r = f(arena);
        obs::alloc::probe("mem.watermark.align.scratch", arena);
        r
    })
}
