//! Reusable DP buffers shared by all alignment kernels.
//!
//! Every kernel needs a handful of growable buffers (DP rows, direction
//! bytes, query profiles). Allocating them per call dominates small
//! alignments and fragments the heap in batch runs, so they live in an
//! [`AlignScratch`] arena instead: buffers are cleared and refilled but
//! never shrunk, so once the arena has seen the largest task of a batch,
//! subsequent alignments perform no heap allocation at all. The public
//! kernel entry points route through a thread-local arena (one per batch
//! worker thread); callers that manage their own threads can pass an
//! explicit arena to the `*_with` variants.

use std::cell::RefCell;

use crate::striped::{L16, L32};

/// Buffers for one in-flight banded x-drop extension.
#[derive(Default)]
pub(crate) struct XdropScratch {
    /// Current row's live-window scores.
    pub(crate) row_h: Vec<i32>,
    pub(crate) row_f: Vec<i32>,
    /// Retired row buffers recycled into the next row.
    pub(crate) spare_h: Vec<i32>,
    pub(crate) spare_f: Vec<i32>,
    /// All rows' traceback bytes, concatenated.
    pub(crate) dir_flat: Vec<u8>,
    /// Per-row `(lo, start, len)` slices into `dir_flat`.
    pub(crate) dir_rows: Vec<(usize, usize, usize)>,
}

/// Arena of reusable buffers for the alignment kernels. See the module
/// docs; construct with [`AlignScratch::new`] or use the thread-local via
/// [`with_scratch`].
#[derive(Default)]
pub struct AlignScratch {
    // Scalar Smith–Waterman rows (shared with the striped engine's
    // traceback pass).
    pub(crate) h_prev: Vec<i32>,
    pub(crate) h_curr: Vec<i32>,
    pub(crate) f_row: Vec<i32>,
    /// Full-matrix direction bytes (scalar engine only).
    pub(crate) dirs: Vec<u8>,
    /// Banded direction bytes (striped engine's traceback pass).
    pub(crate) band_dirs: Vec<u8>,
    // Striped kernel state, i16 lanes. `prof16_key` caches which
    // `(query, matrix)` the profile currently holds: in many-vs-one
    // batches the same query arrives back to back, and the O(Σ·m) profile
    // build is skipped when the key matches. The key stores a copy of the
    // query bytes (verified on hit), so a freed-and-reallocated query
    // buffer at the same address cannot alias a stale profile.
    pub(crate) prof16: Vec<[i16; L16]>,
    pub(crate) prof16_key: Option<(Vec<u8>, usize)>,
    pub(crate) h16_store: Vec<[i16; L16]>,
    pub(crate) h16_load: Vec<[i16; L16]>,
    pub(crate) e16: Vec<[i16; L16]>,
    // Striped kernel state, i32 overflow-fallback lanes.
    pub(crate) prof32: Vec<[i32; L32]>,
    pub(crate) prof32_key: Option<(Vec<u8>, usize)>,
    pub(crate) h32_store: Vec<[i32; L32]>,
    pub(crate) h32_load: Vec<[i32; L32]>,
    pub(crate) e32: Vec<[i32; L32]>,
    // X-drop extension state.
    pub(crate) xd: XdropScratch,
    /// Reversed prefixes for the leftward x-drop extension.
    pub(crate) rev_a: Vec<u8>,
    pub(crate) rev_b: Vec<u8>,
}

impl AlignScratch {
    pub fn new() -> Self {
        AlignScratch::default()
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<AlignScratch> = RefCell::new(AlignScratch::new());
}

/// Run `f` with this thread's alignment scratch arena. The arena persists
/// for the thread's lifetime, so repeated kernel calls reuse its buffers.
pub fn with_scratch<R>(f: impl FnOnce(&mut AlignScratch) -> R) -> R {
    TLS_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}
