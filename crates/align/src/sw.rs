//! Affine-gap Smith–Waterman local alignment with full traceback
//! (Smith & Waterman 1981; the SW mode of PASTIS, paper §IV-E).

use crate::scratch::{with_scratch, AlignScratch};
use crate::stats::AlignStats;
use crate::AlignParams;

// Direction byte layout for traceback (shared with the striped engine's
// banded traceback pass, which must produce identical bytes).
pub(crate) const H_SRC_MASK: u8 = 0b11; // 0 stop, 1 diag, 2 E (gap in r), 3 F (gap in c)
pub(crate) const H_STOP: u8 = 0;
pub(crate) const H_DIAG: u8 = 1;
pub(crate) const H_FROM_E: u8 = 2;
pub(crate) const H_FROM_F: u8 = 3;
pub(crate) const E_EXTEND: u8 = 1 << 2; // E came from E (else from H)
pub(crate) const F_EXTEND: u8 = 1 << 3; // F came from F (else from H)

pub(crate) const NEG_INF: i32 = i32::MIN / 4;

/// Local alignment of `r` against `c` (base-index sequences).
///
/// Returns the best-scoring local alignment; the zero-score alignment (empty
/// spans) is returned when nothing scores positive. Gap of length L costs
/// `gap_open + L·gap_extend`.
pub fn smith_waterman(r: &[u8], c: &[u8], params: &AlignParams) -> AlignStats {
    with_scratch(|s| smith_waterman_with(r, c, params, s))
}

/// [`smith_waterman`] with an explicit scratch arena (no per-call heap
/// allocation once the arena is warm).
pub fn smith_waterman_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> AlignStats {
    let (m, n) = (r.len(), c.len());
    let mut stats = AlignStats {
        r_len: m as u32,
        c_len: n as u32,
        ..Default::default()
    };
    if m == 0 || n == 0 {
        return stats;
    }
    // Work accounting: full m×n DP.
    pcomm::work::record_class((m * n) as u64, pcomm::work::CostClass::SwCell);
    let open = params.gap_open + params.gap_extend;
    let ext = params.gap_extend;

    scratch.h_prev.clear();
    scratch.h_prev.resize(n + 1, 0);
    scratch.h_curr.clear();
    scratch.h_curr.resize(n + 1, 0);
    scratch.f_row.clear();
    scratch.f_row.resize(n + 1, NEG_INF);
    scratch.dirs.clear();
    scratch.dirs.resize(m * n, 0);
    let h_prev = &mut scratch.h_prev;
    let h_curr = &mut scratch.h_curr;
    let f_row = &mut scratch.f_row;
    let dirs = &mut scratch.dirs;

    let mut best = 0i32;
    let mut best_cell = (0usize, 0usize); // (i, j), 1-based ends

    for i in 1..=m {
        let mut e = NEG_INF;
        h_curr[0] = 0;
        let ri = r[i - 1];
        for j in 1..=n {
            let mut dir = 0u8;
            // E: gap in r (consume c[j-1]).
            let e_open = h_curr[j - 1] - open;
            let e_ext = e - ext;
            e = if e_ext > e_open {
                dir |= E_EXTEND;
                e_ext
            } else {
                e_open
            };
            // F: gap in c (consume r[i-1]).
            let f_open = h_prev[j] - open;
            let f_ext = f_row[j] - ext;
            f_row[j] = if f_ext > f_open {
                dir |= F_EXTEND;
                f_ext
            } else {
                f_open
            };
            let diag = h_prev[j - 1] + params.matrix.score(ri, c[j - 1]);
            // Tie-break preferring diagonal, then E, then F, then stop —
            // fixed order keeps tracebacks deterministic.
            let mut h = 0i32;
            let mut src = H_STOP;
            if diag > h {
                h = diag;
                src = H_DIAG;
            }
            if e > h {
                h = e;
                src = H_FROM_E;
            }
            if f_row[j] > h {
                h = f_row[j];
                src = H_FROM_F;
            }
            h_curr[j] = h;
            dirs[(i - 1) * n + (j - 1)] = dir | src;
            if h > best {
                best = h;
                best_cell = (i, j);
            }
        }
        std::mem::swap(h_prev, h_curr);
    }

    if best == 0 {
        return stats;
    }
    stats.score = best;

    // Traceback from the best cell.
    let (mut i, mut j) = best_cell;
    stats.r_span.1 = i as u32;
    stats.c_span.1 = j as u32;
    #[derive(PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut state = State::H;
    loop {
        let dir = dirs[(i - 1) * n + (j - 1)];
        match state {
            State::H => match dir & H_SRC_MASK {
                H_STOP => break,
                H_DIAG => {
                    stats.align_len += 1;
                    if r[i - 1] == c[j - 1] {
                        stats.matches += 1;
                    }
                    i -= 1;
                    j -= 1;
                    if i == 0 || j == 0 {
                        break;
                    }
                }
                H_FROM_E => state = State::E,
                _ => state = State::F,
            },
            State::E => {
                stats.align_len += 1;
                let extended = dir & E_EXTEND != 0;
                j -= 1;
                if !extended {
                    state = State::H;
                }
                if j == 0 {
                    break;
                }
            }
            State::F => {
                stats.align_len += 1;
                let extended = dir & F_EXTEND != 0;
                i -= 1;
                if !extended {
                    state = State::H;
                }
                if i == 0 {
                    break;
                }
            }
        }
    }
    stats.r_span.0 = i as u32;
    stats.c_span.0 = j as u32;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqstore::encode_seq;

    fn sw(a: &[u8], b: &[u8]) -> AlignStats {
        smith_waterman(&encode_seq(a), &encode_seq(b), &AlignParams::default())
    }

    #[test]
    fn identical_sequences_align_fully() {
        let s = b"MKVLAWHERTYCC";
        let st = sw(s, s);
        assert_eq!(st.matches as usize, s.len());
        assert_eq!(st.align_len as usize, s.len());
        assert_eq!(st.r_span, (0, s.len() as u32));
        assert!((st.ani() - 1.0).abs() < 1e-12);
        let want: i32 = encode_seq(s).iter().map(|&b| BLOSUM62_DIAG(b)).sum();
        assert_eq!(st.score, want);
    }

    #[allow(non_snake_case)]
    fn BLOSUM62_DIAG(b: u8) -> i32 {
        crate::BLOSUM62.diag(b)
    }

    #[test]
    fn single_mismatch_is_diagonal() {
        let st = sw(b"MKVLAWHERTY", b"MKVLAFHERTY");
        assert_eq!(st.align_len, 11);
        assert_eq!(st.matches, 10);
    }

    #[test]
    fn gap_is_taken_when_cheaper() {
        // A deletion of 3 residues; flanks long enough to pay the gap.
        let a = b"MKVLAWHERTYDDDD"; // 15
        let b = b"MKVLAWCCCHERTYDDDD"; // insertion CCC
        let st = sw(a, b);
        assert_eq!(st.r_span, (0, 15));
        assert_eq!(st.c_span, (0, 18));
        assert_eq!(st.matches, 15);
        assert_eq!(st.align_len, 18);
        // Score: 15 identities − (11 + 3).
        let ident: i32 = encode_seq(a).iter().map(|&x| BLOSUM62_DIAG(x)).sum();
        assert_eq!(st.score, ident - 14);
    }

    #[test]
    fn local_alignment_trims_noise() {
        // Shared core WWWWHHHH surrounded by unrelated residues.
        let st = sw(b"CCCCWWWWHHHHGGGG", b"TTTTWWWWHHHHVVVV");
        assert!(st.matches >= 8);
        let (b0, e0) = st.r_span;
        assert!(b0 >= 4 && e0 <= 12, "span {b0}..{e0}");
    }

    #[test]
    fn unrelated_sequences_score_low() {
        let st = sw(b"AAAAAAAA", b"WWWWWWWW");
        assert_eq!(st.score, 0);
        assert_eq!(st.align_len, 0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sw(b"", b"ACD").score, 0);
        assert_eq!(sw(b"ACD", b"").score, 0);
        assert_eq!(sw(b"", b"").score, 0);
    }

    #[test]
    fn symmetric_score() {
        let (a, b) = (b"MKVLAWHERTYAC", b"MKVIAWHETYAC");
        let s1 = sw(a, b);
        let s2 = sw(b, a);
        assert_eq!(s1.score, s2.score);
        assert_eq!(s1.matches, s2.matches);
        assert_eq!(s1.r_span, s2.c_span);
    }

    #[test]
    fn affine_prefers_one_long_gap_over_two_short() {
        // With open=11 ext=1, one gap of 2 (13) beats two gaps of 1 (24).
        let a = b"MKVLAWHERTYPPPP";
        let b = b"MKVLWHERTYPPP"; // could be explained multiple ways
        let st = sw(a, b);
        assert!(st.score > 0);
        // Alignment length never exceeds sum of spans.
        assert!(st.align_len >= st.matches);
    }

    #[test]
    fn score_matches_reference_dp() {
        // Compare against an O(mn) reference without traceback on random
        // sequences.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let m = rng.random_range(1..40);
            let n = rng.random_range(1..40);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..20u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..20u8)).collect();
            let p = AlignParams::default();
            let got = smith_waterman(&a, &b, &p);
            assert_eq!(got.score, reference_score(&a, &b, &p), "a={a:?} b={b:?}");
        }
    }

    fn reference_score(r: &[u8], c: &[u8], p: &AlignParams) -> i32 {
        let (m, n) = (r.len(), c.len());
        let open = p.gap_open + p.gap_extend;
        let mut h = vec![vec![0i32; n + 1]; m + 1];
        let mut e = vec![vec![NEG_INF; n + 1]; m + 1];
        let mut f = vec![vec![NEG_INF; n + 1]; m + 1];
        let mut best = 0;
        for i in 1..=m {
            for j in 1..=n {
                e[i][j] = (e[i][j - 1] - p.gap_extend).max(h[i][j - 1] - open);
                f[i][j] = (f[i - 1][j] - p.gap_extend).max(h[i - 1][j] - open);
                h[i][j] = 0
                    .max(h[i - 1][j - 1] + p.matrix.score(r[i - 1], c[j - 1]))
                    .max(e[i][j])
                    .max(f[i][j]);
                best = best.max(h[i][j]);
            }
        }
        best
    }

    #[test]
    fn traceback_consistency_random() {
        // matches ≤ align_len, spans within bounds, ani within [0,1].
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let m = rng.random_range(0..60);
            let n = rng.random_range(0..60);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            let st = smith_waterman(&a, &b, &AlignParams::default());
            assert!(st.matches <= st.align_len);
            assert!(st.r_span.0 <= st.r_span.1 && st.r_span.1 as usize <= m);
            assert!(st.c_span.0 <= st.c_span.1 && st.c_span.1 as usize <= n);
            let span_r = st.r_span.1 - st.r_span.0;
            let span_c = st.c_span.1 - st.c_span.0;
            assert!(st.align_len >= span_r.max(span_c));
            assert!(st.align_len <= span_r + span_c);
            assert!((0.0..=1.0).contains(&st.ani()));
        }
    }
}
