//! Ungapped x-drop extension along a diagonal — the cheap scoring pass the
//! MMseqs2-like baseline runs on every double-diagonal candidate before
//! deciding whether to pay for a gapped alignment (paper §III).

use crate::stats::AlignStats;
use crate::AlignParams;

/// Extend a seed match at `r_pos`/`c_pos` of length `k` along its diagonal
/// in both directions, stopping when the running score falls more than
/// `params.xdrop` below the best seen. No gaps are considered.
pub fn ungapped_xdrop(
    r: &[u8],
    c: &[u8],
    r_pos: u32,
    c_pos: u32,
    k: usize,
    params: &AlignParams,
) -> AlignStats {
    let (r_pos, c_pos) = (r_pos as usize, c_pos as usize);
    assert!(
        r_pos + k <= r.len() && c_pos + k <= c.len(),
        "seed outside sequence"
    );
    let seed_score: i32 = (0..k)
        .map(|t| params.matrix.score(r[r_pos + t], c[c_pos + t]))
        .sum();

    // Right extension.
    let mut best = seed_score;
    let mut right = 0usize;
    {
        let mut run = seed_score;
        let (mut i, mut j) = (r_pos + k, c_pos + k);
        let mut steps = 0usize;
        while i < r.len() && j < c.len() {
            run += params.matrix.score(r[i], c[j]);
            steps += 1;
            if run > best {
                best = run;
                right = steps;
            }
            if run < best - params.xdrop {
                break;
            }
            i += 1;
            j += 1;
        }
    }
    // Left extension.
    let mut left = 0usize;
    {
        let mut run = best;
        let mut best_left = best;
        let (mut i, mut j) = (r_pos, c_pos);
        let mut steps = 0usize;
        while i > 0 && j > 0 {
            i -= 1;
            j -= 1;
            run += params.matrix.score(r[i], c[j]);
            steps += 1;
            if run > best_left {
                best_left = run;
                left = steps;
            }
            if run < best_left - params.xdrop {
                break;
            }
        }
        best = best_left;
    }

    // Work accounting: one add/compare per diagonal step.
    pcomm::work::record_class(
        (left + k + right) as u64,
        pcomm::work::CostClass::UngappedStep,
    );

    let r0 = (r_pos - left) as u32;
    let c0 = (c_pos - left) as u32;
    let r1 = (r_pos + k + right) as u32;
    let c1 = (c_pos + k + right) as u32;
    let score = best;
    let matches = (r0..r1)
        .zip(c0..c1)
        .filter(|&(i, j)| r[i as usize] == c[j as usize])
        .count() as u32;
    AlignStats {
        score,
        matches,
        align_len: r1 - r0,
        r_span: (r0, r1),
        c_span: (c0, c1),
        r_len: r.len() as u32,
        c_len: c.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqstore::encode_seq;

    fn p() -> AlignParams {
        AlignParams::default()
    }

    #[test]
    fn identical_extends_both_ways() {
        let s = encode_seq(b"MKVLAWHERTY");
        let st = ungapped_xdrop(&s, &s, 4, 4, 3, &p());
        assert_eq!(st.r_span, (0, 11));
        assert_eq!(st.matches, 11);
        assert_eq!(st.align_len, 11);
    }

    #[test]
    fn stops_at_strong_mismatch_run() {
        let a = encode_seq(b"MKVLAWWWWWWWWWW");
        let b = encode_seq(b"MKVLAPPPPPPPPPP");
        let mut pr = p();
        pr.xdrop = 5;
        let st = ungapped_xdrop(&a, &b, 0, 0, 5, &pr);
        assert_eq!(st.r_span.0, 0);
        assert!(st.r_span.1 <= 8, "stopped at {}", st.r_span.1);
        assert_eq!(st.matches, 5);
    }

    #[test]
    fn offset_diagonal() {
        // Same word at different offsets: spans track each sequence.
        let a = encode_seq(b"CCMKVLAW");
        let b = encode_seq(b"MKVLAW");
        let st = ungapped_xdrop(&a, &b, 2, 0, 4, &p());
        assert_eq!(st.r_span, (2, 8));
        assert_eq!(st.c_span, (0, 6));
        assert_eq!(st.matches, 6);
    }

    #[test]
    fn score_is_sum_of_span() {
        let a = encode_seq(b"MKVLAW");
        let b = encode_seq(b"MKVIAW");
        let st = ungapped_xdrop(&a, &b, 0, 0, 3, &p());
        let want: i32 = (st.r_span.0..st.r_span.1)
            .zip(st.c_span.0..st.c_span.1)
            .map(|(i, j)| p().matrix.score(a[i as usize], b[j as usize]))
            .sum();
        assert_eq!(st.score, want);
    }

    #[test]
    fn never_shrinks_below_seed() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..40 {
            let m = rng.random_range(8..40);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let pos = rng.random_range(0..m - 6) as u32;
            let st = ungapped_xdrop(&a, &b, pos, pos, 6, &p());
            assert!(st.r_span.0 <= pos && st.r_span.1 >= pos + 6);
            assert_eq!(st.r_span.1 - st.r_span.0, st.c_span.1 - st.c_span.0);
        }
    }
}
