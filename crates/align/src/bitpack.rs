//! Myers-bitpacked block-DP prefilter gate — the cheapest tier of the
//! alignment cascade (gate → striped score → striped traceback).
//!
//! The gate answers one question: *can this pair possibly reach
//! `min_score`?* It computes a provable **upper bound** on the affine-gap
//! Smith–Waterman score and culls the pair only when the bound falls short
//! — it never wrongly culls, so the cascade's verdicts (and the pipeline's
//! edge set) are bit-identical to running the exact striped tier on every
//! pair; the gate only changes how fast a "no" is reached.
//!
//! # The bound
//!
//! Decompose the scoring matrix once per matrix: let `t_max` be the
//! largest positive score between *distinct* residues, `d_max` the largest
//! self score, and `d_extra = max(0, d_max − t_max)`. Every residue pair
//! then satisfies
//!
//! ```text
//! s(a, b) ≤ t_max·[s(a, b) > 0] + d_extra·[a == b]
//! ```
//!
//! (BLOSUM62 over the 24-letter NCBI alphabet: `t_max = 4` via the B–D /
//! Z–E ambiguity pairs, `d_extra = 7`). The positively-scoring columns
//! of any alignment form a monotone matching under the relation
//! `s(a, b) > 0`, so their count is at most `L⁺`, the LCS-length of the
//! pair under that relation; the identical columns are likewise bounded by
//! the ordinary LCS `L=`. Gap columns only subtract. Hence
//!
//! ```text
//! score ≤ B = t_max·L⁺ + d_extra·L=
//! ```
//!
//! Both LCS lengths are computed with the Myers-style bit-parallel
//! recurrence (Crochemore–Iliopoulos–Pinzon / Hyyrö): one DP cell per
//! **bit**, 64 cells per machine word, four word operations per word per
//! text column:
//!
//! ```text
//! u  = V & M[c]                // match bits for this column
//! V' = (V + u) | (V − u)       // carry/borrow propagate across words
//! ```
//!
//! where bit `q` of `V` is 0 iff the LCS length grows at query row `q`,
//! and `M[c]` marks the query rows related to text residue `c`. The final
//! length is the number of zero bits among the low `m` bits of `V`.
//!
//! # Block schedule
//!
//! The text is processed in cache-sized column blocks on a doubling
//! schedule (64, 128, 256, … columns). At each block boundary the gate
//! re-derives two sound facts from the partial counts `L_j` after `j`
//! columns:
//!
//! - **pass early**: `B_j = t_max·L⁺_j + d_extra·L=_j` only grows with
//!   more columns, so `B_j ≥ min_score` already proves the pair cannot be
//!   culled — stop and fall through to the exact tier.
//! - **cull early**: the final lengths satisfy
//!   `L_final ≤ min(m, L_j + (n − j))`, so if even that optimistic bound
//!   misses `min_score` the pair is culled without touching the remaining
//!   columns (the "band": the unprocessed remainder is credited as if
//!   every column matched, and the credit halves as the processed window
//!   doubles).
//!
//! Before any DP runs, two O(m + n) pre-bounds get the trivial culls for
//! free: the length bound `(t_max + d_extra)·min(m, n)` and the
//! composition bound (per-residue occurrence minima bounding `L=`).
//!
//! The bound deliberately ignores gap costs (a gap-free bound cannot be
//! tightened by diagonal banding — see DESIGN.md §12), so it separates
//! pairs only when `min_score` is a meaningful fraction of
//! `d_max·min(m, n)`: short or compositionally disjoint pairs against
//! absolute thresholds. At the pipeline's exactness default
//! (`min_score = 1`) the gate passes almost everything after one block —
//! by design, its overhead on passing pairs is a few percent of the
//! striped tier.

use seqstore::SIGMA;

use crate::matrix::ScoringMatrix;
use crate::scratch::{with_scratch, AlignScratch};
use crate::AlignParams;

/// One word of the bitpacked DP holds this many cells.
pub const CELLS_PER_WORD: usize = 64;

/// First early-exit checkpoint, in text columns; the block doubles after
/// every checkpoint (64, 128, 256, …) so checkpoint overhead stays
/// geometric.
const BLOCK_START: usize = 64;

/// Per-matrix decomposition backing the bound (see module docs). Computed
/// once per [`ScoringMatrix`] and cached in the scratch arena by matrix
/// address.
#[derive(Debug, Clone)]
pub(crate) struct MatrixBound {
    /// Largest positive score between distinct residues.
    pub(crate) t_max: i32,
    /// `max(0, max self score − t_max)`.
    pub(crate) d_extra: i32,
    /// `rel[x]` bit `y` set iff `score(x, y) > 0` — the positive relation.
    pub(crate) rel: [u32; SIGMA],
}

impl MatrixBound {
    pub(crate) fn new(matrix: &ScoringMatrix) -> MatrixBound {
        let mut t_max = 0i32;
        let mut d_max = 0i32;
        let mut rel = [0u32; SIGMA];
        for (x, rel_x) in rel.iter_mut().enumerate() {
            for y in 0..SIGMA {
                let s = matrix.scores[x][y] as i32;
                if s > 0 {
                    *rel_x |= 1 << y;
                }
                if x == y {
                    d_max = d_max.max(s);
                } else {
                    t_max = t_max.max(s);
                }
            }
        }
        MatrixBound {
            t_max,
            d_extra: (d_max - t_max).max(0),
            rel,
        }
    }

    /// Largest score any single aligned column can contribute.
    #[inline]
    fn col_max(&self) -> i32 {
        self.t_max + self.d_extra
    }
}

/// Outcome of the bitpacked gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// The score upper bound provably misses `min_score`: the exact score
    /// is `< min_score`, the pair needs no further work.
    Culled,
    /// `min_score` may be reachable — fall through to the exact tier.
    Pass,
}

/// Scratch state for the gate (lives inside [`AlignScratch`]).
#[derive(Default)]
pub(crate) struct BitpackScratch {
    /// `(query, matrix address)` the match vectors currently describe.
    pub(crate) key: Option<(Vec<u8>, usize)>,
    /// Positive-relation match vectors, `SIGMA × words`.
    pub(crate) m_rel: Vec<u64>,
    /// Identity match vectors, `SIGMA × words` (built only when
    /// `d_extra > 0`).
    pub(crate) m_id: Vec<u64>,
    /// DP state vectors (all-ones = zero LCS).
    pub(crate) v_rel: Vec<u64>,
    pub(crate) v_id: Vec<u64>,
    /// Per-residue occurrence counts of the query, for the composition
    /// pre-bound.
    pub(crate) occ_r: [u32; SIGMA],
}

/// Count the zero bits among the low `m` bits of `v`.
#[inline]
fn zeros_low(v: &[u64], m: usize) -> usize {
    let mut ones = 0usize;
    let full = m / CELLS_PER_WORD;
    for w in &v[..full] {
        ones += w.count_ones() as usize;
    }
    let rem = m % CELLS_PER_WORD;
    if rem != 0 {
        ones += (v[full] & ((1u64 << rem) - 1)).count_ones() as usize;
    }
    m - ones
}

/// One bit-parallel LCS column step over all words: `V = (V+u) | (V−u)`
/// with `u = V & M[c]`, carry and borrow rippling across words.
#[inline]
fn lcs_step(v: &mut [u64], m_col: &[u64]) {
    let mut carry = 0u64;
    let mut borrow = 0u64;
    for (vw, &mw) in v.iter_mut().zip(m_col) {
        let x = *vw;
        let u = x & mw;
        let (s1, c1) = x.overflowing_add(u);
        let (sum, c2) = s1.overflowing_add(carry);
        let (d1, b1) = x.overflowing_sub(u);
        let (dif, b2) = d1.overflowing_sub(borrow);
        *vw = sum | dif;
        carry = (c1 | c2) as u64;
        borrow = (b1 | b2) as u64;
    }
}

/// Build (or reuse) the match-vector tables for `(r, matrix)`. Mirrors the
/// striped profile cache: candidate batches arrive grouped by query, so
/// back-to-back hits are the common case.
fn build_match_vectors(r: &[u8], mb: &MatrixBound, matrix_addr: usize, s: &mut BitpackScratch) {
    let words = r.len().div_ceil(CELLS_PER_WORD);
    let cached = matches!(&s.key, Some((q, ma)) if *ma == matrix_addr && q.as_slice() == r)
        && s.m_rel.len() == SIGMA * words;
    if cached {
        obs::counter!("align.gate_cache_hits", 1);
        return;
    }
    s.m_rel.clear();
    s.m_rel.resize(SIGMA * words, 0);
    let build_id = mb.d_extra > 0;
    s.m_id.clear();
    s.m_id.resize(if build_id { SIGMA * words } else { 0 }, 0);
    s.occ_r = [0; SIGMA];
    for (q, &a) in r.iter().enumerate() {
        let (w, bit) = (q / CELLS_PER_WORD, 1u64 << (q % CELLS_PER_WORD));
        s.occ_r[a as usize] += 1;
        // Set bit q of M[x] for every x related to r[q]; the relation is
        // symmetric in score terms, so rel[a] lists exactly those x.
        let mut related = mb.rel[a as usize];
        while related != 0 {
            let x = related.trailing_zeros() as usize;
            related &= related - 1;
            s.m_rel[x * words + w] |= bit;
        }
        if build_id {
            s.m_id[a as usize * words + w] |= bit;
        }
    }
    match &mut s.key {
        Some((q, ma)) => {
            q.clear();
            q.extend_from_slice(r);
            *ma = matrix_addr;
        }
        None => s.key = Some((r.to_vec(), matrix_addr)),
    }
}

/// Upper bound on the affine-gap local alignment score of `(r, c)` under
/// `params.matrix` (see module docs; independent of the gap costs, valid
/// for any non-negative gap penalty). Runs the full bit-parallel DP with
/// no early exits — the tight end of what [`bitpack_gate`] may stop short
/// of computing.
pub fn bitpack_bound(r: &[u8], c: &[u8], params: &AlignParams) -> i32 {
    with_scratch(|s| bitpack_bound_with(r, c, params, s))
}

/// [`bitpack_bound`] with an explicit scratch arena.
pub fn bitpack_bound_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> i32 {
    let (m, n) = (r.len(), c.len());
    if m == 0 || n == 0 {
        return 0;
    }
    let mb = scratch.matrix_bound(params.matrix).clone();
    let s = &mut scratch.bp;
    build_match_vectors(r, &mb, params.matrix as *const _ as usize, s);
    pcomm::work::record_class((m * n) as u64, pcomm::work::CostClass::BitpackCell);
    let words = m.div_ceil(CELLS_PER_WORD);
    s.v_rel.clear();
    s.v_rel.resize(words, !0u64);
    s.v_id.clear();
    s.v_id.resize(if mb.d_extra > 0 { words } else { 0 }, !0u64);
    for &b in c {
        let base = b as usize * words;
        lcs_step(&mut s.v_rel, &s.m_rel[base..base + words]);
        if mb.d_extra > 0 {
            lcs_step(&mut s.v_id, &s.m_id[base..base + words]);
        }
    }
    let l_rel = zeros_low(&s.v_rel, m) as i32;
    let l_id = if mb.d_extra > 0 {
        zeros_low(&s.v_id, m) as i32
    } else {
        0
    };
    mb.t_max * l_rel + mb.d_extra * l_id
}

/// The gate: `Culled` **only if** the exact local alignment score of
/// `(r, c)` is provably `< min_score`. Sound for any non-negative gap
/// costs; when `params` carry a negative gap penalty (a reward), the gate
/// passes everything. Early-exits in both directions on the doubling
/// block schedule, so passing pairs usually cost one block and hopeless
/// pairs stop as soon as the remaining columns cannot close the deficit.
pub fn bitpack_gate(r: &[u8], c: &[u8], params: &AlignParams, min_score: i32) -> GateVerdict {
    with_scratch(|s| bitpack_gate_with(r, c, params, min_score, s))
}

/// [`bitpack_gate`] with an explicit scratch arena.
pub fn bitpack_gate_with(
    r: &[u8],
    c: &[u8],
    params: &AlignParams,
    min_score: i32,
    scratch: &mut AlignScratch,
) -> GateVerdict {
    let (m, n) = (r.len(), c.len());
    if min_score <= 0 || params.gap_open < 0 || params.gap_extend < 0 {
        // A score of 0 (empty alignment) always exists, and with negative
        // gap costs the gap-free bound is no longer an upper bound.
        return GateVerdict::Pass;
    }
    if m == 0 || n == 0 {
        return GateVerdict::Culled; // exact score is 0 < min_score
    }
    let mb = scratch.matrix_bound(params.matrix).clone();
    // Length pre-bound: every aligned column contributes at most col_max.
    let shorter = m.min(n) as i32;
    if mb.col_max() * shorter < min_score {
        return GateVerdict::Culled;
    }
    let s = &mut scratch.bp;
    build_match_vectors(r, &mb, params.matrix as *const _ as usize, s);
    // Composition pre-bound: identical columns are limited by per-residue
    // occurrence minima, positives by the shorter length.
    if mb.d_extra > 0 {
        let mut occ_c = [0u32; SIGMA];
        for &b in c {
            occ_c[b as usize] += 1;
        }
        let common: u32 = s
            .occ_r
            .iter()
            .zip(occ_c.iter())
            .map(|(&a, &b)| a.min(b))
            .sum();
        if mb.t_max * shorter + mb.d_extra * (common as i32).min(shorter) < min_score {
            return GateVerdict::Culled;
        }
    }

    let words = m.div_ceil(CELLS_PER_WORD);
    s.v_rel.clear();
    s.v_rel.resize(words, !0u64);
    s.v_id.clear();
    s.v_id.resize(if mb.d_extra > 0 { words } else { 0 }, !0u64);
    let mut done = 0usize;
    let mut block = BLOCK_START;
    while done < n {
        let end = (done + block).min(n);
        for &b in &c[done..end] {
            let base = b as usize * words;
            lcs_step(&mut s.v_rel, &s.m_rel[base..base + words]);
            if mb.d_extra > 0 {
                lcs_step(&mut s.v_id, &s.m_id[base..base + words]);
            }
        }
        pcomm::work::record_class(
            ((end - done) * m) as u64,
            pcomm::work::CostClass::BitpackCell,
        );
        done = end;
        block *= 2;
        let l_rel = zeros_low(&s.v_rel, m) as i32;
        let l_id = if mb.d_extra > 0 {
            zeros_low(&s.v_id, m) as i32
        } else {
            0
        };
        // Pass early: the partial bound only grows with more columns.
        if mb.t_max * l_rel + mb.d_extra * l_id >= min_score {
            return GateVerdict::Pass;
        }
        // Cull early: credit every unprocessed column as a full match.
        let credit = (n - done) as i32;
        let opt =
            mb.t_max * (l_rel + credit).min(shorter) + mb.d_extra * (l_id + credit).min(shorter);
        if opt < min_score {
            return GateVerdict::Culled;
        }
    }
    GateVerdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::smith_waterman;
    use crate::BLOSUM62;

    /// Reference LCS under an arbitrary pair relation.
    fn lcs_ref(r: &[u8], c: &[u8], related: impl Fn(u8, u8) -> bool) -> usize {
        let (m, n) = (r.len(), c.len());
        let mut prev = vec![0usize; n + 1];
        let mut curr = vec![0usize; n + 1];
        for i in 1..=m {
            for j in 1..=n {
                curr[j] = if related(r[i - 1], c[j - 1]) {
                    prev[j - 1] + 1
                } else {
                    prev[j].max(curr[j - 1])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }

    #[test]
    fn blosum62_decomposition() {
        let mb = MatrixBound::new(&BLOSUM62);
        // 4 via the ambiguity pairs (B–D, Z–E); real residues top out at 3.
        assert_eq!(mb.t_max, 4, "largest positive off-diagonal of BLOSUM62");
        assert_eq!(mb.d_extra, 7, "W–W self score 11 minus t_max");
        // The decomposition dominates every matrix entry.
        for x in 0..SIGMA {
            for y in 0..SIGMA {
                let s = BLOSUM62.scores[x][y] as i32;
                let dom = mb.t_max * ((mb.rel[x] >> y) & 1) as i32 + mb.d_extra * (x == y) as i32;
                assert!(s <= dom, "pair ({x},{y}): {s} > {dom}");
            }
        }
    }

    #[test]
    fn bitparallel_lcs_matches_reference() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let p = AlignParams::default();
        let mb = MatrixBound::new(&BLOSUM62);
        for round in 0..40 {
            // Cross the one-word boundary: lengths up to 200 → 4 words.
            let m = rng.random_range(1..200);
            let n = rng.random_range(1..200);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            let l_rel = lcs_ref(&a, &b, |x, y| (mb.rel[x as usize] >> y) & 1 == 1);
            let l_id = lcs_ref(&a, &b, |x, y| x == y);
            let want = mb.t_max * l_rel as i32 + mb.d_extra * l_id as i32;
            assert_eq!(bitpack_bound(&a, &b, &p), want, "round {round}");
        }
    }

    #[test]
    fn bound_dominates_exact_score() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..60 {
            // Vary gap costs: the bound is gap-cost independent.
            let p = AlignParams {
                gap_open: [11, 0, 5][round % 3],
                gap_extend: [1, 1, 2][round % 3],
                ..Default::default()
            };
            let m = rng.random_range(1..150);
            let n = rng.random_range(1..150);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            let exact = smith_waterman(&a, &b, &p).score;
            let bound = bitpack_bound(&a, &b, &p);
            assert!(bound >= exact, "bound {bound} < exact {exact}");
        }
    }

    #[test]
    fn gate_never_wrongly_culls() {
        use rand::prelude::*;
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = AlignParams::default();
            for _ in 0..30 {
                let m = rng.random_range(1..120);
                let n = rng.random_range(1..120);
                let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
                let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
                let min_score = rng.random_range(1..1500);
                if bitpack_gate(&a, &b, &p, min_score) == GateVerdict::Culled {
                    let exact = smith_waterman(&a, &b, &p).score;
                    assert!(
                        exact < min_score,
                        "culled pair has score {exact} ≥ {min_score}"
                    );
                }
            }
        }
    }

    #[test]
    fn gate_is_consistent_with_the_full_bound() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let p = AlignParams::default();
        for _ in 0..40 {
            let m = rng.random_range(1..100);
            let n = rng.random_range(1..100);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..24u8)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..24u8)).collect();
            let bound = bitpack_bound(&a, &b, &p);
            // Culling requires the full bound to miss; passing requires it
            // to be reachable (the early exits only stop sooner, never
            // flip the verdict past the bound).
            match bitpack_gate(&a, &b, &p, bound.max(1)) {
                GateVerdict::Culled => unreachable!("bound is reachable by itself"),
                GateVerdict::Pass => {}
            }
            if bound > 0 {
                assert_eq!(
                    bitpack_gate(&a, &b, &p, bound + 1),
                    GateVerdict::Culled,
                    "bound {bound} + 1 must cull"
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let p = AlignParams::default();
        assert_eq!(bitpack_bound(b"", b"", &p), 0);
        assert_eq!(bitpack_gate(&[], &[0, 1, 2], &p, 1), GateVerdict::Culled);
        assert_eq!(bitpack_gate(&[0], &[0], &p, 0), GateVerdict::Pass);
        // All-identical tryptophan runs: bound = (3 + 8)·len ≥ exact 11·len,
        // and long enough to stress multi-word carries.
        let w = seqstore::encode_seq(b"W")[0];
        let s = vec![w; 1000];
        let exact = 11 * 1000;
        let bound = bitpack_bound(&s, &s, &p);
        assert!(bound >= exact);
        assert_eq!(bitpack_gate(&s, &s, &p, exact), GateVerdict::Pass);
        assert_eq!(bitpack_gate(&s, &s, &p, bound + 1), GateVerdict::Culled);
    }
}
