//! Suffix array over a concatenated sequence collection, built by prefix
//! doubling (O(n log² n)) — the index structure behind the LAST-like
//! baseline's adaptive seeds.

/// A suffix array over the concatenation of a set of sequences, separated
/// by a sentinel so matches never cross sequence boundaries.
pub struct SuffixArray {
    /// Concatenated text: `seq0 SEP seq1 SEP …` (SEP = 0xFF).
    text: Vec<u8>,
    /// Sorted suffix start offsets.
    sa: Vec<u32>,
    /// `owner[t]` = sequence index owning text offset `t` (SEP owns none).
    owner: Vec<u32>,
    /// Start offset of each sequence in `text`.
    starts: Vec<u32>,
}

const SEP: u8 = 0xFF;

impl SuffixArray {
    /// Build over encoded sequences (base indices < 24, so the sentinel
    /// never collides).
    pub fn build(seqs: &[&[u8]]) -> SuffixArray {
        let total: usize = seqs.iter().map(|s| s.len() + 1).sum();
        let mut text = Vec::with_capacity(total);
        let mut owner = Vec::with_capacity(total);
        let mut starts = Vec::with_capacity(seqs.len());
        for (i, s) in seqs.iter().enumerate() {
            starts.push(text.len() as u32);
            debug_assert!(s.iter().all(|&b| b != SEP));
            text.extend_from_slice(s);
            owner.extend(std::iter::repeat_n(i as u32, s.len()));
            text.push(SEP);
            owner.push(u32::MAX);
        }
        let sa = build_sa(&text);
        SuffixArray {
            text,
            sa,
            owner,
            starts,
        }
    }

    /// The suffix offsets in sorted order.
    pub fn suffixes(&self) -> &[u32] {
        &self.sa
    }

    /// Number of occurrences of `pattern` and the SA range containing them.
    pub fn range(&self, pattern: &[u8]) -> (usize, usize) {
        // Work accounting: two binary searches with pattern comparisons.
        pcomm::work::record_class(
            pattern.len() as u64 * 2 * (1 + self.sa.len().max(1).ilog2() as u64),
            pcomm::work::CostClass::SuffixCompare,
        );
        let lo = self.sa.partition_point(|&s| self.suffix(s) < pattern);
        let hi = self.sa[lo..].partition_point(|&s| self.suffix(s).starts_with(pattern)) + lo;
        (lo, hi)
    }

    /// Occurrences of `pattern` as `(sequence index, offset in sequence)`.
    pub fn locate(&self, pattern: &[u8]) -> Vec<(u32, u32)> {
        let (lo, hi) = self.range(pattern);
        let mut out: Vec<(u32, u32)> = self.sa[lo..hi]
            .iter()
            .map(|&s| {
                let seq = self.owner[s as usize];
                debug_assert_ne!(seq, u32::MAX, "pattern matched a separator");
                (seq, s - self.starts[seq as usize])
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[inline]
    fn suffix(&self, s: u32) -> &[u8] {
        &self.text[s as usize..]
    }
}

/// Prefix-doubling suffix array construction.
fn build_sa(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    // Work accounting: prefix doubling is ~log n sorts of n suffixes.
    pcomm::work::record_class(
        (n as u64) * (64 - (n as u64).leading_zeros() as u64),
        pcomm::work::CostClass::SuffixBuild,
    );
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u32> = text.iter().map(|&b| b as u32).collect();
    let mut tmp = vec![0u32; n];
    let mut len = 1usize;
    loop {
        let key = |i: u32| -> (u32, i64) {
            let second = if (i as usize) + len < n {
                rank[i as usize + len] as i64
            } else {
                -1
            };
            (rank[i as usize], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let inc = (key(sa[w]) != key(sa[w - 1])) as u32;
            tmp[sa[w] as usize] = tmp[sa[w - 1] as usize] + inc;
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        len *= 2;
    }
    sa
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqstore::encode_seq;

    #[test]
    fn sa_sorts_suffixes() {
        let text = b"banana".to_vec();
        let sa = build_sa(&text);
        let mut suffixes: Vec<&[u8]> = (0..text.len()).map(|i| &text[i..]).collect();
        suffixes.sort();
        let got: Vec<&[u8]> = sa.iter().map(|&i| &text[i as usize..]).collect();
        assert_eq!(got, suffixes);
    }

    #[test]
    fn sa_random_texts_match_naive() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.random_range(1..200);
            let text: Vec<u8> = (0..n).map(|_| rng.random_range(0..4u8)).collect();
            let sa = build_sa(&text);
            let mut naive: Vec<u32> = (0..n as u32).collect();
            naive.sort_by_key(|&i| &text[i as usize..]);
            assert_eq!(sa, naive);
        }
    }

    #[test]
    fn locate_finds_all_occurrences() {
        let a = encode_seq(b"MKVLAWMKV");
        let b = encode_seq(b"AWMKVHH");
        let sa = SuffixArray::build(&[&a, &b]);
        let hits = sa.locate(&encode_seq(b"MKV"));
        assert_eq!(hits, vec![(0, 0), (0, 6), (1, 2)]);
    }

    #[test]
    fn matches_do_not_cross_boundaries() {
        // "AW" at the end of seq0 + "MK" at the start of seq1 must not form
        // a cross-boundary "AWMK" match.
        let a = encode_seq(b"CCAW");
        let b = encode_seq(b"MKCC");
        let sa = SuffixArray::build(&[&a, &b]);
        assert!(sa.locate(&encode_seq(b"AWMK")).is_empty());
        assert_eq!(sa.locate(&encode_seq(b"AW")), vec![(0, 2)]);
    }

    #[test]
    fn missing_pattern() {
        let a = encode_seq(b"MKVLAW");
        let sa = SuffixArray::build(&[&a]);
        assert!(sa.locate(&encode_seq(b"YYY")).is_empty());
        let (lo, hi) = sa.range(&encode_seq(b"YYY"));
        assert_eq!(lo, hi);
    }

    #[test]
    fn empty_collection() {
        let sa = SuffixArray::build(&[]);
        assert!(sa.locate(&encode_seq(b"A")).is_empty());
    }
}
