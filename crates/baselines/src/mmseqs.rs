//! A MMseqs2-like many-against-many searcher (paper §III): k-mer index over
//! targets, *similar k-mer* query expansion controlled by a sensitivity
//! parameter, the double-diagonal prefilter ("a target sequence is chosen
//! … only if they share two similar k-mers along the same diagonal"),
//! ungapped diagonal scoring, and gapped alignment of survivors.
//!
//! The distributed variant partitions queries over ranks but reproduces the
//! behaviour the paper identified as MMseqs2's scaling bottleneck: "MMseqs2
//! probably gathers alignment results from other nodes in order to write
//! the output using a single process" (§VI-A).

use std::collections::HashMap;

use align::{smith_waterman, ungapped_xdrop, AlignParams, SimilarityMeasure};
use pcomm::Comm;
use seqstore::{kmers_of, FastaRecord};
use subkmer::{find_sub_kmers, ExpenseTable};

/// MMseqs2-like configuration.
#[derive(Debug, Clone)]
pub struct MmseqsParams {
    /// K-mer length of the index.
    pub k: usize,
    /// Sensitivity `s` (paper tests 1 = low, 5.7 = default, 7.5 = high).
    /// Maps to the number of similar k-mers generated per query k-mer.
    pub sensitivity: f64,
    /// Ungapped diagonal score needed before a gapped alignment is paid for.
    pub min_ungapped_score: i32,
    /// Edge weighting.
    pub measure: SimilarityMeasure,
    /// ANI filter (ANI measure only).
    pub min_ani: f64,
    /// Coverage filter (ANI measure only).
    pub min_coverage: f64,
    /// Alignment kernel parameters.
    pub align: AlignParams,
}

impl Default for MmseqsParams {
    fn default() -> Self {
        MmseqsParams {
            k: 4,
            sensitivity: 5.7,
            min_ungapped_score: 15,
            measure: SimilarityMeasure::Ani,
            min_ani: 0.30,
            min_coverage: 0.70,
            align: AlignParams::default(),
        }
    }
}

impl MmseqsParams {
    /// Similar k-mers generated per query k-mer: the knob the sensitivity
    /// parameter drives (higher `s` → larger similar-k-mer lists).
    pub fn similar_kmers(&self) -> usize {
        (self.sensitivity * 4.0).round() as usize
    }
}

/// Timing breakdown of a distributed run.
#[derive(Debug, Clone, Default)]
pub struct MmseqsRun {
    /// Seconds in prefilter + alignment on this rank.
    pub search_secs: f64,
    /// Seconds rank 0 spent gathering and post-processing all results
    /// single-threaded (zero on other ranks) — the §VI-A bottleneck.
    pub postprocess_secs: f64,
    /// Alignments performed by this rank.
    pub alignments: u64,
    /// Edges this rank found (before the gather).
    pub edges: Vec<(u64, u64, f64)>,
}

/// All-vs-all search on one node: returns similarity edges
/// `(gid_low, gid_high, weight)`, each pair once.
pub fn mmseqs_like(records: &[FastaRecord], params: &MmseqsParams) -> Vec<(u64, u64, f64)> {
    let encoded: Vec<Vec<u8>> = records
        .iter()
        .map(|r| seqstore::encode_seq(&r.residues))
        .collect();
    let refs: Vec<&[u8]> = encoded.iter().map(|v| v.as_slice()).collect();
    let index = KmerIndex::build(&refs, params.k);
    let table = ExpenseTable::new(params.align.matrix);
    let mut edges = Vec::new();
    for q in 0..refs.len() {
        search_one(q as u64, &refs, &index, &table, params, &mut edges);
    }
    edges
}

/// Distributed all-vs-all: queries are partitioned over ranks; results are
/// gathered to rank 0, which post-processes them alone (the paper-observed
/// output bottleneck). Collective.
pub fn mmseqs_like_distributed(
    comm: &Comm,
    records: &[FastaRecord],
    params: &MmseqsParams,
) -> MmseqsRun {
    let t = obs::Stopwatch::start();
    let encoded: Vec<Vec<u8>> = records
        .iter()
        .map(|r| seqstore::encode_seq(&r.residues))
        .collect();
    let refs: Vec<&[u8]> = encoded.iter().map(|v| v.as_slice()).collect();
    let index = KmerIndex::build(&refs, params.k);
    let table = ExpenseTable::new(params.align.matrix);
    let (me, p) = (comm.rank(), comm.size());
    let mut edges = Vec::new();
    let mut alignments = 0u64;
    for q in (me..refs.len()).step_by(p) {
        alignments += search_one(q as u64, &refs, &index, &table, params, &mut edges);
    }
    let search_secs = t.elapsed_secs();

    // Single-writer output stage: everything funnels to rank 0.
    let gathered = comm.gather(0, edges.clone());
    let mut postprocess_secs = 0.0;
    if let Some(parts) = gathered {
        let t = obs::Stopwatch::start();
        let mut all: Vec<(u64, u64, f64)> = parts.into_iter().flatten().collect();
        // Sort + format, sequentially, as a writer process would. Work is
        // proportional to the TOTAL result volume regardless of p — the
        // scaling wall the paper observed.
        pcomm::work::record_class(all.len() as u64, pcomm::work::CostClass::OutputEdge);
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut sink = 0usize;
        for &(a, b, w) in &all {
            sink += format!("{a}\t{b}\t{w:.4}\n").len();
        }
        std::hint::black_box(sink);
        postprocess_secs = t.elapsed_secs();
    }
    MmseqsRun {
        search_secs,
        postprocess_secs,
        alignments,
        edges,
    }
}

/// Prefilter + align one query against the index; returns #alignments.
fn search_one(
    q: u64,
    seqs: &[&[u8]],
    index: &KmerIndex,
    table: &ExpenseTable,
    params: &MmseqsParams,
    edges: &mut Vec<(u64, u64, f64)>,
) -> u64 {
    let query = seqs[q as usize];
    let m = params.similar_kmers();
    // (target, diagonal) → (hit count, first seed qpos/tpos).
    let mut diag_hits: HashMap<(u32, i64), (u32, u32, u32)> = HashMap::new();
    let mut kmer_buf: Vec<(u64, u32)> = Vec::new();
    for (kid, qpos) in kmers_of(query, params.k) {
        kmer_buf.clear();
        kmer_buf.push((kid, qpos));
        if m > 0 {
            let bases = seqstore::kmer_unpack(kid, params.k);
            for sub in find_sub_kmers(&bases, table, m) {
                kmer_buf.push((sub.id, qpos));
            }
        }
        for &(lookup, qp) in kmer_buf.iter() {
            pcomm::work::record_class(1, pcomm::work::CostClass::KmerIndexProbe);
            if let Some(hits) = index.get(lookup) {
                pcomm::work::record_class(
                    hits.len() as u64,
                    pcomm::work::CostClass::DiagonalUpdate,
                );
                for &(t, tpos) in hits {
                    // All-vs-all symmetry: each unordered pair handled from
                    // its lower gid only.
                    if (t as u64) <= q {
                        continue;
                    }
                    let d = qp as i64 - tpos as i64;
                    let e = diag_hits.entry((t, d)).or_insert((0, qp, tpos));
                    e.0 += 1;
                }
            }
        }
    }
    // Double-diagonal rule: a pair qualifies if any diagonal holds ≥ 2
    // similar-k-mer matches; pick the best diagonal by ungapped score.
    let mut best_per_target: HashMap<u32, (i32, u32, u32)> = HashMap::new();
    for (&(t, _d), &(count, qp, tp)) in &diag_hits {
        if count < 2 {
            continue;
        }
        let st = ungapped_xdrop(query, seqs[t as usize], qp, tp, params.k, &params.align);
        let e = best_per_target.entry(t).or_insert((i32::MIN, 0, 0));
        // Deterministic despite hash-map iteration order: total order on
        // (score, qpos, tpos).
        if (st.score, qp, tp) > *e {
            *e = (st.score, qp, tp);
        }
    }
    let mut aligned = 0u64;
    let mut targets: Vec<(&u32, &(i32, u32, u32))> = best_per_target.iter().collect();
    targets.sort_by_key(|&(&t, _)| t);
    for (&t, &(ungapped, _qp, _tp)) in targets {
        if ungapped < params.min_ungapped_score {
            continue;
        }
        aligned += 1;
        let st = smith_waterman(query, seqs[t as usize], &params.align);
        let keep = match params.measure {
            SimilarityMeasure::Ani => st
                .passes_filter(params.min_ani, params.min_coverage)
                .then(|| st.ani()),
            SimilarityMeasure::NormalizedScore => (st.score > 0).then(|| st.normalized_score()),
        };
        if let Some(w) = keep {
            edges.push((q, t as u64, w));
        }
    }
    aligned
}

/// Inverted k-mer index over the target set.
struct KmerIndex {
    map: HashMap<u64, Vec<(u32, u32)>>,
}

impl KmerIndex {
    fn build(seqs: &[&[u8]], k: usize) -> KmerIndex {
        let mut map: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        for (i, s) in seqs.iter().enumerate() {
            for (kid, pos) in kmers_of(s, k) {
                map.entry(kid).or_default().push((i as u32, pos));
            }
        }
        // Work accounting: one hash insert per k-mer occurrence.
        pcomm::work::record_class(
            map.values().map(|v| v.len() as u64).sum(),
            pcomm::work::CostClass::KmerIndexInsert,
        );
        KmerIndex { map }
    }

    fn get(&self, kid: u64) -> Option<&Vec<(u32, u32)>> {
        self.map.get(&kid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{scope_like, ScopeConfig};

    fn family_data() -> datagen::LabeledDataset {
        scope_like(&ScopeConfig {
            seed: 31,
            families: 4,
            members_range: (3, 3),
            len_range: (80, 120),
            divergence: (0.02, 0.08),
            ..Default::default()
        })
    }

    #[test]
    fn finds_family_pairs() {
        let data = family_data();
        let edges = mmseqs_like(&data.records, &MmseqsParams::default());
        assert!(!edges.is_empty());
        let intra = edges
            .iter()
            .filter(|&&(a, b, _)| data.labels[a as usize] == data.labels[b as usize])
            .count();
        assert!(
            intra * 3 >= edges.len() * 2,
            "intra {intra} of {}",
            edges.len()
        );
    }

    #[test]
    fn pairs_reported_once_and_ordered() {
        let data = family_data();
        let edges = mmseqs_like(&data.records, &MmseqsParams::default());
        let mut keys: Vec<(u64, u64)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n);
        assert!(edges.iter().all(|&(a, b, _)| a < b));
    }

    #[test]
    fn higher_sensitivity_finds_superset_of_pairs() {
        let data = family_data();
        let low = mmseqs_like(
            &data.records,
            &MmseqsParams {
                sensitivity: 1.0,
                ..Default::default()
            },
        );
        let high = mmseqs_like(
            &data.records,
            &MmseqsParams {
                sensitivity: 7.5,
                ..Default::default()
            },
        );
        assert!(
            high.len() >= low.len(),
            "high {} < low {}",
            high.len(),
            low.len()
        );
    }

    #[test]
    fn distributed_matches_single_node() {
        use pcomm::World;
        let data = family_data();
        let params = MmseqsParams::default();
        let want = {
            let mut e = mmseqs_like(&data.records, &params);
            e.sort_by(|a, b| a.partial_cmp(b).unwrap());
            e
        };
        for p in [1usize, 3, 4] {
            let runs = World::run(p, |comm| {
                mmseqs_like_distributed(&comm, &data.records, &params)
            });
            let mut got: Vec<(u64, u64, f64)> = runs.iter().flat_map(|r| r.edges.clone()).collect();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got, want, "p={p}");
            assert!(runs[0].postprocess_secs >= 0.0);
            assert!(runs[1..].iter().all(|r| r.postprocess_secs == 0.0));
        }
    }

    #[test]
    fn empty_input() {
        assert!(mmseqs_like(&[], &MmseqsParams::default()).is_empty());
    }
}
