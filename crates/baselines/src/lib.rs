//! `baselines` — reimplementations of the comparator tools of the paper's
//! evaluation (§III, §VI): a MMseqs2-like many-against-many searcher (with
//! its similar-k-mer double-diagonal prefilter and the single-writer output
//! stage that limits its scaling) and a LAST-like suffix-array searcher
//! with adaptive seeds.
//!
//! Both produce similarity-graph edges in the same `(gid_low, gid_high,
//! weight)` format as PASTIS, so precision/recall and runtime comparisons
//! are apples-to-apples.

mod last;
mod mmseqs;
mod suffix;

pub use last::{last_like, LastParams};
pub use mmseqs::{mmseqs_like, mmseqs_like_distributed, MmseqsParams, MmseqsRun};
pub use suffix::SuffixArray;
