//! A LAST-like searcher (paper §III): suffix-array index over the target
//! set with *adaptive seeds* — at each query position the seed is extended
//! until its occurrence count in the targets drops to at most
//! `max_initial_matches`, trading longer (rarer) seeds for fewer, better
//! candidate hits. Candidates are extended with gapped x-drop. Single node,
//! as in the paper ("LAST's parallelism is constrained to a single node").

use std::collections::HashMap;

use align::{xdrop_align, AlignParams, SimilarityMeasure};
use seqstore::FastaRecord;

use crate::suffix::SuffixArray;

/// LAST-like configuration.
#[derive(Debug, Clone)]
pub struct LastParams {
    /// Maximum initial matches per query position — the sensitivity knob
    /// the paper sweeps (100/200/300/500); *higher* is more sensitive and
    /// slower.
    pub max_initial_matches: usize,
    /// Minimum adaptive seed length considered a real seed.
    pub min_seed_len: usize,
    /// Minimum gapped score to report a pair.
    pub min_score: i32,
    /// Edge weighting.
    pub measure: SimilarityMeasure,
    /// ANI filter (ANI measure only).
    pub min_ani: f64,
    /// Coverage filter (ANI measure only).
    pub min_coverage: f64,
    /// Alignment kernel parameters.
    pub align: AlignParams,
}

impl Default for LastParams {
    fn default() -> Self {
        LastParams {
            max_initial_matches: 100,
            min_seed_len: 4,
            min_score: 20,
            measure: SimilarityMeasure::Ani,
            min_ani: 0.30,
            min_coverage: 0.70,
            align: AlignParams::default(),
        }
    }
}

/// All-vs-all LAST-like search; returns `(gid_low, gid_high, weight)`
/// edges, each unordered pair once.
pub fn last_like(records: &[FastaRecord], params: &LastParams) -> Vec<(u64, u64, f64)> {
    let encoded: Vec<Vec<u8>> = records
        .iter()
        .map(|r| seqstore::encode_seq(&r.residues))
        .collect();
    let refs: Vec<&[u8]> = encoded.iter().map(|v| v.as_slice()).collect();
    let sa = SuffixArray::build(&refs);
    let mut edges = Vec::new();
    for q in 0..refs.len() {
        let query = refs[q];
        // Best seed per target found from this query.
        let mut best_seed: HashMap<u32, (usize, u32, u32)> = HashMap::new();
        let mut qpos = 0usize;
        while qpos < query.len() {
            // Adaptive seed: grow until rare enough.
            let mut len = params.min_seed_len.min(query.len() - qpos);
            let seed_hits = loop {
                if len == 0 {
                    break Vec::new();
                }
                let hits = sa.locate(&query[qpos..qpos + len]);
                if hits.len() <= params.max_initial_matches || qpos + len >= query.len() {
                    break hits;
                }
                len += 1;
            };
            if len >= params.min_seed_len {
                for (t, tpos) in seed_hits {
                    if (t as usize) <= q {
                        continue; // all-vs-all symmetry + self
                    }
                    let e = best_seed.entry(t).or_insert((0, 0, 0));
                    if (len, qpos as u32, tpos) > (e.0, e.1, e.2) {
                        *e = (len, qpos as u32, tpos);
                    }
                }
            }
            // Hop by the seed length (LAST samples positions; stepping by
            // the seed keeps cost linear-ish).
            qpos += len.max(1);
        }
        let mut targets: Vec<(&u32, &(usize, u32, u32))> = best_seed.iter().collect();
        targets.sort_by_key(|&(&t, _)| t);
        for (&t, &(len, qp, tp)) in targets {
            let st = xdrop_align(query, refs[t as usize], qp, tp, len, &params.align);
            if st.score < params.min_score {
                continue;
            }
            let keep = match params.measure {
                SimilarityMeasure::Ani => st
                    .passes_filter(params.min_ani, params.min_coverage)
                    .then(|| st.ani()),
                SimilarityMeasure::NormalizedScore => (st.score > 0).then(|| st.normalized_score()),
            };
            if let Some(w) = keep {
                edges.push((q as u64, t as u64, w));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{scope_like, ScopeConfig};

    fn family_data(divergence: (f64, f64)) -> datagen::LabeledDataset {
        scope_like(&ScopeConfig {
            seed: 41,
            families: 4,
            members_range: (3, 3),
            len_range: (80, 120),
            divergence,
            ..Default::default()
        })
    }

    #[test]
    fn finds_family_pairs() {
        let data = family_data((0.02, 0.08));
        let edges = last_like(&data.records, &LastParams::default());
        assert!(!edges.is_empty());
        let intra = edges
            .iter()
            .filter(|&&(a, b, _)| data.labels[a as usize] == data.labels[b as usize])
            .count();
        assert!(
            intra * 3 >= edges.len() * 2,
            "intra {intra} of {}",
            edges.len()
        );
    }

    #[test]
    fn pairs_unique_and_ordered() {
        let data = family_data((0.02, 0.10));
        let edges = last_like(&data.records, &LastParams::default());
        let mut keys: Vec<(u64, u64)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n);
        assert!(edges.iter().all(|&(a, b, _)| a < b));
    }

    #[test]
    fn deterministic() {
        let data = family_data((0.03, 0.12));
        let a = last_like(&data.records, &LastParams::default());
        let b = last_like(&data.records, &LastParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn more_initial_matches_is_at_least_as_sensitive() {
        let data = family_data((0.05, 0.25));
        let lo = last_like(
            &data.records,
            &LastParams {
                max_initial_matches: 5,
                ..Default::default()
            },
        );
        let hi = last_like(
            &data.records,
            &LastParams {
                max_initial_matches: 300,
                ..Default::default()
            },
        );
        assert!(hi.len() >= lo.len(), "hi {} < lo {}", hi.len(), lo.len());
    }

    #[test]
    fn empty_input() {
        assert!(last_like(&[], &LastParams::default()).is_empty());
    }
}
