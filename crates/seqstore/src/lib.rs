//! `seqstore` — protein sequences as data: the 24-letter amino acid
//! alphabet, k-mer encoding into the `24^k` id space (paper §V-B), FASTA
//! parsing with byte-balanced parallel partitioning (paper §V-A, Fig. 8),
//! and the fully distributed sequence dictionary with background remote
//! sequence exchange (paper §V-C, Figs. 9–10).

mod alphabet;
mod fasta;
mod kmer;
mod reduced;
mod store;

pub use alphabet::{aa_index, aa_letter, decode_seq, encode_seq, ALPHABET, SIGMA};
pub use fasta::{parse_fasta, partition_fasta, write_fasta, FastaRecord};
pub use kmer::{kmer_id, kmer_string, kmer_unpack, kmers_of, KmerIter};
pub use reduced::{murphy10, reduce_murphy10, MURPHY10_GROUPS};
pub use store::{DistSeqStore, SeqExchange, SeqRecord};
