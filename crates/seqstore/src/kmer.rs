//! K-mer encoding into the `24^k` id space (paper §V-B).
//!
//! Each base contributes `b·24^i` where `i` is its zero-based position in
//! the k-mer counted from the right, so k-mer ids are the base-24 reading of
//! the k-mer. Only k-mers actually present in sequences are ever
//! materialized; the full space only fixes the column dimension of `A`.

use crate::alphabet::SIGMA;

/// Id of a k-mer given as base indices (each `< 24`), most significant
/// position first — `kmer_id(&[1, 4, 5]) == 1·24² + 4·24 + 5 == 677`.
#[inline]
pub fn kmer_id(bases: &[u8]) -> u64 {
    debug_assert!(bases.len() <= 13, "24^k must fit in u64");
    bases.iter().fold(0u64, |acc, &b| {
        debug_assert!((b as usize) < SIGMA);
        acc * SIGMA as u64 + b as u64
    })
}

/// Inverse of [`kmer_id`]: unpack an id into `k` base indices.
pub fn kmer_unpack(id: u64, k: usize) -> Vec<u8> {
    let mut out = vec![0u8; k];
    let mut rest = id;
    for i in (0..k).rev() {
        out[i] = (rest % SIGMA as u64) as u8;
        rest /= SIGMA as u64;
    }
    debug_assert_eq!(rest, 0, "id {id} does not fit in a {k}-mer");
    out
}

/// ASCII rendering of a k-mer id (for debugging and reports).
pub fn kmer_string(id: u64, k: usize) -> String {
    String::from_utf8(crate::alphabet::decode_seq(&kmer_unpack(id, k))).unwrap()
}

/// Iterator over `(kmer_id, start_position)` of every k-mer of a sequence
/// of base indices. A sequence of length `L` yields `L − k + 1` k-mers
/// (none if `L < k`). The id is maintained with a rolling multiply-mod.
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    pos: usize,
    id: u64,
    modulus: u64,
}

impl<'a> KmerIter<'a> {
    fn new(seq: &'a [u8], k: usize) -> Self {
        assert!((1..=13).contains(&k), "k must be in 1..=13");
        let mut id = 0u64;
        if seq.len() >= k {
            id = kmer_id(&seq[..k - 1]); // first window completed in next()
        }
        KmerIter {
            seq,
            k,
            pos: 0,
            id,
            modulus: (SIGMA as u64).pow(k as u32 - 1),
        }
    }
}

impl<'a> Iterator for KmerIter<'a> {
    type Item = (u64, u32);

    fn next(&mut self) -> Option<(u64, u32)> {
        if self.pos + self.k > self.seq.len() {
            return None;
        }
        // Complete the rolling window with the newly entering base.
        let entering = self.seq[self.pos + self.k - 1] as u64;
        self.id = self.id * SIGMA as u64 + entering;
        let result = (self.id, self.pos as u32);
        // Retire the leaving base: what remains is the (k−1)-base prefix of
        // the next window, completed by the next call's entering base.
        let leaving = self.seq[self.pos] as u64;
        self.id -= leaving * self.modulus;
        self.pos += 1;
        Some(result)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.seq.len() + 1).saturating_sub(self.k + self.pos);
        (n, Some(n))
    }
}

/// All `(kmer_id, position)` pairs of `seq` (base indices) for k-mer size `k`.
pub fn kmers_of(seq: &[u8], k: usize) -> KmerIter<'_> {
    KmerIter::new(seq, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_seq;

    #[test]
    fn paper_example_rcq() {
        // §V-B: RCQ → 1·24² + 4·24 + 5 = 677.
        assert_eq!(kmer_id(&encode_seq(b"RCQ")), 677);
    }

    #[test]
    fn unpack_roundtrip() {
        for id in [0u64, 677, 24u64.pow(3) - 1, 123_456] {
            assert_eq!(kmer_id(&kmer_unpack(id, 4)), id);
        }
        assert_eq!(kmer_string(677, 3), "RCQ");
    }

    #[test]
    fn iterator_matches_direct_encoding() {
        let seq = encode_seq(b"AVGDMIAVG");
        for k in 1..=6 {
            let got: Vec<(u64, u32)> = kmers_of(&seq, k).collect();
            let want: Vec<(u64, u32)> = (0..=seq.len() - k)
                .map(|i| (kmer_id(&seq[i..i + k]), i as u32))
                .collect();
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn short_sequence_yields_nothing() {
        let seq = encode_seq(b"AV");
        assert_eq!(kmers_of(&seq, 3).count(), 0);
    }

    #[test]
    fn exact_length_yields_one() {
        let seq = encode_seq(b"AVG");
        let got: Vec<_> = kmers_of(&seq, 3).collect();
        assert_eq!(got, vec![(kmer_id(&seq), 0)]);
    }

    #[test]
    fn size_hint_is_exact() {
        let seq = encode_seq(b"AVGDMIAVG");
        let mut it = kmers_of(&seq, 3);
        assert_eq!(it.size_hint(), (7, Some(7)));
        it.next();
        assert_eq!(it.size_hint(), (6, Some(6)));
    }
}
