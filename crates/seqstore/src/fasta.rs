//! FASTA parsing and the byte-balanced parallel partitioning of paper §V-A.
//!
//! Every rank is assigned an equal share of the file's *bytes* (not an equal
//! number of sequences — that is what balances parse time, Fig. 8). A rank
//! parses exactly the records whose header `>` byte falls inside its chunk,
//! reading past the chunk end as needed to finish the last record; records
//! whose header lies before the chunk start are skipped even if their body
//! spills into it. Every byte of the file is thus parsed exactly once.

/// A parsed FASTA record: identifier line (without `>`) and residue bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text up to the first whitespace.
    pub name: String,
    /// Raw residue letters with whitespace stripped (ASCII, not encoded).
    pub residues: Vec<u8>,
}

/// Parse a whole FASTA buffer.
pub fn parse_fasta(bytes: &[u8]) -> Vec<FastaRecord> {
    parse_from(bytes, first_header(bytes, 0), bytes.len())
}

/// Serialize records to FASTA with 80-column wrapping.
pub fn write_fasta(records: &[FastaRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.push(b'>');
        out.extend_from_slice(r.name.as_bytes());
        out.push(b'\n');
        for chunk in r.residues.chunks(80) {
            out.extend_from_slice(chunk);
            out.push(b'\n');
        }
    }
    out
}

/// Offset of the first `>` at or after `from`, or `bytes.len()`.
fn first_header(bytes: &[u8], from: usize) -> usize {
    // A `>` only opens a record at the start of a line.
    let mut i = from;
    while i < bytes.len() {
        if bytes[i] == b'>' && (i == 0 || bytes[i - 1] == b'\n') {
            return i;
        }
        i += 1;
    }
    bytes.len()
}

/// Parse records whose header byte lies in `[start, limit)`, reading past
/// `limit` to complete the final record.
fn parse_from(bytes: &[u8], start: usize, limit: usize) -> Vec<FastaRecord> {
    // Work accounting: one unit per byte scanned by this rank.
    pcomm::work::record_class(
        limit.saturating_sub(start) as u64,
        pcomm::work::CostClass::FastaByte,
    );
    let mut out = Vec::new();
    let mut i = start;
    while i < limit && i < bytes.len() {
        debug_assert_eq!(bytes[i], b'>');
        let line_end = bytes[i..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(bytes.len(), |o| i + o);
        let header = &bytes[i + 1..line_end];
        let name_end = header
            .iter()
            .position(|b| b.is_ascii_whitespace())
            .unwrap_or(header.len());
        let name = String::from_utf8_lossy(&header[..name_end]).into_owned();
        let mut residues = Vec::new();
        let mut j = (line_end + 1).min(bytes.len());
        let body_end = first_header(bytes, j);
        while j < body_end {
            let b = bytes[j];
            if !b.is_ascii_whitespace() {
                residues.push(b);
            }
            j += 1;
        }
        out.push(FastaRecord { name, residues });
        i = body_end;
    }
    out
}

/// The records of rank `rank` of `p` under byte-balanced partitioning.
///
/// Deterministic: the union over all ranks is exactly `parse_fasta(bytes)`
/// in file order, with no duplicates (property-tested).
pub fn partition_fasta(bytes: &[u8], rank: usize, p: usize) -> Vec<FastaRecord> {
    assert!(rank < p);
    let chunk_start = rank * bytes.len() / p;
    let chunk_end = (rank + 1) * bytes.len() / p;
    let start = first_header(bytes, chunk_start);
    if start >= chunk_end {
        return Vec::new();
    }
    parse_from(bytes, start, chunk_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        write_fasta(&[
            FastaRecord {
                name: "s0".into(),
                residues: b"ARNDCQEGH".to_vec(),
            },
            FastaRecord {
                name: "s1".into(),
                residues: b"MKLV".to_vec(),
            },
            FastaRecord {
                name: "s2".into(),
                residues: vec![b'W'; 200],
            },
            FastaRecord {
                name: "s3".into(),
                residues: b"AAAA".to_vec(),
            },
        ])
    }

    #[test]
    fn roundtrip() {
        let recs = parse_fasta(&sample());
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].name, "s0");
        assert_eq!(recs[0].residues, b"ARNDCQEGH");
        assert_eq!(recs[2].residues.len(), 200);
    }

    #[test]
    fn wrapping_is_stripped() {
        let recs = parse_fasta(&sample());
        assert!(recs[2].residues.iter().all(|&b| b == b'W'));
    }

    #[test]
    fn header_with_description() {
        let recs = parse_fasta(b">id1 some description here\nACDEF\n");
        assert_eq!(recs[0].name, "id1");
        assert_eq!(recs[0].residues, b"ACDEF");
    }

    #[test]
    fn missing_trailing_newline() {
        let recs = parse_fasta(b">a\nAC\n>b\nDE");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].residues, b"DE");
    }

    #[test]
    fn gt_inside_header_text_is_not_a_record() {
        let recs = parse_fasta(b">a x>y\nAC\n");
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn partition_covers_exactly_once() {
        let bytes = sample();
        let all = parse_fasta(&bytes);
        for p in [1usize, 2, 3, 4, 7, 16] {
            let mut merged = Vec::new();
            for r in 0..p {
                merged.extend(partition_fasta(&bytes, r, p));
            }
            assert_eq!(merged, all, "p={p}");
        }
    }

    #[test]
    fn partition_of_empty_input() {
        for r in 0..3 {
            assert!(partition_fasta(b"", r, 3).is_empty());
        }
    }

    #[test]
    fn more_ranks_than_records() {
        let bytes = write_fasta(&[FastaRecord {
            name: "only".into(),
            residues: b"ACD".to_vec(),
        }]);
        let mut merged = Vec::new();
        for r in 0..8 {
            merged.extend(partition_fasta(&bytes, r, 8));
        }
        assert_eq!(merged.len(), 1);
    }
}
