//! Reduced amino acid alphabets for higher-sensitivity seeding.
//!
//! DIAMOND (paper §III) owes part of its sensitivity to seeding in a
//! *reduced* alphabet: grouping exchangeable residues makes diverged
//! homologs share seeds they would not share letter-for-letter. The
//! classic Murphy 10-group reduction is provided here; reduced sequences
//! reuse the ordinary k-mer machinery (group indexes are a subset of the
//! 24-letter base space, so ids stay well-formed, just sparser).

/// Murphy et al. (2000) 10-group reduction:
/// `{LVIM} {C} {A} {G} {ST} {P} {FYW} {EDNQ} {KR} {H}`.
/// The ambiguity codes map with their groups (B, Z → the EDNQ group);
/// X and `*` keep their own groups (10, 11) so unknowns never seed-match
/// real residues.
#[rustfmt::skip]
const MURPHY10: [u8; 24] = [
    // A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
       2, 8, 7, 7, 1, 7, 7, 3, 9, 0, 0, 8, 0, 6, 5, 4, 4, 6, 6, 0, 7, 7, 10, 11,
];

/// Number of distinct groups (including the X and `*` singletons).
pub const MURPHY10_GROUPS: usize = 12;

/// Map one base index (0..24) to its Murphy-10 group index.
#[inline]
pub fn murphy10(base: u8) -> u8 {
    MURPHY10[base as usize]
}

/// Reduce a whole encoded sequence to group indexes.
pub fn reduce_murphy10(seq: &[u8]) -> Vec<u8> {
    seq.iter().map(|&b| murphy10(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::aa_index;

    fn g(c: u8) -> u8 {
        murphy10(aa_index(c).unwrap())
    }

    #[test]
    fn groups_match_murphy_definition() {
        // {LVIM}
        assert_eq!(g(b'L'), g(b'V'));
        assert_eq!(g(b'V'), g(b'I'));
        assert_eq!(g(b'I'), g(b'M'));
        // {ST}
        assert_eq!(g(b'S'), g(b'T'));
        // {FYW}
        assert_eq!(g(b'F'), g(b'Y'));
        assert_eq!(g(b'Y'), g(b'W'));
        // {EDNQ}
        assert_eq!(g(b'E'), g(b'D'));
        assert_eq!(g(b'D'), g(b'N'));
        assert_eq!(g(b'N'), g(b'Q'));
        // {KR}
        assert_eq!(g(b'K'), g(b'R'));
        // Singletons differ from everything else.
        for other in b"ARNDQEGILKMFSTWYV" {
            assert_ne!(g(b'C'), g(*other), "{}", *other as char);
        }
        assert_ne!(g(b'G'), g(b'A'));
        assert_ne!(g(b'P'), g(b'A'));
        assert_ne!(g(b'H'), g(b'K'));
    }

    #[test]
    fn twelve_groups_exactly() {
        let mut seen: Vec<u8> = MURPHY10.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), MURPHY10_GROUPS);
        assert_eq!(*seen.last().unwrap() as usize, MURPHY10_GROUPS - 1);
    }

    #[test]
    fn ambiguity_codes() {
        assert_eq!(g(b'B'), g(b'D'));
        assert_eq!(g(b'Z'), g(b'E'));
        assert_ne!(g(b'X'), g(b'A'));
        assert_ne!(g(b'*'), g(b'X'));
    }

    #[test]
    fn reduction_preserves_length() {
        let seq = crate::alphabet::encode_seq(b"MKVLAWHERTY");
        let red = reduce_murphy10(&seq);
        assert_eq!(red.len(), seq.len());
        assert!(red.iter().all(|&x| (x as usize) < MURPHY10_GROUPS));
    }

    #[test]
    fn diverged_homologs_share_reduced_kmers() {
        // I→V, S→T, E→D substitutions disappear under reduction.
        let a = crate::alphabet::encode_seq(b"MIVSEKKH");
        let b = crate::alphabet::encode_seq(b"MVITDKRH");
        assert_ne!(a, b);
        assert_eq!(reduce_murphy10(&a), reduce_murphy10(&b));
    }
}
