//! The fully distributed sequence dictionary (paper §V-A, §V-C).
//!
//! After the byte-balanced FASTA read, each rank owns a contiguous run of
//! globally numbered sequences (numbering via an exclusive prefix scan of
//! per-rank counts). The 2D-distributed overlap matrix `B` then requires
//! rank `(r, c)` to align pairs whose row sequence lies in row block `r` and
//! whose column sequence lies in column block `c` — sequences it generally
//! does not own. Rather than waiting for `B` to know exactly which are
//! needed, PASTIS requests the *full ranges* up front (at most `2n/√p`
//! sequences per rank) and overlaps the transfers with seed discovery and
//! SpGEMM; a `waitall` after `B` is computed fences the exchange.

use std::collections::BTreeMap;

use obs::HeapSize;
use pcomm::{Comm, Grid, Payload, RecvFuture};

use crate::fasta::{partition_fasta, FastaRecord};

/// A sequence with its global id and encoded residues (base indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqRecord {
    /// Global sequence id (row/column index in `A` and `B`).
    pub gid: u64,
    /// FASTA identifier.
    pub name: String,
    /// Residues as base indices (0..24).
    pub data: Vec<u8>,
}

impl Payload for SeqRecord {
    fn payload_bytes(&self) -> usize {
        8 + self.name.len() + self.data.len()
    }
}

impl HeapSize for SeqRecord {
    fn heap_bytes(&self) -> usize {
        self.name.capacity() + self.data.capacity()
    }
}

/// Reserved tag space for the sequence exchange.
const SEQ_XCHG_TAG: u64 = (1 << 29) + 11;

/// The distributed dictionary: locally parsed sequences plus, after the
/// exchange completes, the row-block and column-block sequence ranges this
/// rank needs for alignment.
pub struct DistSeqStore {
    /// Total sequence count across all ranks.
    n_global: u64,
    /// Global id of my first parsed sequence.
    owned_start: u64,
    /// My parsed sequences, contiguous gids from `owned_start`.
    owned: Vec<SeqRecord>,
    /// Per-rank owned intervals `[start, end)`, indexed by world rank.
    intervals: Vec<(u64, u64)>,
    /// Sequences covering my row block (filled by the exchange).
    row_seqs: BTreeMap<u64, SeqRecord>,
    /// Sequences covering my column block (filled by the exchange).
    col_seqs: BTreeMap<u64, SeqRecord>,
}

/// In-flight sequence exchange; resolve with [`DistSeqStore::finish_exchange`].
pub struct SeqExchange {
    pending: Vec<RecvFuture<Vec<SeqRecord>>>,
}

impl DistSeqStore {
    /// Collective: parse my byte-balanced chunk of `fasta_bytes`, then number
    /// sequences globally with an exclusive scan and allgather the ownership
    /// intervals. Residues are encoded to base indices.
    pub fn from_fasta(comm: &Comm, fasta_bytes: &[u8]) -> DistSeqStore {
        let records = partition_fasta(fasta_bytes, comm.rank(), comm.size());
        Self::from_records(comm, records)
    }

    /// Collective: build from already-parsed per-rank records (rank order =
    /// global order).
    pub fn from_records(comm: &Comm, records: Vec<FastaRecord>) -> DistSeqStore {
        let mine = records.len() as u64;
        let owned_start = comm.exscan(mine, |a, b| a + b).unwrap_or(0);
        let owned: Vec<SeqRecord> = records
            .into_iter()
            .enumerate()
            .map(|(i, r)| SeqRecord {
                gid: owned_start + i as u64,
                name: r.name,
                data: crate::alphabet::encode_seq(&r.residues),
            })
            .collect();
        let ends = comm.allgather(owned_start + mine);
        let mut intervals = Vec::with_capacity(comm.size());
        let mut prev = 0u64;
        for &e in &ends {
            intervals.push((prev, e));
            prev = e;
        }
        let n_global = prev;
        let store = DistSeqStore {
            n_global,
            owned_start,
            owned,
            intervals,
            row_seqs: BTreeMap::new(),
            col_seqs: BTreeMap::new(),
        };
        obs::alloc::probe("mem.watermark.seqstore.store", &store);
        store
    }

    /// Total number of sequences.
    #[inline]
    pub fn len(&self) -> u64 {
        self.n_global
    }

    /// True if the global set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_global == 0
    }

    /// My parsed sequences (contiguous global ids).
    #[inline]
    pub fn owned(&self) -> &[SeqRecord] {
        &self.owned
    }

    /// Global id range `[start, end)` of my parsed sequences.
    #[inline]
    pub fn owned_range(&self) -> (u64, u64) {
        (self.owned_start, self.owned_start + self.owned.len() as u64)
    }

    /// Which rank owns global sequence `gid`.
    pub fn owner_of(&self, gid: u64) -> usize {
        debug_assert!(gid < self.n_global);
        // Intervals are contiguous and ascending; the last interval whose
        // start is ≤ gid is the (unique, non-empty) one containing it.
        self.intervals.partition_point(|&(s, _)| s <= gid) - 1
    }

    /// Split the gid range `[lo, hi)` by owning rank.
    fn owners_of_range(&self, lo: u64, hi: u64) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        for (rank, &(s, e)) in self.intervals.iter().enumerate() {
            let a = s.max(lo);
            let b = e.min(hi);
            if a < b {
                out.push((rank, a, b));
            }
        }
        out
    }

    /// Collective: start the background exchange that delivers the sequences
    /// of my grid row block and column block (paper Figs. 9–10). Sends are
    /// issued immediately; receives are posted and resolved by
    /// [`DistSeqStore::finish_exchange`] — call it only after the overlap matrix is
    /// computed to reproduce the paper's communication/computation overlap.
    ///
    /// `row_range`/`col_range` are the global id ranges of my block of `B`.
    pub fn start_exchange(
        &self,
        grid: &Grid,
        row_range: (u64, u64),
        col_range: (u64, u64),
    ) -> SeqExchange {
        let comm = grid.world();
        let q = grid.q();
        // Who needs my sequences? Every rank whose row or column range
        // overlaps my owned interval. Compute destinations by symmetry: rank
        // (r, c) needs rows of block r and cols of block c over n.
        let (my_lo, my_hi) = self.owned_range();
        for dst in 0..comm.size() {
            let (dr, dc) = (dst / q, dst % q);
            let need_rows = block_range(self.n_global, q, dr);
            let need_cols = block_range(self.n_global, q, dc);
            for (which, (lo, hi)) in [(0u64, need_rows), (1u64, need_cols)] {
                let a = lo.max(my_lo);
                let b = hi.min(my_hi);
                // Send even when empty so the receiver can post matching
                // receives without a handshake... empty overlaps are skipped
                // on both sides instead (both sides derive them identically).
                if a < b {
                    let batch: Vec<SeqRecord> =
                        self.owned[(a - my_lo) as usize..(b - my_lo) as usize].to_vec();
                    comm.isend(dst, SEQ_XCHG_TAG + which, batch);
                }
            }
        }
        // Post receives for my own needs.
        let mut pending = Vec::new();
        for (which, (lo, hi)) in [(0u64, row_range), (1u64, col_range)] {
            for (src, a, b) in self.owners_of_range(lo, hi) {
                debug_assert!(a < b);
                let fut = comm.irecv::<Vec<SeqRecord>>(src, SEQ_XCHG_TAG + which);
                pending.push(fut);
            }
        }
        SeqExchange { pending }
    }

    /// Resolve the exchange (the `MPI_Waitall` fence) and install the
    /// received row/column sequences. Returns the number received.
    pub fn finish_exchange(&mut self, ex: SeqExchange) -> usize {
        let mut n = 0;
        for fut in ex.pending {
            let batch = fut.wait();
            n += batch.len();
            for s in batch {
                // Row and column requests may overlap (diagonal blocks);
                // keep both maps complete.
                self.insert_fetched(s);
            }
        }
        obs::alloc::probe("mem.watermark.seqstore.store", self);
        n
    }

    fn insert_fetched(&mut self, s: SeqRecord) {
        // A record can serve both roles; store by gid in both maps lazily:
        // the maps are views, membership is decided at lookup time, so just
        // keep one copy in each map when in range of the respective block.
        self.row_seqs.insert(s.gid, s.clone());
        self.col_seqs.insert(s.gid, s);
    }

    /// A sequence fetched for my row block (or owned locally).
    pub fn row_seq(&self, gid: u64) -> Option<&SeqRecord> {
        self.row_seqs.get(&gid).or_else(|| self.owned_lookup(gid))
    }

    /// A sequence fetched for my column block (or owned locally).
    pub fn col_seq(&self, gid: u64) -> Option<&SeqRecord> {
        self.col_seqs.get(&gid).or_else(|| self.owned_lookup(gid))
    }

    fn owned_lookup(&self, gid: u64) -> Option<&SeqRecord> {
        let (lo, hi) = self.owned_range();
        (gid >= lo && gid < hi).then(|| &self.owned[(gid - lo) as usize])
    }
}

impl HeapSize for DistSeqStore {
    fn heap_bytes(&self) -> usize {
        // The store is the growth-law structure `seqstore.store`: owned
        // sequences (~n/p of the input) plus the fetched row/column block
        // views (~2n/√p), which dominate at scale.
        let fetched = |m: &BTreeMap<u64, SeqRecord>| {
            m.values()
                .map(|s| {
                    8 + std::mem::size_of::<SeqRecord>()
                        + obs::alloc::BTREE_ENTRY_OVERHEAD
                        + s.heap_bytes()
                })
                .sum::<usize>()
        };
        self.owned.capacity() * std::mem::size_of::<SeqRecord>()
            + self.owned.iter().map(HeapSize::heap_bytes).sum::<usize>()
            + self.intervals.heap_bytes()
            + fetched(&self.row_seqs)
            + fetched(&self.col_seqs)
    }
}

/// Same even block split used by the distributed matrices.
#[inline]
fn block_range(n: u64, q: usize, i: usize) -> (u64, u64) {
    let (q, i) = (q as u64, i as u64);
    (i * n / q, (i + 1) * n / q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_matches_sparse_layout() {
        // Keep in lock-step with sparse::dist::block_range.
        assert_eq!(block_range(10, 3, 0), (0, 3));
        assert_eq!(block_range(10, 3, 1), (3, 6));
        assert_eq!(block_range(10, 3, 2), (6, 10));
    }

    #[test]
    fn seq_record_payload_size() {
        let s = SeqRecord {
            gid: 1,
            name: "ab".into(),
            data: vec![0, 1, 2],
        };
        assert_eq!(s.payload_bytes(), 8 + 2 + 3);
    }
}
