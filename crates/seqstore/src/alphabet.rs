//! The 24-letter protein alphabet used by PASTIS (paper §V-B):
//! `ARNDCQEGHILKMFPSTWYVBZX*` — the 20 standard amino acids plus the
//! ambiguity codes B and Z, the unknown X, and the stop/gap `*`.

/// Alphabet in index order; `ALPHABET[i]` is the letter of base index `i`.
pub const ALPHABET: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// Alphabet size (|Σ| = 24).
pub const SIGMA: usize = 24;

const INVALID: u8 = u8::MAX;

const fn build_lookup() -> [u8; 256] {
    let mut t = [INVALID; 256];
    let mut i = 0;
    while i < 24 {
        let c = ALPHABET[i];
        t[c as usize] = i as u8;
        // Accept lowercase too.
        if c.is_ascii_uppercase() {
            t[(c + 32) as usize] = i as u8;
        }
        i += 1;
    }
    // Common aliases folded onto the unknown base, as search tools do.
    t[b'U' as usize] = 4; // selenocysteine → C
    t[b'u' as usize] = 4;
    t[b'O' as usize] = 11; // pyrrolysine → K
    t[b'o' as usize] = 11;
    t[b'J' as usize] = 10; // I-or-L ambiguity → L
    t[b'j' as usize] = 10;
    t
}

static LOOKUP: [u8; 256] = build_lookup();

/// Base index (0..24) of an ASCII amino acid letter, or `None` for
/// characters outside the alphabet.
#[inline]
pub fn aa_index(letter: u8) -> Option<u8> {
    let v = LOOKUP[letter as usize];
    (v != INVALID).then_some(v)
}

/// ASCII letter of a base index.
///
/// # Panics
/// Panics if `index >= 24`.
#[inline]
pub fn aa_letter(index: u8) -> u8 {
    ALPHABET[index as usize]
}

/// Encode an ASCII protein string into base indices, mapping any unknown
/// character to X (index 22).
pub fn encode_seq(ascii: &[u8]) -> Vec<u8> {
    ascii.iter().map(|&c| aa_index(c).unwrap_or(22)).collect()
}

/// Decode base indices back into ASCII letters.
pub fn decode_seq(indices: &[u8]) -> Vec<u8> {
    indices.iter().map(|&i| aa_letter(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_indices() {
        // §V-B: RCQ = 1·24² + 4·24 + 5 under this alphabet.
        assert_eq!(aa_index(b'R'), Some(1));
        assert_eq!(aa_index(b'C'), Some(4));
        assert_eq!(aa_index(b'Q'), Some(5));
    }

    #[test]
    fn roundtrip_all_letters() {
        for i in 0..24u8 {
            assert_eq!(aa_index(aa_letter(i)), Some(i));
        }
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(aa_index(b'a'), Some(0));
        assert_eq!(aa_index(b'v'), Some(19));
    }

    #[test]
    fn invalid_rejected() {
        assert_eq!(aa_index(b'1'), None);
        assert_eq!(aa_index(b' '), None);
        assert_eq!(aa_index(b'-'), None);
    }

    #[test]
    fn aliases_fold() {
        assert_eq!(aa_index(b'U'), aa_index(b'C'));
        assert_eq!(aa_index(b'O'), aa_index(b'K'));
        assert_eq!(aa_index(b'J'), aa_index(b'L'));
    }

    #[test]
    fn encode_maps_unknown_to_x() {
        assert_eq!(encode_seq(b"A?C"), vec![0, 22, 4]);
        assert_eq!(decode_seq(&encode_seq(b"ARNDX*")), b"ARNDX*".to_vec());
    }
}
