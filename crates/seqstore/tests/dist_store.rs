//! Distributed sequence dictionary tests: global numbering, ownership, and
//! the background row/column exchange across grid sizes.

use pcomm::{Grid, World};
use seqstore::{decode_seq, parse_fasta, write_fasta, DistSeqStore, FastaRecord};

fn make_fasta(n: usize) -> Vec<u8> {
    // Variable-length records so the byte split is uneven in record count.
    let recs: Vec<FastaRecord> = (0..n)
        .map(|i| {
            let len = 20 + (i * 37) % 180;
            let residues: Vec<u8> = (0..len).map(|j| seqstore::ALPHABET[(i + j) % 20]).collect();
            FastaRecord {
                name: format!("seq{i}"),
                residues,
            }
        })
        .collect();
    write_fasta(&recs)
}

#[test]
fn global_numbering_matches_file_order() {
    let bytes = make_fasta(23);
    let want = parse_fasta(&bytes);
    for p in [1usize, 4, 9] {
        let results = World::run(p, |comm| {
            let store = DistSeqStore::from_fasta(&comm, &bytes);
            assert_eq!(store.len(), 23);
            store
                .owned()
                .iter()
                .map(|s| (s.gid, s.name.clone(), s.data.clone()))
                .collect::<Vec<_>>()
        });
        let mut merged: Vec<_> = results.into_iter().flatten().collect();
        merged.sort_by_key(|&(gid, _, _)| gid);
        assert_eq!(merged.len(), 23, "p={p}");
        for (i, (gid, name, data)) in merged.into_iter().enumerate() {
            assert_eq!(gid, i as u64);
            assert_eq!(name, want[i].name);
            assert_eq!(decode_seq(&data), want[i].residues);
        }
    }
}

#[test]
fn ownership_is_consistent() {
    let bytes = make_fasta(17);
    World::run(4, |comm| {
        let store = DistSeqStore::from_fasta(&comm, &bytes);
        let (lo, hi) = store.owned_range();
        // Every rank agrees on who owns what, and owns what it claims.
        for gid in 0..store.len() {
            let owner = store.owner_of(gid);
            if gid >= lo && gid < hi {
                assert_eq!(owner, comm.rank());
            } else {
                assert_ne!(owner, comm.rank());
            }
        }
    });
}

#[test]
fn exchange_delivers_row_and_col_blocks() {
    let bytes = make_fasta(30);
    let want = parse_fasta(&bytes);
    for p in [1usize, 4, 9] {
        World::run(p, |comm| {
            let grid = Grid::new(&comm);
            let mut store = DistSeqStore::from_fasta(&comm, &bytes);
            let q = grid.q() as u64;
            let n = store.len();
            let row_range = (
                grid.myrow() as u64 * n / q,
                (grid.myrow() as u64 + 1) * n / q,
            );
            let col_range = (
                grid.mycol() as u64 * n / q,
                (grid.mycol() as u64 + 1) * n / q,
            );
            let ex = store.start_exchange(&grid, row_range, col_range);
            // ... matrix work would overlap here ...
            store.finish_exchange(ex);
            for gid in row_range.0..row_range.1 {
                let s = store
                    .row_seq(gid)
                    .unwrap_or_else(|| panic!("rank {} missing row seq {gid}", comm.rank()));
                assert_eq!(decode_seq(&s.data), want[gid as usize].residues);
            }
            for gid in col_range.0..col_range.1 {
                let s = store.col_seq(gid).expect("missing col seq");
                assert_eq!(s.name, want[gid as usize].name);
            }
        });
    }
}

#[test]
fn exchange_with_more_ranks_than_sequences() {
    let bytes = make_fasta(3);
    World::run(9, |comm| {
        let grid = Grid::new(&comm);
        let mut store = DistSeqStore::from_fasta(&comm, &bytes);
        let n = store.len();
        let q = grid.q() as u64;
        let row_range = (
            grid.myrow() as u64 * n / q,
            (grid.myrow() as u64 + 1) * n / q,
        );
        let col_range = (
            grid.mycol() as u64 * n / q,
            (grid.mycol() as u64 + 1) * n / q,
        );
        let ex = store.start_exchange(&grid, row_range, col_range);
        store.finish_exchange(ex);
        for gid in row_range.0..row_range.1 {
            assert!(store.row_seq(gid).is_some());
        }
    });
}

#[test]
fn per_rank_fetch_bounded_by_two_n_over_q() {
    // §V-C: "with a parallelism of p, each process has to store 2n/√p
    // sequences, at the most" — the memory argument for prefetching whole
    // block ranges.
    let bytes = make_fasta(64);
    for p in [1usize, 4, 16] {
        World::run(p, |comm| {
            let grid = Grid::new(&comm);
            let mut store = DistSeqStore::from_fasta(&comm, &bytes);
            let n = store.len();
            let q = grid.q() as u64;
            let row_range = (
                grid.myrow() as u64 * n / q,
                (grid.myrow() as u64 + 1) * n / q,
            );
            let col_range = (
                grid.mycol() as u64 * n / q,
                (grid.mycol() as u64 + 1) * n / q,
            );
            let ex = store.start_exchange(&grid, row_range, col_range);
            let received = store.finish_exchange(ex);
            let bound = (2 * n).div_ceil(q) as usize + 2;
            assert!(
                received <= bound,
                "rank {} received {received} > {bound}",
                comm.rank()
            );
        });
    }
}

#[test]
fn empty_input_is_fine() {
    World::run(4, |comm| {
        let store = DistSeqStore::from_fasta(&comm, b"");
        assert!(store.is_empty());
        assert_eq!(store.owned().len(), 0);
    });
}
