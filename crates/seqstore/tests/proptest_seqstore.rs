//! Property-based tests: FASTA partitioning is an exact cover, k-mer ids
//! round-trip, and the alphabet encodes losslessly.

use proptest::prelude::*;
use seqstore::{
    decode_seq, encode_seq, kmer_id, kmer_unpack, kmers_of, parse_fasta, partition_fasta,
    write_fasta, FastaRecord, ALPHABET,
};

fn record_strategy() -> impl Strategy<Value = FastaRecord> {
    (
        "[a-zA-Z0-9_]{1,12}",
        proptest::collection::vec(0usize..20, 1..300),
    )
        .prop_map(|(name, idx)| FastaRecord {
            name,
            residues: idx.into_iter().map(|i| ALPHABET[i]).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fasta_roundtrip(records in proptest::collection::vec(record_strategy(), 0..20)) {
        let bytes = write_fasta(&records);
        prop_assert_eq!(parse_fasta(&bytes), records);
    }

    #[test]
    fn partition_is_exact_cover(
        records in proptest::collection::vec(record_strategy(), 0..20),
        p in 1usize..17,
    ) {
        let bytes = write_fasta(&records);
        let mut merged = Vec::new();
        for r in 0..p {
            merged.extend(partition_fasta(&bytes, r, p));
        }
        prop_assert_eq!(merged, parse_fasta(&bytes));
    }

    #[test]
    fn kmer_id_roundtrip(bases in proptest::collection::vec(0u8..24, 1..10)) {
        let id = kmer_id(&bases);
        prop_assert_eq!(kmer_unpack(id, bases.len()), bases);
    }

    #[test]
    fn rolling_kmers_match_direct(
        seq in proptest::collection::vec(0u8..24, 0..200),
        k in 1usize..8,
    ) {
        let got: Vec<(u64, u32)> = kmers_of(&seq, k).collect();
        if seq.len() < k {
            prop_assert!(got.is_empty());
        } else {
            let want: Vec<(u64, u32)> =
                (0..=seq.len() - k).map(|i| (kmer_id(&seq[i..i + k]), i as u32)).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn alphabet_roundtrip(idx in proptest::collection::vec(0u8..24, 0..100)) {
        let ascii = decode_seq(&idx);
        prop_assert_eq!(encode_seq(&ascii), idx);
    }
}
