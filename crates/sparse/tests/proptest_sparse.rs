//! Property-based tests: local SpGEMM strategies agree with a dense
//! reference, DCSC round-trips, and distributed results are independent of
//! the grid size.

use proptest::prelude::*;
use sparse::{local_spgemm, ArithmeticSemiring, Dcsc, SpGemmStrategy};

fn triples_strategy(
    max_rows: usize,
    max_cols: u64,
    max_nnz: usize,
) -> impl Strategy<Value = (usize, u64, Vec<(u32, u64, f64)>)> {
    (1..max_rows, 1..max_cols).prop_flat_map(move |(m, n)| {
        let t = proptest::collection::vec(
            (0..m as u32, 0..n, 1..6i32).prop_map(|(r, c, v)| (r, c, v as f64)),
            0..max_nnz,
        );
        t.prop_map(move |t| (m, n, t))
    })
}

fn dense_mul(a: &Dcsc<f64>, b: &Dcsc<f64>) -> Vec<(u32, u64, f64)> {
    let mut acc = std::collections::BTreeMap::new();
    for (t, j, &bv) in b.iter() {
        if let Some((arows, avals)) = a.col(t as u64) {
            for (&r, &av) in arows.iter().zip(avals) {
                *acc.entry((j, r)).or_insert(0.0) += av * bv;
            }
        }
    }
    acc.into_iter()
        .filter(|&(_, v)| v != 0.0)
        .map(|((j, r), v)| (r, j, v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spgemm_strategies_match_dense(
        (m, k, at) in triples_strategy(30, 30, 120),
        bt in proptest::collection::vec((0u32..30, 0u64..25, 1..6i32), 0..120),
    ) {
        let a = Dcsc::from_triples(m, k, at, |x, y| *x += y);
        let bt: Vec<(u32, u64, f64)> = bt
            .into_iter()
            .filter(|&(r, _, _)| (r as u64) < k)
            .map(|(r, c, v)| (r, c, v as f64))
            .collect();
        let b = Dcsc::from_triples(k as usize, 25, bt, |x, y| *x += y);
        let want = dense_mul(&a, &b);
        for s in [SpGemmStrategy::Hash, SpGemmStrategy::Heap, SpGemmStrategy::Hybrid] {
            let got = local_spgemm(&a, &b, &ArithmeticSemiring, s);
            prop_assert_eq!(&got, &want, "strategy {:?}", s);
        }
    }

    #[test]
    fn dcsc_triples_roundtrip((m, n, t) in triples_strategy(40, 60, 150)) {
        let a = Dcsc::from_triples(m, n, t, |x, y| *x += y);
        let back = Dcsc::from_triples(m, n, a.clone().into_triples(), |_, _| unreachable!());
        prop_assert_eq!(a, back);
    }

    #[test]
    fn dcsc_transpose_involution((m, n, t) in triples_strategy(40, 60, 150)) {
        let a = Dcsc::from_triples(m, n, t, |x, y| *x += y);
        prop_assert_eq!(a.clone().transpose().transpose(), a);
    }

    #[test]
    fn dcsc_retain_keeps_subset((m, n, t) in triples_strategy(40, 60, 150)) {
        let a = Dcsc::from_triples(m, n, t, |x, y| *x += y);
        let before: std::collections::BTreeMap<(u32, u64), f64> =
            a.iter().map(|(r, c, &v)| ((r, c), v)).collect();
        let mut kept = a.clone();
        kept.retain(|r, _, _| r % 2 == 0);
        for (r, c, &v) in kept.iter() {
            prop_assert_eq!(r % 2, 0);
            prop_assert_eq!(before.get(&(r, c)), Some(&v));
        }
        let dropped = a.iter().filter(|&(r, _, _)| r % 2 != 0).count();
        prop_assert_eq!(kept.nnz() + dropped, a.nnz());
    }

    #[test]
    fn dcsc_iter_sorted_column_major((m, n, t) in triples_strategy(40, 60, 150)) {
        let a = Dcsc::from_triples(m, n, t, |x, y| *x += y);
        let coords: Vec<(u64, u32)> = a.iter().map(|(r, c, _)| (c, r)).collect();
        prop_assert!(coords.windows(2).all(|w| w[0] < w[1]));
    }
}
