//! Element-wise union, exotic semirings through SUMMA, and small-matrix
//! edge cases.

use std::rc::Rc;

use pcomm::{Grid, World};
use sparse::{DistMat, MaxPlusSemiring, OrAndSemiring, SpGemmStrategy};

#[test]
fn elementwise_add_unions_and_folds() {
    let got = World::run(4, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let mine_a = if comm.rank() == 0 {
            vec![(0u64, 0u64, 1.0), (1, 1, 2.0)]
        } else {
            vec![]
        };
        let mine_b = if comm.rank() == 0 {
            vec![(1u64, 1u64, 10.0), (2, 2, 3.0)]
        } else {
            vec![]
        };
        let a = DistMat::from_triples(Rc::clone(&grid), 4, 4, mine_a, |x, y| *x += y);
        let b = DistMat::from_triples(Rc::clone(&grid), 4, 4, mine_b, |x, y| *x += y);
        let c = a.elementwise_add(&b, |x, y| *x += y);
        c.gather_triples(0)
    })
    .remove(0)
    .unwrap();
    let mut g = got;
    g.sort_by(|x, y| x.partial_cmp(y).unwrap());
    assert_eq!(g, vec![(0, 0, 1.0), (1, 1, 12.0), (2, 2, 3.0)]);
}

#[test]
fn boolean_semiring_reachability() {
    // Adjacency of a path 0→1→2; A·A over (∨,∧) gives the 2-hop relation.
    let edges = vec![(0u64, 1u64, true), (1, 2, true)];
    let got = World::run(4, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let mine = if comm.rank() == 0 {
            edges.clone()
        } else {
            vec![]
        };
        let a = DistMat::from_triples(Rc::clone(&grid), 3, 3, mine, |x, y| *x |= y);
        let two_hop = a.spgemm(&a, &OrAndSemiring, SpGemmStrategy::Hybrid);
        two_hop.gather_triples(0)
    })
    .remove(0)
    .unwrap();
    assert_eq!(got, vec![(0, 2, true)]);
}

#[test]
fn maxplus_semiring_longest_two_hop() {
    // Weighted path: 0→1 (5), 1→2 (7), 0→1 alt not possible in one matrix;
    // (max,+) square gives the best 2-hop weight 12.
    let edges = vec![(0u64, 1u64, 5i64), (1, 2, 7)];
    let got = World::run(1, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let a = DistMat::from_triples(Rc::clone(&grid), 3, 3, edges.clone(), |x, y| {
            *x = (*x).max(y)
        });
        let sq = a.spgemm(&a, &MaxPlusSemiring, SpGemmStrategy::Heap);
        sq.gather_triples(0)
    })
    .remove(0)
    .unwrap();
    assert_eq!(got, vec![(0, 2, 12)]);
}

#[test]
fn one_by_one_matrices() {
    let got = World::run(1, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let a = DistMat::from_triples(Rc::clone(&grid), 1, 1, vec![(0u64, 0u64, 3.0)], |x, y| {
            *x += y
        });
        let sq = a.spgemm(&a, &sparse::ArithmeticSemiring, SpGemmStrategy::Hash);
        (sq.nnz(), sq.gather_triples(0))
    })
    .remove(0);
    assert_eq!(got.0, 1);
    assert_eq!(got.1.unwrap(), vec![(0, 0, 9.0)]);
}

#[test]
fn empty_distributed_matrix_operations() {
    World::run(4, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let a = DistMat::<f64>::empty(Rc::clone(&grid), 10, 10);
        assert_eq!(a.nnz(), 0);
        let t = a.transpose();
        assert_eq!(t.nnz(), 0);
        let sq = a.spgemm(&a, &sparse::ArithmeticSemiring, SpGemmStrategy::Hybrid);
        assert_eq!(sq.nnz(), 0);
        let sym = a.add_transpose(|x, y| *x += y);
        assert_eq!(sym.nnz(), 0);
    });
}
