//! Distributed matrix integration tests: construction, SUMMA SpGEMM,
//! transpose and symmetrization, across several grid sizes.

use std::rc::Rc;

use pcomm::{Grid, World};
use sparse::{ArithmeticSemiring, DistMat, SpGemmStrategy};

/// Dense reference multiply of triple lists.
#[allow(clippy::needless_range_loop)]
fn dense_mul(
    m: usize,
    k: usize,
    n: usize,
    a: &[(u64, u64, f64)],
    b: &[(u64, u64, f64)],
) -> Vec<(u64, u64, f64)> {
    let mut da = vec![vec![0.0; k]; m];
    for &(r, c, v) in a {
        da[r as usize][c as usize] += v;
    }
    let mut db = vec![vec![0.0; n]; k];
    for &(r, c, v) in b {
        db[r as usize][c as usize] += v;
    }
    let mut out = Vec::new();
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for t in 0..k {
                s += da[i][t] * db[t][j];
            }
            if s != 0.0 {
                out.push((i as u64, j as u64, s));
            }
        }
    }
    out.sort_by(|x, y| x.partial_cmp(y).unwrap());
    out
}

fn random_triples(seed: u64, m: u64, n: u64, nnz: usize) -> Vec<(u64, u64, f64)> {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..nnz)
        .map(|_| {
            (
                rng.random_range(0..m),
                rng.random_range(0..n),
                rng.random_range(1..9) as f64,
            )
        })
        .collect()
}

/// Scatter triples round-robin over ranks to exercise the shuffle.
fn my_share<T: Clone>(all: &[T], rank: usize, p: usize) -> Vec<T> {
    all.iter()
        .enumerate()
        .filter(|(i, _)| i % p == rank)
        .map(|(_, t)| t.clone())
        .collect()
}

#[test]
fn from_triples_and_gather_roundtrip() {
    let all = random_triples(1, 20, 30, 60);
    for p in [1usize, 4, 9] {
        let want = {
            let mut t = all.clone();
            t.sort_by(|x, y| x.partial_cmp(y).unwrap());
            // combine duplicates
            let mut out: Vec<(u64, u64, f64)> = Vec::new();
            for (r, c, v) in t {
                match out.last_mut() {
                    Some(l) if l.0 == r && l.1 == c => l.2 += v,
                    _ => out.push((r, c, v)),
                }
            }
            out
        };
        let results = World::run(p, |comm| {
            let grid = Rc::new(Grid::new(&comm));
            let mine = my_share(&all, comm.rank(), p);
            let m = DistMat::from_triples(Rc::clone(&grid), 20, 30, mine, |a, b| *a += b);
            assert_eq!(m.nnz(), want.len() as u64);
            m.gather_triples(0)
        });
        let mut got = results[0].clone().unwrap();
        got.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(got, want, "p={p}");
    }
}

#[test]
fn summa_matches_dense_all_grids() {
    let (m, k, n) = (17u64, 23u64, 13u64);
    let a = random_triples(2, m, k, 80);
    let b = random_triples(3, k, n, 70);
    let want = dense_mul(m as usize, k as usize, n as usize, &a, &b);
    for p in [1usize, 4, 9, 16] {
        for strat in [
            SpGemmStrategy::Hash,
            SpGemmStrategy::Heap,
            SpGemmStrategy::Hybrid,
        ] {
            let results = World::run(p, |comm| {
                let grid = Rc::new(Grid::new(&comm));
                let da = DistMat::from_triples(
                    Rc::clone(&grid),
                    m,
                    k,
                    my_share(&a, comm.rank(), p),
                    |x, y| *x += y,
                );
                let db = DistMat::from_triples(
                    Rc::clone(&grid),
                    k,
                    n,
                    my_share(&b, comm.rank(), p),
                    |x, y| *x += y,
                );
                let c = da.spgemm(&db, &ArithmeticSemiring, strat);
                assert_eq!(c.nrows(), m);
                assert_eq!(c.ncols(), n);
                c.gather_triples(0)
            });
            let mut got = results[0].clone().unwrap();
            got.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(got, want, "p={p} strat={strat:?}");
        }
    }
}

#[test]
fn results_independent_of_grid_size() {
    // The paper stresses PASTIS output is oblivious to process count (§V);
    // the SUMMA fold order makes that hold bit-for-bit.
    let a = random_triples(5, 30, 30, 150);
    let reference = World::run(1, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let da = DistMat::from_triples(Rc::clone(&grid), 30, 30, a.clone(), |x, y| *x += y);
        let c = da.spgemm(&da.transpose(), &ArithmeticSemiring, SpGemmStrategy::Hybrid);
        c.gather_triples(0).unwrap()
    })
    .pop()
    .unwrap();
    for p in [4usize, 9] {
        let got = World::run(p, |comm| {
            let grid = Rc::new(Grid::new(&comm));
            let da = DistMat::from_triples(
                Rc::clone(&grid),
                30,
                30,
                my_share(&a, comm.rank(), p),
                |x, y| *x += y,
            );
            let c = da.spgemm(&da.transpose(), &ArithmeticSemiring, SpGemmStrategy::Hybrid);
            c.gather_triples(0)
        })
        .remove(0)
        .unwrap();
        let mut g = got;
        g.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut r = reference.clone();
        r.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(g, r, "p={p}");
    }
}

#[test]
fn transpose_roundtrip_distributed() {
    let a = random_triples(7, 14, 9, 40);
    for p in [1usize, 4, 9] {
        let got = World::run(p, |comm| {
            let grid = Rc::new(Grid::new(&comm));
            let da = DistMat::from_triples(
                Rc::clone(&grid),
                14,
                9,
                my_share(&a, comm.rank(), p),
                |x, y| *x += y,
            );
            let t = da.transpose();
            assert_eq!((t.nrows(), t.ncols()), (9, 14));
            let tt = t.transpose();
            tt.gather_triples(0)
        })
        .remove(0)
        .unwrap();
        let want = World::run(1, |comm| {
            let grid = Rc::new(Grid::new(&comm));
            DistMat::from_triples(grid, 14, 9, a.clone(), |x, y| *x += y).gather_triples(0)
        })
        .remove(0)
        .unwrap();
        let mut g = got;
        g.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut w = want;
        w.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(g, w, "p={p}");
    }
}

#[test]
fn add_transpose_symmetrizes() {
    // Strictly upper-triangular matrix + its transpose = symmetric matrix.
    let tri: Vec<(u64, u64, f64)> = vec![(0, 3, 1.0), (1, 2, 2.0), (0, 1, 3.0), (2, 2, 9.0)];
    for p in [1usize, 4] {
        let got = World::run(p, |comm| {
            let grid = Rc::new(Grid::new(&comm));
            let m = DistMat::from_triples(
                Rc::clone(&grid),
                4,
                4,
                my_share(&tri, comm.rank(), p),
                |x, y| *x += y,
            );
            let s = m.add_transpose(|a, b| *a += b);
            s.gather_triples(0)
        })
        .remove(0)
        .unwrap();
        let mut g = got;
        g.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(
            g,
            vec![
                (0, 1, 3.0),
                (0, 3, 1.0),
                (1, 0, 3.0),
                (1, 2, 2.0),
                (2, 1, 2.0),
                (2, 2, 18.0), // diagonal combines with itself
                (3, 0, 1.0),
            ],
            "p={p}"
        );
    }
}

#[test]
fn retain_and_map_use_global_indices() {
    let tri: Vec<(u64, u64, f64)> = (0..10).map(|i| (i, i, i as f64)).collect();
    let got = World::run(4, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let mut m = DistMat::from_triples(
            Rc::clone(&grid),
            10,
            10,
            my_share(&tri, comm.rank(), 4),
            |x, y| *x += y,
        );
        m.retain(|r, _, _| r >= 5);
        let m = m.map(|r, c, v| (r + c) as f64 + v);
        m.gather_triples(0)
    })
    .remove(0)
    .unwrap();
    let mut g = got;
    g.sort_by(|x, y| x.partial_cmp(y).unwrap());
    assert_eq!(
        g,
        (5u64..10)
            .map(|i| (i, i, 3.0 * i as f64))
            .collect::<Vec<_>>()
    );
}

#[test]
fn hypersparse_kmer_sized_columns() {
    // Column space like a k=6 protein k-mer space (24^6 ≈ 1.9e8): DCSC keeps
    // this cheap even though almost all columns are empty.
    let ncols = 24u64.pow(6);
    let tri: Vec<(u64, u64, f64)> = (0..50)
        .map(|i| (i % 10, (i * 7_919_113) % ncols, 1.0))
        .collect();
    let got = World::run(4, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let m = DistMat::from_triples(
            Rc::clone(&grid),
            10,
            ncols,
            my_share(&tri, comm.rank(), 4),
            |x, y| *x += y,
        );
        // B = A·Aᵀ counts shared "k-mers" per row pair.
        let b = m.spgemm(&m.transpose(), &ArithmeticSemiring, SpGemmStrategy::Hybrid);
        (m.nnz(), b.nnz())
    })
    .remove(0);
    assert!(got.0 == 50);
    assert!(got.1 >= 10, "diagonal must be present");
}

#[test]
fn streamed_stages_fold_to_monolithic_spgemm() {
    // The monolithic `spgemm` is a fold of `spgemm_stream`; this checks the
    // stream contract from the consumer side: exactly q stages, yielded in
    // order, whose triples fold (in arrival order) to the same local block
    // the monolithic multiply produces.
    let (m, k, n) = (17u64, 23u64, 13u64);
    let a = random_triples(2, m, k, 80);
    let b = random_triples(3, k, n, 70);
    for p in [1usize, 4, 9, 16] {
        World::run(p, |comm| {
            let grid = Rc::new(Grid::new(&comm));
            let q = grid.q();
            let da = DistMat::from_triples(
                Rc::clone(&grid),
                m,
                k,
                my_share(&a, comm.rank(), p),
                |x, y| *x += y,
            );
            let db = DistMat::from_triples(
                Rc::clone(&grid),
                k,
                n,
                my_share(&b, comm.rank(), p),
                |x, y| *x += y,
            );
            let c = da.spgemm(&db, &ArithmeticSemiring, SpGemmStrategy::Hybrid);
            let stream = da.spgemm_stream(&db, &ArithmeticSemiring, SpGemmStrategy::Hybrid);
            assert_eq!(stream.stages(), q, "p={p}");
            let mut stages_seen = Vec::new();
            let mut folded: std::collections::BTreeMap<(u64, u32), f64> =
                std::collections::BTreeMap::new();
            stream.for_each_stage(|t, triples| {
                stages_seen.push(t);
                for (r, col, v) in triples {
                    *folded.entry((col, r)).or_insert(0.0) += v;
                }
            });
            assert_eq!(stages_seen, (0..q).collect::<Vec<_>>(), "p={p}");
            let want: std::collections::BTreeMap<(u64, u32), f64> =
                c.local().iter().map(|(r, col, &v)| ((col, r), v)).collect();
            assert_eq!(folded, want, "p={p} rank={}", comm.rank());
        });
    }
}
