//! 3D SpGEMM tests: agreement with the 2D algorithm and a dense reference
//! across layer/grid combinations.

use std::collections::HashSet;
use std::rc::Rc;

use pcomm::{Grid, World};
use sparse::{spgemm_3d, ArithmeticSemiring, DistMat, Grid3D, SpGemmStrategy};

fn random_unique_triples(seed: u64, m: u64, n: u64, nnz: usize) -> Vec<(u64, u64, f64)> {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    while out.len() < nnz {
        let (r, c) = (rng.random_range(0..m), rng.random_range(0..n));
        if seen.insert((r, c)) {
            out.push((r, c, rng.random_range(1..9) as f64));
        }
    }
    out
}

fn my_share<T: Clone>(all: &[T], rank: usize, p: usize) -> Vec<T> {
    all.iter()
        .enumerate()
        .filter(|(i, _)| i % p == rank)
        .map(|(_, t)| t.clone())
        .collect()
}

fn reference_2d(
    m: u64,
    k: u64,
    n: u64,
    a: &[(u64, u64, f64)],
    b: &[(u64, u64, f64)],
) -> Vec<(u64, u64, f64)> {
    World::run(1, |comm| {
        let grid = Rc::new(Grid::new(&comm));
        let da = DistMat::from_triples(Rc::clone(&grid), m, k, a.to_vec(), |_, _| unreachable!());
        let db = DistMat::from_triples(Rc::clone(&grid), k, n, b.to_vec(), |_, _| unreachable!());
        let c = da.spgemm(&db, &ArithmeticSemiring, SpGemmStrategy::Hybrid);
        let mut t = c.gather_triples(0).unwrap();
        t.sort_by(|x, y| x.partial_cmp(y).unwrap());
        t
    })
    .remove(0)
}

#[test]
fn matches_2d_for_various_layer_counts() {
    let (m, k, n) = (19u64, 31u64, 11u64);
    let a = random_unique_triples(1, m, k, 90);
    let b = random_unique_triples(2, k, n, 80);
    let want = reference_2d(m, k, n, &a, &b);
    // (layers, q): p = layers · q².
    for (layers, q) in [(1usize, 2usize), (2, 1), (2, 2), (3, 1), (4, 2)] {
        let p = layers * q * q;
        let got = World::run(p, |comm| {
            let g3 = Grid3D::new(&comm, layers);
            assert_eq!(g3.layers(), layers);
            let c = spgemm_3d(
                &g3,
                (m, k, n),
                my_share(&a, comm.rank(), p),
                my_share(&b, comm.rank(), p),
                &ArithmeticSemiring,
                SpGemmStrategy::Hybrid,
            );
            // Only layer 0 holds the product.
            assert_eq!(c.is_some(), g3.my_layer() == 0);
            c.map(|c| c.gather_triples(0))
        });
        // World rank 0 is grid rank 0 of layer 0.
        let mut merged = got
            .into_iter()
            .flatten()
            .flatten()
            .flatten()
            .collect::<Vec<_>>();
        merged.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(merged, want, "layers={layers} q={q}");
    }
}

#[test]
fn single_layer_is_plain_summa() {
    let (m, k, n) = (8u64, 8u64, 8u64);
    let a = random_unique_triples(5, m, k, 30);
    let b = random_unique_triples(6, k, n, 30);
    let want = reference_2d(m, k, n, &a, &b);
    let got = World::run(4, |comm| {
        let g3 = Grid3D::new(&comm, 1);
        spgemm_3d(
            &g3,
            (m, k, n),
            my_share(&a, comm.rank(), 4),
            my_share(&b, comm.rank(), 4),
            &ArithmeticSemiring,
            SpGemmStrategy::Hash,
        )
        .map(|c| c.gather_triples(0))
    });
    let mut merged: Vec<_> = got.into_iter().flatten().flatten().flatten().collect();
    merged.sort_by(|x, y| x.partial_cmp(y).unwrap());
    assert_eq!(merged, want);
}

#[test]
fn empty_operands_give_empty_product() {
    let got = World::run(8, |comm| {
        let g3 = Grid3D::new(&comm, 2);
        spgemm_3d::<ArithmeticSemiring>(
            &g3,
            (5, 5, 5),
            Vec::new(),
            Vec::new(),
            &ArithmeticSemiring,
            SpGemmStrategy::Hybrid,
        )
        .map(|c| c.nnz_local())
    });
    // Layer-0 ranks report zero nonzeros; others report None.
    assert_eq!(got.iter().filter(|o| o.is_some()).count(), 4);
    assert!(got.into_iter().flatten().all(|n| n == 0));
}
