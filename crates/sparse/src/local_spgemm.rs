//! Local (on-node) sparse matrix × sparse matrix multiply over a semiring.
//!
//! Implements the two accumulation strategies CombBLAS mixes for its local
//! multiplies — hash-based scatter/gather and heap-based k-way merging — and
//! a per-column hybrid that picks between them by estimated column work
//! (Nagasaka et al. 2019, cited as the local SpGEMM of the paper §II-A).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::accum::HashAccumulator;
use crate::dcsc::Dcsc;
use crate::semiring::Semiring;

/// Accumulation strategy for one SpGEMM invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpGemmStrategy {
    /// Hash accumulator per output column.
    Hash,
    /// K-way merge of contributing columns with a binary heap.
    Heap,
    /// Per-column choice by estimated work (CombBLAS-style).
    Hybrid,
}

/// Multiply `a` (m×k) by `b` (k×n) over semiring `sr`, returning output
/// triples with local indices, sorted column-major. Contributions folding
/// into the same output entry are combined in ascending inner index `t`
/// order on every strategy, so results are bit-identical across strategies
/// and process counts.
pub fn local_spgemm<SR: Semiring>(
    a: &Dcsc<SR::A>,
    b: &Dcsc<SR::B>,
    sr: &SR,
    strategy: SpGemmStrategy,
) -> Vec<(u32, u64, SR::C)> {
    assert_eq!(a.ncols(), b.nrows() as u64, "inner dimension mismatch");
    let mut out: Vec<(u32, u64, SR::C)> = Vec::new();
    let mut hash_acc: HashAccumulator<SR::C> = HashAccumulator::with_capacity(64);
    let mut pairs: Vec<(u32, SR::C)> = Vec::new();

    for bj in 0..b.nzc() {
        let jcol = b.cols()[bj];
        let (brows, bvals) = b.col_by_index(bj);
        // Gather the contributing A columns (those whose id matches a
        // nonzero row of B's column) and the column's flop estimate.
        let mut lists: Vec<ColList<'_, SR>> = Vec::with_capacity(brows.len());
        let mut flops = 0usize;
        for (&t, bv) in brows.iter().zip(bvals.iter()) {
            if let Some((arows, avals)) = a.col(t as u64) {
                flops += arows.len();
                lists.push((arows, avals, bv));
            }
        }
        if lists.is_empty() {
            continue;
        }
        // Work accounting: one semiring multiply-accumulate per flop.
        pcomm::work::record_class(flops as u64, pcomm::work::CostClass::SpgemmFlop);
        obs::hist!("spgemm.col_flops", flops);
        let use_hash = match strategy {
            SpGemmStrategy::Hash => true,
            SpGemmStrategy::Heap => false,
            // Few or tiny lists merge cheaper than they hash; dense columns
            // favour O(1) scatter.
            SpGemmStrategy::Hybrid => lists.len() > 2 && flops > 16,
        };
        if use_hash {
            // The column produces at most `flops` distinct rows; size the
            // table for them up front so the accumulate loop never rehashes.
            hash_acc.reserve(flops);
            for (arows, avals, bv) in &lists {
                for (&r, av) in arows.iter().zip(avals.iter()) {
                    if let Some(c) = sr.multiply(av, bv) {
                        hash_acc.upsert(r, c, |acc, v| sr.add(acc, v));
                    }
                }
            }
            // Estimate vs. realized occupancy of the sized accumulator.
            obs::hist!("spgemm.accum_est", flops);
            obs::hist!("spgemm.accum_occ", hash_acc.len());
            pairs.clear();
            hash_acc.drain_sorted(&mut pairs);
            out.extend(pairs.drain(..).map(|(r, v)| (r, jcol, v)));
        } else {
            merge_heap(&lists, sr, jcol, &mut out);
        }
    }
    // The table only ever grows, so its final capacity is this multiply's
    // accumulator high-water mark.
    obs::alloc::probe("mem.watermark.sparse.accum", &hash_acc);
    out
}

/// One contributing A column: its rows, values, and the B scalar.
type ColList<'a, SR> = (
    &'a [u32],
    &'a [<SR as Semiring>::A],
    &'a <SR as Semiring>::B,
);

/// K-way merge of the contributing lists; ties on row id are popped in list
/// order (= ascending inner index), matching the hash fold order.
fn merge_heap<SR: Semiring>(
    lists: &[ColList<'_, SR>],
    sr: &SR,
    jcol: u64,
    out: &mut Vec<(u32, u64, SR::C)>,
) {
    let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = BinaryHeap::with_capacity(lists.len());
    for (li, (arows, _, _)) in lists.iter().enumerate() {
        if !arows.is_empty() {
            heap.push(Reverse((arows[0], li, 0)));
        }
    }
    let mut current: Option<(u32, SR::C)> = None;
    while let Some(Reverse((row, li, pos))) = heap.pop() {
        let (arows, avals, bv) = &lists[li];
        if pos + 1 < arows.len() {
            heap.push(Reverse((arows[pos + 1], li, pos + 1)));
        }
        if let Some(c) = sr.multiply(&avals[pos], bv) {
            match current.take() {
                Some((r, mut acc)) if r == row => {
                    sr.add(&mut acc, c);
                    current = Some((r, acc));
                }
                Some((r, acc)) => {
                    out.push((r, jcol, acc));
                    current = Some((row, c));
                }
                None => current = Some((row, c)),
            }
        }
    }
    if let Some((r, acc)) = current {
        out.push((r, jcol, acc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::ArithmeticSemiring;

    fn dcsc(nrows: usize, ncols: u64, t: Vec<(u32, u64, f64)>) -> Dcsc<f64> {
        Dcsc::from_triples(nrows, ncols, t, |a, b| *a += b)
    }

    fn dense_mul(a: &Dcsc<f64>, b: &Dcsc<f64>) -> Vec<(u32, u64, f64)> {
        let mut c = vec![vec![0.0; b.ncols() as usize]; a.nrows()];
        for (t, j, &bv) in b.iter() {
            if let Some((arows, avals)) = a.col(t as u64) {
                for (&r, &av) in arows.iter().zip(avals) {
                    c[r as usize][j as usize] += av * bv;
                }
            }
        }
        let mut out = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for j in 0..b.ncols() as usize {
            for r in 0..a.nrows() {
                if c[r][j] != 0.0 {
                    out.push((r as u32, j as u64, c[r][j]));
                }
            }
        }
        out
    }

    #[test]
    fn strategies_agree_small() {
        let a = dcsc(
            3,
            4,
            vec![(0, 0, 1.0), (1, 0, 2.0), (2, 1, 3.0), (0, 3, 4.0)],
        );
        let b = dcsc(4, 2, vec![(0, 0, 5.0), (1, 0, 6.0), (3, 1, 7.0)]);
        let want = dense_mul(&a, &b);
        for s in [
            SpGemmStrategy::Hash,
            SpGemmStrategy::Heap,
            SpGemmStrategy::Hybrid,
        ] {
            let got = local_spgemm(&a, &b, &ArithmeticSemiring, s);
            assert_eq!(got, want, "strategy {s:?}");
        }
    }

    #[test]
    fn strategies_agree_random() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let (m, k, n) = (
                rng.random_range(1..20),
                rng.random_range(1..20),
                rng.random_range(1..20),
            );
            let mk_triples = |rng: &mut StdRng, rows: usize, cols: usize| {
                let nnz = rng.random_range(0..rows * cols + 1);
                (0..nnz)
                    .map(|_| {
                        (
                            rng.random_range(0..rows) as u32,
                            rng.random_range(0..cols) as u64,
                            rng.random_range(1..5) as f64,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            let a = dcsc(m, k as u64, mk_triples(&mut rng, m, k));
            let b = dcsc(k, n as u64, mk_triples(&mut rng, k, n));
            let want = dense_mul(&a, &b);
            for s in [
                SpGemmStrategy::Hash,
                SpGemmStrategy::Heap,
                SpGemmStrategy::Hybrid,
            ] {
                let got = local_spgemm(&a, &b, &ArithmeticSemiring, s);
                assert_eq!(got, want, "trial {trial} strategy {s:?}");
            }
        }
    }

    #[test]
    fn empty_operands() {
        let a = Dcsc::<f64>::empty(3, 4);
        let b = Dcsc::<f64>::empty(4, 5);
        assert!(local_spgemm(&a, &b, &ArithmeticSemiring, SpGemmStrategy::Hybrid).is_empty());
    }

    #[test]
    fn multiply_filter_drops_contributions() {
        struct Filtered;
        impl Semiring for Filtered {
            type A = f64;
            type B = f64;
            type C = f64;
            fn multiply(&self, a: &f64, b: &f64) -> Option<f64> {
                let p = a * b;
                (p > 10.0).then_some(p)
            }
            fn add(&self, acc: &mut f64, v: f64) {
                *acc += v;
            }
        }
        let a = dcsc(2, 2, vec![(0, 0, 2.0), (1, 1, 3.0)]);
        let b = dcsc(2, 1, vec![(0, 0, 4.0), (1, 0, 5.0)]);
        for s in [SpGemmStrategy::Hash, SpGemmStrategy::Heap] {
            let got = local_spgemm(&a, &b, &Filtered, s);
            assert_eq!(got, vec![(1, 0, 15.0)], "{s:?}");
        }
    }

    #[test]
    fn output_is_column_major_sorted() {
        let a = dcsc(5, 5, (0..5).map(|i| (i as u32, i as u64, 1.0)).collect());
        let b = dcsc(5, 5, vec![(0, 4, 1.0), (4, 4, 1.0), (2, 1, 1.0)]);
        let got = local_spgemm(&a, &b, &ArithmeticSemiring, SpGemmStrategy::Hash);
        assert_eq!(
            got.iter().map(|&(r, c, _)| (c, r)).collect::<Vec<_>>(),
            vec![(1, 2), (4, 0), (4, 4)]
        );
    }
}
