//! Plain compressed sparse column storage for shared-memory algorithms
//! (Markov clustering, connected components, small dense-ish graphs).

use crate::accum::HashAccumulator;

/// A CSC sparse matrix with `usize` indices, suitable when the column count
/// is comparable to the nonzero count.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<V> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    vals: Vec<V>,
}

impl<V> Csc<V> {
    /// An empty `nrows × ncols` matrix.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csc {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from `(row, col, value)` triples; duplicates combined with `add`.
    pub fn from_triples(
        nrows: usize,
        ncols: usize,
        mut triples: Vec<(usize, usize, V)>,
        add: impl Fn(&mut V, V),
    ) -> Self {
        triples.sort_by_key(|&(r, c, _)| (c, r));
        let mut colptr = vec![0usize; ncols + 1];
        let mut rowidx = Vec::with_capacity(triples.len());
        let mut vals: Vec<V> = Vec::with_capacity(triples.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triples {
            assert!(
                r < nrows && c < ncols,
                "triple ({r},{c}) out of bounds {nrows}x{ncols}"
            );
            if last == Some((r, c)) {
                add(vals.last_mut().unwrap(), v);
                continue;
            }
            colptr[c + 1] += 1;
            rowidx.push(r);
            vals.push(v);
            last = Some((r, c));
        }
        for c in 0..ncols {
            colptr[c + 1] += colptr[c];
        }
        Csc {
            nrows,
            ncols,
            colptr,
            rowidx,
            vals,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// `(rows, values)` of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> (&[usize], &[V]) {
        let (s, e) = (self.colptr[c], self.colptr[c + 1]);
        (&self.rowidx[s..e], &self.vals[s..e])
    }

    /// Mutable values of column `c` (structure fixed).
    #[inline]
    pub fn col_vals_mut(&mut self, c: usize) -> &mut [V] {
        let (s, e) = (self.colptr[c], self.colptr[c + 1]);
        &mut self.vals[s..e]
    }

    /// Iterate `(row, col, &value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &V)> + '_ {
        (0..self.ncols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals.iter()).map(move |(&r, v)| (r, c, v))
        })
    }

    /// Consume into triples.
    pub fn into_triples(self) -> Vec<(usize, usize, V)> {
        let mut cols = Vec::with_capacity(self.vals.len());
        for c in 0..self.ncols {
            for _ in self.colptr[c]..self.colptr[c + 1] {
                cols.push(c);
            }
        }
        self.rowidx
            .into_iter()
            .zip(cols)
            .zip(self.vals)
            .map(|((r, c), v)| (r, c, v))
            .collect()
    }

    /// Keep only entries where `keep` is true.
    pub fn retain(&mut self, keep: impl Fn(usize, usize, &V) -> bool) {
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::new();
        let mut vals = Vec::new();
        let old_vals = std::mem::take(&mut self.vals);
        let mut it = self.rowidx.iter().zip(old_vals);
        for c in 0..self.ncols {
            for _ in self.colptr[c]..self.colptr[c + 1] {
                let (&r, v) = it.next().unwrap();
                if keep(r, c, &v) {
                    rowidx.push(r);
                    vals.push(v);
                    colptr[c + 1] += 1;
                }
            }
        }
        for c in 0..self.ncols {
            colptr[c + 1] += colptr[c];
        }
        self.colptr = colptr;
        self.rowidx = rowidx;
        self.vals = vals;
    }

    /// Transpose.
    pub fn transpose(self) -> Csc<V> {
        let (nrows, ncols) = (self.nrows, self.ncols);
        let triples = self
            .into_triples()
            .into_iter()
            .map(|(r, c, v)| (c, r, v))
            .collect();
        Csc::from_triples(ncols, nrows, triples, |_, _| {
            unreachable!("transpose has no duplicates")
        })
    }
}

impl Csc<f64> {
    /// C = A·B over the arithmetic semiring, with the open-addressed
    /// [`HashAccumulator`] the distributed hybrid SpGEMM uses and the same
    /// per-column flop estimate sizing its table up front (so the
    /// accumulate loop never rehashes). Contributions fold in ascending
    /// inner-index order, bit-identical to the previous per-entry
    /// `HashMap` accumulation.
    pub fn matmul(&self, b: &Csc<f64>) -> Csc<f64> {
        assert_eq!(self.ncols, b.nrows, "dimension mismatch");
        assert!(self.nrows <= u32::MAX as usize, "row ids must fit in u32");
        let mut triples: Vec<(usize, usize, f64)> = Vec::new();
        let mut acc: HashAccumulator<f64> = HashAccumulator::with_capacity(64);
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for c in 0..b.ncols {
            let (brows, bvals) = b.col(c);
            let flops: usize = brows.iter().map(|&t| self.col(t).0.len()).sum();
            if flops == 0 {
                continue;
            }
            pcomm::work::record_class(flops as u64, pcomm::work::CostClass::SpgemmFlop);
            acc.reserve(flops);
            for (&t, &bv) in brows.iter().zip(bvals) {
                let (arows, avals) = self.col(t);
                for (&r, &av) in arows.iter().zip(avals) {
                    acc.upsert(r as u32, av * bv, |a, v| *a += v);
                }
            }
            // Estimate (upper bound) vs. realized distinct-row occupancy.
            obs::hist!("spgemm.accum_est", flops);
            obs::hist!("spgemm.accum_occ", acc.len());
            pairs.clear();
            acc.drain_sorted(&mut pairs);
            triples.extend(pairs.drain(..).map(|(r, v)| (r as usize, c, v)));
        }
        Csc::from_triples(self.nrows, b.ncols, triples, |_, _| unreachable!())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eye(n: usize) -> Csc<f64> {
        Csc::from_triples(n, n, (0..n).map(|i| (i, i, 1.0)).collect(), |a, b| *a += b)
    }

    #[test]
    fn construction_and_lookup() {
        let m = Csc::from_triples(3, 3, vec![(0, 0, 1.0), (2, 0, 2.0), (1, 2, 3.0)], |a, b| {
            *a += b
        });
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0).0, &[0, 2]);
        assert_eq!(m.col(1).0.len(), 0);
        assert_eq!(m.col(2).1, &[3.0]);
    }

    #[test]
    fn duplicate_combination() {
        let m = Csc::from_triples(2, 2, vec![(0, 1, 1.0), (0, 1, 4.0)], |a, b| *a += b);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(1).1, &[5.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Csc::from_triples(3, 3, vec![(0, 1, 2.0), (2, 2, 5.0)], |x, y| *x += y);
        let c = a.matmul(&eye(3));
        let mut t = c.into_triples();
        t.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(t, vec![(0, 1, 2.0), (2, 2, 5.0)]);
    }

    #[test]
    fn matmul_small_dense() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] => AB = [[19,22],[43,50]]
        let a = Csc::from_triples(
            2,
            2,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)],
            |x, y| *x += y,
        );
        let b = Csc::from_triples(
            2,
            2,
            vec![(0, 0, 5.0), (0, 1, 6.0), (1, 0, 7.0), (1, 1, 8.0)],
            |x, y| *x += y,
        );
        let c = a.matmul(&b);
        let mut t = c.into_triples();
        t.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(
            t,
            vec![(0, 0, 19.0), (0, 1, 22.0), (1, 0, 43.0), (1, 1, 50.0)]
        );
    }

    #[test]
    fn retain_and_transpose() {
        let mut m = Csc::from_triples(
            2,
            3,
            vec![(0, 0, 1.0), (1, 1, -2.0), (0, 2, 3.0)],
            |x, y| *x += y,
        );
        m.retain(|_, _, &v| v > 0.0);
        assert_eq!(m.nnz(), 2);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.col(0).0, &[0, 2]);
    }

    #[test]
    fn iter_column_major() {
        let m = Csc::from_triples(2, 2, vec![(1, 0, 1.0), (0, 1, 2.0)], |x, y| *x += y);
        let got: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(got, vec![(1, 0, 1.0), (0, 1, 2.0)]);
    }

    #[test]
    fn col_vals_mut_in_place() {
        let mut m = eye(3);
        for c in 0..3 {
            for v in m.col_vals_mut(c) {
                *v *= 2.0;
            }
        }
        assert_eq!(m.col(1).1, &[2.0]);
    }
}
