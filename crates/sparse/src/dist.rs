//! 2D block-distributed sparse matrices and Sparse SUMMA SpGEMM
//! (paper §II-A, §V-C).
//!
//! A `DistMat` lives on a √p × √p process grid; rank `(r, c)` owns the block
//! of rows `[r·m/q, (r+1)·m/q)` × columns `[c·n/q, (c+1)·n/q)`, stored
//! hypersparse-friendly as [`Dcsc`] with block-local indices. All methods
//! marked *collective* must be called by every rank of the grid.

use std::rc::Rc;

use pcomm::{BcastHandle, Grid, Payload};

use crate::dcsc::Dcsc;
use crate::local_spgemm::{local_spgemm, SpGemmStrategy};
use crate::semiring::Semiring;
use crate::triple::Triple;

/// Split `n` items over `q` blocks: block `i` covers `[i·n/q, (i+1)·n/q)`.
#[inline]
pub(crate) fn block_range(n: u64, q: usize, i: usize) -> (u64, u64) {
    let q = q as u64;
    let i = i as u64;
    (i * n / q, (i + 1) * n / q)
}

/// Index of the block owning global index `g`.
#[inline]
pub(crate) fn block_owner(n: u64, q: usize, g: u64) -> usize {
    debug_assert!(g < n);
    let mut i = ((g as u128 * q as u128 / n as u128) as usize).min(q - 1);
    while g < block_range(n, q, i).0 {
        i -= 1;
    }
    while g >= block_range(n, q, i).1 {
        i += 1;
    }
    i
}

/// A sparse matrix distributed over a 2D process grid.
pub struct DistMat<V> {
    grid: Rc<Grid>,
    nrows: u64,
    ncols: u64,
    local: Dcsc<V>,
}

impl<V: Payload + Clone> DistMat<V> {
    /// Build from globally-indexed triples scattered arbitrarily over ranks.
    /// Collective: triples are shuffled to their owner blocks (`alltoallv`),
    /// duplicates combined with `add`.
    pub fn from_triples(
        grid: Rc<Grid>,
        nrows: u64,
        ncols: u64,
        triples: Vec<Triple<V>>,
        add: impl Fn(&mut V, V),
    ) -> Self {
        let _span = obs::span!("sparse.from_triples", triples = triples.len());
        let q = grid.q();
        let p = q * q;
        // Work accounting: owner computation + bucketing per triple.
        pcomm::work::record_class(triples.len() as u64, pcomm::work::CostClass::TripleShuffle);
        let mut parts: Vec<Vec<Triple<V>>> = (0..p).map(|_| Vec::new()).collect();
        for (r, c, v) in triples {
            assert!(
                r < nrows && c < ncols,
                "triple ({r},{c}) outside {nrows}×{ncols}"
            );
            let owner = grid.rank_of(block_owner(nrows, q, r), block_owner(ncols, q, c));
            parts[owner].push((r, c, v));
        }
        let received = grid.world().alltoallv(parts);
        let (r0, _r1) = block_range(nrows, q, grid.myrow());
        let (c0, _c1) = block_range(ncols, q, grid.mycol());
        let local_triples: Vec<(u32, u64, V)> = received
            .into_iter()
            .flatten()
            .map(|(r, c, v)| ((r - r0) as u32, c - c0, v))
            .collect();
        obs::alloc::probe("mem.watermark.sparse.triples", &local_triples);
        let local = Dcsc::from_triples(
            Self::local_rows(nrows, q, grid.myrow()),
            Self::local_cols(ncols, q, grid.mycol()),
            local_triples,
            add,
        );
        DistMat {
            grid,
            nrows,
            ncols,
            local,
        }
    }

    fn local_rows(nrows: u64, q: usize, r: usize) -> usize {
        let (a, b) = block_range(nrows, q, r);
        (b - a) as usize
    }

    fn local_cols(ncols: u64, q: usize, c: usize) -> u64 {
        let (a, b) = block_range(ncols, q, c);
        b - a
    }

    /// An empty distributed matrix. Collective only in the trivial sense
    /// (no communication).
    pub fn empty(grid: Rc<Grid>, nrows: u64, ncols: u64) -> Self {
        let local = Dcsc::empty(
            Self::local_rows(nrows, grid.q(), grid.myrow()),
            Self::local_cols(ncols, grid.q(), grid.mycol()),
        );
        DistMat {
            grid,
            nrows,
            ncols,
            local,
        }
    }

    /// Global row count.
    #[inline]
    pub fn nrows(&self) -> u64 {
        self.nrows
    }

    /// Global column count.
    #[inline]
    pub fn ncols(&self) -> u64 {
        self.ncols
    }

    /// The process grid this matrix is distributed over.
    #[inline]
    pub fn grid(&self) -> &Rc<Grid> {
        &self.grid
    }

    /// Global rows `[start, end)` of my block.
    #[inline]
    pub fn row_range(&self) -> (u64, u64) {
        block_range(self.nrows, self.grid.q(), self.grid.myrow())
    }

    /// Global columns `[start, end)` of my block.
    #[inline]
    pub fn col_range(&self) -> (u64, u64) {
        block_range(self.ncols, self.grid.q(), self.grid.mycol())
    }

    /// My local block.
    #[inline]
    pub fn local(&self) -> &Dcsc<V> {
        &self.local
    }

    /// Nonzeros stored on this rank.
    #[inline]
    pub fn nnz_local(&self) -> usize {
        self.local.nnz()
    }

    /// Total nonzeros. Collective.
    pub fn nnz(&self) -> u64 {
        self.grid
            .world()
            .allreduce(self.local.nnz() as u64, |a, b| a + b)
    }

    /// Iterate my block's nonzeros with *global* indices.
    pub fn iter_local(&self) -> impl Iterator<Item = (u64, u64, &V)> + '_ {
        let (r0, _) = self.row_range();
        let (c0, _) = self.col_range();
        self.local
            .iter()
            .map(move |(r, c, v)| (r0 + r as u64, c0 + c, v))
    }

    /// Keep entries where `keep(global_row, global_col, &v)`. Local.
    pub fn retain(&mut self, keep: impl Fn(u64, u64, &V) -> bool) {
        let (r0, _) = self.row_range();
        let (c0, _) = self.col_range();
        self.local.retain(|r, c, v| keep(r0 + r as u64, c0 + c, v));
    }

    /// Map values, keeping structure. Local.
    pub fn map<W: Payload + Clone>(self, f: impl Fn(u64, u64, V) -> W) -> DistMat<W> {
        let (r0, _) = self.row_range();
        let (c0, _) = self.col_range();
        let local = self.local.map(|r, c, v| f(r0 + r as u64, c0 + c, v));
        DistMat {
            grid: self.grid,
            nrows: self.nrows,
            ncols: self.ncols,
            local,
        }
    }

    /// Column-restricted view for the out-of-core batch driver: same
    /// global shape and grid distribution, but only entries whose *global*
    /// column lies in `[range.0, range.1)` survive. Local (no
    /// communication) — batch `k` of a batched multiply reuses the
    /// already-distributed operand without re-shuffling anything, and
    /// because the block boundaries are unchanged, every surviving entry
    /// reaches the same SUMMA stage, in the same fold order, as in the
    /// unrestricted product — which is what makes batched edge sets
    /// bit-identical to monolithic ones.
    pub fn restrict_cols(&self, range: (u64, u64)) -> DistMat<V> {
        let (c0, _) = self.col_range();
        let triples: Vec<(u32, u64, V)> = self
            .local
            .iter()
            .filter(|&(_, c, _)| {
                let g = c0 + c;
                g >= range.0 && g < range.1
            })
            .map(|(r, c, v)| (r, c, v.clone()))
            .collect();
        let local = Dcsc::from_triples(self.local.nrows(), self.local.ncols(), triples, |_, _| {
            unreachable!("restriction cannot create duplicates")
        });
        DistMat {
            grid: Rc::clone(&self.grid),
            nrows: self.nrows,
            ncols: self.ncols,
            local,
        }
    }

    /// Distributed SpGEMM `C = self · b` over `sr`, using the 2D Sparse
    /// SUMMA schedule: at stage `t`, the owners of `A(·,t)` broadcast along
    /// grid rows and the owners of `B(t,·)` along grid columns; every rank
    /// multiplies the received pair locally and folds the partial triples.
    /// Implemented as a fold of [`DistMat::spgemm_stream`]. Collective.
    pub fn spgemm<SR>(
        &self,
        b: &DistMat<SR::B>,
        sr: &SR,
        strategy: SpGemmStrategy,
    ) -> DistMat<SR::C>
    where
        SR: Semiring<A = V>,
        SR::B: Payload + Clone,
        SR::C: Payload + Clone,
    {
        let stream = self.spgemm_stream(b, sr, strategy);
        let grid = &self.grid;
        let q = grid.q();
        let mut acc: Vec<(u32, u64, SR::C)> = Vec::new();
        stream.for_each_stage(|_t, triples| acc.extend(triples));
        // Stable sort keeps stage order for duplicates, so the add fold is
        // in ascending global inner index — identical for every grid size.
        // The fully accumulated partial-triple buffer is the PSG's
        // peak-footprint moment on the staged path.
        obs::alloc::probe("mem.watermark.sparse.triples", &acc);
        let _fold = obs::span!("summa.fold", triples = acc.len());
        let local = Dcsc::from_triples(
            Self::local_rows(self.nrows, q, grid.myrow()),
            Self::local_cols(b.ncols, q, grid.mycol()),
            acc,
            |a, v| sr.add(a, v),
        );
        DistMat {
            grid: Rc::clone(grid),
            nrows: self.nrows,
            ncols: b.ncols,
            local,
        }
    }

    /// Start a streaming Sparse SUMMA multiply `self · b`: the returned
    /// [`SummaStream`] double-buffers panel broadcasts (stage `t+1` is
    /// posted nonblocking before stage `t` multiplies) and yields each
    /// stage's partial triples to a consumer, so downstream work can begin
    /// while later panels are still in flight. Collective; every rank of
    /// the grid must drive the stream through all stages.
    pub fn spgemm_stream<'a, SR>(
        &'a self,
        b: &'a DistMat<SR::B>,
        sr: &'a SR,
        strategy: SpGemmStrategy,
    ) -> SummaStream<'a, SR>
    where
        SR: Semiring<A = V>,
        SR::B: Payload + Clone,
        SR::C: Payload + Clone,
    {
        assert!(
            Rc::ptr_eq(&self.grid, &b.grid),
            "operands must share a grid"
        );
        assert_eq!(self.ncols, b.nrows, "global dimension mismatch");
        let mut stream = SummaStream {
            a: self,
            b,
            sr,
            strategy,
            q: self.grid.q(),
            next_a: None,
            next_b: None,
        };
        stream.post(0);
        stream
    }

    /// Distributed transpose: every rank swaps indices and trades its block
    /// with its transpose partner. Collective.
    pub fn transpose(&self) -> DistMat<V> {
        let _span = obs::span!("sparse.transpose");
        let grid = &self.grid;
        let partner = grid.transpose_partner();
        let me = grid.world().rank();
        let mine: Vec<Triple<V>> = self
            .iter_local()
            .map(|(r, c, v)| (c, r, v.clone()))
            .collect();
        let swapped: Vec<Triple<V>> = if partner == me {
            mine
        } else {
            const TRANSPOSE_TAG: u64 = 0x7A;
            grid.world().isend(partner, TRANSPOSE_TAG, mine);
            grid.world().recv::<Vec<Triple<V>>>(partner, TRANSPOSE_TAG)
        };
        let q = grid.q();
        let (r0, _) = block_range(self.ncols, q, grid.myrow());
        let (c0, _) = block_range(self.nrows, q, grid.mycol());
        let local_triples: Vec<(u32, u64, V)> = swapped
            .into_iter()
            .map(|(r, c, v)| ((r - r0) as u32, c - c0, v))
            .collect();
        let local = Dcsc::from_triples(
            Self::local_rows(self.ncols, q, grid.myrow()),
            Self::local_cols(self.nrows, q, grid.mycol()),
            local_triples,
            |_, _| unreachable!("transpose cannot create duplicates"),
        );
        DistMat {
            grid: Rc::clone(grid),
            nrows: self.ncols,
            ncols: self.nrows,
            local,
        }
    }

    /// Symmetrize: `C(i,j) = combine(self(i,j), self(j,i))` where entries
    /// missing on one side pass through unchanged. This is the
    /// "symmetricize" step PASTIS needs after `(AS)Aᵀ` (paper Fig. 15).
    /// Collective; requires a square matrix.
    pub fn add_transpose(&self, combine: impl Fn(&mut V, V)) -> DistMat<V> {
        assert_eq!(
            self.nrows, self.ncols,
            "add_transpose requires a square matrix"
        );
        let t = self.transpose();
        let mut triples: Vec<(u32, u64, V)> = self
            .local
            .iter()
            .map(|(r, c, v)| (r, c, v.clone()))
            .collect();
        triples.extend(t.local.iter().map(|(r, c, v)| (r, c, v.clone())));
        let local = Dcsc::from_triples(self.local.nrows(), self.local.ncols(), triples, combine);
        DistMat {
            grid: Rc::clone(&self.grid),
            nrows: self.nrows,
            ncols: self.ncols,
            local,
        }
    }

    /// Element-wise union with another identically-distributed matrix:
    /// entries present in both are folded with `combine(mine, theirs)`.
    /// Local (no communication).
    pub fn elementwise_add(&self, other: &DistMat<V>, combine: impl Fn(&mut V, V)) -> DistMat<V> {
        assert!(
            Rc::ptr_eq(&self.grid, &other.grid),
            "operands must share a grid"
        );
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "dimension mismatch"
        );
        let mut triples: Vec<(u32, u64, V)> = self
            .local
            .iter()
            .map(|(r, c, v)| (r, c, v.clone()))
            .collect();
        triples.extend(other.local.iter().map(|(r, c, v)| (r, c, v.clone())));
        let local = Dcsc::from_triples(self.local.nrows(), self.local.ncols(), triples, combine);
        DistMat {
            grid: Rc::clone(&self.grid),
            nrows: self.nrows,
            ncols: self.ncols,
            local,
        }
    }

    /// Gather all triples (global indices) to `root`. Collective.
    pub fn gather_triples(&self, root: usize) -> Option<Vec<Triple<V>>> {
        let mine: Vec<Triple<V>> = self
            .iter_local()
            .map(|(r, c, v)| (r, c, v.clone()))
            .collect();
        self.grid
            .world()
            .gather(root, mine)
            .map(|parts| parts.into_iter().flatten().collect())
    }
}

/// In-flight streaming Sparse SUMMA multiply (see
/// [`DistMat::spgemm_stream`]).
///
/// Stage `t`'s A/B panel broadcasts are posted nonblocking one stage ahead:
/// while stage `t` multiplies, stage `t+1`'s panels travel. Triples are
/// yielded per stage in the exact order the monolithic [`DistMat::spgemm`]
/// accumulates them, so a consumer that folds duplicates in arrival order
/// reproduces its results bit for bit.
///
/// Trace shape: every stage emits the same span skeleton —
/// `summa.stage { summa.prefetch { pcomm.ibcast.post ×2 }, summa.bcast_a,
/// summa.bcast_b, summa.local_mul, <consumer> }` — on every rank, including
/// the final stage (whose prefetch posts nothing), so structure signatures
/// stay identical across ranks and grid sizes.
pub struct SummaStream<'a, SR>
where
    SR: Semiring,
    SR::A: Payload + Clone,
    SR::B: Payload + Clone,
    SR::C: Payload + Clone,
{
    a: &'a DistMat<SR::A>,
    b: &'a DistMat<SR::B>,
    sr: &'a SR,
    strategy: SpGemmStrategy,
    q: usize,
    next_a: Option<BcastHandle<Dcsc<SR::A>>>,
    next_b: Option<BcastHandle<Dcsc<SR::B>>>,
}

impl<'a, SR> SummaStream<'a, SR>
where
    SR: Semiring,
    SR::A: Payload + Clone,
    SR::B: Payload + Clone,
    SR::C: Payload + Clone,
{
    /// Number of SUMMA stages (`q = √p`).
    pub fn stages(&self) -> usize {
        self.q
    }

    /// Post stage `t`'s panel broadcasts nonblocking. Past the last stage
    /// this posts nothing but still emits the post-span skeleton, keeping
    /// every stage's subtree shape identical for the cross-grid structure
    /// signature.
    fn post(&mut self, t: usize) {
        let _s = obs::span!("summa.prefetch", stage = t);
        if t < self.q {
            let grid = &self.a.grid;
            self.next_a = Some(
                grid.row_comm()
                    .ibcast(t, (grid.mycol() == t).then(|| self.a.local.clone())),
            );
            self.next_b = Some(
                grid.col_comm()
                    .ibcast(t, (grid.myrow() == t).then(|| self.b.local.clone())),
            );
        } else {
            {
                let _p = obs::span!("pcomm.ibcast.post");
            }
            {
                let _p = obs::span!("pcomm.ibcast.post");
            }
        }
    }

    /// Drive every stage: wait for stage `t`'s panels (posted one stage
    /// earlier), post stage `t+1`, multiply locally, and hand the stage's
    /// partial triples (block-local indices, column-major, in-stage
    /// duplicates pre-folded by the semiring) to `consume` — which runs
    /// inside the stage span, so its spans and work ledger land in the
    /// stage it overlaps with.
    pub fn for_each_stage(mut self, mut consume: impl FnMut(usize, Vec<(u32, u64, SR::C)>)) {
        for t in 0..self.q {
            let _stage = obs::span!("summa.stage", stage = t);
            let ha = self.next_a.take().expect("stage broadcast not posted");
            let hb = self.next_b.take().expect("stage broadcast not posted");
            self.post(t + 1);
            let a_blk = {
                let _s = obs::span!("summa.bcast_a");
                ha.wait()
            };
            let b_blk = {
                let _s = obs::span!("summa.bcast_b");
                hb.wait()
            };
            let triples = {
                let _s = obs::span!("summa.local_mul");
                local_spgemm(&a_blk, &b_blk, self.sr, self.strategy)
            };
            consume(t, triples);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_partition() {
        for n in [1u64, 5, 9, 10, 100, 1_000_003] {
            for q in [1usize, 2, 3, 7] {
                let mut expect = 0u64;
                for i in 0..q {
                    let (a, b) = block_range(n, q, i);
                    assert_eq!(a, expect);
                    expect = b;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn owner_matches_range() {
        for n in [1u64, 7, 24, 1000] {
            for q in [1usize, 2, 3, 5] {
                for g in 0..n {
                    let i = block_owner(n, q, g);
                    let (a, b) = block_range(n, q, i);
                    assert!(a <= g && g < b, "n={n} q={q} g={g} i={i}");
                }
            }
        }
    }
}
