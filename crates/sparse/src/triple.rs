//! COO triples and utilities shared by the matrix builders.

/// A coordinate-format nonzero with global indices.
pub type Triple<V> = (u64, u64, V);

/// Sort triples by `(col, row)` and combine duplicates with `add`.
///
/// This is the canonicalization step every matrix construction funnels
/// through; the combine order for duplicates is their order in the sorted
/// input, which is deterministic for deterministic inputs.
pub fn sort_dedup_triples<V>(
    mut triples: Vec<Triple<V>>,
    add: impl Fn(&mut V, V),
) -> Vec<Triple<V>> {
    triples.sort_by_key(|&(r, c, _)| (c, r));
    let mut out: Vec<Triple<V>> = Vec::with_capacity(triples.len());
    for (r, c, v) in triples {
        match out.last_mut() {
            Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => add(lv, v),
            _ => out.push((r, c, v)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_col_major() {
        let t = vec![(1, 2, 1.0), (0, 1, 2.0), (5, 0, 3.0)];
        let s = sort_dedup_triples(t, |a, b| *a += b);
        assert_eq!(s, vec![(5, 0, 3.0), (0, 1, 2.0), (1, 2, 1.0)]);
    }

    #[test]
    fn combines_duplicates_in_order() {
        let t = vec![(0, 0, vec![1]), (0, 0, vec![2]), (0, 0, vec![3])];
        let s = sort_dedup_triples(t, |a, mut b| a.append(&mut b));
        assert_eq!(s, vec![(0, 0, vec![1, 2, 3])]);
    }

    #[test]
    fn empty_input() {
        let s = sort_dedup_triples(Vec::<Triple<u32>>::new(), |a, b| *a += b);
        assert!(s.is_empty());
    }
}
