//! User-defined semirings for SpGEMM, the mechanism CombBLAS exposes and
//! PASTIS overloads to carry seed positions through its matrix products
//! (paper §II-A, Fig. 4).

/// A semiring for `C = A ⊗ B`: `multiply` maps a pair of operands to an
/// output contribution (or filters it out), `add` folds contributions that
/// land on the same output coordinate.
///
/// `add` must be associative; the fold order is deterministic (ascending
/// inner index), so even non-commutative folds reproduce across runs and
/// process counts.
pub trait Semiring {
    /// Element type of the left matrix.
    type A: Clone;
    /// Element type of the right matrix.
    type B: Clone;
    /// Element type of the output matrix.
    type C: Clone;

    /// Combine one `A(i,t)` with one `B(t,j)`. Returning `None` drops the
    /// contribution entirely (useful for filtered products).
    fn multiply(&self, a: &Self::A, b: &Self::B) -> Option<Self::C>;

    /// Fold `contrib` into `acc` (both address output coordinate `(i,j)`).
    fn add(&self, acc: &mut Self::C, contrib: Self::C);
}

/// The ordinary `(+, ×)` semiring over `f64`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArithmeticSemiring;

impl Semiring for ArithmeticSemiring {
    type A = f64;
    type B = f64;
    type C = f64;

    #[inline]
    fn multiply(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a * b)
    }

    #[inline]
    fn add(&self, acc: &mut f64, contrib: f64) {
        *acc += contrib;
    }
}

/// Boolean `(∨, ∧)` semiring — graph reachability / pattern products.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrAndSemiring;

impl Semiring for OrAndSemiring {
    type A = bool;
    type B = bool;
    type C = bool;

    #[inline]
    fn multiply(&self, a: &bool, b: &bool) -> Option<bool> {
        (*a && *b).then_some(true)
    }

    #[inline]
    fn add(&self, acc: &mut bool, contrib: bool) {
        *acc |= contrib;
    }
}

/// `(max, +)` semiring over `i64` — longest-path style products.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxPlusSemiring;

impl Semiring for MaxPlusSemiring {
    type A = i64;
    type B = i64;
    type C = i64;

    #[inline]
    fn multiply(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(a + b)
    }

    #[inline]
    fn add(&self, acc: &mut i64, contrib: i64) {
        *acc = (*acc).max(contrib);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let s = ArithmeticSemiring;
        let mut acc = s.multiply(&2.0, &3.0).unwrap();
        s.add(&mut acc, s.multiply(&4.0, &0.5).unwrap());
        assert_eq!(acc, 8.0);
    }

    #[test]
    fn orand_filters_false() {
        let s = OrAndSemiring;
        assert_eq!(s.multiply(&true, &false), None);
        assert_eq!(s.multiply(&true, &true), Some(true));
    }

    #[test]
    fn maxplus() {
        let s = MaxPlusSemiring;
        let mut acc = s.multiply(&1, &2).unwrap();
        s.add(&mut acc, s.multiply(&5, &-1).unwrap());
        assert_eq!(acc, 4);
    }
}
