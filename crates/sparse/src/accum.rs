//! Open-addressing hash accumulator used by the hash variant of local
//! SpGEMM. Keys are local row indices (`u32`); values are semiring partial
//! sums. Linear probing over a power-of-two table keeps the inner loop free
//! of hasher state and allocation.

const EMPTY: u32 = u32::MAX;

/// A reusable scatter/gather accumulator for one output column.
pub struct HashAccumulator<C> {
    keys: Vec<u32>,
    vals: Vec<Option<C>>,
    mask: usize,
    len: usize,
}

#[inline]
fn hash32(x: u32) -> usize {
    // Fibonacci hashing; good spread for sequential row ids.
    (x.wrapping_mul(2654435769)) as usize
}

impl<C> HashAccumulator<C> {
    /// Create an accumulator able to hold at least `capacity` distinct keys.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = (capacity.max(4) * 2).next_power_of_two();
        HashAccumulator {
            keys: vec![EMPTY; cap],
            vals: (0..cap).map(|_| None).collect(),
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of distinct keys currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no keys are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `contrib` for `key`, folding with `add` on collision.
    pub fn upsert(&mut self, key: u32, contrib: C, add: impl Fn(&mut C, C)) {
        debug_assert_ne!(key, EMPTY, "row id u32::MAX is reserved");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = hash32(key) & self.mask;
        loop {
            if self.keys[i] == key {
                add(self.vals[i].as_mut().unwrap(), contrib);
                return;
            }
            if self.keys[i] == EMPTY {
                self.keys[i] = key;
                self.vals[i] = Some(contrib);
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Ensure the table can take `additional` more distinct keys without
    /// rehashing mid-stream. Callers that know a column's flop count use
    /// this to pay for the table once up front instead of through a chain
    /// of doubling rehashes.
    pub fn reserve(&mut self, additional: usize) {
        let need = ((self.len + additional).max(4) * 2).next_power_of_two();
        if need > self.keys.len() {
            self.resize_to(need);
        }
    }

    fn grow(&mut self) {
        self.resize_to(self.keys.len() * 2);
    }

    fn resize_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap > self.keys.len());
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, (0..new_cap).map(|_| None).collect());
        self.mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let mut i = hash32(k) & self.mask;
                while self.keys[i] != EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    /// Heap footprint of the table (the growth-law structure
    /// `sparse.accum`; capacity only grows, so the final size is the
    /// invocation's high-water mark).
    pub fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<Option<C>>()
    }

    /// Drain all `(key, value)` pairs sorted by key, leaving the accumulator
    /// empty and ready for the next column.
    pub fn drain_sorted(&mut self, out: &mut Vec<(u32, C)>) {
        let start = out.len();
        for i in 0..self.keys.len() {
            if self.keys[i] != EMPTY {
                out.push((self.keys[i], self.vals[i].take().unwrap()));
                self.keys[i] = EMPTY;
            }
        }
        self.len = 0;
        out[start..].sort_unstable_by_key(|&(k, _)| k);
    }
}

impl<C> obs::HeapSize for HashAccumulator<C> {
    fn heap_bytes(&self) -> usize {
        HashAccumulator::heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_and_drain() {
        let mut acc = HashAccumulator::with_capacity(2);
        acc.upsert(5, 1.0, |a, b| *a += b);
        acc.upsert(3, 2.0, |a, b| *a += b);
        acc.upsert(5, 4.0, |a, b| *a += b);
        assert_eq!(acc.len(), 2);
        let mut out = Vec::new();
        acc.drain_sorted(&mut out);
        assert_eq!(out, vec![(3, 2.0), (5, 5.0)]);
        assert!(acc.is_empty());
    }

    #[test]
    fn reuse_after_drain() {
        let mut acc = HashAccumulator::with_capacity(4);
        acc.upsert(1, 10u64, |a, b| *a += b);
        let mut out = Vec::new();
        acc.drain_sorted(&mut out);
        acc.upsert(2, 20u64, |a, b| *a += b);
        out.clear();
        acc.drain_sorted(&mut out);
        assert_eq!(out, vec![(2, 20)]);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut acc = HashAccumulator::with_capacity(2);
        for k in 0..1000u32 {
            acc.upsert(k * 7 % 997, k as u64, |a, b| *a += b);
        }
        let mut out = Vec::new();
        acc.drain_sorted(&mut out);
        // 1000 inserts mod 997 → 997 distinct keys (keys 0,7,14 hit twice... compute via set)
        let distinct: std::collections::HashSet<u32> = (0..1000u32).map(|k| k * 7 % 997).collect();
        assert_eq!(out.len(), distinct.len());
        let total: u64 = out.iter().map(|&(_, v)| v).sum();
        assert_eq!(total, (0..1000u64).sum::<u64>());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn reserve_prevents_mid_stream_growth() {
        let mut acc = HashAccumulator::with_capacity(2);
        acc.reserve(500);
        let cap_after_reserve = acc.keys.len();
        assert!(cap_after_reserve >= 1000);
        for k in 0..500u32 {
            acc.upsert(k, k as u64, |a, b| *a += b);
        }
        assert_eq!(
            acc.keys.len(),
            cap_after_reserve,
            "no rehash during inserts"
        );
        let mut out = Vec::new();
        acc.drain_sorted(&mut out);
        assert_eq!(out.len(), 500);
        // reserve with room to spare is a no-op.
        acc.reserve(10);
        assert_eq!(acc.keys.len(), cap_after_reserve);
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        // Keys equal mod table size collide; ensure all are kept.
        let mut acc = HashAccumulator::with_capacity(8);
        for k in [0u32, 16, 32, 48, 64] {
            acc.upsert(k, 1u32, |a, b| *a += b);
        }
        assert_eq!(acc.len(), 5);
    }
}
