//! Doubly compressed sparse column (DCSC) storage for hypersparse matrices
//! (Buluç & Gilbert 2008; paper §IV-D).
//!
//! DCSC stores only the non-empty columns: `jc[i]` is the id of the i-th
//! non-empty column and `cp[i]..cp[i+1]` indexes its nonzeros in `ir`/`num`.
//! This makes storage O(nnz + nzc) instead of O(nnz + ncols) — essential
//! when the column space is the 24^k k-mer space distributed over a process
//! grid, where almost every column is empty.

use pcomm::Payload;

/// A DCSC-format sparse matrix block with local indices.
///
/// Row indices are `u32` (a block never holds ≥ 2³² rows in this pipeline —
/// asserted during construction); column ids are `u64` because the k-mer
/// column space can be enormous even per block.
#[derive(Debug, Clone, PartialEq)]
pub struct Dcsc<V> {
    nrows: usize,
    ncols: u64,
    /// Sorted ids of non-empty columns.
    jc: Vec<u64>,
    /// `cp[i]..cp[i+1]` bounds column `jc[i]`'s entries; `len == jc.len()+1`.
    cp: Vec<usize>,
    /// Row index of each nonzero, sorted within each column.
    ir: Vec<u32>,
    /// Value of each nonzero.
    num: Vec<V>,
}

impl<V> Dcsc<V> {
    /// An empty block of the given dimensions.
    pub fn empty(nrows: usize, ncols: u64) -> Self {
        Dcsc {
            nrows,
            ncols,
            jc: Vec::new(),
            cp: vec![0],
            ir: Vec::new(),
            num: Vec::new(),
        }
    }

    /// Build from triples with *local* `(row, col, value)` indices.
    /// Duplicate coordinates are combined with `add` in input order.
    pub fn from_triples(
        nrows: usize,
        ncols: u64,
        triples: Vec<(u32, u64, V)>,
        add: impl Fn(&mut V, V),
    ) -> Self {
        assert!(
            nrows < u32::MAX as usize + 1,
            "row space too large for u32 local indices"
        );
        // Work accounting: sort + scan per triple.
        pcomm::work::record_class(triples.len() as u64, pcomm::work::CostClass::TripleSort);
        let mut triples = triples;
        triples.sort_by_key(|&(r, c, _)| (c, r));
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir: Vec<u32> = Vec::with_capacity(triples.len());
        let mut num: Vec<V> = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            debug_assert!((r as usize) < nrows, "row {r} out of bounds {nrows}");
            debug_assert!(c < ncols, "col {c} out of bounds {ncols}");
            if jc.last() == Some(&c) && ir.last() == Some(&r) {
                add(num.last_mut().unwrap(), v);
                continue;
            }
            if jc.last() != Some(&c) {
                jc.push(c);
                cp.push(ir.len());
            }
            ir.push(r);
            num.push(v);
            *cp.last_mut().unwrap() = ir.len();
        }
        Dcsc {
            nrows,
            ncols,
            jc,
            cp,
            ir,
            num,
        }
    }

    /// Number of rows of the block.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the block (column id space).
    #[inline]
    pub fn ncols(&self) -> u64 {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// Number of non-empty columns.
    #[inline]
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// Ids of the non-empty columns, ascending.
    #[inline]
    pub fn cols(&self) -> &[u64] {
        &self.jc
    }

    /// `(rows, values)` of the i-th non-empty column.
    #[inline]
    pub fn col_by_index(&self, i: usize) -> (&[u32], &[V]) {
        let (s, e) = (self.cp[i], self.cp[i + 1]);
        (&self.ir[s..e], &self.num[s..e])
    }

    /// Look up a column by id (binary search over `jc`).
    pub fn col(&self, c: u64) -> Option<(&[u32], &[V])> {
        self.jc.binary_search(&c).ok().map(|i| self.col_by_index(i))
    }

    /// Iterate `(row, col, &value)` over all nonzeros in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64, &V)> + '_ {
        self.jc.iter().enumerate().flat_map(move |(i, &c)| {
            let (rows, vals) = self.col_by_index(i);
            rows.iter().zip(vals.iter()).map(move |(&r, v)| (r, c, v))
        })
    }

    /// Consume into local triples.
    pub fn into_triples(self) -> Vec<(u32, u64, V)> {
        let mut out = Vec::with_capacity(self.ir.len());
        let mut col_iter = self.jc.iter().zip(self.cp.windows(2));
        let mut cur = col_iter.next();
        for (idx, (r, v)) in self.ir.into_iter().zip(self.num).enumerate() {
            while let Some((&c, w)) = cur {
                if idx < w[1] {
                    out.push((r, c, v));
                    break;
                }
                cur = col_iter.next();
            }
        }
        out
    }

    /// Keep only entries where `keep(row, col, &value)` is true.
    pub fn retain(&mut self, keep: impl Fn(u32, u64, &V) -> bool) {
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir = Vec::new();
        let mut num = Vec::new();
        let old_num = std::mem::take(&mut self.num);
        let mut vals = old_num.into_iter();
        for (i, &c) in self.jc.iter().enumerate() {
            let (s, e) = (self.cp[i], self.cp[i + 1]);
            let mut any = false;
            for k in s..e {
                let r = self.ir[k];
                let v = vals.next().unwrap();
                if keep(r, c, &v) {
                    if !any {
                        jc.push(c);
                        cp.push(ir.len());
                        any = true;
                    }
                    ir.push(r);
                    num.push(v);
                    *cp.last_mut().unwrap() = ir.len();
                }
            }
        }
        self.jc = jc;
        self.cp = cp;
        self.ir = ir;
        self.num = num;
    }

    /// Map values (and keep structure).
    pub fn map<W>(self, f: impl Fn(u32, u64, V) -> W) -> Dcsc<W> {
        let mut rows_cols = Vec::with_capacity(self.ir.len());
        for (i, &c) in self.jc.iter().enumerate() {
            for k in self.cp[i]..self.cp[i + 1] {
                rows_cols.push((self.ir[k], c));
            }
        }
        let num = self
            .num
            .into_iter()
            .zip(rows_cols.iter())
            .map(|(v, &(r, c))| f(r, c, v))
            .collect();
        Dcsc {
            nrows: self.nrows,
            ncols: self.ncols,
            jc: self.jc,
            cp: self.cp,
            ir: self.ir,
            num,
        }
    }

    /// Transpose this block locally, producing a `ncols × nrows` block.
    pub fn transpose(self) -> Dcsc<V> {
        let (nrows, ncols) = (self.nrows, self.ncols);
        assert!(
            ncols < u32::MAX as u64,
            "transpose would need u32 row ids ≥ 2³²"
        );
        let triples: Vec<(u32, u64, V)> = self
            .into_triples()
            .into_iter()
            .map(|(r, c, v)| (c as u32, r as u64, v))
            .collect();
        Dcsc::from_triples(ncols as usize, nrows as u64, triples, |_, _| {
            unreachable!("transpose cannot create duplicates")
        })
    }
}

impl<V: Payload + Clone> Payload for Dcsc<V> {
    fn payload_bytes(&self) -> usize {
        // Arrays dominate: jc (8B), cp (8B), ir (4B) and the values.
        self.jc.len() * 8
            + self.cp.len() * 8
            + self.ir.len() * 4
            + self.num.iter().map(Payload::payload_bytes).sum::<usize>()
            + 24 // dims + lengths header
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dcsc<f64> {
        // 4x6 block:
        // col 1: (0, 1.0), (2, 2.0); col 4: (3, 3.0)
        Dcsc::from_triples(4, 6, vec![(3, 4, 3.0), (0, 1, 1.0), (2, 1, 2.0)], |a, b| {
            *a += b
        })
    }

    #[test]
    fn construction_sorts_and_indexes() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.nzc(), 2);
        assert_eq!(m.cols(), &[1, 4]);
        let (rows, vals) = m.col(1).unwrap();
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.0]);
        assert!(m.col(0).is_none());
        assert!(m.col(2).is_none());
    }

    #[test]
    fn duplicates_are_combined() {
        let m = Dcsc::from_triples(2, 2, vec![(1, 1, 5.0), (1, 1, 7.0)], |a, b| *a += b);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(1).unwrap().1, &[12.0]);
    }

    #[test]
    fn iter_is_column_major() {
        let m = sample();
        let got: Vec<(u32, u64, f64)> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(got, vec![(0, 1, 1.0), (2, 1, 2.0), (3, 4, 3.0)]);
    }

    #[test]
    fn into_triples_roundtrip() {
        let m = sample();
        let t = m.clone().into_triples();
        let m2 = Dcsc::from_triples(4, 6, t, |a, b| *a += b);
        assert_eq!(m, m2);
    }

    #[test]
    fn retain_filters_and_compacts() {
        let mut m = sample();
        m.retain(|_, _, &v| v > 1.5);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.cols(), &[1, 4]);
        let got: Vec<f64> = m.iter().map(|(_, _, &v)| v).collect();
        assert_eq!(got, vec![2.0, 3.0]);
        m.retain(|_, _, &v| v > 2.5);
        assert_eq!(m.nzc(), 1);
        assert_eq!(m.cols(), &[4]);
    }

    #[test]
    fn retain_all_empty() {
        let mut m = sample();
        m.retain(|_, _, _| false);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nzc(), 0);
    }

    #[test]
    fn map_changes_values() {
        let m = sample().map(|r, c, v| (r as u64 + c) as f64 * v);
        let got: Vec<f64> = m.iter().map(|(_, _, &v)| v).collect();
        assert_eq!(got, vec![1.0, 6.0, 21.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.clone().transpose();
        assert_eq!(t.nrows(), 6);
        assert_eq!(t.ncols(), 4);
        assert_eq!(t.col(2).unwrap().0, &[1]);
        let back = t.transpose();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_block() {
        let m = Dcsc::<u8>::empty(10, 100);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nzc(), 0);
        assert!(m.iter().next().is_none());
    }

    #[test]
    fn payload_bytes_counts_arrays() {
        let m = sample();
        // jc: 2*8, cp: 3*8, ir: 3*4, num: 3*8, header 24
        assert_eq!(m.payload_bytes(), 16 + 24 + 12 + 24 + 24);
    }
}
