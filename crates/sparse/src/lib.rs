//! `sparse` — the CombBLAS-style sparse matrix substrate of the PASTIS
//! reproduction.
//!
//! Provides:
//! - [`Dcsc`]: doubly compressed sparse column storage for hypersparse local
//!   blocks (paper §IV-D) — no per-column pointer array, so a 1M × 244M
//!   k-mer matrix block costs memory proportional to its nonzeros only.
//! - [`Csc`]: plain compressed sparse column storage for shared-memory use
//!   (e.g. Markov clustering on the similarity graph).
//! - [`Semiring`]: user-defined add/multiply pairs; PASTIS overloads these
//!   to carry seed positions through `A·Aᵀ` and `(A·S)·Aᵀ` (paper Fig. 4).
//! - Local SpGEMM with hash-based, heap-based and hybrid accumulation — the
//!   strategy mix CombBLAS uses for its local multiplies.
//! - [`DistMat`]: 2D block-distributed matrices over a [`pcomm::Grid`] with
//!   Sparse-SUMMA SpGEMM, distributed transpose and symmetrization.

mod accum;
mod csc;
mod dcsc;
mod dist;
mod dist3d;
mod local_spgemm;
mod semiring;
mod triple;

pub use accum::HashAccumulator;
pub use csc::Csc;
pub use dcsc::Dcsc;
pub use dist::{DistMat, SummaStream};
pub use dist3d::{spgemm_3d, Grid3D};
pub use local_spgemm::{local_spgemm, SpGemmStrategy};
pub use semiring::{ArithmeticSemiring, MaxPlusSemiring, OrAndSemiring, Semiring};
pub use triple::{sort_dedup_triples, Triple};
