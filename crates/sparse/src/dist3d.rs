//! 3D (split-inner-dimension) SpGEMM — the third decomposition axis the
//! paper notes CombBLAS and CTF both support (§II-A).
//!
//! With `p = L·q²` ranks arranged as `L` layers of `q×q` grids, the inner
//! dimension is sliced into `L` slabs: layer `l` owns `A(:, slab_l)` and
//! `B(slab_l, :)` and runs an ordinary 2D Sparse SUMMA on its slice, giving
//! a *partial* `C`. Partials are then folded along the "fiber"
//! subcommunicators (the ranks sharing a grid position across layers) onto
//! layer 0. Replicating the output assembly across fewer, fatter SUMMA
//! stages trades memory for latency — the same trade 2.5D/3D dense
//! algorithms make.

use std::rc::Rc;

use pcomm::{Comm, Grid, Payload};

use crate::dist::{block_owner, DistMat};
use crate::local_spgemm::SpGemmStrategy;
use crate::semiring::Semiring;
use crate::triple::Triple;

/// The communicator layout of a 3D multiply: `layers` layer grids and the
/// fiber communicator connecting this rank to its peers in other layers.
pub struct Grid3D {
    /// Number of layers (L).
    layers: usize,
    /// My layer index.
    my_layer: usize,
    /// The q×q grid of my layer.
    grid: Rc<Grid>,
    /// Ranks sharing my grid position across layers (size L).
    fiber: Comm,
}

impl Grid3D {
    /// Build over all ranks of `comm`: requires `comm.size() == layers·q²`.
    /// Collective.
    pub fn new(comm: &Comm, layers: usize) -> Grid3D {
        let p = comm.size();
        assert!(
            layers >= 1 && p.is_multiple_of(layers),
            "size {p} not divisible into {layers} layers"
        );
        let per_layer = p / layers;
        let q = (per_layer as f64).sqrt().round() as usize;
        assert_eq!(
            q * q,
            per_layer,
            "layer size {per_layer} is not a perfect square"
        );
        let my_layer = comm.rank() / per_layer;
        // Layer subcommunicators (collective: everyone iterates all layers).
        let mut layer_comm = None;
        for l in 0..layers {
            let members: Vec<usize> = (l * per_layer..(l + 1) * per_layer).collect();
            if let Some(c) = comm.subcomm(&members) {
                debug_assert_eq!(l, my_layer);
                layer_comm = Some(c);
            }
        }
        // Fiber subcommunicators: one per in-layer position.
        let my_pos = comm.rank() % per_layer;
        let mut fiber = None;
        for pos in 0..per_layer {
            let members: Vec<usize> = (0..layers).map(|l| l * per_layer + pos).collect();
            if let Some(c) = comm.subcomm(&members) {
                debug_assert_eq!(pos, my_pos);
                fiber = Some(c);
            }
        }
        let grid = Rc::new(Grid::new(&layer_comm.expect("member of own layer")));
        Grid3D {
            layers,
            my_layer,
            grid,
            fiber: fiber.expect("member of own fiber"),
        }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// My layer index.
    pub fn my_layer(&self) -> usize {
        self.my_layer
    }

    /// My layer's 2D grid.
    pub fn grid(&self) -> &Rc<Grid> {
        &self.grid
    }
}

/// 3D SpGEMM from globally-indexed triples scattered over all ranks.
/// Returns the product as a `DistMat` on layer 0's grid (`Some` there,
/// `None` on other layers). Collective over the whole 3D arrangement.
///
/// Input triples must be duplicate-free (one value per coordinate across
/// all ranks); the output fold uses `sr.add` in ascending inner-dimension
/// order, bit-identical to the 2D [`DistMat::spgemm`] result.
pub fn spgemm_3d<SR>(
    g3: &Grid3D,
    dims: (u64, u64, u64), // (m, k, n)
    a_triples: Vec<Triple<SR::A>>,
    b_triples: Vec<Triple<SR::B>>,
    sr: &SR,
    strategy: SpGemmStrategy,
) -> Option<DistMat<SR::C>>
where
    SR: Semiring,
    SR::A: Payload + Clone,
    SR::B: Payload + Clone,
    SR::C: Payload + Clone,
{
    let (m, k, n) = dims;
    let layers = g3.layers;
    // Route each A triple to the layer owning its inner-dimension slab,
    // keeping global indices (each layer's slice is simply sparser outside
    // its slab, so dimensions stay (m, k) / (k, n)).
    let route = |col: u64| block_owner(k, layers, col);
    // The fiber communicator connects identical grid positions across
    // layers, so slab exchange = alltoallv on the fiber.
    let mut a_parts: Vec<Vec<Triple<SR::A>>> = (0..layers).map(|_| Vec::new()).collect();
    for (r, c, v) in a_triples {
        a_parts[route(c)].push((r, c, v));
    }
    let a_mine: Vec<Triple<SR::A>> = g3.fiber.alltoallv(a_parts).into_iter().flatten().collect();
    let mut b_parts: Vec<Vec<Triple<SR::B>>> = (0..layers).map(|_| Vec::new()).collect();
    for (r, c, v) in b_triples {
        b_parts[route(r)].push((r, c, v));
    }
    let b_mine: Vec<Triple<SR::B>> = g3.fiber.alltoallv(b_parts).into_iter().flatten().collect();

    // Per-layer 2D SUMMA over the slab slice.
    let a_l = DistMat::from_triples(Rc::clone(&g3.grid), m, k, a_mine, |_, _| {
        unreachable!("duplicate A coordinates within one slab")
    });
    let b_l = DistMat::from_triples(Rc::clone(&g3.grid), k, n, b_mine, |_, _| {
        unreachable!("duplicate B coordinates within one slab")
    });
    let c_partial = a_l.spgemm(&b_l, sr, strategy);

    // Fold partials across layers onto layer 0. Ascending layer order keeps
    // the add fold deterministic (and equal to the 2D fold order, because
    // slabs partition the inner dimension in ascending ranges).
    let mine: Vec<Triple<SR::C>> = c_partial
        .iter_local()
        .map(|(r, c, v)| (r, c, v.clone()))
        .collect();
    let gathered = g3.fiber.gather(0, mine);
    gathered.map(|parts| {
        let triples: Vec<Triple<SR::C>> = parts.into_iter().flatten().collect();
        DistMat::from_triples(Rc::clone(&g3.grid), m, n, triples, |acc, v| sr.add(acc, v))
    })
}
