//! Property-based tests: the best-first substitute k-mer search agrees
//! with brute force on the full k-mer space, and the min-max heap behaves
//! like a sorted multiset.

use align::BLOSUM62;
use proptest::prelude::*;
use subkmer::{find_sub_kmers, kmer_distance, ExpenseTable, MinMaxHeap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_bruteforce_k2(seed in proptest::collection::vec(0u8..24, 2..3), m in 1usize..60) {
        let table = ExpenseTable::new(&BLOSUM62);
        let got: Vec<u32> = find_sub_kmers(&seed, &table, m).iter().map(|s| s.dist).collect();
        let mut want: Vec<u32> = (0..24u64 * 24)
            .filter(|&id| id != seqstore::kmer_id(&seed))
            .map(|id| kmer_distance(&seed, &seqstore::kmer_unpack(id, 2), &BLOSUM62))
            .collect();
        want.sort_unstable();
        want.truncate(m);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn results_unique_sorted_correct_distance(
        seed in proptest::collection::vec(0u8..20, 3..6),
        m in 1usize..40,
    ) {
        let table = ExpenseTable::new(&BLOSUM62);
        let subs = find_sub_kmers(&seed, &table, m);
        prop_assert_eq!(subs.len(), m); // space is large enough for k>=3
        prop_assert!(subs.windows(2).all(|w| (w[0].dist, w[0].id) < (w[1].dist, w[1].id)));
        for s in &subs {
            let bases = seqstore::kmer_unpack(s.id, seed.len());
            prop_assert_eq!(s.dist, kmer_distance(&seed, &bases, &BLOSUM62));
            prop_assert_ne!(s.id, seqstore::kmer_id(&seed));
        }
    }

    #[test]
    fn minmax_heap_is_a_multiset(ops in proptest::collection::vec((0u8..3, -50i32..50), 0..400)) {
        let mut heap = MinMaxHeap::new();
        let mut reference: Vec<i32> = Vec::new();
        for (op, v) in ops {
            match op {
                0 => {
                    heap.push(v);
                    reference.push(v);
                    reference.sort_unstable();
                }
                1 => {
                    let got = heap.pop_min();
                    let want = if reference.is_empty() { None } else { Some(reference.remove(0)) };
                    prop_assert_eq!(got, want);
                }
                _ => {
                    let got = heap.pop_max();
                    let want = reference.pop();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(heap.len(), reference.len());
            prop_assert_eq!(heap.peek_min().copied(), reference.first().copied());
            prop_assert_eq!(heap.peek_max().copied(), reference.last().copied());
        }
    }
}
