//! Builder for the sparse substitution matrix `S` (paper §IV-C): rows and
//! columns are the `24^k` k-mer id space, row `K` holds `K`'s m nearest
//! substitute k-mers (plus the identity at distance 0) so that `(A·S)`
//! expands each sequence's k-mer set without inflating `A` itself.

use crate::expense::ExpenseTable;
use crate::find::find_sub_kmers;
use seqstore::kmer_unpack;

/// A nonzero of `S`: distance of the substitute to its source k-mer.
pub type SubEntry = u32;

/// Triples `(kmer_id, substitute_kmer_id, distance)` for the distinct
/// k-mers in `kmers`. Each row gets its `m` nearest substitutes plus the
/// identity entry `(K, K, 0)` — exact sharing must keep matching under
/// `(A·S)·Aᵀ`.
///
/// With `m == 0` only identity entries are produced, which makes
/// `(A·S)·Aᵀ` coincide with `A·Aᵀ` (the paper's `s0` configuration).
pub fn build_s_triples(
    kmers: &[u64],
    k: usize,
    table: &ExpenseTable,
    m: usize,
) -> Vec<(u64, u64, SubEntry)> {
    let mut out = Vec::with_capacity(kmers.len() * (m + 1));
    for &id in kmers {
        out.push((id, id, 0));
        if m > 0 {
            let bases = kmer_unpack(id, k);
            for sub in find_sub_kmers(&bases, table, m) {
                out.push((id, sub.id, sub.dist));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::BLOSUM62;
    use seqstore::{encode_seq, kmer_id};

    #[test]
    fn identity_always_present() {
        let t = ExpenseTable::new(&BLOSUM62);
        let kmers = vec![kmer_id(&encode_seq(b"AAC")), kmer_id(&encode_seq(b"WWW"))];
        let triples = build_s_triples(&kmers, 3, &t, 0);
        assert_eq!(triples.len(), 2);
        for (r, c, d) in triples {
            assert_eq!(r, c);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn m_substitutes_per_row() {
        let t = ExpenseTable::new(&BLOSUM62);
        let kmers = vec![kmer_id(&encode_seq(b"AAC"))];
        let triples = build_s_triples(&kmers, 3, &t, 25);
        assert_eq!(triples.len(), 26);
        // Row ids all equal the source k-mer; distances ascend after the
        // identity entry.
        assert!(triples.iter().all(|&(r, _, _)| r == kmers[0]));
        let dists: Vec<u32> = triples.iter().map(|&(_, _, d)| d).collect();
        assert_eq!(dists[0], 0);
        assert!(dists[1..].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn no_duplicate_columns_within_row() {
        let t = ExpenseTable::new(&BLOSUM62);
        let kmers = vec![kmer_id(&encode_seq(b"MKVLAW"))];
        let triples = build_s_triples(&kmers, 6, &t, 50);
        let mut cols: Vec<u64> = triples.iter().map(|&(_, c, _)| c).collect();
        let n = cols.len();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), n);
    }
}
