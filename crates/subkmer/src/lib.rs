//! `subkmer` — generation of the *m nearest substitute k-mers* of a k-mer
//! under a substitution matrix (paper §IV-B, Algorithms 1–3).
//!
//! A substitute k-mer's distance to its seed is the total substitution
//! *expense* (score lost versus an exact match). The m nearest are found
//! with a best-first exploration in the spirit of Dijkstra's algorithm over
//! the implicit substitution tree: a sorted per-base expense table provides
//! children in increasing cost, and a min-max heap of size `m` maintains the
//! current candidate frontier.
//!
//! The crate also builds the sparse substitution matrix `S` (k-mer →
//! substitute k-mer, at most `m`+1 nonzeros per row including the identity)
//! that PASTIS multiplies into `(A·S)·Aᵀ` (paper §IV-C).

mod expense;
mod find;
mod minmax_heap;
mod smatrix;

pub use expense::ExpenseTable;
pub use find::{find_sub_kmers, kmer_distance, SubKmer};
pub use minmax_heap::MinMaxHeap;
pub use smatrix::{build_s_triples, SubEntry};
