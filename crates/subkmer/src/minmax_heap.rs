//! An interval min-max heap (Atkinson et al. 1986): a double-ended priority
//! queue with O(1) access to both the minimum and the maximum and
//! O(log n) insertion and extraction at either end.
//!
//! This is the `minmaxheap` of the paper's Algorithms 1–3: it holds the
//! current m-nearest candidate set, confirming from the min end and
//! evicting from the max end when a closer candidate arrives.
//!
//! Layout: a binary heap whose even levels (root = level 0) obey the min
//! property and odd levels the max property — every node on a min level is
//! ≤ all of its descendants; every node on a max level is ≥ all of its
//! descendants.

/// A double-ended priority queue over `Ord` items.
#[derive(Debug, Clone, Default)]
pub struct MinMaxHeap<T: Ord> {
    data: Vec<T>,
}

#[inline]
fn is_min_level(i: usize) -> bool {
    // Level of node i is floor(log2(i+1)); even levels are min levels.
    ((i + 1).ilog2()).is_multiple_of(2)
}

impl<T: Ord> MinMaxHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        MinMaxHeap { data: Vec::new() }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the heap holds nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The smallest item, if any.
    pub fn peek_min(&self) -> Option<&T> {
        self.data.first()
    }

    /// The largest item, if any.
    pub fn peek_max(&self) -> Option<&T> {
        match self.data.len() {
            0 => None,
            1 => Some(&self.data[0]),
            2 => Some(&self.data[1]),
            _ => Some(if self.data[1] >= self.data[2] {
                &self.data[1]
            } else {
                &self.data[2]
            }),
        }
    }

    fn max_index(&self) -> Option<usize> {
        match self.data.len() {
            0 => None,
            1 => Some(0),
            2 => Some(1),
            _ => Some(if self.data[1] >= self.data[2] { 1 } else { 2 }),
        }
    }

    /// Insert an item.
    pub fn push(&mut self, item: T) {
        self.data.push(item);
        self.bubble_up(self.data.len() - 1);
    }

    /// Remove and return the smallest item.
    pub fn pop_min(&mut self) -> Option<T> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let out = self.data.pop();
        if !self.data.is_empty() {
            self.trickle_down(0);
        }
        out
    }

    /// Remove and return the largest item.
    pub fn pop_max(&mut self) -> Option<T> {
        let i = self.max_index()?;
        let last = self.data.len() - 1;
        self.data.swap(i, last);
        let out = self.data.pop();
        if i < self.data.len() {
            self.trickle_down(i);
        }
        out
    }

    /// Drain ascending (for inspection; O(n log n)).
    pub fn into_sorted_vec(mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(x) = self.pop_min() {
            out.push(x);
        }
        out
    }

    fn bubble_up(&mut self, i: usize) {
        if i == 0 {
            return;
        }
        let parent = (i - 1) / 2;
        if is_min_level(i) {
            if self.data[i] > self.data[parent] {
                self.data.swap(i, parent);
                self.bubble_up_max(parent);
            } else {
                self.bubble_up_min(i);
            }
        } else if self.data[i] < self.data[parent] {
            self.data.swap(i, parent);
            self.bubble_up_min(parent);
        } else {
            self.bubble_up_max(i);
        }
    }

    fn bubble_up_min(&mut self, mut i: usize) {
        // Grandparent hops on min levels.
        while i >= 3 {
            let gp = ((i - 1) / 2 - 1) / 2;
            if self.data[i] < self.data[gp] {
                self.data.swap(i, gp);
                i = gp;
            } else {
                break;
            }
        }
    }

    fn bubble_up_max(&mut self, mut i: usize) {
        while i >= 3 {
            let gp = ((i - 1) / 2 - 1) / 2;
            if self.data[i] > self.data[gp] {
                self.data.swap(i, gp);
                i = gp;
            } else {
                break;
            }
        }
    }

    /// Children and grandchildren of `i` that exist.
    fn descendants(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let c1 = 2 * i + 1;
        let c2 = 2 * i + 2;
        let gc = (2 * c1 + 1)..=(2 * c2 + 2);
        [c1, c2]
            .into_iter()
            .chain(gc)
            .filter(move |&d| d < self.data.len())
    }

    fn trickle_down(&mut self, i: usize) {
        if is_min_level(i) {
            self.trickle_down_min(i);
        } else {
            self.trickle_down_max(i);
        }
    }

    fn trickle_down_min(&mut self, mut i: usize) {
        loop {
            let Some(m) = self
                .descendants(i)
                .min_by(|&a, &b| self.data[a].cmp(&self.data[b]))
            else {
                return;
            };
            let is_grandchild = m >= 4 * i + 3;
            if self.data[m] < self.data[i] {
                self.data.swap(i, m);
                if is_grandchild {
                    let parent = (m - 1) / 2;
                    if self.data[m] > self.data[parent] {
                        self.data.swap(m, parent);
                    }
                    i = m;
                    continue;
                }
            }
            return;
        }
    }

    fn trickle_down_max(&mut self, mut i: usize) {
        loop {
            let Some(m) = self
                .descendants(i)
                .max_by(|&a, &b| self.data[a].cmp(&self.data[b]))
            else {
                return;
            };
            let is_grandchild = m >= 4 * i + 3;
            if self.data[m] > self.data[i] {
                self.data.swap(i, m);
                if is_grandchild {
                    let parent = (m - 1) / 2;
                    if self.data[m] < self.data[parent] {
                        self.data.swap(m, parent);
                    }
                    i = m;
                    continue;
                }
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn min_and_max_tracking() {
        let mut h = MinMaxHeap::new();
        for x in [5, 1, 9, 3, 7, 2, 8] {
            h.push(x);
        }
        assert_eq!(h.peek_min(), Some(&1));
        assert_eq!(h.peek_max(), Some(&9));
        assert_eq!(h.pop_max(), Some(9));
        assert_eq!(h.pop_min(), Some(1));
        assert_eq!(h.peek_min(), Some(&2));
        assert_eq!(h.peek_max(), Some(&8));
    }

    #[test]
    fn empty_and_singleton() {
        let mut h: MinMaxHeap<i32> = MinMaxHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.pop_min(), None);
        assert_eq!(h.pop_max(), None);
        h.push(42);
        assert_eq!(h.peek_min(), Some(&42));
        assert_eq!(h.peek_max(), Some(&42));
        assert_eq!(h.pop_max(), Some(42));
        assert!(h.is_empty());
    }

    #[test]
    fn two_elements() {
        let mut h = MinMaxHeap::new();
        h.push(2);
        h.push(1);
        assert_eq!(h.peek_min(), Some(&1));
        assert_eq!(h.peek_max(), Some(&2));
    }

    #[test]
    fn ascending_drain_matches_sort() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in [0usize, 1, 2, 3, 10, 100, 1000] {
            let mut v: Vec<i64> = (0..n).map(|_| rng.random_range(-50..50)).collect();
            let mut h = MinMaxHeap::new();
            for &x in &v {
                h.push(x);
            }
            let got = h.into_sorted_vec();
            v.sort_unstable();
            assert_eq!(got, v, "n={n}");
        }
    }

    #[test]
    fn randomized_mixed_ops_match_btreemultiset() {
        use std::collections::BTreeMap;
        let mut rng = StdRng::seed_from_u64(99);
        let mut h = MinMaxHeap::new();
        let mut reference: BTreeMap<i32, usize> = BTreeMap::new();
        for _ in 0..5000 {
            match rng.random_range(0..4) {
                0 | 1 => {
                    let x = rng.random_range(-100..100);
                    h.push(x);
                    *reference.entry(x).or_insert(0) += 1;
                }
                2 => {
                    let got = h.pop_min();
                    let want = reference.iter().next().map(|(&k, _)| k);
                    assert_eq!(got, want);
                    if let Some(k) = want {
                        let cnt = reference.get_mut(&k).unwrap();
                        *cnt -= 1;
                        if *cnt == 0 {
                            reference.remove(&k);
                        }
                    }
                }
                _ => {
                    let got = h.pop_max();
                    let want = reference.iter().next_back().map(|(&k, _)| k);
                    assert_eq!(got, want);
                    if let Some(k) = want {
                        let cnt = reference.get_mut(&k).unwrap();
                        *cnt -= 1;
                        if *cnt == 0 {
                            reference.remove(&k);
                        }
                    }
                }
            }
            let n = h.len();
            assert_eq!(n, reference.values().sum::<usize>());
            if n > 0 {
                assert_eq!(h.peek_min(), reference.iter().next().map(|(k, _)| k));
                assert_eq!(h.peek_max(), reference.iter().next_back().map(|(k, _)| k));
            }
        }
    }
}
