//! The m-nearest substitute k-mer search (paper Algorithms 1–3).
//!
//! Exploration is best-first over the implicit substitution tree. Each
//! candidate may only substitute positions to the right of its last
//! substituted position, which makes every multi-substitution k-mer
//! reachable by exactly one path (the tree property the paper relies on)
//! while leaving distances — which are order-independent sums — unchanged.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use align::ScoringMatrix;
use seqstore::kmer_id;

use crate::expense::ExpenseTable;
use crate::minmax_heap::MinMaxHeap;

/// A substitute k-mer: its packed id and its distance (total substitution
/// expense) from the seed k-mer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubKmer {
    /// Packed k-mer id of the substitute.
    pub id: u64,
    /// Total expense relative to the seed (0 only for clamped-expense
    /// substitutions of ambiguity codes).
    pub dist: u32,
}

/// Frontier candidate: ordered by (dist, id) so ties are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Cand {
    dist: u32,
    id: u64,
    bases: Vec<u8>,
    /// First position allowed for further substitutions (canonical order).
    next_pos: u8,
}

/// Distance between two equal-length k-mers: the summed (clamped)
/// substitution expense of turning `from` into `to`.
pub fn kmer_distance(from: &[u8], to: &[u8], matrix: &ScoringMatrix) -> u32 {
    assert_eq!(from.len(), to.len());
    from.iter()
        .zip(to)
        .map(|(&f, &t)| {
            if f == t {
                0
            } else {
                matrix.expense(f, t).max(0) as u32
            }
        })
        .sum()
}

/// Find the `m` nearest substitute k-mers of `seed` (base indices), sorted
/// by ascending `(dist, id)`. The seed itself is not included. Fewer than
/// `m` are returned only when the whole substitution space is smaller.
pub fn find_sub_kmers(seed: &[u8], table: &ExpenseTable, m: usize) -> Vec<SubKmer> {
    let k = seed.len();
    assert!((1..=13).contains(&k));
    if m == 0 {
        return Vec::new();
    }
    let mut nbrs: Vec<SubKmer> = Vec::with_capacity(m);
    let mut frontier: MinMaxHeap<Cand> = MinMaxHeap::new();
    let root = Cand {
        dist: 0,
        id: kmer_id(seed),
        bases: seed.to_vec(),
        next_pos: 0,
    };
    explore(&root, &mut frontier, table, m);
    while nbrs.len() < m {
        let Some(confirmed) = frontier.pop_min() else {
            break; // substitution space exhausted
        };
        nbrs.push(SubKmer {
            id: confirmed.id,
            dist: confirmed.dist,
        });
        explore(&confirmed, &mut frontier, table, m);
    }
    nbrs
}

/// Paper Algorithm 2 (+3 inlined): push the nearest unseen children of `p`
/// onto the frontier. A local min-heap iterates `p`'s possible single
/// substitutions in increasing total distance; insertion stops once the
/// cheapest remaining child cannot beat the frontier's maximum (with the
/// frontier full), because no later child can either.
fn explore(p: &Cand, frontier: &mut MinMaxHeap<Cand>, table: &ExpenseTable, m: usize) {
    let k = p.bases.len();
    // (total distance, position, substitution index) per free position.
    let mut mh: BinaryHeap<Reverse<(u32, u8, u8)>> = BinaryHeap::new();
    for pos in p.next_pos as usize..k {
        let b = p.bases[pos];
        mh.push(Reverse((p.dist + table.row(b)[0].0 as u32, pos as u8, 0)));
    }
    loop {
        let Some(&Reverse((msb, pos, sid))) = mh.peek() else {
            return;
        };
        if frontier.len() >= m {
            let max = frontier.peek_max().expect("frontier non-empty");
            if msb >= max.dist {
                return; // no remaining child can improve the m-nearest set
            }
        }
        mh.pop();
        // MAKENEWSUBK: materialize the child, evicting the current worst
        // candidate when the frontier is at capacity.
        let b = p.bases[pos as usize];
        let (exp, newbase) = table.row(b)[sid as usize];
        debug_assert_eq!(p.dist + exp as u32, msb);
        let mut bases = p.bases.clone();
        bases[pos as usize] = newbase;
        let child = Cand {
            dist: msb,
            id: kmer_id(&bases),
            bases,
            next_pos: pos + 1,
        };
        if frontier.len() >= m {
            frontier.pop_max();
        }
        frontier.push(child);
        // Work accounting: clone + heap ops per materialized child.
        pcomm::work::record_class(1, pcomm::work::CostClass::SubkmerChild);
        // Queue the next-cheapest substitution at this position.
        if (sid as usize + 1) < table.row(b).len() {
            mh.push(Reverse((
                p.dist + table.row(b)[sid as usize + 1].0 as u32,
                pos,
                sid + 1,
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::BLOSUM62;
    use seqstore::{encode_seq, kmer_unpack, SIGMA};

    fn table() -> ExpenseTable {
        ExpenseTable::new(&BLOSUM62)
    }

    /// Brute force: distances of ALL k-mers to the seed, m smallest.
    fn brute_force_dists(seed: &[u8], m: usize) -> Vec<u32> {
        let k = seed.len();
        let total = (SIGMA as u64).pow(k as u32);
        let mut dists: Vec<u32> = (0..total)
            .filter(|&id| id != seqstore::kmer_id(seed))
            .map(|id| kmer_distance(seed, &kmer_unpack(id, k), &BLOSUM62))
            .collect();
        dists.sort_unstable();
        dists.truncate(m);
        dists
    }

    #[test]
    fn paper_example_aac() {
        // §IV-B: the nearest neighbours of AAC are SAC and ASC at distance
        // 3 (A→S costs 4−1). The paper's walkthrough then names SSC (6),
        // but under the full BLOSUM62 several distance-4 single
        // substitutions (A→C/G/T/V/X score 0) come first.
        let t = table();
        let seed = encode_seq(b"AAC");
        let subs = find_sub_kmers(&seed, &t, 40);
        assert_eq!(subs.len(), 40);
        assert_eq!(subs[0].dist, 3);
        assert_eq!(subs[1].dist, 3);
        assert_eq!(subs[2].dist, 4);
        let names: Vec<String> = subs
            .iter()
            .map(|s| seqstore::kmer_string(s.id, 3))
            .collect();
        assert_eq!(names[0], "ASC"); // ties broken by k-mer id: A=0 < S=15
        assert_eq!(names[1], "SAC");
        assert!(names.contains(&"SSC".to_string()));
        // The cheapest substitution of C costs 9, so no AA* variant can be
        // among anything closer than that (§IV-B's central claim).
        for (s, name) in subs.iter().zip(&names) {
            if s.dist < 9 {
                assert!(!name.starts_with("AA"), "{name} at {}", s.dist);
            }
        }
    }

    #[test]
    fn matches_brute_force_k2() {
        let t = table();
        for seed_str in [b"AC".as_ref(), b"WW", b"MK", b"CC"] {
            let seed = encode_seq(seed_str);
            for m in [1usize, 5, 17, 40] {
                let got: Vec<u32> = find_sub_kmers(&seed, &t, m)
                    .iter()
                    .map(|s| s.dist)
                    .collect();
                let want = brute_force_dists(&seed, m);
                assert_eq!(got, want, "seed={seed_str:?} m={m}");
            }
        }
    }

    #[test]
    fn matches_brute_force_k3() {
        let t = table();
        for seed_str in [b"AAC".as_ref(), b"WCH", b"MKV"] {
            let seed = encode_seq(seed_str);
            for m in [1usize, 10, 25, 50] {
                let got: Vec<u32> = find_sub_kmers(&seed, &t, m)
                    .iter()
                    .map(|s| s.dist)
                    .collect();
                let want = brute_force_dists(&seed, m);
                assert_eq!(got, want, "seed={seed_str:?} m={m}");
            }
        }
    }

    #[test]
    fn results_are_distinct_and_sorted() {
        let t = table();
        let seed = encode_seq(b"MKVLAW");
        let subs = find_sub_kmers(&seed, &t, 100);
        assert_eq!(subs.len(), 100);
        let mut ids: Vec<u64> = subs.iter().map(|s| s.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate substitute k-mers");
        assert!(
            !ids.contains(&seqstore::kmer_id(&seed)),
            "seed returned as its own substitute"
        );
        assert!(subs
            .windows(2)
            .all(|w| (w[0].dist, w[0].id) < (w[1].dist, w[1].id)));
    }

    #[test]
    fn multi_hop_beats_single_hop_when_cheaper() {
        // §IV-B's key observation: two cheap substitutions can beat one
        // expensive one. For AAC, TTC (two hops, 4+4=8) must be returned
        // before AAM (one hop, 10).
        let t = table();
        let seed = encode_seq(b"AAC");
        let subs = find_sub_kmers(&seed, &t, 400);
        let pos_of = |name: &str| {
            let id = seqstore::kmer_id(&encode_seq(name.as_bytes()));
            subs.iter().position(|s| s.id == id)
        };
        let ttc = pos_of("TTC").expect("TTC in 400-nearest");
        if let Some(aam) = pos_of("AAM") {
            assert!(ttc < aam);
        }
    }

    #[test]
    fn m_zero_and_exhausted_space() {
        let t = table();
        let seed = encode_seq(b"A");
        assert!(find_sub_kmers(&seed, &t, 0).is_empty());
        // 1-mer space has only 23 substitutes.
        let all = find_sub_kmers(&seed, &t, 100);
        assert_eq!(all.len(), 23);
    }

    #[test]
    fn distance_is_consistent_with_kmer_distance() {
        let t = table();
        let seed = encode_seq(b"HERTY");
        for s in find_sub_kmers(&seed, &t, 40) {
            let bases = kmer_unpack(s.id, 5);
            assert_eq!(s.dist, kmer_distance(&seed, &bases, &BLOSUM62));
        }
    }
}
