//! The sorted expense table `E = SORT(DIAG(C) − C)` of paper §IV-B: for
//! every base, the substitutions available to it ordered by increasing
//! score loss.

use align::ScoringMatrix;
use seqstore::SIGMA;

/// Per-base sorted substitution expenses.
///
/// `row(b)[s]` is the `s`-th cheapest substitution of base `b`, as
/// `(expense, replacement_base)` with `expense = diag(b) − score(b, repl)`
/// clamped at 0 (the ambiguity codes B/Z/X can otherwise yield negative
/// expenses, which would break the monotone best-first exploration).
#[derive(Debug, Clone)]
pub struct ExpenseTable {
    rows: Vec<Vec<(u16, u8)>>,
}

impl ExpenseTable {
    /// Precompute the table for a scoring matrix. Done once per matrix
    /// (paper: "this pre-computation only needs to be done once per scoring
    /// matrix … the cost is minuscule").
    pub fn new(matrix: &ScoringMatrix) -> Self {
        let rows = (0..SIGMA as u8)
            .map(|b| {
                let mut row: Vec<(u16, u8)> = (0..SIGMA as u8)
                    .filter(|&t| t != b)
                    .map(|t| (matrix.expense(b, t).max(0) as u16, t))
                    .collect();
                // Tie-break on the base index for determinism.
                row.sort_unstable();
                row
            })
            .collect();
        ExpenseTable { rows }
    }

    /// Sorted substitutions of base `b` (23 entries).
    #[inline]
    pub fn row(&self, b: u8) -> &[(u16, u8)] {
        &self.rows[b as usize]
    }

    /// The cheapest substitution expense of base `b`.
    #[inline]
    pub fn cheapest(&self, b: u8) -> u16 {
        self.rows[b as usize][0].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align::BLOSUM62;
    use seqstore::aa_index;

    #[test]
    fn rows_are_sorted_and_complete() {
        let e = ExpenseTable::new(&BLOSUM62);
        for b in 0..24u8 {
            let row = e.row(b);
            assert_eq!(row.len(), 23);
            assert!(row.windows(2).all(|w| w[0] <= w[1]), "row {b} unsorted");
            assert!(
                !row.iter().any(|&(_, t)| t == b),
                "self-substitution in row {b}"
            );
        }
    }

    #[test]
    fn paper_example_a_to_s() {
        // §IV-B: the cheapest substitution of A is S, at expense 4 − 1 = 3.
        let e = ExpenseTable::new(&BLOSUM62);
        let a = aa_index(b'A').unwrap();
        let s = aa_index(b'S').unwrap();
        assert_eq!(e.row(a)[0], (3, s));
        assert_eq!(e.cheapest(a), 3);
    }

    #[test]
    fn c_substitutions_are_expensive() {
        // §IV-B argues C is expensive to substitute. The paper's prose picks
        // M (expense 10), overlooking C–A which scores 0: the true cheapest
        // C substitution costs 9 — still far above A's cheapest (3).
        let e = ExpenseTable::new(&BLOSUM62);
        let c = aa_index(b'C').unwrap();
        let a = aa_index(b'A').unwrap();
        assert_eq!(e.row(c)[0], (9, a));
        let m = aa_index(b'M').unwrap();
        assert!(e.row(c).contains(&(10, m)));
    }

    #[test]
    fn negative_expenses_are_clamped() {
        // X→A has raw expense −1 under BLOSUM62.
        let e = ExpenseTable::new(&BLOSUM62);
        let x = aa_index(b'X').unwrap();
        assert_eq!(e.cheapest(x), 0);
    }
}
