//! `xlint` — repository-specific lint gates that `clippy` cannot express.
//!
//! Eight rules, chosen because each guards an invariant another layer of
//! this workspace depends on:
//!
//! - **safety-comment** — every `unsafe` token must have a `// SAFETY:`
//!   comment within the four preceding lines (or on the same line). The
//!   alignment arenas' soundness argument lives in those comments; an
//!   uncommented `unsafe` is an unreviewed proof obligation.
//! - **thread-spawn** — `std::thread` spawn machinery (`thread::spawn`,
//!   `thread::scope`, `thread::Builder`, `spawn_scoped`) is confined to
//!   `crates/pcomm/` (ranks ARE threads there) and the lane-parallel batch
//!   driver `crates/align/src/batch.rs`. Stray threads elsewhere would
//!   bypass the runtime's determinism and the checker's wait-for graph.
//! - **instant-now** — raw `Instant::now()` is confined to `crates/obs/`,
//!   `crates/pcomm/`, and the criterion shim; everything else measures time
//!   through `obs::Stopwatch` so clocks stay virtualizable.
//! - **cost-literal** — the raw work-ledger entry point `work::record`
//!   (which takes an inline ns/op literal) is confined to
//!   `crates/pcomm/src/work.rs`. Kernels record through
//!   `work::record_class`, so every cost constant lives in the `CostClass`
//!   table and stays overridable by a calibrated machine profile; an
//!   inline literal elsewhere would silently escape calibration.
//! - **feature-detect** — `is_x86_feature_detected!` is confined to
//!   `crates/align/src/dispatch.rs`. Runtime CPU dispatch must go through
//!   one cached, `ALIGN_FORCE`-overridable decision point; a stray probe
//!   elsewhere would fork the dispatch policy and escape the forced-lane
//!   test matrix.
//! - **alloc-confinement** — `#[global_allocator]` and raw `std::alloc`
//!   machinery are confined to `crates/obs/src/alloc.rs`. The memory
//!   observatory's accounting is only sound if every allocation flows
//!   through its one tagging allocator; a second allocator (or direct
//!   `std::alloc` calls) would leak bytes past the per-subsystem ledgers
//!   and the window peaks.
//! - **monitor-spawn** — the heartbeat/snapshot thread entry point
//!   `spawn_monitor` is confined to `crates/pcomm/`. The monitor thread
//!   must live inside the world's scope (stopped before panic triage,
//!   ledger-clean under the checker); spawning it anywhere else would
//!   detach it from that lifecycle.
//! - **ckpt-confinement** — the atomic-commit primitive `fs::rename` is
//!   confined to `crates/pastis/src/ckpt.rs`. The checkpoint protocol's
//!   durability argument (tmp-then-rename, checksum before manifest) only
//!   holds if every persistent-state write goes through the one audited
//!   commit path; a stray rename elsewhere would create files a resumed
//!   run trusts without a checksum.
//!
//! `tests/` and `benches/` directories are exempt from the confinement
//! rules (not from safety-comment). A finding can be waived in place with a
//! comment containing `xlint: allow(<rule>)` on the offending line or the
//! line above — waivers are grep-able review anchors, not escape hatches.
//!
//! Parsing is a hand-rolled line lexer (the build environment has no `syn`):
//! comments and string/char-literal *contents* are stripped before token
//! matching, so `"unsafe"` in a string or `Instant::now` in a doc comment
//! never trips a rule. Exit status 1 when any finding survives.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const RULES: [&str; 8] = [
    "safety-comment",
    "thread-spawn",
    "instant-now",
    "cost-literal",
    "feature-detect",
    "alloc-confinement",
    "monitor-spawn",
    "ckpt-confinement",
];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 4;

const SPAWN_TOKENS: [&str; 4] = [
    "thread::spawn",
    "thread::scope",
    "thread::Builder",
    "spawn_scoped",
];
const SPAWN_ALLOWED: [&str; 2] = ["crates/pcomm/", "crates/align/src/batch.rs"];

const INSTANT_TOKEN: &str = "Instant::now";
const INSTANT_ALLOWED: [&str; 3] = ["crates/obs/", "crates/pcomm/", "shims/criterion/"];

const COST_TOKEN: &str = "work::record";
const COST_ALLOWED: [&str; 1] = ["crates/pcomm/src/work.rs"];

const FEATURE_TOKEN: &str = "is_x86_feature_detected";
const FEATURE_ALLOWED: [&str; 1] = ["crates/align/src/dispatch.rs"];

const ALLOC_TOKENS: [&str; 2] = ["global_allocator", "std::alloc"];
const ALLOC_ALLOWED: [&str; 1] = ["crates/obs/src/alloc.rs"];

const MONITOR_TOKEN: &str = "spawn_monitor";
const MONITOR_ALLOWED: [&str; 1] = ["crates/pcomm/"];

const CKPT_TOKEN: &str = "fs::rename";
const CKPT_ALLOWED: [&str; 1] = ["crates/pastis/src/ckpt.rs"];

#[derive(Debug, PartialEq, Eq)]
struct Finding {
    path: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

/// Lexer state carried across lines.
enum St {
    Normal,
    /// Nested block comment depth.
    Block(u32),
    /// Inside a `"…"` string.
    Str,
    /// Inside a raw string closed by `"` + this many `#`.
    RawStr(usize),
}

/// Strip comments and string/char contents, preserving token boundaries.
/// Returns one code line per input line (raw lines stay available to rules
/// that inspect comments, e.g. the SAFETY lookup).
fn strip(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut st = St::Normal;
    for line in src.lines() {
        let b: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(b.len());
        let mut i = 0;
        'line: while i < b.len() {
            match st {
                St::Block(ref mut depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        if *depth == 0 {
                            st = St::Normal;
                            code.push(' ');
                        }
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '"' {
                        st = St::Normal;
                        code.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if b[i] == '"' && b[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
                    {
                        st = St::Normal;
                        code.push('"');
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                St::Normal => match b[i] {
                    '/' if b.get(i + 1) == Some(&'/') => break 'line,
                    '/' if b.get(i + 1) == Some(&'*') => {
                        st = St::Block(1);
                        i += 2;
                    }
                    '"' => {
                        st = St::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' | 'b' if !prev_is_ident(&code) && raw_str_hashes(&b[i..]).is_some() => {
                        let (skip, hashes) = raw_str_hashes(&b[i..]).unwrap();
                        st = St::RawStr(hashes);
                        code.push('"');
                        i += skip;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes with a
                        // quote after one (possibly escaped) character.
                        if b.get(i + 1) == Some(&'\\') {
                            let close = b[i + 2..].iter().position(|&c| c == '\'');
                            i += close.map(|c| c + 3).unwrap_or(2);
                            code.push('\'');
                        } else if b.get(i + 2) == Some(&'\'') {
                            i += 3;
                            code.push('\'');
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
            }
        }
        out.push(code);
    }
    out
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// `r"`, `r#"`, `br"`, `b"` … → (chars to skip, closing hash count).
fn raw_str_hashes(b: &[char]) -> Option<(usize, usize)> {
    let mut i = 1;
    if b[0] == 'b' && b.get(1) == Some(&'r') {
        i = 2;
    } else if b[0] == 'b' {
        // b"…" is an ordinary (byte) string; handled as Str for simplicity.
        return match b.get(1) {
            Some('"') => Some((2, 0)),
            _ => None,
        };
    }
    let hashes = b[i..].iter().take_while(|&&c| c == '#').count();
    (b.get(i + hashes) == Some(&'"')).then_some((i + hashes + 1, hashes))
}

/// Does `code` contain `token` as a standalone path/ident token?
fn has_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + token.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + token.len();
    }
    false
}

fn waived(raw: &[&str], line_idx: usize, rule: &str) -> bool {
    let needle = format!("xlint: allow({rule})");
    raw[line_idx.saturating_sub(1)..=line_idx]
        .iter()
        .any(|l| l.contains(&needle))
}

fn in_test_tree(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.starts_with("tests/")
}

fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let raw: Vec<&str> = src.lines().collect();
    let code = strip(src);
    let mut findings = Vec::new();
    let finding = |line: usize, rule: &'static str, msg: String| Finding {
        path: rel.to_string(),
        line: line + 1,
        rule,
        msg,
    };

    for (i, cl) in code.iter().enumerate() {
        // safety-comment: applies everywhere, including test code — an
        // unsound test can corrupt the process running every other test.
        if has_token(cl, "unsafe") && !waived(&raw, i, "safety-comment") {
            let lo = i.saturating_sub(SAFETY_WINDOW);
            let documented = raw[lo..=i].iter().any(|l| l.contains("SAFETY:"));
            if !documented {
                findings.push(finding(
                    i,
                    "safety-comment",
                    "`unsafe` without a `// SAFETY:` comment within the 4 preceding lines"
                        .to_string(),
                ));
            }
        }

        if !in_test_tree(rel) {
            if !SPAWN_ALLOWED.iter().any(|p| rel.starts_with(p))
                && SPAWN_TOKENS.iter().any(|t| has_token(cl, t))
                && !waived(&raw, i, "thread-spawn")
            {
                findings.push(finding(
                    i,
                    "thread-spawn",
                    format!(
                        "thread spawn machinery outside {} — ranks and lanes own all threads",
                        SPAWN_ALLOWED.join(", ")
                    ),
                ));
            }

            if !INSTANT_ALLOWED.iter().any(|p| rel.starts_with(p))
                && has_token(cl, INSTANT_TOKEN)
                && !waived(&raw, i, "instant-now")
            {
                findings.push(finding(
                    i,
                    "instant-now",
                    format!(
                        "raw Instant::now outside {} — use obs::Stopwatch",
                        INSTANT_ALLOWED.join(", ")
                    ),
                ));
            }

            if !COST_ALLOWED.iter().any(|p| rel.starts_with(p))
                && has_token(cl, COST_TOKEN)
                && !waived(&raw, i, "cost-literal")
            {
                findings.push(finding(
                    i,
                    "cost-literal",
                    format!(
                        "raw work::record (inline cost literal) outside {} — \
                         use work::record_class so the constant stays \
                         profile-calibratable",
                        COST_ALLOWED.join(", ")
                    ),
                ));
            }

            if !FEATURE_ALLOWED.iter().any(|p| rel.starts_with(p))
                && has_token(cl, FEATURE_TOKEN)
                && !waived(&raw, i, "feature-detect")
            {
                findings.push(finding(
                    i,
                    "feature-detect",
                    format!(
                        "is_x86_feature_detected! outside {} — dispatch \
                         through align::simd_level so ALIGN_FORCE and the \
                         forced-lane tests stay authoritative",
                        FEATURE_ALLOWED.join(", ")
                    ),
                ));
            }

            if !ALLOC_ALLOWED.iter().any(|p| rel.starts_with(p))
                && ALLOC_TOKENS.iter().any(|t| has_token(cl, t))
                && !waived(&raw, i, "alloc-confinement")
            {
                findings.push(finding(
                    i,
                    "alloc-confinement",
                    format!(
                        "allocator machinery outside {} — the tagging \
                         allocator must see every allocation or the memory \
                         observatory's ledgers lie",
                        ALLOC_ALLOWED.join(", ")
                    ),
                ));
            }

            if !MONITOR_ALLOWED.iter().any(|p| rel.starts_with(p))
                && has_token(cl, MONITOR_TOKEN)
                && !waived(&raw, i, "monitor-spawn")
            {
                findings.push(finding(
                    i,
                    "monitor-spawn",
                    format!(
                        "spawn_monitor outside {} — the heartbeat thread \
                         must live inside the world's scope so shutdown \
                         and panic triage stay ordered",
                        MONITOR_ALLOWED.join(", ")
                    ),
                ));
            }

            if !CKPT_ALLOWED.iter().any(|p| rel.starts_with(p))
                && has_token(cl, CKPT_TOKEN)
                && !waived(&raw, i, "ckpt-confinement")
            {
                findings.push(finding(
                    i,
                    "ckpt-confinement",
                    format!(
                        "fs::rename outside {} — persistent-state commits \
                         must go through the checkpoint module's audited \
                         tmp-then-rename path",
                        CKPT_ALLOWED.join(", ")
                    ),
                ));
            }
        }
    }
    findings
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, files);
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut files = Vec::new();
    for top in ["crates", "shims", "tests", "examples"] {
        walk(&root.join(top), &mut files);
    }
    if files.is_empty() {
        eprintln!("xlint: no .rs files under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut findings = Vec::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_source(&rel, &src));
    }
    for f in &findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.msg);
    }
    if findings.is_empty() {
        println!(
            "xlint: {} file(s) clean across {} rule(s): {}",
            files.len(),
            RULES.len(),
            RULES.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_string_contents() {
        let src = "let a = \"unsafe\"; // unsafe here\nlet b = 'x';\n/* unsafe\nstill */ let c = r#\"unsafe\"#;\n";
        let code = strip(src);
        assert!(!code[0].contains("unsafe"), "{:?}", code[0]);
        assert!(code[0].contains("let a"), "{:?}", code[0]);
        assert!(!code[2].contains("unsafe"), "{:?}", code[2]);
        assert!(code[3].contains("let c"), "{:?}", code[3]);
        assert!(!code[3].contains("unsafe"), "{:?}", code[3]);
    }

    #[test]
    fn strip_handles_lifetimes_and_char_literals() {
        let code = strip("fn f<'a>(x: &'a str) -> char { '\\'' }\n");
        assert!(code[0].contains("fn f<'a>"), "{:?}", code[0]);
    }

    #[test]
    fn token_matching_requires_boundaries() {
        assert!(has_token("unsafe impl Foo {}", "unsafe"));
        assert!(!has_token("not_unsafe_at_all()", "unsafe"));
        assert!(has_token("std::thread::spawn(f)", "thread::spawn"));
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let f = scan_source("crates/x/src/lib.rs", "fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn documented_unsafe_passes() {
        let src = "fn f() {\n    // SAFETY: g has no preconditions.\n    unsafe { g() }\n}\n";
        assert!(scan_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "fn f() { let s = \"unsafe\"; } // unsafe\n";
        assert!(scan_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn spawn_confinement_and_waiver() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let f = scan_source("crates/mcl/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "thread-spawn");
        // Allowed locations.
        assert!(scan_source("crates/pcomm/src/world.rs", src).is_empty());
        assert!(scan_source("crates/align/src/batch.rs", src).is_empty());
        // Test trees are exempt.
        assert!(scan_source("crates/mcl/tests/t.rs", src).is_empty());
        // In-place waiver.
        let waived =
            "// justified: xlint: allow(thread-spawn)\nfn f() { std::thread::spawn(|| {}); }\n";
        assert!(scan_source("crates/mcl/src/lib.rs", waived).is_empty());
    }

    #[test]
    fn cost_literal_confinement() {
        let src = "fn f() { pcomm::work::record(100, 42); }\n";
        let f = scan_source("crates/align/src/engine.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "cost-literal");
        // The work module itself owns the raw entry point.
        assert!(scan_source("crates/pcomm/src/work.rs", src).is_empty());
        // Test trees are exempt.
        assert!(scan_source("crates/pcomm/tests/subcomm_extra.rs", src).is_empty());
        // `record_class` is the approved API — the token must not match it.
        let ok = "fn f() { pcomm::work::record_class(100, CostClass::SwCell); }\n";
        assert!(scan_source("crates/align/src/engine.rs", ok).is_empty());
        // In-place waiver.
        let waived = "fn f() { pcomm::work::record(1, 1); } // xlint: allow(cost-literal)\n";
        assert!(scan_source("crates/align/src/engine.rs", waived).is_empty());
    }

    #[test]
    fn feature_detect_confinement() {
        let src = "fn f() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n";
        let f = scan_source("crates/align/src/striped.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "feature-detect");
        // The dispatch module owns runtime CPU probing.
        assert!(scan_source("crates/align/src/dispatch.rs", src).is_empty());
        // Test trees are exempt.
        assert!(scan_source("crates/align/tests/t.rs", src).is_empty());
        // Doc comments never trip the rule.
        let doc = "/// is_x86_feature_detected! lives in dispatch\nfn f() {}\n";
        assert!(scan_source("crates/align/src/striped.rs", doc).is_empty());
        // In-place waiver.
        let waived = "fn f() { std::arch::is_x86_feature_detected!(\"avx2\"); } \
                      // xlint: allow(feature-detect)\n";
        assert!(scan_source("crates/align/src/striped.rs", waived).is_empty());
    }

    #[test]
    fn alloc_confinement() {
        let attr = "#[global_allocator]\nstatic A: MyAlloc = MyAlloc;\n";
        let f = scan_source("crates/sparse/src/lib.rs", attr);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "alloc-confinement");
        let raw = "fn f() { let p = unsafe { std::alloc::alloc(layout) }; }\n";
        let f = scan_source("crates/align/src/scratch.rs", raw);
        // Flags both the missing SAFETY comment and the stray allocator call.
        assert!(f.iter().any(|x| x.rule == "alloc-confinement"));
        // The tagging allocator module owns this machinery.
        assert!(scan_source("crates/obs/src/alloc.rs", attr).is_empty());
        // Test trees are exempt.
        assert!(scan_source("crates/sparse/tests/t.rs", attr).is_empty());
        // Doc comments never trip the rule.
        let doc = "/// the only #[global_allocator] lives in obs\nfn f() {}\n";
        assert!(scan_source("crates/sparse/src/lib.rs", doc).is_empty());
        // In-place waiver.
        let waived = "#[global_allocator] // xlint: allow(alloc-confinement)\n\
                      static A: MyAlloc = MyAlloc;\n";
        assert!(scan_source("crates/sparse/src/lib.rs", waived).is_empty());
    }

    #[test]
    fn instant_confinement() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let f = scan_source("crates/align/src/batch.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "instant-now");
        assert!(scan_source("crates/obs/src/span.rs", src).is_empty());
        assert!(scan_source("shims/criterion/src/lib.rs", src).is_empty());
        // Doc comments never trip the rule.
        let doc = "/// call Instant::now() here\nfn f() {}\n";
        assert!(scan_source("crates/align/src/x.rs", doc).is_empty());
    }

    #[test]
    fn monitor_spawn_confinement() {
        let src = "fn f(s: &S) { crate::monitor::spawn_monitor(s, 4, cfg); }\n";
        let f = scan_source("crates/pastis/src/pipeline.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "monitor-spawn");
        assert!(scan_source("crates/pcomm/src/world.rs", src).is_empty());
        // Tests are exempt, like the other confinement rules.
        assert!(scan_source("crates/pastis/tests/monitor_live.rs", src).is_empty());
    }

    #[test]
    fn ckpt_confinement() {
        let src = "fn f() { std::fs::rename(&tmp, &path).unwrap(); }\n";
        let f = scan_source("crates/pcomm/src/monitor.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ckpt-confinement");
        // The checkpoint module owns the commit primitive.
        assert!(scan_source("crates/pastis/src/ckpt.rs", src).is_empty());
        // Test trees are exempt.
        assert!(scan_source("crates/pastis/tests/ooc_resume.rs", src).is_empty());
        // Doc comments never trip the rule.
        let doc = "/// commits via fs::rename in ckpt.rs\nfn f() {}\n";
        assert!(scan_source("crates/pcomm/src/monitor.rs", doc).is_empty());
        // In-place waiver.
        let waived = "fn f() { std::fs::rename(&a, &b); } // xlint: allow(ckpt-confinement)\n";
        assert!(scan_source("crates/pcomm/src/monitor.rs", waived).is_empty());
    }
}
