//! Flight-recorder integration: a forced watchdog abort must write
//! per-rank black-box dumps naming each rank's last completed pipeline
//! stage, and ring event *structure* must be deterministic across
//! perturbation seeds (timestamps and payload sizes are stripped by
//! `obs::blackbox::signature`).

use std::panic::{catch_unwind, AssertUnwindSafe};

use obs::JsonValue;
use pcomm::{Comm, WorldBuilder};

/// Forced deadlock: rank 1 hangs mid-pipeline after completing only the
/// `pastis.fasta` stage, rank 0 finishes a second stage and returns. The
/// watchdog must abort the world and the dumps must tell the two ranks
/// apart by their last completed stage.
#[test]
fn watchdog_abort_dumps_name_last_completed_stage() {
    let dir = std::env::temp_dir().join(format!("pcomm-bbdump-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    obs::blackbox::set_dump_dir(&dir);
    obs::blackbox::reset_dump_once();

    let err = catch_unwind(AssertUnwindSafe(|| {
        WorldBuilder::new()
            .checked(true)
            .watchdog_ms(60)
            .run(2, |comm: Comm| {
                let rec = obs::Recorder::install(comm.rank());
                {
                    let _s = obs::span!("pastis.fasta");
                }
                if comm.rank() == 1 {
                    // Straggler: this message never arrives.
                    let _: u64 = comm.recv(0, 9);
                    unreachable!("recv above can never complete");
                }
                {
                    let _s = obs::span!("pastis.form_a");
                }
                drop(rec.finish());
            })
    }));
    let msg = match err {
        Ok(_) => panic!("world must abort"),
        Err(e) => e
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into()),
    };
    assert!(msg.contains("deadlock detected"), "{msg}");

    let parse = |rank: usize| -> JsonValue {
        let path = dir.join(format!("blackbox-rank{rank}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing dump {}: {e}", path.display()));
        JsonValue::parse(&text).expect("dump parses as JSON")
    };
    let d0 = parse(0);
    let d1 = parse(1);
    assert_eq!(
        d1.get("last_completed_stage").and_then(|v| v.as_str()),
        Some("pastis.fasta"),
        "straggler's dump must name the stage it finished last"
    );
    assert_eq!(
        d0.get("last_completed_stage").and_then(|v| v.as_str()),
        Some("pastis.form_a")
    );
    for d in [&d0, &d1] {
        let reason = d.get("reason").and_then(|v| v.as_str()).unwrap_or("");
        assert!(reason.contains("deadlock"), "{reason}");
        assert!(d.get("live_bytes_by_subsystem").is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One rank's workload: a collective, a ring-neighbor exchange, and a span,
/// all captured by a ring interposed over the runtime-installed one.
fn traced_workload(comm: &Comm) -> String {
    let ring = obs::blackbox::install_with_capacity(comm.rank(), 1 << 14);
    let rec = obs::Recorder::install(comm.rank());
    {
        let _s = obs::span!("pastis.stage");
        let sum = comm.allreduce(comm.rank() as u64, |a, b| a + b);
        if comm.size() > 1 {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 7, vec![sum; 3]);
            let got: Vec<u64> = comm.recv(left, 7);
            assert_eq!(got.len(), 3);
        }
    }
    drop(rec.finish());
    obs::blackbox::signature(&ring.finish())
}

/// Schedule perturbation may reorder stash hits vs. direct receives and
/// stretch wall-clock arbitrarily, but each rank's recorded event
/// structure — what happened, in program order — must be identical for
/// every seed.
#[test]
fn ring_signatures_are_stable_across_perturbation_seeds() {
    for p in [1usize, 4, 16] {
        let mut baseline: Option<Vec<String>> = None;
        for seed in [11u64, 22, 33, 44] {
            let sigs = WorldBuilder::new()
                .perturb(seed)
                .watchdog_ms(5000)
                .run(p, |comm: Comm| traced_workload(&comm));
            match &baseline {
                None => baseline = Some(sigs),
                Some(base) => {
                    for (rank, (a, b)) in base.iter().zip(sigs.iter()).enumerate() {
                        assert_eq!(
                            a, b,
                            "p={p} rank {rank}: ring signature diverged at seed {seed}"
                        );
                    }
                }
            }
        }
    }
}
