//! Heartbeat-channel integration: a monitored world must leave behind a
//! schema-valid `status.json` whose final snapshot covers every rank, the
//! in-memory latest snapshot must feed the abort path, and a checked
//! (pcheck) world must stay ledger-clean with the heartbeat thread active
//! — the monitor gathers progress through shared memory only, so the
//! conformance ledger and the finalize leak audit never see it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use obs::JsonValue;
use pcomm::monitor::{self, MonitorConfig};
use pcomm::{Comm, WorldBuilder};

/// `configure`/`deconfigure` arm a process-global plane; tests in this
/// binary must not interleave them.
static SERIAL: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pcomm-monitor-{}-{name}", std::process::id()))
}

/// A checked world with the monitor armed: the run completes (leak audit
/// clean), the document validates as complete, and every rank appears in
/// the final snapshot with its progress accounted.
#[test]
fn monitored_checked_world_writes_valid_status() {
    let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("status.json");
    let _ = std::fs::remove_file(&path);
    monitor::configure(MonitorConfig {
        path: Some(path.clone()),
        interval_ms: 5,
        ..Default::default()
    });
    let p = 4;
    let sums = WorldBuilder::new().checked(true).run(p, |comm: Comm| {
        let _span = obs::span!("pastis.fasta");
        obs::live::add_items(0, 8);
        for chunk in 0..8u64 {
            let sum: u64 = comm.allreduce(comm.rank() as u64 + chunk, |a, b| a + b);
            obs::live::add_items(1, 0);
            std::hint::black_box(sum);
        }
        comm.barrier();
        8u64
    });
    monitor::deconfigure();
    assert_eq!(sums, vec![8; p]);

    let doc = JsonValue::parse(&std::fs::read_to_string(&path).expect("status.json written"))
        .expect("status.json parses");
    monitor::validate_status(&doc, true).expect("complete document validates");
    let finals = doc.get("final").expect("final snapshot");
    let rows = match finals.get("ranks") {
        Some(JsonValue::Arr(rows)) => rows.clone(),
        _ => panic!("final snapshot has no ranks"),
    };
    assert_eq!(rows.len(), p);
    for (rank, row) in rows.iter().enumerate() {
        assert_eq!(
            row.get("rank").and_then(JsonValue::as_u64),
            Some(rank as u64)
        );
        // Every rank ran the same program: one span, 8 progress items.
        assert_eq!(row.get("done").and_then(JsonValue::as_u64), Some(8));
        assert_eq!(row.get("total").and_then(JsonValue::as_u64), Some(8));
        assert_eq!(row.get("active"), Some(&JsonValue::Bool(false)));
        assert_eq!(row.get("straggler"), Some(&JsonValue::Bool(false)));
    }
    // The abort feed saw the same world.
    let latest = monitor::latest_snapshot().expect("latest snapshot retained");
    assert!(matches!(latest.get("ranks"), Some(JsonValue::Arr(_))));
    let _ = std::fs::remove_file(&path);
}

/// A watchdog abort with the monitor armed must leave `status-abort.json`
/// next to the black-box dumps: the postmortem carries the last known
/// per-rank progress.
#[test]
fn abort_dumps_last_snapshot() {
    let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp("abortdir");
    std::fs::create_dir_all(&dir).unwrap();
    obs::blackbox::set_dump_dir(&dir);
    obs::blackbox::reset_dump_once();
    monitor::configure(MonitorConfig {
        interval_ms: 5,
        ..Default::default()
    });
    let err = catch_unwind(AssertUnwindSafe(|| {
        WorldBuilder::new()
            .checked(true)
            .watchdog_ms(80)
            .run(2, |comm: Comm| {
                let _span = obs::span!("pastis.fasta");
                if comm.rank() == 1 {
                    // Straggler: this message never arrives.
                    let _: u64 = comm.recv(0, 9);
                    unreachable!("recv above can never complete");
                }
                comm.barrier();
            })
    }));
    monitor::deconfigure();
    assert!(err.is_err(), "world must abort");
    let status = dir.join("status-abort.json");
    let doc = JsonValue::parse(&std::fs::read_to_string(&status).expect("status-abort written"))
        .expect("status-abort parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("pastis_status")
    );
    assert!(doc.get("last_snapshot").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
