//! Integration tests for the pcomm runtime: point-to-point semantics,
//! collectives, subcommunicators and grids.

use pcomm::{Grid, World, WorldBuilder};

#[test]
fn single_rank_world() {
    let r = World::run(1, |comm| {
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.size(), 1);
        comm.allreduce(41u64, |a, b| a + b) + 1
    });
    assert_eq!(r, vec![42]);
}

#[test]
fn ping_pong() {
    let r = World::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, vec![1u32, 2, 3]);
            comm.recv::<u64>(1, 8)
        } else {
            let v = comm.recv::<Vec<u32>>(0, 7);
            let s = v.iter().map(|&x| x as u64).sum::<u64>();
            comm.send(0, 8, s);
            s
        }
    });
    assert_eq!(r, vec![6, 6]);
}

#[test]
fn out_of_order_tags_are_matched() {
    let r = World::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, 100u32);
            comm.send(1, 2, 200u32);
            0
        } else {
            // Receive in the opposite order of sending.
            let b = comm.recv::<u32>(0, 2);
            let a = comm.recv::<u32>(0, 1);
            (a + b) as i32
        }
    });
    assert_eq!(r[1], 300);
}

#[test]
fn self_send() {
    let r = World::run(1, |comm| {
        comm.send(0, 3, 99u8);
        comm.recv::<u8>(0, 3)
    });
    assert_eq!(r, vec![99]);
}

#[test]
fn irecv_waitall_preserves_post_order() {
    let r = World::run(3, |comm| {
        let me = comm.rank();
        for dst in 0..3 {
            comm.isend(dst, 5, me as u64);
        }
        let futs = (0..3).map(|src| comm.irecv::<u64>(src, 5)).collect();
        comm.waitall(futs)
    });
    for got in r {
        assert_eq!(got, vec![0, 1, 2]);
    }
}

#[test]
fn bcast_from_each_root() {
    for p in [1, 2, 3, 4, 5, 8, 9] {
        for root in 0..p {
            let r = World::run(p, |comm| {
                let v = if comm.rank() == root {
                    Some(vec![root as u64, 77])
                } else {
                    None
                };
                comm.bcast(root, v)
            });
            for got in r {
                assert_eq!(got, vec![root as u64, 77]);
            }
        }
    }
}

#[test]
fn reduce_and_allreduce() {
    for p in [1, 2, 3, 5, 8, 9, 16] {
        let r = World::run(p, |comm| {
            let me = comm.rank() as u64;
            let total = comm.reduce(0, me, |a, b| a + b);
            if comm.rank() == 0 {
                assert_eq!(total, Some((p as u64) * (p as u64 - 1) / 2));
            } else {
                assert_eq!(total, None);
            }
            comm.allreduce(me + 1, |a, b| a.max(b))
        });
        for got in r {
            assert_eq!(got, p as u64);
        }
    }
}

#[test]
fn gather_and_allgather() {
    let r = World::run(4, |comm| {
        let g = comm.gather(2, comm.rank() as u32);
        if comm.rank() == 2 {
            assert_eq!(g, Some(vec![0, 1, 2, 3]));
        } else {
            assert_eq!(g, None);
        }
        comm.allgather((comm.rank() as u64) * 10)
    });
    for got in r {
        assert_eq!(got, vec![0, 10, 20, 30]);
    }
}

#[test]
fn alltoallv_routes_parts() {
    let p = 4;
    let r = World::run(p, |comm| {
        let me = comm.rank();
        // Send to rank d a vector [me, d] repeated (me+d) times.
        let parts: Vec<Vec<(u64, u64)>> = (0..p)
            .map(|d| vec![(me as u64, d as u64); me + d])
            .collect();
        comm.alltoallv(parts)
    });
    for (me, got) in r.into_iter().enumerate() {
        for (src, part) in got.into_iter().enumerate() {
            assert_eq!(part.len(), src + me);
            for (s, d) in part {
                assert_eq!((s, d), (src as u64, me as u64));
            }
        }
    }
}

#[test]
fn exscan_prefix_sums() {
    let r = World::run(5, |comm| comm.exscan(comm.rank() as u64 + 1, |a, b| a + b));
    assert_eq!(r, vec![None, Some(1), Some(3), Some(6), Some(10)]);
}

#[test]
fn barrier_does_not_deadlock_and_orders() {
    // Run a few rounds of barrier interleaved with traffic.
    let r = World::run(6, |comm| {
        let mut acc = 0u64;
        for round in 0..5u64 {
            acc = comm.allreduce(acc + round, |a, b| a.max(b));
            comm.barrier();
        }
        acc
    });
    let expect = r[0];
    for got in r {
        assert_eq!(got, expect);
    }
}

#[test]
fn split_by_parity() {
    let r = World::run(6, |comm| {
        let color = (comm.rank() % 2) as u64;
        let sub = comm.split(color, comm.rank() as u64);
        // Sum of ranks' world ids within the subgroup.
        sub.allreduce(comm.rank() as u64, |a, b| a + b)
    });
    assert_eq!(r, vec![6, 9, 6, 9, 6, 9]); // evens: 0+2+4, odds: 1+3+5
}

#[test]
fn subcomm_traffic_is_isolated() {
    let r = World::run(4, |comm| {
        let sub = comm.subcomm(&[0, 1, 2, 3]).unwrap();
        // Same (src, tag) on parent and child must not cross.
        if comm.rank() == 0 {
            comm.send(1, 9, 111u64);
            sub.send(1, 9, 222u64);
            0
        } else if comm.rank() == 1 {
            let b = sub.recv::<u64>(0, 9);
            let a = comm.recv::<u64>(0, 9);
            assert_eq!((a, b), (111, 222));
            1
        } else {
            comm.rank() as u64
        }
    });
    assert_eq!(r[1], 1);
}

#[test]
fn grid_row_col_comms() {
    let r = World::run(9, |comm| {
        let grid = Grid::new(&comm);
        assert_eq!(grid.q(), 3);
        let row_sum = grid.row_comm().allreduce(comm.rank() as u64, |a, b| a + b);
        let col_sum = grid.col_comm().allreduce(comm.rank() as u64, |a, b| a + b);
        (grid.myrow(), grid.mycol(), row_sum, col_sum)
    });
    for (rank, (mr, mc, rs, cs)) in r.into_iter().enumerate() {
        assert_eq!(mr, rank / 3);
        assert_eq!(mc, rank % 3);
        // Row r holds ranks {3r, 3r+1, 3r+2}.
        assert_eq!(rs, (3 * mr as u64) * 3 + 3);
        // Column c holds ranks {c, c+3, c+6}.
        assert_eq!(cs, (mc as u64) * 3 + 9);
    }
}

#[test]
fn grid_transpose_partner() {
    let r = World::run(4, |comm| {
        let grid = Grid::new(&comm);
        grid.transpose_partner()
    });
    assert_eq!(r, vec![0, 2, 1, 3]);
}

#[test]
fn stats_account_bytes_and_messages() {
    let r = World::run(2, |comm| {
        let before = comm.stats();
        if comm.rank() == 0 {
            comm.send(1, 1, vec![0u8; 100]);
        } else {
            let v = comm.recv::<Vec<u8>>(0, 1);
            assert_eq!(v.len(), 100);
        }
        comm.stats() - before
    });
    assert_eq!(r[0].bytes_sent, 108); // 100 payload + 8 length header
    assert_eq!(r[0].msgs_sent, 1);
    assert_eq!(r[1].bytes_recv, 108);
    assert_eq!(r[1].msgs_recv, 1);
}

#[test]
fn results_returned_in_rank_order() {
    let r = World::run(7, |comm| comm.rank() * 2);
    assert_eq!(r, vec![0, 2, 4, 6, 8, 10, 12]);
}

#[test]
fn large_world_smoke() {
    // 25 ranks oversubscribed on few cores must still complete.
    let r = World::run(25, |comm| {
        let g = Grid::new(&comm);
        g.row_comm().allreduce(1u64, |a, b| a + b) + g.col_comm().allreduce(1u64, |a, b| a + b)
    });
    for got in r {
        assert_eq!(got, 10);
    }
}

#[test]
fn ibcast_from_each_root_matches_bcast() {
    for p in [1usize, 2, 3, 4, 5, 8] {
        for root in 0..p {
            let r = World::run(p, |comm| {
                let v = (comm.rank() == root).then(|| vec![root as u64, 77]);
                comm.ibcast(root, v).wait()
            });
            for (rank, got) in r.iter().enumerate() {
                assert_eq!(got, &vec![root as u64, 77], "p={p} root={root} rank={rank}");
            }
        }
    }
}

#[test]
fn ibcast_overlaps_other_traffic_between_post_and_wait() {
    // Two broadcasts in flight at once, with an unrelated collective
    // between post and wait: the reserved per-collective tags must keep
    // them from interfering, and wait must find the stashed payloads.
    let r = World::run(4, |comm| {
        let h0 = comm.ibcast(0, (comm.rank() == 0).then_some(11u64));
        let h1 = comm.ibcast(1, (comm.rank() == 1).then_some(22u64));
        let s = comm.allreduce(1u64, |a, b| a + b);
        h0.wait() + h1.wait() + s
    });
    assert_eq!(r, vec![37, 37, 37, 37]);
}

#[test]
fn dropped_ibcast_handle_drains_its_message() {
    // A consumer that never waits must not strand the broadcast in the
    // mailbox stash — checked mode's finalize audit fails on leaks.
    let r = WorldBuilder::new().checked(true).run(3, |comm| {
        let h = comm.ibcast(0, (comm.rank() == 0).then(|| vec![9u8; 16]));
        drop(h);
        comm.allreduce(1u32, |a, b| a + b)
    });
    assert_eq!(r, vec![3, 3, 3]);
}
