//! Additional communicator coverage: strict-subset subcommunicators,
//! nested grids, collectives on tiny communicators, and work counters.

use pcomm::{CostModel, Grid, StageCost, World};

#[test]
fn subcomm_strict_subset() {
    let r = World::run(6, |comm| {
        // Everyone participates in the collective creation; only the even
        // ranks become members.
        let sub = comm.subcomm(&[0, 2, 4]);
        match sub {
            Some(s) => {
                assert_eq!(s.size(), 3);
                // Sum of world ranks inside the subgroup.
                Some(s.allreduce(comm.rank() as u64, |a, b| a + b))
            }
            None => None,
        }
    });
    assert_eq!(r, vec![Some(6), None, Some(6), None, Some(6), None]);
}

#[test]
fn nested_subcomm_grid() {
    // Build a 2×2 grid over a 4-rank subset of a 6-rank world.
    let r = World::run(6, |comm| {
        let sub = comm.subcomm(&[0, 1, 2, 3]);
        sub.map(|s| {
            let grid = Grid::new(&s);
            grid.row_comm().allreduce(s.rank() as u64, |a, b| a + b)
        })
    });
    assert_eq!(r[0], Some(1)); // row {0,1}
    assert_eq!(r[2], Some(5)); // row {2,3}
    assert_eq!(r[4], None);
}

#[test]
fn collectives_on_size_one_comm() {
    let r = World::run(3, |comm| {
        let solo = comm.subcomm(&[comm.rank()]).unwrap();
        let b = solo.bcast(0, Some(comm.rank() as u64));
        let g = solo.gather(0, b).unwrap();
        let s = solo.exscan(5u64, |a, b| a + b);
        solo.barrier();
        (b, g, s)
    });
    for (rank, (b, g, s)) in r.into_iter().enumerate() {
        assert_eq!(b, rank as u64);
        assert_eq!(g, vec![rank as u64]);
        assert_eq!(s, None);
    }
}

#[test]
fn subcomm_creation_is_repeatable() {
    // Creating several subcomms from the same parent must keep their
    // traffic separated (distinct internal ids via the split counter).
    let r = World::run(2, |comm| {
        let s1 = comm.subcomm(&[0, 1]).unwrap();
        let s2 = comm.subcomm(&[0, 1]).unwrap();
        if comm.rank() == 0 {
            s1.send(1, 4, 111u32);
            s2.send(1, 4, 222u32);
            0
        } else {
            let b = s2.recv::<u32>(0, 4);
            let a = s1.recv::<u32>(0, 4);
            assert_eq!((a, b), (111, 222));
            1
        }
    });
    assert_eq!(r[1], 1);
}

#[test]
fn work_counters_are_per_rank() {
    let r = World::run(3, |comm| {
        let before = pcomm::work::counter();
        // Each rank records a different amount.
        pcomm::work::record(comm.rank() as u64 + 1, 100);
        pcomm::work::counter() - before
    });
    assert_eq!(r, vec![100, 200, 300]);
}

#[test]
fn cost_model_orders_scaling_correctly() {
    // More bytes, same compute → more modeled time.
    let m = CostModel::default();
    let mk = |bytes: u64| StageCost {
        compute_secs: 1.0,
        comm: pcomm::CommStats {
            bytes_sent: bytes,
            ..Default::default()
        },
        colls: Vec::new(),
    };
    assert!(m.stage_seconds(mk(1 << 30)) > m.stage_seconds(mk(1 << 10)));
    // total_seconds sums stages.
    let t = m.total_seconds(&[mk(0), mk(0)]);
    assert!((t - 2.0).abs() < 1e-9);
}
