//! Message payloads and their accounted wire size.

/// A value that can be sent between ranks.
///
/// `payload_bytes` is the number of bytes the value would occupy on the wire;
/// it is used purely for communication accounting (the simulated transport
/// moves the value itself, no serialization happens).
pub trait Payload: Send + 'static {
    /// Accounted wire size of this value in bytes.
    fn payload_bytes(&self) -> usize;
}

macro_rules! impl_payload_prim {
    ($($t:ty),*) => {
        $(impl Payload for $t {
            #[inline]
            fn payload_bytes(&self) -> usize { std::mem::size_of::<$t>() }
        })*
    };
}

impl_payload_prim!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl Payload for String {
    fn payload_bytes(&self) -> usize {
        self.len()
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn payload_bytes(&self) -> usize {
        // Fixed-size elements dominate in practice; a length walk keeps the
        // accounting exact for nested payloads too.
        self.iter().map(Payload::payload_bytes).sum::<usize>() + std::mem::size_of::<u64>()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn payload_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::payload_bytes)
    }
}

impl<T: Payload> Payload for Box<T> {
    fn payload_bytes(&self) -> usize {
        self.as_ref().payload_bytes()
    }
}

macro_rules! impl_payload_tuple {
    ($($name:ident),+) => {
        impl<$($name: Payload),+> Payload for ($($name,)+) {
            fn payload_bytes(&self) -> usize {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                0 $(+ $name.payload_bytes())+
            }
        }
    };
}

impl_payload_tuple!(A);
impl_payload_tuple!(A, B);
impl_payload_tuple!(A, B, C);
impl_payload_tuple!(A, B, C, D);
impl_payload_tuple!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(3u32.payload_bytes(), 4);
        assert_eq!(3u64.payload_bytes(), 8);
        assert_eq!(true.payload_bytes(), 1);
    }

    #[test]
    fn vec_accounts_elements_plus_header() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.payload_bytes(), 3 * 4 + 8);
    }

    #[test]
    fn nested_vec() {
        let v = vec![vec![1u8, 2], vec![3u8]];
        assert_eq!(v.payload_bytes(), (2 + 8) + (1 + 8) + 8);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u8, 2u64).payload_bytes(), 9);
        assert_eq!((1u8, 2u64, 4u32).payload_bytes(), 13);
    }

    #[test]
    fn option_and_string() {
        assert_eq!(Some(7u64).payload_bytes(), 9);
        assert_eq!(None::<u64>.payload_bytes(), 1);
        assert_eq!("abcd".to_string().payload_bytes(), 4);
    }
}
