//! `pcomm::monitor` — the heartbeat channel of the live telemetry plane.
//!
//! When configured (see [`configure`]), [`crate::WorldBuilder::run`] spawns
//! one monitor thread per world next to the rank threads. The thread is a
//! periodic, nonblocking gather running entirely outside the critical
//! path: it samples every rank's [`obs::live`] progress cell (shared
//! memory, no mailboxes, no collectives — invisible to the pcheck
//! conformance ledger and the finalize leak audit), aggregates the rows
//! into a snapshot, appends it to a `status.json` document next to the
//! output, and optionally renders a refreshing per-rank table to stderr
//! (`pastis --monitor`; the `pastis-top` bin renders the same table from
//! the file).
//!
//! Rank-side heartbeats are piggybacked on existing traffic: every span
//! open/close stamps the cell, and every collective entry calls
//! [`obs::live::touch`] so a rank deep in a long exchange still reads as
//! alive.
//!
//! **Straggler flagging** is the seed of the ROADMAP's rank-death
//! detection: a rank whose progress epoch lags the world median beyond a
//! threshold, or whose heartbeat is older than a stall window, is flagged
//! in the snapshot and the table.
//!
//! The latest snapshot is also kept in memory and written as
//! `status-abort.json` by [`crate::dump_blackbox`], so postmortems carry
//! the last known per-rank progress alongside the flight-recorder rings.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use obs::live::RankSample;
use obs::JsonValue;

/// Schema version of the `status.json` document.
pub const STATUS_SCHEMA_VERSION: u64 = 1;

/// Snapshots retained in the document (a bounded flight window, like the
/// black-box ring); older snapshots are dropped and counted.
const MAX_SNAPSHOTS: usize = 256;

/// How the monitor thread runs. Built by the CLI (`pastis --monitor`) or
/// tests and handed to [`configure`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Where to write the `status.json` document; `None` keeps snapshots
    /// in memory only (overhead measurement, abort feed).
    pub path: Option<PathBuf>,
    /// Snapshot period in milliseconds.
    pub interval_ms: u64,
    /// Render the refreshing per-rank table to stderr on every snapshot.
    pub render: bool,
    /// A rank is a straggler when `median_epoch - epoch` exceeds this.
    pub straggler_lag: u64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            path: None,
            interval_ms: 200,
            render: false,
            straggler_lag: 5_000,
        }
    }
}

/// Pending configuration consumed by the next world launch.
static CONFIG: Mutex<Option<MonitorConfig>> = Mutex::new(None);

/// Latest aggregated snapshot, for the abort path.
static LATEST: Mutex<Option<JsonValue>> = Mutex::new(None);

/// Arm the monitor: every subsequent [`crate::World::run`] spawns a
/// heartbeat thread with this config. Also enables the `obs::live` cell
/// updates (they stay a relaxed-load no-op otherwise).
pub fn configure(cfg: MonitorConfig) {
    obs::live::set_enabled(true);
    *CONFIG.lock().unwrap() = Some(cfg);
}

/// Disarm the monitor and the live plane.
pub fn deconfigure() {
    obs::live::set_enabled(false);
    *CONFIG.lock().unwrap() = None;
}

/// The armed config, if any (cloned; the world launch reads it once).
pub(crate) fn active_config() -> Option<MonitorConfig> {
    CONFIG.lock().unwrap().clone()
}

/// Latest snapshot taken by any monitor thread, for `status-abort.json`.
pub fn latest_snapshot() -> Option<JsonValue> {
    LATEST.lock().unwrap().clone()
}

/// Straggler dissection of one gather: `flags[i]` is set when rank `i`'s
/// progress epoch lags the median of *active* ranks beyond `lag`.
/// Finished ranks (inactive, stage idle) are never flagged.
pub fn straggler_flags(samples: &[RankSample], lag: u64) -> Vec<bool> {
    let mut epochs: Vec<u64> = samples
        .iter()
        .filter(|s| s.active)
        .map(|s| s.epoch)
        .collect();
    if epochs.is_empty() {
        return vec![false; samples.len()];
    }
    epochs.sort_unstable();
    let median = epochs[epochs.len() / 2];
    samples
        .iter()
        .map(|s| s.active && median.saturating_sub(s.epoch) > lag)
        .collect()
}

/// One aggregated gather of the plane as a JSON snapshot object.
fn snapshot_doc(seq: u64, t_ms: u64, samples: &[RankSample], flags: &[bool]) -> JsonValue {
    let now = obs::live::now_ns();
    let ranks: Vec<JsonValue> = samples
        .iter()
        .zip(flags)
        .map(|(s, &straggler)| {
            let mut o = BTreeMap::new();
            o.insert("rank".into(), JsonValue::Num(s.rank as f64));
            o.insert("stage".into(), JsonValue::Str(s.stage.clone()));
            o.insert("epoch".into(), JsonValue::Num(s.epoch as f64));
            o.insert("done".into(), JsonValue::Num(s.done as f64));
            o.insert("total".into(), JsonValue::Num(s.total as f64));
            o.insert("live_bytes".into(), JsonValue::Num(s.live_bytes as f64));
            let hb_age_ms = now.saturating_sub(s.hb_ns) as f64 / 1e6;
            o.insert("hb_age_ms".into(), JsonValue::Num(hb_age_ms));
            o.insert("active".into(), JsonValue::Bool(s.active));
            o.insert("straggler".into(), JsonValue::Bool(straggler));
            JsonValue::Obj(o)
        })
        .collect();
    let alloc = obs::alloc::stats();
    let mut by_subsystem = BTreeMap::new();
    for (i, name) in obs::SUBSYSTEMS.iter().enumerate() {
        by_subsystem.insert(
            (*name).into(),
            JsonValue::Num(alloc.per[i].live_bytes as f64),
        );
    }
    let mut o = BTreeMap::new();
    o.insert("seq".into(), JsonValue::Num(seq as f64));
    o.insert("t_ms".into(), JsonValue::Num(t_ms as f64));
    o.insert("ranks".into(), JsonValue::Arr(ranks));
    o.insert(
        "live_bytes_total".into(),
        JsonValue::Num(alloc.live_total.max(0) as f64),
    );
    o.insert(
        "live_bytes_by_subsystem".into(),
        JsonValue::Obj(by_subsystem),
    );
    JsonValue::Obj(o)
}

/// Assemble the full `status.json` document.
fn status_doc(
    p: usize,
    cfg: &MonitorConfig,
    snapshots: &[JsonValue],
    snapshots_dropped: u64,
    finished: bool,
) -> JsonValue {
    let mut doc = BTreeMap::new();
    doc.insert("schema".into(), JsonValue::Str("pastis_status".into()));
    doc.insert(
        "version".into(),
        JsonValue::Num(STATUS_SCHEMA_VERSION as f64),
    );
    doc.insert("p".into(), JsonValue::Num(p as f64));
    doc.insert("interval_ms".into(), JsonValue::Num(cfg.interval_ms as f64));
    doc.insert(
        "snapshots_dropped".into(),
        JsonValue::Num(snapshots_dropped as f64),
    );
    doc.insert("snapshots".into(), JsonValue::Arr(snapshots.to_vec()));
    doc.insert(
        "final".into(),
        match (finished, snapshots.last()) {
            (true, Some(last)) => last.clone(),
            _ => JsonValue::Null,
        },
    );
    JsonValue::Obj(doc)
}

/// Render one snapshot as the refreshing per-rank table.
pub fn render_snapshot(snap: &JsonValue, p: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let t_ms = snap.get("t_ms").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let _ = writeln!(out, "== pastis monitor (p={p}, t={:.1}s) ==", t_ms / 1e3);
    let _ = writeln!(
        out,
        "{:<5} {:<22} {:>9} {:>14} {:<12} {:>10} {:>8}",
        "rank", "stage", "epoch", "items", "progress", "live", "hb age"
    );
    let empty = Vec::new();
    let rows = match snap.get("ranks") {
        Some(JsonValue::Arr(rows)) => rows,
        _ => &empty,
    };
    for row in rows {
        let num = |k: &str| row.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let (done, total) = (num("done"), num("total"));
        let stage = row
            .get("stage")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        let straggler = matches!(row.get("straggler"), Some(JsonValue::Bool(true)));
        let active = matches!(row.get("active"), Some(JsonValue::Bool(true)));
        let _ = writeln!(
            out,
            "{:<5} {:<22} {:>9} {:>14} {:<12} {:>10} {:>7.0}ms{}",
            format!("r{}", num("rank") as u64),
            stage,
            num("epoch") as u64,
            format!("{}/{}", done as u64, total as u64),
            progress_bar(done, total, 10),
            obs::dissect::human_bytes(num("live_bytes") as u64),
            num("hb_age_ms"),
            match (straggler, active) {
                (true, _) => "  STRAGGLER",
                (false, false) => "  done",
                _ => "",
            }
        );
    }
    out
}

/// A ten-ish-cell progress bar: `[####......]`, `[----]` when the total
/// is still unknown.
fn progress_bar(done: f64, total: f64, cells: usize) -> String {
    if total <= 0.0 {
        return format!("[{}]", "-".repeat(cells));
    }
    let filled = ((done / total) * cells as f64)
        .round()
        .clamp(0.0, cells as f64) as usize;
    format!("[{}{}]", "#".repeat(filled), ".".repeat(cells - filled))
}

/// Handle returned by [`spawn_monitor`]; [`MonitorStop::finish`] asks the
/// thread to take a final snapshot and exit. Must be called before the
/// world's thread scope closes (the scope joins the monitor).
pub(crate) struct MonitorStop {
    stop: Arc<AtomicBool>,
    thread: thread::Thread,
}

impl MonitorStop {
    pub(crate) fn finish(self) {
        self.stop.store(true, Relaxed);
        // Wake the thread out of its inter-snapshot park immediately —
        // the world's scope join waits for it, and letting it doze out a
        // sleep would tax every run's wall clock by up to the interval.
        self.thread.unpark();
    }
}

/// Spawn the heartbeat thread into the world's thread scope.
pub(crate) fn spawn_monitor<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    p: usize,
    cfg: MonitorConfig,
) -> MonitorStop {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = thread::Builder::new()
        .name("pcomm-monitor".into())
        .spawn_scoped(scope, move || monitor_loop(p, cfg, flag))
        .expect("failed to spawn monitor thread");
    MonitorStop {
        stop,
        thread: handle.thread().clone(),
    }
}

fn monitor_loop(p: usize, cfg: MonitorConfig, stop: Arc<AtomicBool>) {
    // The monitor gets its own flight-recorder ring (registered past the
    // rank ids) so postmortems show the gather cadence too.
    let _bb = obs::blackbox::install(p);
    let clock = obs::Stopwatch::start();
    let mut snapshots: Vec<JsonValue> = Vec::new();
    let mut dropped = 0u64;
    let mut seq = 0u64;
    loop {
        // Park first, sample after: the ranks are busiest right at
        // launch, and a spawn-time snapshot would tax short runs for a
        // row of still-empty cells. `MonitorStop::finish` unparks, so
        // the shutdown handshake costs microseconds, not a sleep
        // quantum, and the final snapshot below is never skipped.
        // park_timeout may wake spuriously; re-park for the remainder.
        let mut left = Duration::from_millis(cfg.interval_ms.max(1));
        while !stop.load(Relaxed) && left > Duration::ZERO {
            let t0 = std::time::Instant::now();
            thread::park_timeout(left);
            left = left.saturating_sub(t0.elapsed());
        }
        let finishing = stop.load(Relaxed);
        let samples = obs::live::sample(p);
        let flags = straggler_flags(&samples, cfg.straggler_lag);
        let snap = snapshot_doc(seq, clock.elapsed_ns() / 1_000_000, &samples, &flags);
        obs::blackbox::record(
            obs::blackbox::BbKind::Mark,
            "monitor.snapshot",
            seq,
            samples.len() as u64,
        );
        *LATEST.lock().unwrap() = Some(snap.clone());
        snapshots.push(snap);
        if snapshots.len() > MAX_SNAPSHOTS {
            snapshots.remove(0);
            dropped += 1;
        }
        seq += 1;
        if let Some(path) = &cfg.path {
            let doc = status_doc(p, &cfg, &snapshots, dropped, finishing);
            let _ = std::fs::write(path, format!("{doc}\n"));
        }
        if cfg.render {
            eprint!("{}", render_snapshot(snapshots.last().unwrap(), p));
        }
        if finishing {
            return;
        }
    }
}

/// Write the latest snapshot next to the black-box dumps on abort.
pub(crate) fn dump_latest_snapshot(dir: &Path) -> Option<PathBuf> {
    let snap = latest_snapshot()?;
    let path = dir.join("status-abort.json");
    let mut doc = BTreeMap::new();
    doc.insert("schema".into(), JsonValue::Str("pastis_status".into()));
    doc.insert(
        "version".into(),
        JsonValue::Num(STATUS_SCHEMA_VERSION as f64),
    );
    doc.insert("last_snapshot".into(), snap);
    std::fs::write(&path, format!("{}\n", JsonValue::Obj(doc))).ok()?;
    Some(path)
}

/// Validate a `status.json` document: schema/version header, rank rows
/// with every field, and per-rank epochs monotone across snapshots. A
/// `complete` document must also carry a `final` snapshot whose ranks all
/// finished (`done == total`, inactive). Returns a description of the
/// first violation.
pub fn validate_status(doc: &JsonValue, complete: bool) -> Result<(), String> {
    if doc.get("schema").and_then(|v| v.as_str()) != Some("pastis_status") {
        return Err("schema field is not \"pastis_status\"".into());
    }
    if doc.get("version").and_then(|v| v.as_u64()) != Some(STATUS_SCHEMA_VERSION) {
        return Err(format!("version is not {STATUS_SCHEMA_VERSION}"));
    }
    let p = doc
        .get("p")
        .and_then(|v| v.as_u64())
        .ok_or("missing world size p")? as usize;
    let snaps = match doc.get("snapshots") {
        Some(JsonValue::Arr(s)) if !s.is_empty() => s,
        _ => return Err("snapshots array is missing or empty".into()),
    };
    let mut last_epochs: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, snap) in snaps.iter().enumerate() {
        let rows = match snap.get("ranks") {
            Some(JsonValue::Arr(r)) => r,
            _ => return Err(format!("snapshot {i}: missing ranks array")),
        };
        if rows.len() > p {
            return Err(format!("snapshot {i}: {} rows for p={p}", rows.len()));
        }
        for row in rows {
            let rank = row
                .get("rank")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("snapshot {i}: row missing rank"))?;
            for key in ["epoch", "done", "total", "live_bytes", "hb_age_ms"] {
                if row.get(key).and_then(|v| v.as_f64()).is_none() {
                    return Err(format!("snapshot {i}: rank {rank} missing {key}"));
                }
            }
            if row.get("stage").and_then(|v| v.as_str()).is_none() {
                return Err(format!("snapshot {i}: rank {rank} missing stage"));
            }
            for key in ["active", "straggler"] {
                if !matches!(row.get(key), Some(JsonValue::Bool(_))) {
                    return Err(format!("snapshot {i}: rank {rank} missing {key}"));
                }
            }
            let epoch = row.get("epoch").and_then(|v| v.as_u64()).unwrap_or(0);
            let prev = last_epochs.insert(rank, epoch).unwrap_or(0);
            if epoch < prev {
                return Err(format!(
                    "snapshot {i}: rank {rank} epoch went backwards ({prev} -> {epoch})"
                ));
            }
            let (done, total) = (
                row.get("done").and_then(|v| v.as_u64()).unwrap_or(0),
                row.get("total").and_then(|v| v.as_u64()).unwrap_or(0),
            );
            if done > total {
                return Err(format!(
                    "snapshot {i}: rank {rank} done {done} > total {total}"
                ));
            }
        }
    }
    if complete {
        let fin = doc.get("final").ok_or("missing final snapshot")?;
        let rows = match fin.get("ranks") {
            Some(JsonValue::Arr(r)) if r.len() == p => r,
            Some(JsonValue::Arr(r)) => {
                return Err(format!("final snapshot has {} rows for p={p}", r.len()))
            }
            _ => return Err("final snapshot missing ranks".into()),
        };
        for row in rows {
            let rank = row.get("rank").and_then(|v| v.as_u64()).unwrap_or(0);
            if !matches!(row.get("active"), Some(JsonValue::Bool(false))) {
                return Err(format!("final snapshot: rank {rank} still active"));
            }
            let (done, total) = (
                row.get("done").and_then(|v| v.as_u64()).unwrap_or(0),
                row.get("total").and_then(|v| v.as_u64()).unwrap_or(0),
            );
            if done != total {
                return Err(format!(
                    "final snapshot: rank {rank} retired {done} of {total} items"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rank: usize, epoch: u64, active: bool) -> RankSample {
        RankSample {
            rank,
            stage: "pastis.spgemm_b".into(),
            epoch,
            done: 3,
            total: 4,
            live_bytes: 1 << 20,
            hb_ns: 0,
            active,
        }
    }

    #[test]
    fn straggler_lags_median_of_active_ranks() {
        let samples = vec![
            sample(0, 100, true),
            sample(1, 100, true),
            sample(2, 2, true),    // lags by 98 > 50
            sample(3, 990, false), // finished rank: never flagged
        ];
        let flags = straggler_flags(&samples, 50);
        assert_eq!(flags, vec![false, false, true, false]);
        // A generous threshold flags nobody.
        assert!(straggler_flags(&samples, 1_000).iter().all(|&f| !f));
        assert!(straggler_flags(&[], 1).is_empty());
    }

    #[test]
    fn status_doc_roundtrips_and_validates() {
        let cfg = MonitorConfig::default();
        let samples = vec![sample(0, 5, true), sample(1, 7, true)];
        let flags = straggler_flags(&samples, 50);
        let s0 = snapshot_doc(0, 10, &samples, &flags);
        let samples2 = vec![
            RankSample {
                epoch: 9,
                done: 4,
                active: false,
                stage: "-".into(),
                ..sample(0, 0, false)
            },
            RankSample {
                epoch: 8,
                done: 4,
                active: false,
                stage: "-".into(),
                ..sample(1, 0, false)
            },
        ];
        let flags2 = straggler_flags(&samples2, 50);
        let s1 = snapshot_doc(1, 20, &samples2, &flags2);
        let doc = status_doc(2, &cfg, &[s0, s1], 0, true);
        let text = format!("{doc}");
        let parsed = JsonValue::parse(&text).expect("status doc parses");
        validate_status(&parsed, true).expect("valid document");

        // Truncated documents and epoch regressions are rejected.
        assert!(validate_status(&JsonValue::parse("{}").unwrap(), false).is_err());
        let bad = status_doc(2, &cfg, &[], 0, false);
        assert!(validate_status(&bad, false)
            .unwrap_err()
            .contains("snapshots"));
    }

    #[test]
    fn epoch_regression_is_rejected() {
        let cfg = MonitorConfig::default();
        let hi = vec![sample(0, 9, true)];
        let lo = vec![sample(0, 3, true)];
        let s0 = snapshot_doc(0, 10, &hi, &[false]);
        let s1 = snapshot_doc(1, 20, &lo, &[false]);
        let doc = status_doc(1, &cfg, &[s0, s1], 0, false);
        let err = validate_status(&doc, false).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn render_includes_stage_and_bar() {
        let samples = vec![sample(0, 5, true)];
        let snap = snapshot_doc(0, 1500, &samples, &[true]);
        let table = render_snapshot(&snap, 1);
        assert!(table.contains("pastis.spgemm_b"), "{table}");
        assert!(table.contains("3/4"), "{table}");
        assert!(table.contains("STRAGGLER"), "{table}");
        assert!(table.contains("1.0 MiB"), "{table}");
        assert_eq!(progress_bar(0.0, 0.0, 4), "[----]");
        assert_eq!(progress_bar(2.0, 4.0, 4), "[##..]");
    }
}
