//! Analytic α-β cost model used to project measured work and communication
//! onto node counts larger than the host can run.
//!
//! The reproduction runs ranks as threads on one machine, so wall-clock time
//! at large `p` is not directly measurable. Instead each pipeline stage
//! records, per rank, the compute time it spent and the communication it
//! issued; the model then charges
//!
//! ```text
//! T_stage = max_rank(compute)/speedup + α·max_rank(msgs) + β·max_rank(bytes)
//! ```
//!
//! which is the standard postal model used to reason about algorithms like
//! 2D SUMMA. Defaults are calibrated to a Cray-XC40-class interconnect
//! (~1 µs latency, ~8 GB/s effective per-node bandwidth) to match the
//! machine the paper evaluated on.

use crate::stats::CommStats;

/// Postal-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Seconds of latency per message.
    pub alpha: f64,
    /// Seconds per byte moved.
    pub beta: f64,
    /// Factor by which real parallel hardware outruns this host's serialized
    /// thread execution for compute (1.0 = take measured thread time as-is).
    pub compute_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 1.0e-6,
            beta: 1.0 / 8.0e9,
            compute_scale: 1.0,
        }
    }
}

/// Per-stage, per-rank measurement: compute seconds plus the stage's
/// communication counter delta.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageCost {
    /// Seconds of pure computation on the critical (max) rank.
    pub compute_secs: f64,
    /// Communication issued by the critical rank during the stage.
    pub comm: CommStats,
}

impl StageCost {
    /// Critical path across ranks: element-wise max.
    pub fn max(self, rhs: StageCost) -> StageCost {
        StageCost {
            compute_secs: self.compute_secs.max(rhs.compute_secs),
            comm: self.comm.max(rhs.comm),
        }
    }

    /// Aggregate across ranks (useful for total volume reporting).
    pub fn sum(self, rhs: StageCost) -> StageCost {
        StageCost {
            compute_secs: self.compute_secs + rhs.compute_secs,
            comm: self.comm.sum(rhs.comm),
        }
    }
}

impl CostModel {
    /// Modeled wall-clock seconds for a stage whose critical-rank
    /// measurements are `stage`.
    pub fn stage_seconds(&self, stage: StageCost) -> f64 {
        let msgs = stage.comm.msgs_sent.max(stage.comm.msgs_recv) as f64;
        let bytes = stage.comm.bytes_sent.max(stage.comm.bytes_recv) as f64;
        stage.compute_secs / self.compute_scale + self.alpha * msgs + self.beta * bytes
    }

    /// Modeled seconds for a sequence of stages executed back to back.
    pub fn total_seconds(&self, stages: &[StageCost]) -> f64 {
        stages.iter().map(|&s| self.stage_seconds(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_seconds_combines_terms() {
        let m = CostModel {
            alpha: 1e-6,
            beta: 1e-9,
            compute_scale: 2.0,
        };
        let s = StageCost {
            compute_secs: 4.0,
            comm: CommStats {
                bytes_sent: 1_000_000,
                bytes_recv: 0,
                msgs_sent: 10,
                msgs_recv: 0,
                wait_nanos: 0,
            },
        };
        let t = m.stage_seconds(s);
        assert!((t - (2.0 + 10.0 * 1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn max_takes_critical_path() {
        let a = StageCost {
            compute_secs: 1.0,
            comm: CommStats {
                bytes_sent: 5,
                ..Default::default()
            },
        };
        let b = StageCost {
            compute_secs: 3.0,
            comm: CommStats {
                bytes_sent: 2,
                ..Default::default()
            },
        };
        let m = a.max(b);
        assert_eq!(m.compute_secs, 3.0);
        assert_eq!(m.comm.bytes_sent, 5);
    }
}
