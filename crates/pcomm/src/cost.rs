//! Calibrated α-β cost model, machine profiles, and the trace-driven
//! scaling projector.
//!
//! The reproduction runs ranks as threads on one machine, so wall-clock
//! time at large `p` is not directly measurable. Each pipeline stage
//! instead records, per rank, deterministic compute work
//! ([`crate::work`]) and the communication it issued; this module turns
//! those records into modeled seconds at arbitrary node counts.
//!
//! Three layers:
//!
//! 1. [`MachineProfile`] — a versioned JSON document holding the postal
//!    parameters (α seconds/message, β seconds/byte) and the per-op cost
//!    of every [`CostClass`], produced by the `calibrate` bench bin and
//!    installable process-wide.
//! 2. [`CostModel`] — prices a [`StageCost`]. The legacy flat charge
//!    `compute/scale + α·msgs + β·bytes` survives as [`CostModel::flat`];
//!    [`CostModel::stage`] is **shape-aware**: each collective pays its
//!    algorithm's cost (a tree broadcast pays `⌈log₂ m⌉·α + 2·b·β`, an
//!    all-to-all pays per-destination α, a linear exscan pays a chain),
//!    following the Sparse-SUMMA communication analyses of Buluç &
//!    Gilbert.
//! 3. [`project`] — replays per-stage extracts of a recorded trace
//!    (see `obs::project`) at a hypothetical node count: total work is
//!    divided evenly over the target ranks and every collective is
//!    re-priced at the target communicator sizes with per-kind growth
//!    laws ([`Growth`]), yielding the paper's Fig. 9/10-style
//!    compute-vs-communication breakdowns up to p = 2025.

use std::collections::BTreeMap;

use obs::JsonValue;

use crate::stats::CommStats;
use crate::work::{self, CostClass, COST_CLASSES};

/// Schema version of the machine-profile JSON (bump on layout changes).
/// v2 added `mem_growth`: per-structure byte-growth laws mirroring the
/// time-growth laws, so the projector can report per-rank peak RSS.
pub const PROFILE_SCHEMA_VERSION: u64 = 2;

/// The default per-structure memory growth laws, keyed by the watermark
/// names probed via `obs::alloc::watermark` (the `mem.watermark.` gauge
/// prefix stripped):
///
/// * `seqstore.store` — a rank holds the sequences of its grid row and
///   column, 2n/q of them: bytes ∝ 1/q.
/// * `sparse.accum` — SpGEMM hash accumulators cover a C block row slab,
///   a 1/q vertical slice of the output: bytes ∝ 1/q.
/// * `sparse.triples` — a rank's 1/p share of the globally fixed triple
///   volume (PSG construction / transpose shuffles): bytes ∝ 1/p.
/// * `pastis.pending` — the pending alignment-pair pool over this rank's
///   C block, a 1/p share of the nnz: bytes ∝ 1/p.
/// * `align.scratch` — thread-local DP scratch sized by the longest
///   sequence pair, not the grid: constant.
pub const MEM_GROWTH_DEFAULTS: [(&str, Growth); 5] = [
    ("seqstore.store", Growth::InvQ),
    ("sparse.accum", Growth::InvQ),
    ("sparse.triples", Growth::InvP),
    ("pastis.pending", Growth::InvP),
    ("align.scratch", Growth::Const),
];

/// A calibrated description of the host: postal parameters plus the per-op
/// nanosecond cost of every compute [`CostClass`]. Serialized as JSON
/// (`machine_profile.json`) by the `calibrate` bench bin.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub version: u64,
    /// Free-form provenance: host description, core count, date.
    pub host: String,
    /// Seconds of latency per message.
    pub alpha: f64,
    /// Seconds per byte moved.
    pub beta: f64,
    /// Factor by which the modeled machine outruns this host's serialized
    /// thread execution for compute (1.0 = take measured work as-is).
    pub compute_scale: f64,
    /// ns per op for every cost class, keyed by [`CostClass::key`].
    pub cost_ns: BTreeMap<String, f64>,
    /// Keys of the classes that were actually measured; the rest carry
    /// the documented defaults.
    pub calibrated: Vec<String>,
    /// Per-structure byte-growth laws, keyed by watermark name (schema
    /// v2; see [`MEM_GROWTH_DEFAULTS`]). Structures not listed project
    /// conservatively as [`Growth::Const`].
    pub mem_growth: BTreeMap<String, Growth>,
}

impl MachineProfile {
    /// The built-in profile: documented per-class defaults and
    /// Cray-XC40-class postal parameters (~1 µs latency, ~8 GB/s
    /// effective per-node bandwidth), matching the paper's machine.
    pub fn defaults() -> MachineProfile {
        MachineProfile {
            version: PROFILE_SCHEMA_VERSION,
            host: "builtin-defaults (uncalibrated)".into(),
            alpha: 1.0e-6,
            beta: 1.0 / 8.0e9,
            compute_scale: 1.0,
            cost_ns: COST_CLASSES
                .iter()
                .map(|c| (c.key().to_string(), c.default_milli_ns() as f64 * 1e-3))
                .collect(),
            calibrated: Vec::new(),
            mem_growth: MEM_GROWTH_DEFAULTS
                .iter()
                .map(|&(k, g)| (k.to_string(), g))
                .collect(),
        }
    }

    /// The profile's ns/op for `class` (default when the key is absent).
    pub fn class_ns(&self, class: CostClass) -> f64 {
        self.cost_ns
            .get(class.key())
            .copied()
            .unwrap_or(class.default_milli_ns() as f64 * 1e-3)
    }

    /// Install the profile's compute constants into the process-wide
    /// [`crate::work`] cost table so subsequently recorded work uses the
    /// calibrated values. Call before launching a world.
    pub fn install(&self) {
        for &c in &COST_CLASSES {
            let milli = (self.class_ns(c) * 1e3).round().max(1.0) as u64;
            work::set_cost_milli_ns(c, milli);
        }
    }

    pub fn to_json(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert("schema".into(), JsonValue::Str("machine_profile".into()));
        o.insert("version".into(), JsonValue::Num(self.version as f64));
        o.insert("host".into(), JsonValue::Str(self.host.clone()));
        o.insert("alpha_secs".into(), JsonValue::Num(self.alpha));
        o.insert("beta_secs_per_byte".into(), JsonValue::Num(self.beta));
        o.insert("compute_scale".into(), JsonValue::Num(self.compute_scale));
        o.insert(
            "cost_ns".into(),
            JsonValue::Obj(
                self.cost_ns
                    .iter()
                    .map(|(k, &v)| (k.clone(), JsonValue::Num(v)))
                    .collect(),
            ),
        );
        o.insert(
            "calibrated".into(),
            JsonValue::Arr(
                self.calibrated
                    .iter()
                    .map(|k| JsonValue::Str(k.clone()))
                    .collect(),
            ),
        );
        o.insert(
            "mem_growth".into(),
            JsonValue::Obj(
                self.mem_growth
                    .iter()
                    .map(|(k, g)| (k.clone(), JsonValue::Str(g.key().into())))
                    .collect(),
            ),
        );
        JsonValue::Obj(o)
    }

    /// Parse and validate a profile document. This is also the schema
    /// check the bench gate runs: unknown cost keys, a missing field, a
    /// wrong version, or a non-positive parameter are errors.
    pub fn from_json(v: &JsonValue) -> Result<MachineProfile, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("machine profile: missing numeric field `{k}`"))
        };
        if v.get("schema").and_then(JsonValue::as_str) != Some("machine_profile") {
            return Err("machine profile: `schema` must be \"machine_profile\"".into());
        }
        let version = num("version")? as u64;
        if version != PROFILE_SCHEMA_VERSION {
            return Err(format!(
                "machine profile: version {version} unsupported (want {PROFILE_SCHEMA_VERSION})"
            ));
        }
        let host = v
            .get("host")
            .and_then(JsonValue::as_str)
            .ok_or("machine profile: missing `host`")?
            .to_string();
        let alpha = num("alpha_secs")?;
        let beta = num("beta_secs_per_byte")?;
        let compute_scale = num("compute_scale")?;
        for (name, x) in [
            ("alpha_secs", alpha),
            ("beta_secs_per_byte", beta),
            ("compute_scale", compute_scale),
        ] {
            if !(x > 0.0 && x.is_finite()) {
                return Err(format!("machine profile: `{name}` must be positive"));
            }
        }
        let mut cost_ns = BTreeMap::new();
        match v.get("cost_ns") {
            Some(JsonValue::Obj(m)) => {
                for (k, x) in m {
                    let c = CostClass::from_key(k)
                        .ok_or_else(|| format!("machine profile: unknown cost class `{k}`"))?;
                    let ns = x
                        .as_f64()
                        .filter(|n| *n > 0.0 && n.is_finite())
                        .ok_or_else(|| format!("machine profile: cost_ns.{k} must be positive"))?;
                    cost_ns.insert(c.key().to_string(), ns);
                }
            }
            _ => return Err("machine profile: missing `cost_ns` object".into()),
        }
        let calibrated = match v.get("calibrated") {
            Some(JsonValue::Arr(a)) => a
                .iter()
                .map(|x| {
                    x.as_str()
                        .and_then(|s| CostClass::from_key(s).map(|c| c.key().to_string()))
                        .ok_or_else(|| format!("machine profile: bad calibrated entry {x}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err("machine profile: `calibrated` must be an array".into()),
        };
        let mut mem_growth = BTreeMap::new();
        match v.get("mem_growth") {
            Some(JsonValue::Obj(m)) => {
                for (k, x) in m {
                    let g = x
                        .as_str()
                        .and_then(Growth::from_key)
                        .ok_or_else(|| format!("machine profile: mem_growth.{k} has bad law"))?;
                    mem_growth.insert(k.clone(), g);
                }
            }
            _ => return Err("machine profile: missing `mem_growth` object (schema v2)".into()),
        }
        Ok(MachineProfile {
            version,
            host,
            alpha,
            beta,
            compute_scale,
            cost_ns,
            calibrated,
            mem_growth,
        })
    }

    /// Load a profile from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<MachineProfile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("machine profile: read {}: {e}", path.display()))?;
        Self::from_json(&JsonValue::parse(&text)?)
    }

    /// Write the profile as pretty-enough JSON (one top-level key per
    /// line via the compact writer — the document is small).
    pub fn save(&self, path: &std::path::Path) -> Result<(), String> {
        std::fs::write(path, format!("{}\n", self.to_json()))
            .map_err(|e| format!("machine profile: write {}: {e}", path.display()))
    }
}

/// Postal-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Seconds of latency per message.
    pub alpha: f64,
    /// Seconds per byte moved.
    pub beta: f64,
    /// Factor by which real parallel hardware outruns this host's serialized
    /// thread execution for compute (1.0 = take measured thread time as-is).
    pub compute_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        let p = MachineProfile::defaults();
        CostModel {
            alpha: p.alpha,
            beta: p.beta,
            compute_scale: p.compute_scale,
        }
    }
}

/// The collective algorithms the runtime implements, as cost shapes. The
/// variants mirror the `pcomm.*` span names of `collectives.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollShape {
    /// Binomial-tree broadcast.
    Bcast,
    /// Binomial-tree reduction.
    Reduce,
    /// Reduce + broadcast.
    Allreduce,
    /// Linear gather to a root.
    Gather,
    /// Gather + broadcast of the concatenation.
    Allgather,
    /// Personalized all-to-all: one message per destination.
    Alltoallv,
    /// Reduce + broadcast of one byte.
    Barrier,
    /// Linear rank chain.
    Exscan,
    /// Raw point-to-point traffic (the sequence-exchange fence).
    PointToPoint,
}

impl CollShape {
    /// Stable serde key.
    pub fn key(self) -> &'static str {
        match self {
            CollShape::Bcast => "bcast",
            CollShape::Reduce => "reduce",
            CollShape::Allreduce => "allreduce",
            CollShape::Gather => "gather",
            CollShape::Allgather => "allgather",
            CollShape::Alltoallv => "alltoallv",
            CollShape::Barrier => "barrier",
            CollShape::Exscan => "exscan",
            CollShape::PointToPoint => "p2p",
        }
    }

    /// Inverse of [`CollShape::key`].
    pub fn from_key(k: &str) -> Option<CollShape> {
        [
            CollShape::Bcast,
            CollShape::Reduce,
            CollShape::Allreduce,
            CollShape::Gather,
            CollShape::Allgather,
            CollShape::Alltoallv,
            CollShape::Barrier,
            CollShape::Exscan,
            CollShape::PointToPoint,
        ]
        .into_iter()
        .find(|s| s.key() == k)
    }

    /// Payload bytes per member per call, recovered from the wire volume
    /// one collective put on the network (the inverse of each algorithm's
    /// transmission count; `Σ_ranks bytes_sent` of the collective's spans
    /// divided by the number of distinct collectives gives the wire
    /// volume).
    pub fn payload_from_wire(self, m: usize, wire_bytes: f64) -> f64 {
        let m = m as f64;
        if m <= 1.0 {
            return 0.0;
        }
        match self {
            // Tree bcast/reduce and the linear gather/exscan transmit the
            // payload m−1 times.
            CollShape::Bcast | CollShape::Reduce | CollShape::Gather | CollShape::Exscan => {
                wire_bytes / (m - 1.0)
            }
            // Reduce then broadcast: 2(m−1) transmissions.
            CollShape::Allreduce => wire_bytes / (2.0 * (m - 1.0)),
            // Gather ((m−1)·b) then broadcast of the concatenation
            // ((m−1)·m·b).
            CollShape::Allgather => wire_bytes / ((m - 1.0) * (m + 1.0)),
            // Every rank ships its whole personalized payload once.
            CollShape::Alltoallv => wire_bytes / m,
            CollShape::Barrier | CollShape::PointToPoint => 0.0,
        }
    }
}

/// One collective family's aggregate within a stage, in model terms.
#[derive(Debug, Clone, PartialEq)]
pub struct CollAgg {
    /// Cost shape.
    pub shape: CollShape,
    /// Ranks participating in each such collective (communicator size).
    pub comm_size: usize,
    /// Collectives a rank issues during the stage — for
    /// [`CollShape::PointToPoint`], the rank's message count instead.
    pub calls: f64,
    /// Payload bytes each member contributes per call — for
    /// [`CollShape::PointToPoint`], the rank's total bytes instead.
    pub payload_bytes: f64,
}

/// Per-stage, per-rank measurement: compute seconds plus communication.
/// `comm` holds raw counter deltas; `colls` optionally breaks the
/// communication into shaped collectives (then `comm` should carry only
/// the residual point-to-point traffic, or zeros).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageCost {
    /// Seconds of pure computation on the critical (max) rank.
    pub compute_secs: f64,
    /// Communication issued by the critical rank during the stage, not
    /// covered by `colls`.
    pub comm: CommStats,
    /// Shaped collective aggregates (empty = price `comm` flat).
    pub colls: Vec<CollAgg>,
}

impl StageCost {
    /// Critical path across ranks: element-wise max of the measured
    /// fields. `colls` is taken from whichever side has one (projection
    /// outputs are already per-stage aggregates and are not max-combined).
    pub fn max(self, rhs: StageCost) -> StageCost {
        StageCost {
            compute_secs: self.compute_secs.max(rhs.compute_secs),
            comm: self.comm.max(rhs.comm),
            colls: if self.colls.is_empty() {
                rhs.colls
            } else {
                self.colls
            },
        }
    }

    /// Aggregate across ranks (useful for total volume reporting).
    pub fn sum(self, rhs: StageCost) -> StageCost {
        StageCost {
            compute_secs: self.compute_secs + rhs.compute_secs,
            comm: self.comm.sum(rhs.comm),
            colls: if self.colls.is_empty() {
                rhs.colls
            } else {
                self.colls
            },
        }
    }

    pub fn to_json(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert("compute_secs".into(), JsonValue::Num(self.compute_secs));
        o.insert("comm".into(), comm_stats_to_json(&self.comm));
        o.insert(
            "colls".into(),
            JsonValue::Arr(self.colls.iter().map(CollAgg::to_json).collect()),
        );
        JsonValue::Obj(o)
    }

    pub fn from_json(v: &JsonValue) -> Result<StageCost, String> {
        Ok(StageCost {
            compute_secs: v
                .get("compute_secs")
                .and_then(JsonValue::as_f64)
                .ok_or("stage cost: missing compute_secs")?,
            comm: comm_stats_from_json(v.get("comm").ok_or("stage cost: missing comm")?)?,
            colls: match v.get("colls") {
                Some(JsonValue::Arr(a)) => a
                    .iter()
                    .map(CollAgg::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
                _ => return Err("stage cost: colls must be an array".into()),
            },
        })
    }
}

impl CollAgg {
    pub fn to_json(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert("shape".into(), JsonValue::Str(self.shape.key().into()));
        o.insert("comm_size".into(), JsonValue::Num(self.comm_size as f64));
        o.insert("calls".into(), JsonValue::Num(self.calls));
        o.insert("payload_bytes".into(), JsonValue::Num(self.payload_bytes));
        JsonValue::Obj(o)
    }

    pub fn from_json(v: &JsonValue) -> Result<CollAgg, String> {
        let shape = v
            .get("shape")
            .and_then(JsonValue::as_str)
            .and_then(CollShape::from_key)
            .ok_or("coll agg: bad shape")?;
        let num = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("coll agg: missing `{k}`"))
        };
        Ok(CollAgg {
            shape,
            comm_size: num("comm_size")? as usize,
            calls: num("calls")?,
            payload_bytes: num("payload_bytes")?,
        })
    }
}

fn comm_stats_to_json(c: &CommStats) -> JsonValue {
    let mut o = BTreeMap::new();
    o.insert("bytes_sent".into(), JsonValue::Num(c.bytes_sent as f64));
    o.insert("bytes_recv".into(), JsonValue::Num(c.bytes_recv as f64));
    o.insert("msgs_sent".into(), JsonValue::Num(c.msgs_sent as f64));
    o.insert("msgs_recv".into(), JsonValue::Num(c.msgs_recv as f64));
    o.insert("wait_nanos".into(), JsonValue::Num(c.wait_nanos as f64));
    JsonValue::Obj(o)
}

fn comm_stats_from_json(v: &JsonValue) -> Result<CommStats, String> {
    let num = |k: &str| {
        v.get(k)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("comm stats: missing `{k}`"))
    };
    Ok(CommStats {
        bytes_sent: num("bytes_sent")?,
        bytes_recv: num("bytes_recv")?,
        msgs_sent: num("msgs_sent")?,
        msgs_recv: num("msgs_recv")?,
        wait_nanos: num("wait_nanos")?,
    })
}

impl CostModel {
    /// A model with the profile's postal parameters.
    pub fn from_profile(p: &MachineProfile) -> CostModel {
        CostModel {
            alpha: p.alpha,
            beta: p.beta,
            compute_scale: p.compute_scale,
        }
    }

    /// The legacy flat postal charge: `compute/scale + α·msgs + β·bytes`
    /// on the raw counters, ignoring collective shape. Kept for
    /// comparison against [`CostModel::stage`] and for stages measured
    /// without a collective breakdown.
    pub fn flat(&self, stage: &StageCost) -> f64 {
        let msgs = stage.comm.msgs_sent.max(stage.comm.msgs_recv) as f64;
        let bytes = stage.comm.bytes_sent.max(stage.comm.bytes_recv) as f64;
        stage.compute_secs / self.compute_scale + self.alpha * msgs + self.beta * bytes
    }

    /// Seconds one rank spends in `coll.calls` collectives of the given
    /// shape: per-collective algorithm cost × calls. Tree collectives pay
    /// `⌈log₂ m⌉·α + 2·b·β`, the personalized all-to-all pays one α per
    /// destination, linear chains pay `(m−1)·(α + b·β)`.
    pub fn coll_seconds(&self, coll: &CollAgg) -> f64 {
        if coll.shape == CollShape::PointToPoint {
            return self.alpha * coll.calls + self.beta * coll.payload_bytes;
        }
        if coll.comm_size <= 1 {
            return 0.0;
        }
        let m = coll.comm_size as f64;
        let lg = m.log2().ceil();
        let b = coll.payload_bytes * self.beta;
        let per_call = match coll.shape {
            CollShape::Bcast | CollShape::Reduce | CollShape::Allreduce => {
                lg * self.alpha + 2.0 * b
            }
            CollShape::Gather | CollShape::Exscan => (m - 1.0) * (self.alpha + b),
            // Linear gather, then a tree broadcast of the m·b concatenation.
            CollShape::Allgather => (m - 1.0) * (self.alpha + b) + lg * self.alpha + 2.0 * m * b,
            // One send per destination; the payload is the rank's whole
            // personalized buffer (sent once and received once).
            CollShape::Alltoallv => (m - 1.0) * self.alpha + 2.0 * b,
            CollShape::Barrier => 2.0 * lg * self.alpha,
            CollShape::PointToPoint => unreachable!("handled above"),
        };
        coll.calls * per_call
    }

    /// Shape-aware modeled seconds for a stage: compute, plus each
    /// collective priced by its algorithm, plus the flat postal charge on
    /// the residual point-to-point counters.
    pub fn stage(&self, stage: &StageCost) -> f64 {
        self.flat(stage)
            + stage
                .colls
                .iter()
                .map(|c| self.coll_seconds(c))
                .sum::<f64>()
    }

    /// Modeled wall-clock seconds for a stage (by-value convenience used
    /// by the fig bins; equivalent to [`CostModel::stage`]).
    pub fn stage_seconds(&self, stage: StageCost) -> f64 {
        self.stage(&stage)
    }

    /// Modeled seconds for a sequence of stages executed back to back.
    pub fn total_seconds(&self, stages: &[StageCost]) -> f64 {
        stages.iter().map(|s| self.stage(s)).sum()
    }
}

/// How a projected quantity scales from the recorded grid to the target
/// grid (`q = √p` is the process-grid side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Growth {
    /// Invariant in p.
    Const,
    /// ∝ q — e.g. SUMMA rounds: a rank joins 2q broadcasts.
    LinearQ,
    /// ∝ 1/q — a rank's share of a row/column-partitioned quantity.
    InvQ,
    /// ∝ 1/p — a rank's share of a globally fixed quantity.
    InvP,
}

impl Growth {
    /// Stable serde key (the `mem_growth` values of the profile JSON).
    pub fn key(self) -> &'static str {
        match self {
            Growth::Const => "const",
            Growth::LinearQ => "linear_q",
            Growth::InvQ => "inv_q",
            Growth::InvP => "inv_p",
        }
    }

    /// Inverse of [`Growth::key`].
    pub fn from_key(k: &str) -> Option<Growth> {
        [Growth::Const, Growth::LinearQ, Growth::InvQ, Growth::InvP]
            .into_iter()
            .find(|g| g.key() == k)
    }

    /// Multiplier taking a per-rank quantity from grid `p_from` to
    /// `p_to` (both perfect squares).
    pub fn factor(self, p_from: usize, p_to: usize) -> f64 {
        let (qf, qt) = (grid_side(p_from) as f64, grid_side(p_to) as f64);
        match self {
            Growth::Const => 1.0,
            Growth::LinearQ => qt / qf,
            Growth::InvQ => qf / qt,
            Growth::InvP => (qf * qf) / (qt * qt),
        }
    }
}

/// Which communicator a collective kind runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The world communicator (size p).
    World,
    /// A grid row/column subcommunicator (size q = √p).
    GridRow,
}

impl Scope {
    /// Communicator size under `p` total ranks.
    pub fn size(self, p: usize) -> usize {
        match self {
            Scope::World => p,
            Scope::GridRow => grid_side(p),
        }
    }
}

/// Projection rule for one collective span kind: its cost shape, the
/// communicator it runs over, and how per-rank calls and per-call payload
/// scale with the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindRule {
    pub shape: CollShape,
    pub scope: Scope,
    pub calls: Growth,
    pub payload: Growth,
}

/// The default rule per `pcomm.*` collective span, derived from how the
/// pipeline uses each primitive:
///
/// * `bcast` — the Sparse-SUMMA row/column panel broadcasts: a rank joins
///   2q of them per multiply (calls ∝ q) over a q-sized subcommunicator,
///   and each panel is a 1/p block of the operand (payload ∝ 1/p).
/// * `allreduce`/`reduce`/`exscan`/`barrier` — world-sized scalar
///   bookkeeping: constant calls and payload.
/// * `gather`/`allgather` — result collection / k-mer count exchange of
///   per-rank shares (payload ∝ 1/p).
/// * `alltoallv` — triple/transpose shuffles of globally fixed volume:
///   per-rank payload ∝ 1/p.
/// * `waitall` — the overlapped sequence exchange fence: a rank fetches
///   its block's row/column sequences from O(q) owners (calls ∝ q) with
///   total bytes ∝ the 2n/q sequences it needs (payload ∝ 1/q).
pub const KIND_RULES: [(&str, KindRule); 10] = [
    (
        "pcomm.bcast",
        KindRule {
            shape: CollShape::Bcast,
            scope: Scope::GridRow,
            calls: Growth::LinearQ,
            payload: Growth::InvP,
        },
    ),
    (
        // Nonblocking SUMMA panel broadcast: same traffic pattern and
        // scaling as the blocking `pcomm.bcast` — only its completion is
        // deferred, which the overlap dissection (not the per-stage price)
        // accounts for.
        "pcomm.ibcast",
        KindRule {
            shape: CollShape::Bcast,
            scope: Scope::GridRow,
            calls: Growth::LinearQ,
            payload: Growth::InvP,
        },
    ),
    (
        "pcomm.reduce",
        KindRule {
            shape: CollShape::Reduce,
            scope: Scope::World,
            calls: Growth::Const,
            payload: Growth::Const,
        },
    ),
    (
        "pcomm.allreduce",
        KindRule {
            shape: CollShape::Allreduce,
            scope: Scope::World,
            calls: Growth::Const,
            payload: Growth::Const,
        },
    ),
    (
        "pcomm.gather",
        KindRule {
            shape: CollShape::Gather,
            scope: Scope::World,
            calls: Growth::Const,
            payload: Growth::InvP,
        },
    ),
    (
        "pcomm.allgather",
        KindRule {
            shape: CollShape::Allgather,
            scope: Scope::GridRow,
            calls: Growth::Const,
            payload: Growth::InvP,
        },
    ),
    (
        "pcomm.alltoallv",
        KindRule {
            shape: CollShape::Alltoallv,
            scope: Scope::World,
            calls: Growth::Const,
            payload: Growth::InvP,
        },
    ),
    (
        "pcomm.barrier",
        KindRule {
            shape: CollShape::Barrier,
            scope: Scope::World,
            calls: Growth::Const,
            payload: Growth::Const,
        },
    ),
    (
        "pcomm.exscan",
        KindRule {
            shape: CollShape::Exscan,
            scope: Scope::World,
            calls: Growth::Const,
            payload: Growth::Const,
        },
    ),
    (
        "pcomm.waitall",
        KindRule {
            shape: CollShape::PointToPoint,
            scope: Scope::World,
            calls: Growth::LinearQ,
            payload: Growth::InvQ,
        },
    ),
];

/// Span names of every collective kind the projector prices, in rule
/// order — pass to `obs::project::extract_stages`.
pub fn kind_names() -> Vec<&'static str> {
    KIND_RULES.iter().map(|&(n, _)| n).collect()
}

fn rule_for(kind: &str) -> Option<KindRule> {
    KIND_RULES
        .iter()
        .find(|&&(n, _)| n == kind)
        .map(|&(_, r)| r)
}

/// Integer square root for perfect-square grid sizes (1 for p = 0/1).
pub fn grid_side(p: usize) -> usize {
    let q = (p as f64).sqrt().round() as usize;
    q.max(1)
}

/// One stage of a [`Projection`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectedStage {
    /// Paper component label (e.g. `(AS)AT`).
    pub label: String,
    /// Modeled compute seconds on the *critical* rank at the target p:
    /// the balanced share inflated by the stage's measured λ.
    pub compute_secs: f64,
    /// Modeled communication seconds per rank at the target p.
    pub comm_secs: f64,
    /// Measured per-stage work imbalance at recording time, max/mean of
    /// the per-rank deterministic work (1.0 when the stage recorded no
    /// work). The projection assumes the recorded skew persists at the
    /// target grid — partitioning is data-driven, not p-driven.
    pub lambda: f64,
    /// The shaped stage cost the seconds were priced from.
    pub cost: StageCost,
}

/// A recorded run replayed at a hypothetical node count.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Target rank count.
    pub p: usize,
    /// Rank count of the recording the projection was built from.
    pub p_recorded: usize,
    /// Measured compute imbalance at recording time: max-rank work /
    /// mean-rank work over the whole run (1.0 = perfectly balanced).
    /// Stage compute is additionally scaled by each stage's own λ (see
    /// [`ProjectedStage::lambda`]); this scalar is the run-level summary.
    pub imbalance: f64,
    /// Stages in pipeline order.
    pub stages: Vec<ProjectedStage>,
}

impl Projection {
    /// Modeled end-to-end seconds (stages run back to back).
    pub fn total_secs(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.compute_secs + s.comm_secs)
            .sum()
    }

    /// Modeled seconds of one stage by label (0 when absent).
    pub fn stage_secs(&self, label: &str) -> f64 {
        self.stages
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.compute_secs + s.comm_secs)
            .unwrap_or(0.0)
    }

    /// A stage's share of the modeled total (the alignment-share table).
    pub fn share(&self, label: &str) -> f64 {
        let total = self.total_secs();
        if total <= 0.0 {
            0.0
        } else {
            self.stage_secs(label) / total
        }
    }

    /// What-if: overlap `comm_stage`'s broadcast traffic with
    /// `compute_stage`'s computation (the planned SUMMA-stage-k+1
    /// broadcast / stage-k alignment overlap). The hidden time is
    /// whatever part of the broadcast seconds fits under the compute
    /// seconds; the result quantifies the payoff before anyone builds
    /// the overlap.
    pub fn whatif_overlap(
        &self,
        model: &CostModel,
        comm_stage: &str,
        compute_stage: &str,
    ) -> WhatIfOverlap {
        let bcast_secs = self
            .stages
            .iter()
            .find(|s| s.label == comm_stage)
            .map(|s| {
                s.cost
                    .colls
                    .iter()
                    .filter(|c| c.shape == CollShape::Bcast)
                    .map(|c| model.coll_seconds(c))
                    .sum::<f64>()
            })
            .unwrap_or(0.0);
        let compute_secs = self
            .stages
            .iter()
            .find(|s| s.label == compute_stage)
            .map(|s| s.compute_secs)
            .unwrap_or(0.0);
        let baseline_secs = self.total_secs();
        let hidden_secs = bcast_secs.min(compute_secs);
        WhatIfOverlap {
            p: self.p,
            baseline_secs,
            hidden_secs,
            overlapped_secs: baseline_secs - hidden_secs,
        }
    }

    pub fn to_json(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert("p".into(), JsonValue::Num(self.p as f64));
        o.insert("p_recorded".into(), JsonValue::Num(self.p_recorded as f64));
        o.insert("imbalance".into(), JsonValue::Num(self.imbalance));
        o.insert(
            "stages".into(),
            JsonValue::Arr(
                self.stages
                    .iter()
                    .map(|s| {
                        let mut so = BTreeMap::new();
                        so.insert("label".into(), JsonValue::Str(s.label.clone()));
                        so.insert("compute_secs".into(), JsonValue::Num(s.compute_secs));
                        so.insert("comm_secs".into(), JsonValue::Num(s.comm_secs));
                        so.insert("lambda".into(), JsonValue::Num(s.lambda));
                        so.insert("cost".into(), s.cost.to_json());
                        JsonValue::Obj(so)
                    })
                    .collect(),
            ),
        );
        o.insert("total_secs".into(), JsonValue::Num(self.total_secs()));
        JsonValue::Obj(o)
    }

    pub fn from_json(v: &JsonValue) -> Result<Projection, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("projection: missing `{k}`"))
        };
        let stages = match v.get("stages") {
            Some(JsonValue::Arr(a)) => a
                .iter()
                .map(|s| {
                    Ok(ProjectedStage {
                        label: s
                            .get("label")
                            .and_then(JsonValue::as_str)
                            .ok_or("projection stage: missing label")?
                            .to_string(),
                        compute_secs: s
                            .get("compute_secs")
                            .and_then(JsonValue::as_f64)
                            .ok_or("projection stage: missing compute_secs")?,
                        comm_secs: s
                            .get("comm_secs")
                            .and_then(JsonValue::as_f64)
                            .ok_or("projection stage: missing comm_secs")?,
                        lambda: s
                            .get("lambda")
                            .and_then(JsonValue::as_f64)
                            .ok_or("projection stage: missing lambda")?,
                        cost: StageCost::from_json(
                            s.get("cost").ok_or("projection stage: missing cost")?,
                        )?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("projection: missing `stages` array".into()),
        };
        Ok(Projection {
            p: num("p")? as usize,
            p_recorded: num("p_recorded")? as usize,
            imbalance: num("imbalance")?,
            stages,
        })
    }
}

/// A quantified overlap hypothesis (see [`Projection::whatif_overlap`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIfOverlap {
    /// Target rank count.
    pub p: usize,
    /// Modeled end-to-end seconds without overlap.
    pub baseline_secs: f64,
    /// Broadcast seconds hidden under the compute stage.
    pub hidden_secs: f64,
    /// Modeled end-to-end seconds with the overlap built.
    pub overlapped_secs: f64,
}

impl WhatIfOverlap {
    /// Critical-path reduction, percent of baseline.
    pub fn saved_pct(&self) -> f64 {
        if self.baseline_secs <= 0.0 {
            0.0
        } else {
            100.0 * self.hidden_secs / self.baseline_secs
        }
    }
}

/// Replay per-stage trace extracts at `p_target` ranks.
///
/// Compute: a stage's total recorded work is divided evenly over the
/// target ranks and then inflated by the stage's measured λ (max/mean of
/// the per-rank deterministic work), so the critical path carries the
/// recorded imbalance instead of assuming balance. λ is held constant
/// across p — PASTIS partitions by data, not by grid, so the skew a
/// dataset induces at the recorded p is the best available estimate at
/// the target p.
/// Communication: each collective kind's recorded calls and recovered
/// per-call payload are scaled by its [`KindRule`] growth laws and priced
/// at the target communicator size; counter traffic not covered by a kind
/// span is charged flat with its total volume split over the target
/// ranks. λ-normalized projections from recordings at different p agree
/// wherever the growth laws hold — the cross-p invariance the tests pin
/// (λ itself is a property of the recording, so only the skew *ranking*
/// is expected to transfer between recordings).
pub fn project(
    extracts: &[obs::project::StageExtract],
    p_recorded: usize,
    model: &CostModel,
    p_target: usize,
) -> Projection {
    let p_rec = p_recorded.max(1) as f64;
    let p_tgt = p_target.max(1) as f64;
    let mut stages = Vec::with_capacity(extracts.len());
    let (mut work_total, mut work_max) = (0u64, 0u64);
    for ex in extracts {
        work_total += ex.work_ns_total;
        work_max += ex.work_ns_max;
        // Measured per-stage imbalance: critical rank over mean rank of
        // the deterministic work ledger (see `obs::imbalance::lambda`).
        let lambda = if ex.work_ns_total == 0 || ex.ranks == 0 {
            1.0
        } else {
            ex.work_ns_max as f64 * ex.ranks as f64 / ex.work_ns_total as f64
        };
        let compute_secs = ex.work_ns_total as f64 * 1e-9 / p_tgt / model.compute_scale * lambda;
        let mut colls: Vec<CollAgg> = Vec::new();
        let mut covered_msgs = 0u64;
        let mut covered_bytes = 0u64;
        for (kind, agg) in &ex.kinds {
            let Some(rule) = rule_for(kind) else { continue };
            covered_msgs += agg
                .counters_total
                .msgs_sent
                .max(agg.counters_total.msgs_recv);
            covered_bytes += agg
                .counters_total
                .bytes_sent
                .max(agg.counters_total.bytes_recv);
            if rule.shape == CollShape::PointToPoint {
                let msgs = agg
                    .counters_total
                    .msgs_sent
                    .max(agg.counters_total.msgs_recv) as f64
                    / p_rec;
                let bytes = agg
                    .counters_total
                    .bytes_sent
                    .max(agg.counters_total.bytes_recv) as f64
                    / p_rec;
                colls.push(CollAgg {
                    shape: CollShape::PointToPoint,
                    comm_size: rule.scope.size(p_target),
                    calls: msgs * rule.calls.factor(p_recorded, p_target),
                    payload_bytes: bytes * rule.payload.factor(p_recorded, p_target),
                });
                continue;
            }
            let m_rec = rule.scope.size(p_recorded);
            if m_rec <= 1 || agg.calls_total == 0 {
                continue; // no communication recorded at this grid
            }
            // Distinct collectives: every member records one span.
            let distinct = agg.calls_total as f64 / m_rec as f64;
            let wire = agg
                .counters_total
                .bytes_sent
                .max(agg.counters_total.bytes_recv) as f64
                / distinct;
            let payload_rec = rule.shape.payload_from_wire(m_rec, wire);
            let calls_rec = agg.calls_total as f64 / p_rec;
            colls.push(CollAgg {
                shape: rule.shape,
                comm_size: rule.scope.size(p_target),
                calls: calls_rec * rule.calls.factor(p_recorded, p_target),
                payload_bytes: payload_rec * rule.payload.factor(p_recorded, p_target),
            });
        }
        // Residual point-to-point traffic outside any kind span: total
        // volume preserved, split over the target ranks.
        let resid_msgs = ex
            .counters_total
            .msgs_sent
            .max(ex.counters_total.msgs_recv)
            .saturating_sub(covered_msgs);
        let resid_bytes = ex
            .counters_total
            .bytes_sent
            .max(ex.counters_total.bytes_recv)
            .saturating_sub(covered_bytes);
        let comm = CommStats {
            msgs_sent: (resid_msgs as f64 / p_tgt).round() as u64,
            bytes_sent: (resid_bytes as f64 / p_tgt).round() as u64,
            ..Default::default()
        };
        let cost = StageCost {
            compute_secs: compute_secs * model.compute_scale,
            comm,
            colls,
        };
        let total = model.stage(&cost);
        stages.push(ProjectedStage {
            label: ex.label.clone(),
            compute_secs,
            comm_secs: (total - compute_secs).max(0.0),
            lambda,
            cost,
        });
    }
    let imbalance = if work_total == 0 {
        1.0
    } else {
        work_max as f64 * p_rec / work_total as f64
    };
    Projection {
        p: p_target,
        p_recorded,
        imbalance,
        stages,
    }
}

/// Per-rank peak-memory projection at a target grid (the memory analogue
/// of [`Projection`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MemProjection {
    /// Target rank count.
    pub p: usize,
    /// Rank count of the recording.
    pub p_recorded: usize,
    /// Sum of the projected per-structure peaks — an upper bound on the
    /// per-rank peak RSS (individual peaks need not coincide in time).
    pub peak_bytes: u64,
    /// Projected per-rank peak bytes per structure, sorted by name (the
    /// JSON round-trip is order-preserving that way).
    pub by_structure: Vec<(String, u64)>,
}

impl MemProjection {
    pub fn to_json(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert("p".into(), JsonValue::Num(self.p as f64));
        o.insert("p_recorded".into(), JsonValue::Num(self.p_recorded as f64));
        o.insert("peak_bytes".into(), JsonValue::Num(self.peak_bytes as f64));
        o.insert(
            "by_structure".into(),
            JsonValue::Obj(
                self.by_structure
                    .iter()
                    .map(|(k, b)| (k.clone(), JsonValue::Num(*b as f64)))
                    .collect(),
            ),
        );
        JsonValue::Obj(o)
    }

    pub fn from_json(v: &JsonValue) -> Result<MemProjection, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("mem projection: missing `{k}`"))
        };
        let by_structure = match v.get("by_structure") {
            Some(JsonValue::Obj(m)) => m
                .iter()
                .map(|(k, x)| {
                    x.as_u64()
                        .map(|b| (k.clone(), b))
                        .ok_or_else(|| format!("mem projection: by_structure.{k} not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("mem projection: missing `by_structure` object".into()),
        };
        Ok(MemProjection {
            p: num("p")? as usize,
            p_recorded: num("p_recorded")? as usize,
            peak_bytes: num("peak_bytes")? as u64,
            by_structure,
        })
    }
}

/// Watermarked structures whose per-rank footprint scales with the width
/// of the out-of-core column batch being processed: the SpGEMM output
/// triples and accumulator cover only the batch's columns of B, and the
/// pending seed-pair queue holds only the batch's candidates. Everything
/// else (sequence store, alignment scratch) is resident regardless of
/// batching and prices as a constant floor.
pub const OOC_BATCH_SCALED: [&str; 3] = ["pastis.pending", "sparse.accum", "sparse.triples"];

/// Split a projected per-rank footprint into its (resident floor,
/// batch-scaled bytes): the second component shrinks `∝ 1/n_batches`
/// under column batching, the first does not. Budget policies must keep
/// the budget above the floor — no batch count frees resident memory.
pub fn ooc_split(mem: &MemProjection) -> (u64, u64) {
    let scaled: u64 = mem
        .by_structure
        .iter()
        .filter(|(n, _)| OOC_BATCH_SCALED.contains(&n.as_str()))
        .map(|&(_, b)| b)
        .sum();
    (mem.peak_bytes - scaled, scaled)
}

/// Out-of-core batching projection at one target grid: how many column
/// batches the sizer would cut to fit the projected monolithic footprint
/// under `budget_bytes`, the resulting per-rank peak, and the makespan
/// after paying the A-panel re-broadcasts every extra batch costs (the
/// restricted-B panels tile the column space, so B traffic is paid once
/// regardless of the batch count).
#[derive(Debug, Clone, PartialEq)]
pub struct OocProjection {
    /// Target rank count.
    pub p: usize,
    /// Per-rank memory budget the sizer was given.
    pub budget_bytes: u64,
    /// Batches the model cuts (1 = the monolithic plan already fits).
    pub n_batches: usize,
    /// Projected per-rank peak under that plan: the constant floor plus
    /// an even `1/n_batches` share of the batch-scaled structures.
    pub mem_peak_bytes: u64,
    /// Monolithic projected peak ([`MemProjection::peak_bytes`]), for the
    /// memory-vs-makespan comparison.
    pub mono_peak_bytes: u64,
    /// Monolithic modeled makespan at this grid.
    pub base_secs: f64,
    /// Batched modeled makespan: `base_secs` plus `(n_batches − 1)` times
    /// the A-side panel-broadcast seconds.
    pub ooc_secs: f64,
}

impl OocProjection {
    /// Batched / monolithic makespan (≥ 1; the price of fitting in RAM).
    pub fn batch_overhead_ratio(&self) -> f64 {
        if self.base_secs > 0.0 {
            self.ooc_secs / self.base_secs
        } else {
            1.0
        }
    }

    pub fn to_json(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert("p".into(), JsonValue::Num(self.p as f64));
        o.insert(
            "budget_bytes".into(),
            JsonValue::Num(self.budget_bytes as f64),
        );
        o.insert("n_batches".into(), JsonValue::Num(self.n_batches as f64));
        o.insert(
            "mem_peak_bytes".into(),
            JsonValue::Num(self.mem_peak_bytes as f64),
        );
        o.insert(
            "mono_peak_bytes".into(),
            JsonValue::Num(self.mono_peak_bytes as f64),
        );
        o.insert("base_secs".into(), JsonValue::Num(self.base_secs));
        o.insert("ooc_secs".into(), JsonValue::Num(self.ooc_secs));
        o.insert(
            "batch_overhead_ratio".into(),
            JsonValue::Num(self.batch_overhead_ratio()),
        );
        JsonValue::Obj(o)
    }

    pub fn from_json(v: &JsonValue) -> Result<OocProjection, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("ooc projection: missing `{k}`"))
        };
        let out = OocProjection {
            p: num("p")? as usize,
            budget_bytes: num("budget_bytes")? as u64,
            n_batches: num("n_batches")? as usize,
            mem_peak_bytes: num("mem_peak_bytes")? as u64,
            mono_peak_bytes: num("mono_peak_bytes")? as u64,
            base_secs: num("base_secs")?,
            ooc_secs: num("ooc_secs")?,
        };
        if out.mem_peak_bytes > out.budget_bytes {
            return Err(format!(
                "ooc projection: p={} peak {} exceeds budget {}",
                out.p, out.mem_peak_bytes, out.budget_bytes
            ));
        }
        Ok(out)
    }
}

/// Project the out-of-core batch plan at `mem`'s grid. `base_secs` is the
/// monolithic modeled makespan at the same grid and `rebcast_secs` the
/// A-side panel-broadcast seconds one extra pass over the stationary
/// matrix costs (the caller extracts it from the SUMMA stage's priced
/// collectives). The split between batch-scaled and resident structures
/// follows [`OOC_BATCH_SCALED`].
pub fn project_ooc(
    mem: &MemProjection,
    budget_bytes: u64,
    base_secs: f64,
    rebcast_secs: f64,
) -> OocProjection {
    let (resident, scaled) = ooc_split(mem);
    let avail = budget_bytes.saturating_sub(resident);
    let n_batches = if scaled <= avail {
        1
    } else if avail == 0 {
        // Infeasible budget (the resident floor alone overflows it): the
        // sizer's one-column floor still applies, modeled here as one
        // byte per batch so the overhead term stays finite and damning.
        scaled.max(1) as usize
    } else {
        scaled.div_ceil(avail) as usize
    };
    OocProjection {
        p: mem.p,
        budget_bytes,
        n_batches,
        mem_peak_bytes: resident + scaled.div_ceil(n_batches.max(1) as u64),
        mono_peak_bytes: mem.peak_bytes,
        base_secs,
        ooc_secs: base_secs + (n_batches.saturating_sub(1)) as f64 * rebcast_secs,
    }
}

/// Project per-rank peak memory watermarks recorded at `p_recorded` to
/// `p_target` using the profile's per-structure byte-growth laws.
///
/// `watermarks` is the output of `obs::project::extract_mem_watermarks`:
/// per-structure max-across-ranks peak bytes (the `mem.watermark.` gauge
/// prefix already stripped). Structures without a law in the profile are
/// held constant — the conservative choice, since unmodeled memory that
/// *does* shrink with p only makes the bound looser, never optimistic.
pub fn project_mem(
    watermarks: &[(String, u64)],
    p_recorded: usize,
    profile: &MachineProfile,
    p_target: usize,
) -> MemProjection {
    let mut by_structure = Vec::with_capacity(watermarks.len());
    let mut total = 0u64;
    for (name, bytes) in watermarks {
        let growth = profile
            .mem_growth
            .get(name)
            .copied()
            .unwrap_or(Growth::Const);
        let projected = (*bytes as f64 * growth.factor(p_recorded, p_target)).round() as u64;
        total += projected;
        by_structure.push((name.clone(), projected));
    }
    by_structure.sort();
    MemProjection {
        p: p_target,
        p_recorded,
        peak_bytes: total,
        by_structure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_matches_legacy_formula() {
        let m = CostModel {
            alpha: 1e-6,
            beta: 1e-9,
            compute_scale: 2.0,
        };
        let s = StageCost {
            compute_secs: 4.0,
            comm: CommStats {
                bytes_sent: 1_000_000,
                bytes_recv: 0,
                msgs_sent: 10,
                msgs_recv: 0,
                wait_nanos: 0,
            },
            colls: Vec::new(),
        };
        let t = m.flat(&s);
        assert!((t - (2.0 + 10.0 * 1e-6 + 1e-3)).abs() < 1e-12);
        // With no collectives the shaped model degenerates to flat.
        assert_eq!(m.stage(&s), t);
    }

    #[test]
    fn max_takes_critical_path() {
        let a = StageCost {
            compute_secs: 1.0,
            comm: CommStats {
                bytes_sent: 5,
                ..Default::default()
            },
            colls: Vec::new(),
        };
        let b = StageCost {
            compute_secs: 3.0,
            comm: CommStats {
                bytes_sent: 2,
                ..Default::default()
            },
            colls: Vec::new(),
        };
        let m = a.max(b);
        assert_eq!(m.compute_secs, 3.0);
        assert_eq!(m.comm.bytes_sent, 5);
    }

    #[test]
    fn tree_collectives_pay_log_alpha() {
        let m = CostModel {
            alpha: 1e-6,
            beta: 1e-9,
            compute_scale: 1.0,
        };
        let c = CollAgg {
            shape: CollShape::Bcast,
            comm_size: 1024,
            calls: 1.0,
            payload_bytes: 1_000_000.0,
        };
        // ⌈log₂ 1024⌉·α + 2·b·β = 10 µs + 2 ms.
        assert!((m.coll_seconds(&c) - (10.0e-6 + 2.0e-3)).abs() < 1e-12);
        // An allreduce of the same payload costs the same shape.
        let ar = CollAgg {
            shape: CollShape::Allreduce,
            ..c.clone()
        };
        assert_eq!(m.coll_seconds(&ar), m.coll_seconds(&c));
    }

    #[test]
    fn alltoallv_pays_per_destination_alpha() {
        let m = CostModel {
            alpha: 1e-6,
            beta: 0.0,
            compute_scale: 1.0,
        };
        let c = CollAgg {
            shape: CollShape::Alltoallv,
            comm_size: 256,
            calls: 3.0,
            payload_bytes: 0.0,
        };
        assert!((m.coll_seconds(&c) - 3.0 * 255.0 * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn singleton_communicators_are_free() {
        let m = CostModel::default();
        for shape in [CollShape::Bcast, CollShape::Alltoallv, CollShape::Exscan] {
            let c = CollAgg {
                shape,
                comm_size: 1,
                calls: 5.0,
                payload_bytes: 1e9,
            };
            assert_eq!(m.coll_seconds(&c), 0.0);
        }
    }

    #[test]
    fn payload_recovery_inverts_the_wire_volume() {
        // A bcast over m = 8 of payload b puts (m-1)·b on the wire.
        let b = CollShape::Bcast.payload_from_wire(8, 7.0 * 1000.0);
        assert!((b - 1000.0).abs() < 1e-9);
        let ar = CollShape::Allreduce.payload_from_wire(8, 14.0 * 1000.0);
        assert!((ar - 1000.0).abs() < 1e-9);
        let av = CollShape::Alltoallv.payload_from_wire(8, 8.0 * 1000.0);
        assert!((av - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn growth_factors() {
        assert_eq!(Growth::Const.factor(16, 1024), 1.0);
        assert_eq!(Growth::LinearQ.factor(16, 1024), 8.0); // q 4 → 32
        assert_eq!(Growth::InvQ.factor(16, 1024), 0.125);
        assert_eq!(Growth::InvP.factor(16, 1024), 16.0 / 1024.0);
    }

    #[test]
    fn profile_round_trips_and_validates() {
        let mut p = MachineProfile::defaults();
        p.host = "test-host".into();
        p.calibrated = vec!["sw_cell".into()];
        let text = p.to_json().to_string();
        let back = MachineProfile::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        // Unknown cost keys and bad versions are rejected.
        let bad = text.replace("sw_cell", "not_a_class");
        assert!(MachineProfile::from_json(&JsonValue::parse(&bad).unwrap()).is_err());
        let bad = text.replace("\"version\":2", "\"version\":99");
        assert_ne!(bad, text, "version literal must appear in the JSON");
        assert!(MachineProfile::from_json(&JsonValue::parse(&bad).unwrap()).is_err());
        // v2 requires the mem_growth section with known laws.
        let bad = text.replace("inv_q", "quadratic");
        assert!(MachineProfile::from_json(&JsonValue::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn growth_keys_round_trip() {
        for g in [Growth::Const, Growth::LinearQ, Growth::InvQ, Growth::InvP] {
            assert_eq!(Growth::from_key(g.key()), Some(g));
        }
        assert_eq!(Growth::from_key("cubic"), None);
    }

    #[test]
    fn mem_projection_applies_growth_laws() {
        let profile = MachineProfile::defaults();
        let watermarks = vec![
            ("seqstore.store".to_string(), 1_000_000u64), // InvQ: q 4 → 8
            ("sparse.triples".to_string(), 4_000_000u64), // InvP: 16 → 64
            ("align.scratch".to_string(), 300_000u64),    // Const
            ("unmodeled.thing".to_string(), 700u64),      // Const fallback
        ];
        let m = project_mem(&watermarks, 16, &profile, 64);
        assert_eq!(m.p, 64);
        assert_eq!(m.p_recorded, 16);
        let by: BTreeMap<&str, u64> = m
            .by_structure
            .iter()
            .map(|(k, b)| (k.as_str(), *b))
            .collect();
        assert_eq!(by["seqstore.store"], 500_000);
        assert_eq!(by["sparse.triples"], 1_000_000);
        assert_eq!(by["align.scratch"], 300_000);
        assert_eq!(by["unmodeled.thing"], 700);
        assert_eq!(m.peak_bytes, 500_000 + 1_000_000 + 300_000 + 700);
        // JSON round-trip.
        let back =
            MemProjection::from_json(&JsonValue::parse(&m.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn ooc_projection_cuts_batches_and_prices_rebroadcasts() {
        let mem = MemProjection {
            p: 64,
            p_recorded: 16,
            peak_bytes: 1_000_000,
            by_structure: vec![
                ("align.scratch".to_string(), 100_000),
                ("pastis.pending".to_string(), 150_000),
                ("seqstore.store".to_string(), 300_000),
                ("sparse.accum".to_string(), 50_000),
                ("sparse.triples".to_string(), 400_000),
            ],
        };
        assert_eq!(ooc_split(&mem), (400_000, 600_000));
        // Fits outright: one batch, no overhead.
        let o = project_ooc(&mem, 1_000_000, 10.0, 2.0);
        assert_eq!(o.n_batches, 1);
        assert_eq!(o.mem_peak_bytes, 1_000_000);
        assert_eq!(o.ooc_secs, 10.0);
        assert_eq!(o.batch_overhead_ratio(), 1.0);
        // 200k over the scaled portion → ⌈600k/200k⌉ = 3 batches, two
        // extra passes over the stationary matrix's broadcasts.
        let o = project_ooc(&mem, 600_000, 10.0, 2.0);
        assert_eq!(o.n_batches, 3);
        assert_eq!(o.mem_peak_bytes, 400_000 + 200_000);
        assert_eq!(o.ooc_secs, 14.0);
        assert!((o.batch_overhead_ratio() - 1.4).abs() < 1e-12);
        assert_eq!(o.mono_peak_bytes, 1_000_000);
        // JSON round-trip; a peak claimed above its own budget is rejected
        // (that is the validate() hook the gated document leans on).
        let back =
            OocProjection::from_json(&JsonValue::parse(&o.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, o);
        let mut bad = o.to_json();
        if let JsonValue::Obj(m) = &mut bad {
            m.insert("budget_bytes".into(), JsonValue::Num(1.0));
        }
        assert!(OocProjection::from_json(&bad).is_err());
        // Budget below the resident floor: finite but punitive plan.
        let o = project_ooc(&mem, 300_000, 10.0, 2.0);
        assert_eq!(o.n_batches, 600_000);
        assert!(o.mem_peak_bytes > 300_000);
    }

    #[test]
    fn profile_install_updates_the_work_table() {
        let mut p = MachineProfile::defaults();
        // SubkmerChild is not exercised concurrently by other tests in
        // this crate.
        p.cost_ns.insert("subkmer_child".into(), 1.5);
        p.install();
        assert_eq!(CostClass::SubkmerChild.milli_ns(), 1_500);
        work::reset_costs();
        assert_eq!(
            CostClass::SubkmerChild.milli_ns(),
            CostClass::SubkmerChild.default_milli_ns()
        );
    }

    #[test]
    fn stage_cost_and_projection_round_trip_json() {
        let cost = StageCost {
            compute_secs: 0.25,
            comm: CommStats {
                bytes_sent: 10,
                bytes_recv: 20,
                msgs_sent: 3,
                msgs_recv: 4,
                wait_nanos: 5,
            },
            colls: vec![CollAgg {
                shape: CollShape::Bcast,
                comm_size: 32,
                calls: 64.0,
                payload_bytes: 123.5,
            }],
        };
        let back =
            StageCost::from_json(&JsonValue::parse(&cost.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, cost);
        let proj = Projection {
            p: 1024,
            p_recorded: 16,
            imbalance: 1.25,
            stages: vec![ProjectedStage {
                label: "(AS)AT".into(),
                compute_secs: 1.5,
                comm_secs: 0.5,
                lambda: 1.75,
                cost,
            }],
        };
        let back =
            Projection::from_json(&JsonValue::parse(&proj.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, proj);
        assert!((back.total_secs() - 2.0).abs() < 1e-12);
        assert!((back.share("(AS)AT") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn whatif_overlap_hides_min_of_bcast_and_compute() {
        let model = CostModel {
            alpha: 0.0,
            beta: 1.0,
            compute_scale: 1.0,
        };
        let bcast = CollAgg {
            shape: CollShape::Bcast,
            comm_size: 4,
            calls: 1.0,
            payload_bytes: 3.0, // coll_seconds = 2·3·β = 6 s
        };
        let proj = Projection {
            p: 16,
            p_recorded: 4,
            imbalance: 1.0,
            stages: vec![
                ProjectedStage {
                    label: "(AS)AT".into(),
                    compute_secs: 1.0,
                    comm_secs: 6.0,
                    lambda: 1.0,
                    cost: StageCost {
                        compute_secs: 1.0,
                        comm: CommStats::default(),
                        colls: vec![bcast],
                    },
                },
                ProjectedStage {
                    label: "align".into(),
                    compute_secs: 4.0,
                    comm_secs: 0.0,
                    lambda: 1.0,
                    cost: StageCost::default(),
                },
            ],
        };
        let w = proj.whatif_overlap(&model, "(AS)AT", "align");
        assert!((w.baseline_secs - 11.0).abs() < 1e-12);
        assert!((w.hidden_secs - 4.0).abs() < 1e-12); // min(6, 4)
        assert!((w.overlapped_secs - 7.0).abs() < 1e-12);
        assert!((w.saved_pct() - 100.0 * 4.0 / 11.0).abs() < 1e-9);
    }
}
