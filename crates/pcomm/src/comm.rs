//! Communicators: point-to-point messaging and communicator splitting.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};

use crate::check::{CollEntry, RankCheck};
use crate::payload::Payload;
use crate::stats::{self, CommStats};
use crate::world::{Packet, WorldShared};
use crate::MAX_USER_TAG;
use pcheck::{CollKind, LeakRecord};

/// Per-thread rank context: mailbox, out-of-order stash and counters.
/// (communicator id, source world rank, tag) → queued (payload, bytes, type).
type Stash = HashMap<(u64, usize, u64), VecDeque<(Box<dyn Any + Send>, usize, &'static str)>>;

pub(crate) struct RankCtx {
    pub(crate) world: Arc<WorldShared>,
    pub(crate) world_rank: usize,
    pub(crate) rx: Receiver<Packet>,
    /// Messages that arrived before a matching `recv` was posted.
    stash: RefCell<Stash>,
    /// Runtime-verification hooks; `None` when checked mode is off.
    pub(crate) check: Option<RankCheck>,
}

impl RankCtx {
    pub(crate) fn new(
        world: Arc<WorldShared>,
        world_rank: usize,
        rx: Receiver<Packet>,
        check: Option<RankCheck>,
    ) -> Self {
        RankCtx {
            world,
            world_rank,
            rx,
            stash: RefCell::new(HashMap::new()),
            check,
        }
    }

    /// Park an out-of-order packet in the stash (mirroring it into the shared
    /// checker state so other ranks' deadlock reports can list it).
    fn stash_put(&self, pkt: Packet) {
        if let Some(check) = &self.check {
            check.shared.stash_push(
                self.world_rank,
                pkt.comm,
                pkt.src,
                pkt.tag,
                pkt.type_name,
                pkt.bytes as u64,
            );
            check.shared.bump(self.world_rank);
        }
        self.stash
            .borrow_mut()
            .entry((pkt.comm, pkt.src, pkt.tag))
            .or_default()
            .push_back((pkt.payload, pkt.bytes, pkt.type_name));
    }

    /// Pull everything currently queued in the mailbox into the stash.
    /// Used by the perturbation mode's drain-first polling; per-key FIFO
    /// order is preserved, so matching semantics are unchanged.
    fn drain_mailbox(&self) {
        while let Ok(pkt) = self.rx.try_recv() {
            self.stash_put(pkt);
        }
    }

    /// Finalize this rank under checked mode: audit undelivered messages,
    /// then wait for the world verdict (collective counts and leaks across
    /// all ranks). Panics with the verdict report on failure.
    pub(crate) fn finalize(&self) {
        let Some(check) = &self.check else { return };
        self.drain_mailbox();
        {
            let stash = self.stash.borrow();
            let mut agg: HashMap<(u64, usize, u64, &'static str), (u64, u64)> = HashMap::new();
            for (&(comm, src, tag), q) in stash.iter() {
                for &(_, bytes, ty) in q.iter() {
                    let e = agg.entry((comm, src, tag, ty)).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += bytes as u64;
                }
            }
            for ((comm, src, tag, ty), (count, bytes)) in agg {
                check.shared.report_leak(LeakRecord {
                    src,
                    dst: self.world_rank,
                    comm,
                    tag,
                    type_name: ty,
                    bytes,
                    count,
                });
            }
        }
        check.shared.finalize_rank(self.world_rank);
        loop {
            if let Some(v) = check.shared.try_verdict() {
                if let Err(msg) = v {
                    crate::dump_blackbox(&msg);
                    panic!("{msg}");
                }
                return;
            }
            // Another rank may abort (deadlock, conformance) while we wait.
            check.check_abort();
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Downcast a received payload, panicking with a diagnosis (source rank,
/// tag, expected vs. actual type) instead of `Any`'s anonymous unwrap.
fn take_payload<T: Payload>(
    payload: Box<dyn Any + Send>,
    actual: &'static str,
    src_world: usize,
    tag: u64,
) -> T {
    match payload.downcast::<T>() {
        Ok(v) => *v,
        Err(_) => panic!(
            "pcomm: payload type mismatch receiving from world rank {src_world} tag {tag}: \
             expected {}, got {actual}",
            std::any::type_name::<T>()
        ),
    }
}

/// A communicator: a group of ranks that can exchange messages.
///
/// `Comm` is cheap to clone; clones share the rank context and collective
/// sequence counters, so a clone may be stored inside long-lived structures
/// (e.g. a distributed matrix) and used interchangeably with the original.
/// `Comm` is not `Send`: it belongs to the thread of its rank.
pub struct Comm {
    ctx: Rc<RankCtx>,
    /// World ranks of the members of this communicator, in rank order.
    group: Arc<Vec<usize>>,
    /// My rank within `group`.
    my: usize,
    /// Identifier separating traffic of different communicators.
    id: u64,
    /// Human scope name ("world", "row1", "col0", "split", "sub"), carried
    /// for diagnostics and registered with the checker so watchdog and
    /// leak-audit reports can name the communicator instead of showing a
    /// bare hash id.
    scope: Rc<str>,
    /// Sequence number for collective operations (shared among clones so the
    /// reserved tags stay in sync across all copies held by this rank).
    pub(crate) coll_seq: Rc<Cell<u64>>,
    /// Sequence number for subcommunicator creation.
    split_seq: Rc<Cell<u64>>,
}

impl Clone for Comm {
    fn clone(&self) -> Self {
        Comm {
            ctx: Rc::clone(&self.ctx),
            group: Arc::clone(&self.group),
            my: self.my,
            id: self.id,
            scope: Rc::clone(&self.scope),
            coll_seq: Rc::clone(&self.coll_seq),
            split_seq: Rc::clone(&self.split_seq),
        }
    }
}

fn mix(mut h: u64, v: u64) -> u64 {
    // SplitMix64-style mixing for communicator id derivation.
    h ^= v
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(h << 6)
        .wrapping_add(h >> 2);
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^ (h >> 31)
}

impl Comm {
    pub(crate) fn world(ctx: Rc<RankCtx>, size: usize) -> Comm {
        let me = ctx.world_rank;
        if let Some(check) = &ctx.check {
            check.shared.name_comm(0, "world");
        }
        Comm {
            ctx,
            group: Arc::new((0..size).collect()),
            my: me,
            id: 0,
            scope: Rc::from("world"),
            coll_seq: Rc::new(Cell::new(0)),
            split_seq: Rc::new(Cell::new(0)),
        }
    }

    /// My rank within this communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my
    }

    /// Human scope name of this communicator ("world", "row1", "split", …).
    #[inline]
    pub fn scope_name(&self) -> &str {
        &self.scope
    }

    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// My rank in the world communicator.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.ctx.world_rank
    }

    /// Snapshot of this rank's cumulative communication counters (world-wide,
    /// not per-communicator).
    pub fn stats(&self) -> CommStats {
        stats::thread_snapshot()
    }

    /// Checker hook: record entry into a top-level collective on this
    /// communicator. No-op (`None`) when checked mode is off.
    pub(crate) fn coll_enter(
        &self,
        kind: CollKind,
        root: Option<usize>,
        payload: Option<(std::any::TypeId, &'static str)>,
        detail: Vec<usize>,
    ) -> Option<CollEntry> {
        obs::blackbox::record(
            obs::BbKind::Coll,
            kind.name(),
            self.group.len() as u64,
            self.id,
        );
        // Heartbeat piggyback: every collective entry stamps the rank's
        // live cell, so a rank stuck inside a long exchange still reads
        // as alive on the monitor (shared memory only — invisible to the
        // conformance ledger).
        obs::live::touch();
        self.ctx.check.as_ref().map(|c| {
            c.enter(
                self.id,
                &self.group,
                kind,
                root,
                payload.map(|(t, _)| t),
                payload.map(|(_, n)| n),
                detail,
            )
        })
    }

    /// Checker hook: leave a collective entered via [`Comm::coll_enter`].
    pub(crate) fn coll_leave(&self, entry: Option<CollEntry>) {
        if let (Some(check), Some(e)) = (self.ctx.check.as_ref(), entry) {
            check.leave(e);
        }
    }

    /// Checker hook: barrier-exit ledger consistency over this comm's group.
    pub(crate) fn coll_barrier_check(&self, entry: &Option<CollEntry>) {
        if let (Some(check), Some(e)) = (self.ctx.check.as_ref(), entry) {
            if let Some(seq) = e.seq {
                check.barrier_check(self.id, seq, &self.group);
            }
        }
    }

    /// Blocking typed send. `dst` and `tag` address the message; the value is
    /// moved into the destination rank's mailbox immediately (the transport
    /// is buffered, so sends never deadlock).
    pub fn send<T: Payload>(&self, dst: usize, tag: u64, value: T) {
        assert!(tag < MAX_USER_TAG, "tag {tag} is reserved for collectives");
        self.send_raw(dst, tag, value);
    }

    pub(crate) fn send_raw<T: Payload>(&self, dst: usize, tag: u64, value: T) {
        if let Some(check) = &self.ctx.check {
            check.before_op();
            check.check_abort();
        }
        let bytes = value.payload_bytes();
        let dst_world = self.group[dst];
        stats::on_send(bytes);
        obs::hist!("pcomm.msg_bytes", bytes);
        obs::blackbox::record(
            obs::BbKind::Send,
            std::any::type_name::<T>(),
            bytes as u64,
            dst_world as u64,
        );
        let pkt = Packet {
            comm: self.id,
            src: self.ctx.world_rank,
            tag,
            bytes,
            type_name: std::any::type_name::<T>(),
            payload: Box::new(value),
        };
        if self.ctx.world.senders[dst_world].send(pkt).is_err() {
            // The destination dropped its mailbox: it panicked or exited.
            // Under checked mode the abort flag usually explains why.
            if let Some(check) = &self.ctx.check {
                check.check_abort();
            }
            panic!("pcomm: send to world rank {dst_world} failed: destination rank has exited");
        }
    }

    /// Blocking typed receive matching `(src, tag)` on this communicator.
    ///
    /// # Panics
    /// Panics if the matching message has a different payload type, naming
    /// the source rank, tag, and both types.
    pub fn recv<T: Payload>(&self, src: usize, tag: u64) -> T {
        assert!(tag < MAX_USER_TAG, "tag {tag} is reserved for collectives");
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw<T: Payload>(&self, src: usize, tag: u64) -> T {
        let src_world = self.group[src];
        let key = (self.id, src_world, tag);
        if let Some(check) = &self.ctx.check {
            check.before_op();
            check.check_abort();
            if check.drain_coin() {
                self.ctx.drain_mailbox();
            }
        }
        if let Some(q) = self.ctx.stash.borrow_mut().get_mut(&key) {
            if let Some((payload, bytes, ty)) = q.pop_front() {
                stats::on_recv(bytes);
                obs::blackbox::record(obs::BbKind::Recv, ty, bytes as u64, src_world as u64);
                if let Some(check) = &self.ctx.check {
                    check.shared.stash_pop(
                        self.ctx.world_rank,
                        self.id,
                        src_world,
                        tag,
                        ty,
                        bytes as u64,
                    );
                    check.shared.bump(self.ctx.world_rank);
                }
                return take_payload::<T>(payload, ty, src_world, tag);
            }
        }
        match &self.ctx.check {
            None => self.recv_blocking(key),
            Some(_) => self.recv_blocking_checked(key, std::any::type_name::<T>()),
        }
    }

    /// Unchecked blocking wait: straight channel receive, zero bookkeeping
    /// beyond the wait-time counters.
    fn recv_blocking<T: Payload>(&self, key: (u64, usize, u64)) -> T {
        let start = Instant::now();
        loop {
            let pkt = self.ctx.rx.recv().expect("world shut down while receiving");
            if (pkt.comm, pkt.src, pkt.tag) == key {
                let waited = start.elapsed().as_nanos() as u64;
                stats::on_wait(waited);
                obs::hist!("pcomm.wait_ns", waited);
                stats::on_recv(pkt.bytes);
                obs::blackbox::record(
                    obs::BbKind::Recv,
                    pkt.type_name,
                    pkt.bytes as u64,
                    key.1 as u64,
                );
                return take_payload::<T>(pkt.payload, pkt.type_name, key.1, key.2);
            }
            self.ctx.stash_put(pkt);
        }
    }

    /// Checked blocking wait: registers in the wait-for graph, polls with a
    /// timeout so the deadlock watchdog can run, and honors world aborts.
    fn recv_blocking_checked<T: Payload>(
        &self,
        key: (u64, usize, u64),
        expected: &'static str,
    ) -> T {
        let check = self
            .ctx
            .check
            .as_ref()
            .expect("checked path requires check");
        let (comm, src_world, tag) = key;
        check.shared.block_on(
            check.rank(),
            check.wait_info(src_world, comm, tag, expected),
        );
        let tick = Duration::from_millis(check.shared.tick_ms());
        let watchdog = Duration::from_millis(check.shared.watchdog_ms());
        let start = Instant::now();
        let mut quiet_since = Instant::now();
        loop {
            match self.ctx.rx.recv_timeout(tick) {
                Ok(pkt) => {
                    if (pkt.comm, pkt.src, pkt.tag) == key {
                        check.shared.unblock(check.rank());
                        let waited = start.elapsed().as_nanos() as u64;
                        stats::on_wait(waited);
                        obs::hist!("pcomm.wait_ns", waited);
                        stats::on_recv(pkt.bytes);
                        obs::blackbox::record(
                            obs::BbKind::Recv,
                            pkt.type_name,
                            pkt.bytes as u64,
                            src_world as u64,
                        );
                        return take_payload::<T>(pkt.payload, pkt.type_name, src_world, tag);
                    }
                    self.ctx.stash_put(pkt);
                    quiet_since = Instant::now();
                }
                Err(RecvTimeoutError::Timeout) => {
                    check.check_abort();
                    if quiet_since.elapsed() >= watchdog {
                        if let Some(report) = check.shared.deadlock_scan() {
                            check.abort(report);
                        }
                        // World still making progress elsewhere; back off a
                        // full window before scanning again.
                        quiet_since = Instant::now();
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("pcomm: world shut down while receiving");
                }
            }
        }
    }

    /// Receive that belongs to an already-recorded collective `(name, seq)`
    /// on this communicator. Nonblocking collectives complete after their
    /// `coll_enter`/`coll_leave` pair has unwound, so the blocked-wait label
    /// must be re-attached here for the deadlock watchdog to name the
    /// collective instead of an anonymous point-to-point recv.
    pub(crate) fn recv_labeled<T: Payload>(
        &self,
        src: usize,
        tag: u64,
        name: &'static str,
        seq: Option<u64>,
    ) -> T {
        let label = match (&self.ctx.check, seq) {
            (Some(check), Some(s)) => Some((check, check.set_op(Some((name, self.id, s))))),
            _ => None,
        };
        let out = self.recv_raw(src, tag);
        if let Some((check, prev)) = label {
            check.set_op(prev);
        }
        out
    }

    /// Non-blocking send. The buffered transport makes every send
    /// asynchronous, so this is an alias of [`Comm::send`] kept for symmetry
    /// with the MPI calls PASTIS issues (`MPI_Isend`).
    pub fn isend<T: Payload>(&self, dst: usize, tag: u64, value: T) {
        self.send(dst, tag, value);
    }

    /// Post a non-blocking receive; completion happens at
    /// [`RecvFuture::wait`] or [`Comm::waitall`].
    pub fn irecv<T: Payload>(&self, src: usize, tag: u64) -> RecvFuture<T> {
        assert!(tag < MAX_USER_TAG, "tag {tag} is reserved for collectives");
        RecvFuture {
            comm: self.clone(),
            src,
            tag,
            _t: PhantomData,
        }
    }

    /// Complete a set of posted receives, returning payloads in post order.
    /// This is the `MPI_Waitall` fence PASTIS uses after computing B to
    /// guarantee remote sequences have arrived (§V-C).
    pub fn waitall<T: Payload>(&self, futures: Vec<RecvFuture<T>>) -> Vec<T> {
        let _span = obs::span!("pcomm.waitall", pending = futures.len());
        futures.into_iter().map(RecvFuture::wait).collect()
    }

    /// Create a subcommunicator from a list of member ranks (indices in
    /// *this* communicator, strictly increasing). Collective: every rank of
    /// `self` must call it the same number of times in the same order (the
    /// conformance ledger checks the call kind; member lists may differ per
    /// rank — per-rank singleton groups are an accepted pattern). Returns
    /// `None` on ranks not in `members`.
    pub fn subcomm(&self, members: &[usize]) -> Option<Comm> {
        self.subcomm_named(members, "sub")
    }

    /// [`Comm::subcomm`] with a human scope name ("row1", "col0", …) that
    /// shows up in checker diagnostics — watchdog deadlock reports and the
    /// finalize leak audit name the communicator instead of a bare hash id.
    pub fn subcomm_named(&self, members: &[usize], name: &str) -> Option<Comm> {
        let entry = self.coll_enter(CollKind::Subcomm, None, None, members.to_vec());
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be strictly increasing"
        );
        let result = members.iter().position(|&m| m == self.my).map(|my| {
            let group: Vec<usize> = members.iter().map(|&m| self.group[m]).collect();
            let id = mix(
                mix(self.id, seq),
                group[0] as u64 ^ (group.len() as u64) << 32,
            );
            if let Some(check) = &self.ctx.check {
                check.shared.name_comm(id, name);
            }
            Comm {
                ctx: Rc::clone(&self.ctx),
                group: Arc::new(group),
                my,
                id,
                scope: Rc::from(name),
                coll_seq: Rc::new(Cell::new(0)),
                split_seq: Rc::new(Cell::new(0)),
            }
        });
        self.coll_leave(entry);
        result
    }

    /// MPI-style `comm_split`: ranks with the same `color` end up in the same
    /// subcommunicator, ordered by `(key, rank)`. Collective over `self`.
    pub fn split(&self, color: u64, key: u64) -> Comm {
        // `color`/`key` legitimately differ across ranks: record them as
        // diagnostic detail only.
        let entry = self.coll_enter(
            CollKind::Split,
            None,
            None,
            vec![color as usize, key as usize],
        );
        let triples = self.allgather((color, key, self.my as u64));
        let mut members: Vec<usize> = triples
            .iter()
            .filter(|&&(c, _, _)| c == color)
            .map(|&(_, _, r)| r as usize)
            .collect();
        // Order by key, then original rank, then renumber as group indices.
        members.sort_by_key(|&r| {
            let k = triples
                .iter()
                .find(|&&(_, _, rr)| rr as usize == r)
                .unwrap()
                .1;
            (k, r)
        });
        // subcomm requires strictly increasing member indices; reorder via a
        // rank permutation is not needed by our users, so assert sortedness.
        let mut sorted = members.clone();
        sorted.sort_unstable();
        // Keep split_seq consistent across colors: every rank made the same
        // number of subcomm calls regardless of its color.
        let sub = self
            .subcomm_named(&sorted, "split")
            .expect("self must be a member of its own color group");
        debug_assert_eq!(
            sorted, members,
            "split with non-monotone keys is not supported"
        );
        self.coll_leave(entry);
        sub
    }
}

/// Handle for a posted non-blocking receive.
pub struct RecvFuture<T: Payload> {
    comm: Comm,
    src: usize,
    tag: u64,
    _t: PhantomData<T>,
}

impl<T: Payload> RecvFuture<T> {
    /// Block until the matching message arrives and return its payload.
    pub fn wait(self) -> T {
        self.comm.recv_raw(self.src, self.tag)
    }

    /// Source rank this receive was posted against.
    pub fn source(&self) -> usize {
        self.src
    }
}
