//! Communicators: point-to-point messaging and communicator splitting.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Receiver;

use crate::payload::Payload;
use crate::stats::{self, CommStats};
use crate::world::{Packet, WorldShared};
use crate::MAX_USER_TAG;

/// Per-thread rank context: mailbox, out-of-order stash and counters.
/// (communicator id, source world rank, tag) → queued (payload, bytes).
type Stash = HashMap<(u64, usize, u64), VecDeque<(Box<dyn Any + Send>, usize)>>;

pub(crate) struct RankCtx {
    pub(crate) world: Arc<WorldShared>,
    pub(crate) world_rank: usize,
    pub(crate) rx: Receiver<Packet>,
    /// Messages that arrived before a matching `recv` was posted.
    stash: RefCell<Stash>,
}

impl RankCtx {
    pub(crate) fn new(world: Arc<WorldShared>, world_rank: usize, rx: Receiver<Packet>) -> Self {
        RankCtx {
            world,
            world_rank,
            rx,
            stash: RefCell::new(HashMap::new()),
        }
    }
}

/// A communicator: a group of ranks that can exchange messages.
///
/// `Comm` is cheap to clone; clones share the rank context and collective
/// sequence counters, so a clone may be stored inside long-lived structures
/// (e.g. a distributed matrix) and used interchangeably with the original.
/// `Comm` is not `Send`: it belongs to the thread of its rank.
pub struct Comm {
    ctx: Rc<RankCtx>,
    /// World ranks of the members of this communicator, in rank order.
    group: Arc<Vec<usize>>,
    /// My rank within `group`.
    my: usize,
    /// Identifier separating traffic of different communicators.
    id: u64,
    /// Sequence number for collective operations (shared among clones so the
    /// reserved tags stay in sync across all copies held by this rank).
    pub(crate) coll_seq: Rc<Cell<u64>>,
    /// Sequence number for subcommunicator creation.
    split_seq: Rc<Cell<u64>>,
}

impl Clone for Comm {
    fn clone(&self) -> Self {
        Comm {
            ctx: Rc::clone(&self.ctx),
            group: Arc::clone(&self.group),
            my: self.my,
            id: self.id,
            coll_seq: Rc::clone(&self.coll_seq),
            split_seq: Rc::clone(&self.split_seq),
        }
    }
}

fn mix(mut h: u64, v: u64) -> u64 {
    // SplitMix64-style mixing for communicator id derivation.
    h ^= v
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(h << 6)
        .wrapping_add(h >> 2);
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^ (h >> 31)
}

impl Comm {
    pub(crate) fn world(ctx: Rc<RankCtx>, size: usize) -> Comm {
        let me = ctx.world_rank;
        Comm {
            ctx,
            group: Arc::new((0..size).collect()),
            my: me,
            id: 0,
            coll_seq: Rc::new(Cell::new(0)),
            split_seq: Rc::new(Cell::new(0)),
        }
    }

    /// My rank within this communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my
    }

    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// My rank in the world communicator.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.ctx.world_rank
    }

    /// Snapshot of this rank's cumulative communication counters (world-wide,
    /// not per-communicator).
    pub fn stats(&self) -> CommStats {
        stats::thread_snapshot()
    }

    /// Blocking typed send. `dst` and `tag` address the message; the value is
    /// moved into the destination rank's mailbox immediately (the transport
    /// is buffered, so sends never deadlock).
    pub fn send<T: Payload>(&self, dst: usize, tag: u64, value: T) {
        assert!(tag < MAX_USER_TAG, "tag {tag} is reserved for collectives");
        self.send_raw(dst, tag, value);
    }

    pub(crate) fn send_raw<T: Payload>(&self, dst: usize, tag: u64, value: T) {
        let bytes = value.payload_bytes();
        stats::on_send(bytes);
        obs::hist!("pcomm.msg_bytes", bytes);
        let pkt = Packet {
            comm: self.id,
            src: self.ctx.world_rank,
            tag,
            bytes,
            payload: Box::new(value),
        };
        self.ctx.world.senders[self.group[dst]]
            .send(pkt)
            .expect("destination rank has exited");
    }

    /// Blocking typed receive matching `(src, tag)` on this communicator.
    ///
    /// # Panics
    /// Panics if the matching message has a different payload type.
    pub fn recv<T: Payload>(&self, src: usize, tag: u64) -> T {
        assert!(tag < MAX_USER_TAG, "tag {tag} is reserved for collectives");
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw<T: Payload>(&self, src: usize, tag: u64) -> T {
        let key = (self.id, self.group[src], tag);
        if let Some(q) = self.ctx.stash.borrow_mut().get_mut(&key) {
            if let Some((payload, bytes)) = q.pop_front() {
                stats::on_recv(bytes);
                return *payload.downcast::<T>().expect("payload type mismatch");
            }
        }
        let start = Instant::now();
        loop {
            let pkt = self.ctx.rx.recv().expect("world shut down while receiving");
            if (pkt.comm, pkt.src, pkt.tag) == key {
                let waited = start.elapsed().as_nanos() as u64;
                stats::on_wait(waited);
                obs::hist!("pcomm.wait_ns", waited);
                stats::on_recv(pkt.bytes);
                return *pkt.payload.downcast::<T>().expect("payload type mismatch");
            }
            self.ctx
                .stash
                .borrow_mut()
                .entry((pkt.comm, pkt.src, pkt.tag))
                .or_default()
                .push_back((pkt.payload, pkt.bytes));
        }
    }

    /// Non-blocking send. The buffered transport makes every send
    /// asynchronous, so this is an alias of [`Comm::send`] kept for symmetry
    /// with the MPI calls PASTIS issues (`MPI_Isend`).
    pub fn isend<T: Payload>(&self, dst: usize, tag: u64, value: T) {
        self.send(dst, tag, value);
    }

    /// Post a non-blocking receive; completion happens at
    /// [`RecvFuture::wait`] or [`Comm::waitall`].
    pub fn irecv<T: Payload>(&self, src: usize, tag: u64) -> RecvFuture<T> {
        assert!(tag < MAX_USER_TAG, "tag {tag} is reserved for collectives");
        RecvFuture {
            comm: self.clone(),
            src,
            tag,
            _t: PhantomData,
        }
    }

    /// Complete a set of posted receives, returning payloads in post order.
    /// This is the `MPI_Waitall` fence PASTIS uses after computing B to
    /// guarantee remote sequences have arrived (§V-C).
    pub fn waitall<T: Payload>(&self, futures: Vec<RecvFuture<T>>) -> Vec<T> {
        let _span = obs::span!("pcomm.waitall", pending = futures.len());
        futures.into_iter().map(RecvFuture::wait).collect()
    }

    /// Create a subcommunicator from a list of member ranks (indices in
    /// *this* communicator, strictly increasing). Collective: every rank of
    /// `self` must call it with the same member list. Returns `None` on ranks
    /// not in `members`.
    pub fn subcomm(&self, members: &[usize]) -> Option<Comm> {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be strictly increasing"
        );
        let my = members.iter().position(|&m| m == self.my)?;
        let group: Vec<usize> = members.iter().map(|&m| self.group[m]).collect();
        let id = mix(
            mix(self.id, seq),
            group[0] as u64 ^ (group.len() as u64) << 32,
        );
        Some(Comm {
            ctx: Rc::clone(&self.ctx),
            group: Arc::new(group),
            my,
            id,
            coll_seq: Rc::new(Cell::new(0)),
            split_seq: Rc::new(Cell::new(0)),
        })
    }

    /// MPI-style `comm_split`: ranks with the same `color` end up in the same
    /// subcommunicator, ordered by `(key, rank)`. Collective over `self`.
    pub fn split(&self, color: u64, key: u64) -> Comm {
        let triples = self.allgather((color, key, self.my as u64));
        let mut members: Vec<usize> = triples
            .iter()
            .filter(|&&(c, _, _)| c == color)
            .map(|&(_, _, r)| r as usize)
            .collect();
        // Order by key, then original rank, then renumber as group indices.
        members.sort_by_key(|&r| {
            let k = triples
                .iter()
                .find(|&&(_, _, rr)| rr as usize == r)
                .unwrap()
                .1;
            (k, r)
        });
        // subcomm requires strictly increasing member indices; reorder via a
        // rank permutation is not needed by our users, so assert sortedness.
        let mut sorted = members.clone();
        sorted.sort_unstable();
        // Keep split_seq consistent across colors: every rank made the same
        // number of subcomm calls regardless of its color.
        let sub = self
            .subcomm(&sorted)
            .expect("self must be a member of its own color group");
        debug_assert_eq!(
            sorted, members,
            "split with non-monotone keys is not supported"
        );
        sub
    }
}

/// Handle for a posted non-blocking receive.
pub struct RecvFuture<T: Payload> {
    comm: Comm,
    src: usize,
    tag: u64,
    _t: PhantomData<T>,
}

impl<T: Payload> RecvFuture<T> {
    /// Block until the matching message arrives and return its payload.
    pub fn wait(self) -> T {
        self.comm.recv_raw(self.src, self.tag)
    }

    /// Source rank this receive was posted against.
    pub fn source(&self) -> usize {
        self.src
    }
}
