//! Per-rank glue between the runtime and the `pcheck` verification layer.
//!
//! `RankCheck` lives inside `RankCtx` (one per rank thread, not `Send`) and
//! funnels the rank's sends, receives, and collective entries into the
//! world-shared [`CheckShared`]. When checked mode is off it is `None` and
//! every hook collapses to a branch on that option.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use pcheck::{CheckShared, CollKind, CollRecord, Perturb, WaitInfo};

/// Token returned by [`RankCheck::enter`]; hand it back to
/// [`RankCheck::leave`] when the collective returns. `seq` is the recorded
/// top-level sequence number (`None` for nested collective calls).
pub(crate) struct CollEntry {
    pub(crate) seq: Option<u64>,
    prev_op: Option<(&'static str, u64, u64)>,
}

/// Per-rank checker state. Created only when the world runs in checked mode.
pub(crate) struct RankCheck {
    pub(crate) shared: Arc<CheckShared>,
    rank: usize,
    /// Collective nesting depth: barrier is built from reduce + bcast, so
    /// only depth-0 entries are recorded in the conformance ledger.
    depth: Cell<u32>,
    /// `(collective name, comm, seq)` of the innermost *recorded* collective,
    /// attached to blocked-wait reports so a deadlock inside e.g. an
    /// allgather names the allgather, not its internal recv.
    cur_op: Cell<Option<(&'static str, u64, u64)>>,
    /// Next top-level collective sequence number per communicator id. This is
    /// the checker's own ledger counter (counts only depth-0 collectives),
    /// distinct from the tag-reservation counter in `Comm`.
    next_seq: RefCell<HashMap<u64, u64>>,
    /// Seeded schedule jitter; `None` unless perturbation was requested.
    perturb: Option<RefCell<Perturb>>,
}

impl RankCheck {
    pub(crate) fn new(shared: Arc<CheckShared>, rank: usize, perturb_seed: Option<u64>) -> Self {
        RankCheck {
            shared,
            rank,
            depth: Cell::new(0),
            cur_op: Cell::new(None),
            next_seq: RefCell::new(HashMap::new()),
            perturb: perturb_seed.map(|s| RefCell::new(Perturb::new(s, rank))),
        }
    }

    pub(crate) fn rank(&self) -> usize {
        self.rank
    }

    /// Schedule jitter hook at send / recv / collective entry.
    pub(crate) fn before_op(&self) {
        if let Some(p) = &self.perturb {
            p.borrow_mut().before_op();
        }
    }

    /// Drain-first mailbox polling coin (perturbation mode only).
    pub(crate) fn drain_coin(&self) -> bool {
        match &self.perturb {
            Some(p) => p.borrow_mut().coin(),
            None => false,
        }
    }

    /// If another rank aborted the world, panic with the secondary message.
    pub(crate) fn check_abort(&self) {
        if let Some(msg) = self.shared.abort_message() {
            panic!("{msg}");
        }
    }

    /// Abort the world with `report` and panic. First caller's report wins
    /// and becomes the primary diagnostic. Every checker abort (deadlock
    /// watchdog, conformance violation, barrier ledger) funnels through
    /// here, so this is where the flight-recorder rings are dumped.
    pub(crate) fn abort(&self, report: String) -> ! {
        let msg = self.shared.abort_with(report);
        crate::dump_blackbox(&msg);
        panic!("{msg}");
    }

    /// Record entry into a top-level collective; nested collective calls (the
    /// reduce/bcast inside barrier, gather inside allgather, …) only bump the
    /// depth. Aborts the world on a conformance violation.
    #[allow(clippy::too_many_arguments)] // mirrors CollRecord's fields
    pub(crate) fn enter(
        &self,
        comm: u64,
        group: &[usize],
        kind: CollKind,
        root: Option<usize>,
        type_id: Option<std::any::TypeId>,
        type_name: Option<&'static str>,
        detail: Vec<usize>,
    ) -> CollEntry {
        self.before_op();
        self.check_abort();
        let d = self.depth.get();
        self.depth.set(d + 1);
        if d != 0 {
            return CollEntry {
                seq: None,
                prev_op: self.cur_op.get(),
            };
        }
        let seq = {
            let mut m = self.next_seq.borrow_mut();
            let e = m.entry(comm).or_insert(0);
            let s = *e;
            *e += 1;
            s
        };
        let rec = CollRecord {
            kind,
            root,
            type_id,
            type_name,
            detail,
        };
        if let Err(report) = self
            .shared
            .record_collective(self.rank, comm, seq, group, rec)
        {
            self.abort(report);
        }
        let prev = self.cur_op.replace(Some((kind.name(), comm, seq)));
        CollEntry {
            seq: Some(seq),
            prev_op: prev,
        }
    }

    /// Leave a collective entered via [`RankCheck::enter`].
    pub(crate) fn leave(&self, entry: CollEntry) {
        self.depth.set(self.depth.get() - 1);
        if entry.seq.is_some() {
            self.cur_op.set(entry.prev_op);
        }
    }

    /// Temporarily relabel blocked-wait reports with a collective op. Used by
    /// nonblocking collectives, whose completing receive runs after the
    /// recording `enter`/`leave` pair has already unwound: without this, a
    /// deadlock inside `BcastHandle::wait` would be reported as an anonymous
    /// point-to-point recv instead of naming the ibcast. Returns the previous
    /// label so the caller can restore it.
    pub(crate) fn set_op(
        &self,
        op: Option<(&'static str, u64, u64)>,
    ) -> Option<(&'static str, u64, u64)> {
        self.cur_op.replace(op)
    }

    /// Barrier-exit ledger check: every member must have recorded this
    /// barrier (and hence everything before it).
    pub(crate) fn barrier_check(&self, comm: u64, seq: u64, group: &[usize]) {
        if let Err(report) = self.shared.barrier_check(self.rank, comm, seq, group) {
            self.abort(report);
        }
    }

    /// Wait info for a blocking receive, labeled with the enclosing
    /// collective when there is one.
    pub(crate) fn wait_info(
        &self,
        src: usize,
        comm: u64,
        tag: u64,
        type_name: &'static str,
    ) -> WaitInfo {
        WaitInfo {
            src,
            comm,
            tag,
            type_name,
            op: self.cur_op.get(),
        }
    }
}
