//! Collective operations, implemented over point-to-point messages so that
//! their communication volume is metered realistically.
//!
//! All collectives must be called by every rank of the communicator in the
//! same order (standard MPI contract); a per-communicator sequence number
//! gives each collective call its own reserved tag so that back-to-back
//! collectives cannot interfere.
//!
//! Under checked mode (see [`crate::WorldBuilder`]) that contract is
//! enforced: each top-level collective is recorded in the `pcheck`
//! conformance ledger at entry — before any of its messages go out — so a
//! divergent rank is caught as a ledger diff rather than decaying into tag
//! collisions or a hang. Collectives built from other collectives (barrier
//! uses reduce + bcast, allgather uses gather + bcast, …) record only the
//! outermost call.

use std::any::TypeId;

use crate::comm::Comm;
use crate::payload::Payload;
use crate::MAX_USER_TAG;
use pcheck::CollKind;

/// Payload descriptor for the conformance ledger.
fn ty<T: Payload>() -> Option<(TypeId, &'static str)> {
    Some((TypeId::of::<T>(), std::any::type_name::<T>()))
}

impl Comm {
    fn coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        MAX_USER_TAG + seq
    }

    /// Block until every rank of this communicator has entered the barrier.
    ///
    /// Under checked mode the barrier additionally validates the ledger: by
    /// the time any rank exits, every member must have recorded this barrier
    /// (and therefore every collective before it).
    pub fn barrier(&self) {
        let _span = obs::span!("pcomm.barrier");
        let entry = self.coll_enter(CollKind::Barrier, None, None, vec![]);
        self.reduce_with_tag(0, 0u8, |_, _| 0);
        let _ = self.bcast_inner(0, if self.rank() == 0 { Some(0u8) } else { None });
        self.coll_barrier_check(&entry);
        self.coll_leave(entry);
    }

    /// Nonblocking broadcast from `root`. Ranks other than `root` pass
    /// `None`; every rank gets a handle whose [`BcastHandle::wait`] yields
    /// the broadcast value.
    ///
    /// The conformance ledger records the collective here, at post time, and
    /// the root pushes the payload to every peer immediately (the buffered
    /// transport never blocks), so compute that runs between `ibcast` and
    /// `wait` overlaps the broadcast: by wait time the message is usually
    /// already stashed. A flat tree moves the same `(m−1)·payload` wire
    /// volume as the blocking binomial [`Comm::bcast`] — it trades the
    /// root's fan-out serialization for zero forwarding latency on peers
    /// that are still computing.
    ///
    /// Two spans make the trace shape rank-uniform: `pcomm.ibcast.post`
    /// (carries the root's sends) and `pcomm.ibcast` at wait (carries the
    /// peers' receives) are both emitted on every rank, empty where that
    /// rank moves no traffic.
    pub fn ibcast<T: Payload + Clone>(&self, root: usize, value: Option<T>) -> BcastHandle<T> {
        let entry = self.coll_enter(CollKind::Ibcast, Some(root), ty::<T>(), vec![]);
        let seq = entry.as_ref().and_then(|e| e.seq);
        let tag = self.coll_tag();
        let state = {
            let _span = obs::span!("pcomm.ibcast.post");
            if self.rank() == root {
                let val = value.expect("root must supply the broadcast value");
                for dst in 0..self.size() {
                    if dst != root {
                        self.send_raw(dst, tag, val.clone());
                    }
                }
                IbcastState::Ready(val)
            } else {
                IbcastState::Pending
            }
        };
        self.coll_leave(entry);
        BcastHandle {
            comm: self.clone(),
            root,
            tag,
            op_seq: seq,
            state: Some(state),
        }
    }

    /// Binomial-tree broadcast from `root`. Ranks other than `root` pass
    /// `None` and receive the broadcast value.
    pub fn bcast<T: Payload + Clone>(&self, root: usize, value: Option<T>) -> T {
        let entry = self.coll_enter(CollKind::Bcast, Some(root), ty::<T>(), vec![]);
        let out = self.bcast_inner(root, value);
        self.coll_leave(entry);
        out
    }

    fn bcast_inner<T: Payload + Clone>(&self, root: usize, value: Option<T>) -> T {
        let _span = obs::span!("pcomm.bcast");
        let tag = self.coll_tag();
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank with root at 0
        let val = if vr == 0 {
            value.expect("root must supply the broadcast value")
        } else {
            // Receive from the parent: vr with its highest set bit cleared.
            let high = usize::BITS - 1 - vr.leading_zeros();
            let parent_vr = vr ^ (1usize << high);
            let parent = (parent_vr + root) % p;
            self.recv_raw::<T>(parent, tag)
        };
        // Forward to children vr | 2^d for every d above my highest set bit.
        let mut d = if vr == 0 {
            0
        } else {
            (usize::BITS - vr.leading_zeros()) as usize
        };
        while (1usize << d) < p {
            let child_vr = vr | (1 << d);
            if child_vr < p {
                let child = (child_vr + root) % p;
                self.send_raw(child, tag, val.clone());
            }
            d += 1;
        }
        val
    }

    fn reduce_with_tag<T: Payload>(
        &self,
        root: usize,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> Option<T> {
        let tag = self.coll_tag();
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut d = 0;
        while (1usize << d) < p {
            let bit = 1usize << d;
            if vr & bit != 0 {
                // My subtree is complete; hand it to the parent and stop.
                let parent = ((vr & !bit) + root) % p;
                self.send_raw(parent, tag, acc);
                return None;
            }
            let child_vr = vr | bit;
            if child_vr < p {
                let child = (child_vr + root) % p;
                let other = self.recv_raw::<T>(child, tag);
                acc = op(acc, other);
            }
            d += 1;
        }
        Some(acc)
    }

    /// Binomial-tree reduction to `root`; returns `Some(total)` on the root
    /// and `None` elsewhere. `op` must be associative (the combine order is
    /// deterministic for a given communicator size, so results reproduce).
    pub fn reduce<T: Payload>(&self, root: usize, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let _span = obs::span!("pcomm.reduce");
        let entry = self.coll_enter(CollKind::Reduce, Some(root), ty::<T>(), vec![]);
        let out = self.reduce_with_tag(root, value, op);
        self.coll_leave(entry);
        out
    }

    /// Reduction whose result every rank receives.
    pub fn allreduce<T: Payload + Clone>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let _span = obs::span!("pcomm.allreduce");
        let entry = self.coll_enter(CollKind::Allreduce, None, ty::<T>(), vec![]);
        let total = self.reduce_with_tag(0, value, op);
        let out = self.bcast_inner(0, total);
        self.coll_leave(entry);
        out
    }

    /// Gather one value per rank to `root` (rank order). Linear algorithm:
    /// the root inherently receives `p-1` messages.
    pub fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>> {
        let _span = obs::span!("pcomm.gather");
        let entry = self.coll_enter(CollKind::Gather, Some(root), ty::<T>(), vec![]);
        let out = self.gather_inner(root, value);
        self.coll_leave(entry);
        out
    }

    fn gather_inner<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>> {
        let tag = self.coll_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            #[allow(clippy::needless_range_loop)] // src is a rank id, not just an index
            for src in 0..self.size() {
                if src != root {
                    out[src] = Some(self.recv_raw::<T>(src, tag));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send_raw(root, tag, value);
            None
        }
    }

    /// Gather one value per rank onto every rank (gather + broadcast).
    pub fn allgather<T: Payload + Clone>(&self, value: T) -> Vec<T> {
        let _span = obs::span!("pcomm.allgather");
        let entry = self.coll_enter(CollKind::Allgather, None, ty::<T>(), vec![]);
        let gathered = self.gather_inner(0, value);
        let out = self.bcast_inner(0, gathered);
        self.coll_leave(entry);
        out
    }

    /// Personalized all-to-all: `parts[d]` is sent to rank `d`; the result's
    /// element `s` is the part rank `s` addressed to me. This is the shuffle
    /// primitive behind distributed triple redistribution.
    ///
    /// # Panics
    /// Panics unless `parts.len() == self.size()`: the shuffle needs exactly
    /// one part (possibly empty) per destination rank.
    pub fn alltoallv<T: Payload>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let _span = obs::span!("pcomm.alltoallv");
        assert!(
            parts.len() == self.size(),
            "pcomm: alltoallv requires exactly one part per destination rank: \
             got {} part(s) on a communicator of size {}",
            parts.len(),
            self.size()
        );
        // Per-destination element counts legitimately differ across ranks;
        // they are recorded as diagnostic detail only.
        let entry = self.coll_enter(
            CollKind::Alltoallv,
            None,
            ty::<T>(),
            parts.iter().map(Vec::len).collect(),
        );
        let tag = self.coll_tag();
        for (dst, part) in parts.into_iter().enumerate() {
            self.send_raw(dst, tag, part);
        }
        let out = (0..self.size())
            .map(|src| self.recv_raw::<Vec<T>>(src, tag))
            .collect();
        self.coll_leave(entry);
        out
    }

    /// Exclusive prefix "sum" over ranks: rank `i` receives
    /// `op(v_0, ..., v_{i-1})`; rank 0 receives `None`. Used to number
    /// globally the sequences each rank parsed from its FASTA chunk.
    pub fn exscan<T: Payload + Clone>(&self, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let _span = obs::span!("pcomm.exscan");
        let entry = self.coll_enter(CollKind::Exscan, None, ty::<T>(), vec![]);
        let tag = self.coll_tag();
        let me = self.rank();
        let p = self.size();
        let prefix: Option<T> = if me == 0 {
            None
        } else {
            Some(self.recv_raw::<T>(me - 1, tag))
        };
        if me + 1 < p {
            let next = match prefix.clone() {
                None => value,
                Some(pre) => op(pre, value),
            };
            self.send_raw(me + 1, tag, next);
        }
        self.coll_leave(entry);
        prefix
    }
}

enum IbcastState<T> {
    /// Root side: the value, available without waiting.
    Ready(T),
    /// Peer side: the matching receive has not been completed yet.
    Pending,
}

/// Handle for an in-flight nonblocking broadcast (see [`Comm::ibcast`]).
///
/// Dropping an unawaited handle completes the receive and discards the
/// value, so a short-circuiting consumer cannot strand the broadcast
/// message in the stash (which the checked-mode finalize audit would
/// report as a leak).
pub struct BcastHandle<T: Payload + Clone> {
    comm: Comm,
    root: usize,
    tag: u64,
    /// Recorded ledger sequence number, re-attached to the completing
    /// receive so blocked-wait reports name the ibcast.
    op_seq: Option<u64>,
    state: Option<IbcastState<T>>,
}

impl<T: Payload + Clone> BcastHandle<T> {
    /// Complete the broadcast and return its value.
    pub fn wait(mut self) -> T {
        let _span = obs::span!("pcomm.ibcast");
        match self.state.take().expect("ibcast handle waited twice") {
            IbcastState::Ready(val) => val,
            IbcastState::Pending => {
                self.comm
                    .recv_labeled::<T>(self.root, self.tag, "ibcast", self.op_seq)
            }
        }
    }

    /// Root rank this broadcast was posted from.
    pub fn root(&self) -> usize {
        self.root
    }
}

impl<T: Payload + Clone> Drop for BcastHandle<T> {
    fn drop(&mut self) {
        if matches!(self.state, Some(IbcastState::Pending)) && !std::thread::panicking() {
            let _ = self
                .comm
                .recv_labeled::<T>(self.root, self.tag, "ibcast", self.op_seq);
        }
    }
}
