//! 2D process grids with row/column subcommunicators, as used by the 2D
//! Sparse SUMMA algorithm in CombBLAS (paper §II-A, §V-A).

use crate::comm::Comm;

/// A √p × √p arrangement of the ranks of a communicator.
///
/// Ranks are laid out row-major: grid position `(r, c)` is rank `r·q + c`.
/// Row and column subcommunicators support the broadcasts of SUMMA and the
/// triangular exchange used to symmetrize the similarity matrix.
pub struct Grid {
    world: Comm,
    q: usize,
    row: Comm,
    col: Comm,
}

impl Grid {
    /// Build a grid over all ranks of `comm`. Collective.
    ///
    /// # Panics
    /// Panics unless `comm.size()` is a perfect square — the same requirement
    /// PASTIS imposes on its process count (§V).
    pub fn new(comm: &Comm) -> Grid {
        let p = comm.size();
        let q = (p as f64).sqrt().round() as usize;
        assert_eq!(
            q * q,
            p,
            "grid requires a perfect square rank count, got {p}"
        );
        let me = comm.rank();
        let (myrow, mycol) = (me / q, me % q);
        // Subcommunicator creation is collective: every rank must perform the
        // same sequence of calls, so all ranks iterate over all rows/columns.
        let mut row = None;
        for r in 0..q {
            let members: Vec<usize> = (0..q).map(|c| r * q + c).collect();
            if let Some(c) = comm.subcomm_named(&members, &format!("row{r}")) {
                debug_assert_eq!(r, myrow);
                row = Some(c);
            }
        }
        let mut col = None;
        for c in 0..q {
            let members: Vec<usize> = (0..q).map(|r| r * q + c).collect();
            if let Some(cm) = comm.subcomm_named(&members, &format!("col{c}")) {
                debug_assert_eq!(c, mycol);
                col = Some(cm);
            }
        }
        Grid {
            world: comm.clone(),
            q,
            row: row.unwrap(),
            col: col.unwrap(),
        }
    }

    /// Side length of the grid (√p).
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// My row index.
    #[inline]
    pub fn myrow(&self) -> usize {
        self.world.rank() / self.q
    }

    /// My column index.
    #[inline]
    pub fn mycol(&self) -> usize {
        self.world.rank() % self.q
    }

    /// Rank (in the underlying communicator) of grid position `(r, c)`.
    #[inline]
    pub fn rank_of(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.q && c < self.q);
        r * self.q + c
    }

    /// The communicator the grid was built over.
    #[inline]
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// Subcommunicator of my grid row (rank within it = my column index).
    #[inline]
    pub fn row_comm(&self) -> &Comm {
        &self.row
    }

    /// Subcommunicator of my grid column (rank within it = my row index).
    #[inline]
    pub fn col_comm(&self) -> &Comm {
        &self.col
    }

    /// Rank holding the transpose-partner block of mine (`(c, r)` for my
    /// `(r, c)`), used when symmetrizing distributed matrices.
    #[inline]
    pub fn transpose_partner(&self) -> usize {
        self.rank_of(self.mycol(), self.myrow())
    }
}
